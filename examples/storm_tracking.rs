//! Storm tracking: iterative collective computing over time steps.
//!
//! The paper names "support \[for\] the iterative operations" as future
//! work; this example shows the extension in action. Each step of the
//! sweep runs one object I/O over a single time slice of the WRF-style
//! sea-level-pressure field, producing the storm's intensity *time
//! series* (the per-step minima) and the overall minimum — all computed
//! inside the collectives, with only partial results ever shuffled.
//!
//! ```text
//! cargo run --release -p cc-examples --bin storm_tracking
//! ```

use cc_core::{iterative_get_vara, MinLocKernel, ObjectIo, ReduceMode};
use cc_examples::banner;
use cc_model::ClusterModel;
use cc_mpi::World;
use cc_workloads::{WrfGrid, WrfWorkload};

fn main() {
    banner("storm tracking with iterative collective computing");
    let grid = WrfGrid {
        times: 24,
        sn: 96,
        we: 192,
    };
    let nprocs = 16;
    let wrf = WrfWorkload::new(grid, nprocs, 1 << 20, 16);
    let model = ClusterModel::hopper_like(2, 8);
    let fs = wrf.build_fs(32, model.disk.clone());
    let world = World::new(nprocs, model);

    let fs = &fs;
    let wrf_ref = &wrf;
    let outcomes = world.run(move |comm| {
        let file = fs.open(WrfWorkload::FILE).expect("created");
        // One step per time slice; within a step, ranks split the
        // south-north dimension into bands.
        let band = grid.sn / nprocs as u64;
        let steps: Vec<_> = (0..grid.times)
            .map(|t| {
                let io = ObjectIo::new(
                    vec![t, comm.rank() as u64 * band, 0],
                    vec![1, band, grid.we],
                )
                .reduce(ReduceMode::AllToOne { root: 0 });
                (wrf_ref.slp_var(), io)
            })
            .collect();
        iterative_get_vara(comm, fs, &file, &steps, &MinLocKernel)
    });

    let root = &outcomes[0];
    let series = root.per_step.as_ref().expect("per-step series at root");
    println!("time  min SLP (hPa)   storm center");
    for (t, step) in series.iter().enumerate() {
        let (_, y, x) = grid.coords(step[1] as u64);
        let bar = "#".repeat(((1010.0 - step[0]) / 2.0) as usize);
        println!("{t:>4}  {:>10.1}     ({y:>3}, {x:>3})  {bar}", step[0]);
        // Each step's minimum sits at that step's analytic storm center.
        let (cy, cx) = grid.center(t as u64);
        assert_eq!((y, x), (cy, cx), "tracker should follow the eye");
    }
    let global = root.global.as_ref().expect("folded global at root");
    let (t, y, x) = grid.coords(global[1] as u64);
    println!(
        "\ndeepest point of the run: {:.1} hPa at t={t}, grid ({y}, {x})",
        global[0]
    );
    let (ev, ei) = grid.slp_min();
    assert_eq!(global[0], ev);
    assert_eq!(global[1] as u64, ei);
    println!("   -> matches the storm model's analytic minimum");
}
