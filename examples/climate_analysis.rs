//! Climate analysis: the paper's benchmark scenario end to end.
//!
//! A 72-rank job analyzes a (virtually) huge 4-D climate variable — the
//! Fig. 1 configuration — computing the mean, extremes, and variance of an
//! interleaved 4-D subset, first with traditional MPI (collective read,
//! then compute, then reduce) and then with collective computing, and
//! prints the phase breakdown of both.
//!
//! ```text
//! cargo run --release -p cc-examples --bin climate_analysis
//! ```

use cc_core::{
    object_get_vara, MapKernel, MaxKernel, MeanKernel, MinKernel, ObjectIo, ReduceMode,
    SumSqKernel,
};
use cc_examples::banner;
use cc_model::ClusterModel;
use cc_mpi::World;
use cc_mpiio::Hints;
use cc_workloads::ClimateWorkload;

fn main() {
    banner("climate analysis (paper Fig. 1 configuration, scaled)");
    // 72 ranks on 6 nodes x 12 cores, 6 aggregators per node; the variable
    // is the paper's 1024 x 1024 x 100 x 1024 f32 (429 TB virtual), with
    // the fast dimensions of the subset shrunk 5x to keep the demo quick.
    let workload = ClimateWorkload::fig1(72, 5);
    let mut model = ClusterModel::hopper_like(6, 12);
    // An analysis kernel whose cost is comparable to the I/O — the paper's
    // peak-speedup regime (Fig. 9, ratio ~1:1).
    model.cpu.map_cost_per_byte = 5e-6;
    let hints = Hints {
        cb_buffer_size: 1 << 20,
        aggregators_per_node: 6,
        nonblocking: true,
        align_domains_to: Some(workload.stripe_size),
        ..Hints::default()
    };
    println!(
        "variable: {:?} f32 = {:.1} TB (virtual, lazily generated)",
        workload.var().shape().dims(),
        workload.var().size_bytes() as f64 / 1e12
    );
    println!(
        "requested: {:.1} MB across {} ranks",
        workload.requested_bytes() as f64 / 1e6,
        workload.nprocs()
    );

    let kernels: [&dyn MapKernel; 4] = [&MeanKernel, &MinKernel, &MaxKernel, &SumSqKernel];
    let trials = 3; // OST queueing jitters like a real file system: average
    for kernel in kernels {
        let mut line = format!("{:<6}", kernel.name());
        for blocking in [true, false] {
            let mut total = 0.0;
            let mut result = Vec::new();
            for _ in 0..trials {
                let fs = workload.build_fs(156, model.disk.clone());
                let world = World::new(workload.nprocs(), model.clone());
                let fs = &fs;
                let workload = &workload;
                let hints = &hints;
                let outcomes = world.run(move |comm| {
                    let file = fs.open(ClimateWorkload::FILE).expect("created");
                    let slab = workload.slab(comm.rank());
                    let io = ObjectIo::new(slab.start().to_vec(), slab.count().to_vec())
                        .blocking(blocking)
                        .hints(hints.clone())
                        .reduce(ReduceMode::AllToOne { root: 0 });
                    object_get_vara(comm, fs, &file, workload.var(), &io, kernel)
                });
                total += outcomes
                    .iter()
                    .map(|o| o.report.end)
                    .max()
                    .expect("nonempty")
                    .secs();
                result = outcomes[0].global.clone().expect("root result");
            }
            let label = if blocking { "MPI" } else { "CC" };
            line.push_str(&format!(
                "  {label}: t={:.3}s result={:?}",
                total / trials as f64,
                result
                    .iter()
                    .map(|v| (v * 1000.0).round() / 1000.0)
                    .collect::<Vec<_>>()
            ));
        }
        println!("{line}");
    }
    println!("\n(CC and MPI compute identical results; CC finishes earlier by");
    println!(" overlapping the analysis with the read and shrinking the shuffle.)");
}
