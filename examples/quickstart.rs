//! Quickstart: the paper's Fig. 6 programming model in thirty lines.
//!
//! Four ranks collectively read disjoint row blocks of a 2-D temperature
//! variable and compute the global mean *inside* the collective: the mean
//! kernel runs at the aggregators between the read phase and the shuffle
//! phase, so only tiny partial results travel.
//!
//! ```text
//! cargo run -p cc-examples --bin quickstart
//! ```

use cc_core::{object_get_vara, MeanKernel, ObjectIo, ReduceMode};
use cc_examples::{banner, make_temperature_file};
use cc_model::ClusterModel;
use cc_mpi::World;

fn main() {
    banner("collective computing quickstart");
    let (rows, cols) = (64, 256);
    // Element i holds 250 + (i mod 100): mean is analytic.
    let (fs, var) = make_temperature_file(rows, cols, |i| 250.0 + (i % 100) as f64);

    let nprocs = 4;
    let world = World::new(nprocs, ClusterModel::hopper_like(2, 2));
    let fs = &fs;
    let var = &var;
    let outcomes = world.run(move |comm| {
        let file = fs.open("demo.nc").expect("file exists");
        // Each rank selects its block of rows — the io.start/io.count of
        // the paper's object I/O — and passes the computation (a kernel)
        // into the collective read.
        let per = rows / nprocs as u64;
        let io = ObjectIo::new(
            vec![comm.rank() as u64 * per, 0],
            vec![per, cols],
        )
        .reduce(ReduceMode::AllToOne { root: 0 });
        object_get_vara(comm, fs, &file, var, &io, &MeanKernel)
    });

    let root = &outcomes[0];
    let mean = root.global.as_ref().expect("root holds the global result")[0];
    println!("global mean temperature: {mean:.3} K");
    println!(
        "virtual time: {} (aggregators read {} bytes, shuffled only {} result words)",
        root.report.end,
        outcomes.iter().map(|o| o.report.bytes_read).sum::<u64>(),
        outcomes
            .iter()
            .map(|o| o.report.result_words_shuffled)
            .sum::<u64>(),
    );

    // The same value computed directly, for comparison.
    let expect: f64 =
        (0..rows * cols).map(|i| 250.0 + (i % 100) as f64).sum::<f64>() / (rows * cols) as f64;
    println!("direct computation agrees: {}", (mean - expect).abs() < 1e-9);
}
