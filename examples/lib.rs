//! Shared helpers for the runnable examples.

use std::sync::Arc;

use cc_array::{DType, Shape, Variable};
use cc_model::DiskModel;
use cc_pfs::backend::{ElemKind, SyntheticBackend};
use cc_pfs::{Pfs, StripeLayout};

/// Creates a small simulated file system holding one 2-D `f64` variable
/// named `temperature` whose value at element `i` is `f(i)`. Returns the
/// file system and the variable descriptor.
pub fn make_temperature_file(rows: u64, cols: u64, f: fn(u64) -> f64) -> (Arc<Pfs>, Variable) {
    let fs = Pfs::new(8, DiskModel::lustre_like());
    let var = Variable::new("temperature", Shape::new(vec![rows, cols]), DType::F64, 0);
    fs.create(
        "demo.nc",
        StripeLayout::round_robin(1 << 20, 8, 0, 8),
        Box::new(SyntheticBackend::new(rows * cols, ElemKind::F64, f)),
    );
    (Arc::new(fs), var)
}

/// Prints a section header.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
