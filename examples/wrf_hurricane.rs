//! WRF hurricane analysis: the paper's application tasks (Fig. 13).
//!
//! A simulated hurricane season — WRF-style output with sea-level pressure
//! and 10 m wind fields — is analyzed by 32 ranks using both of the
//! paper's tasks: *Min Sea-Level Pressure* and *Max 10 m wind speed*. The
//! storm's analytic structure lets the example verify the answers.
//!
//! ```text
//! cargo run --release -p cc-examples --bin wrf_hurricane
//! ```

use cc_core::{object_get_vara, MaxLocKernel, MinLocKernel, ObjectIo, ReduceMode};
use cc_examples::banner;
use cc_model::ClusterModel;
use cc_mpi::World;
use cc_workloads::{WrfGrid, WrfWorkload};

fn main() {
    banner("WRF hurricane analysis");
    let grid = WrfGrid {
        times: 48,
        sn: 128,
        we: 256,
    };
    let nprocs = 32;
    let wrf = WrfWorkload::new(grid, nprocs, 1 << 20, 40);
    let model = ClusterModel::hopper_like(2, 16);
    println!(
        "grid: {} time steps x {} x {} ({}  MB per variable)",
        grid.times,
        grid.sn,
        grid.we,
        grid.elements() * 8 / (1 << 20)
    );

    // Task 1: minimum sea-level pressure and where it occurs.
    let fs = wrf.build_fs(156, model.disk.clone());
    let world = World::new(nprocs, model.clone());
    let slp = {
        let fs = &fs;
        let wrf = &wrf;
        let outcomes = world.run(move |comm| {
            let file = fs.open(WrfWorkload::FILE).expect("created");
            let slab = wrf.band_slab(comm.rank());
            let io = ObjectIo::new(slab.start().to_vec(), slab.count().to_vec())
                .reduce(ReduceMode::AllToOne { root: 0 });
            object_get_vara(comm, fs, &file, wrf.slp_var(), &io, &MinLocKernel)
        });
        outcomes[0].global.clone().expect("root result")
    };
    let (t, y, x) = grid.coords(slp[1] as u64);
    println!(
        "min sea-level pressure: {:.1} hPa at t={t}, grid ({y}, {x})",
        slp[0]
    );
    let (expect_v, expect_i) = grid.slp_min();
    assert_eq!(slp[0], expect_v, "pressure oracle");
    assert_eq!(slp[1] as u64, expect_i, "location oracle");
    println!("  -> matches the storm model's analytic minimum");

    // Task 2: maximum 10 m wind speed (the eyewall).
    let fs = wrf.build_fs(156, model.disk.clone());
    let world = World::new(nprocs, model);
    let wind = {
        let fs = &fs;
        let wrf = &wrf;
        let outcomes = world.run(move |comm| {
            let file = fs.open(WrfWorkload::FILE).expect("created");
            let slab = wrf.band_slab(comm.rank());
            let io = ObjectIo::new(slab.start().to_vec(), slab.count().to_vec())
                .reduce(ReduceMode::AllToAll { root: 0 });
            object_get_vara(comm, fs, &file, wrf.wind_var(), &io, &MaxLocKernel)
        });
        // All-to-all reduce also leaves each rank its own band's maximum.
        for (r, o) in outcomes.iter().enumerate().take(4) {
            let mine = o.my_result.as_ref().expect("own result");
            println!("  rank {r}: band max wind {:.1} knots", mine[0]);
        }
        outcomes[0].global.clone().expect("root result")
    };
    let (t, y, x) = grid.coords(wind[1] as u64);
    println!("max 10 m wind: {:.1} knots at t={t}, grid ({y}, {x})", wind[0]);
    let (expect_v, expect_i) = wrf.oracle_wind_max();
    assert_eq!(wind[0], expect_v, "wind oracle");
    assert_eq!(wind[1] as u64, expect_i, "wind location oracle");
    println!("  -> matches the brute-force oracle (on the eyewall ring)");
}
