//! The non-blocking pipeline, dissected.
//!
//! This example exposes what the paper's Fig. 7 runtime actually does:
//! it runs the same analysis three ways — traditional MPI, blocking
//! collective computing (`io.block = true` semantics at the engine level),
//! and non-blocking collective computing — and prints each aggregator's
//! per-iteration read/map timeline so the overlap is visible.
//!
//! ```text
//! cargo run --release -p cc-examples --bin nonblocking_pipeline
//! ```

use cc_core::{object_get_vara, ObjectIo, ReduceMode, SumKernel};
use cc_examples::banner;
use cc_model::{ClusterModel, SimTime};
use cc_mpi::World;
use cc_mpiio::Hints;
use cc_workloads::ClimateWorkload;

fn run(
    workload: &ClimateWorkload,
    model: &ClusterModel,
    blocking_object: bool,
    nonblocking_engine: bool,
) -> (SimTime, Vec<(SimTime, SimTime)>) {
    let fs = workload.build_fs(40, model.disk.clone());
    let world = World::new(workload.nprocs(), model.clone());
    let fs = &fs;
    let outcomes = world.run(move |comm| {
        let file = fs.open(ClimateWorkload::FILE).expect("created");
        let slab = workload.slab(comm.rank());
        let io = ObjectIo::new(slab.start().to_vec(), slab.count().to_vec())
            .blocking(blocking_object)
            .hints(Hints {
                cb_buffer_size: 256 << 10,
                nonblocking: nonblocking_engine,
                ..Hints::default()
            })
            .reduce(ReduceMode::AllToOne { root: 0 });
        let out = object_get_vara(comm, fs, &file, workload.var(), &io, &SumKernel);
        (
            out.report.end,
            out.report
                .iterations
                .iter()
                .map(|i| (i.read, i.map))
                .collect::<Vec<_>>(),
        )
    });
    let end = outcomes.iter().map(|o| o.0).max().expect("nonempty");
    let timeline = outcomes
        .into_iter()
        .map(|o| o.1)
        .find(|t| !t.is_empty())
        .unwrap_or_default();
    (end, timeline)
}

fn main() {
    banner("blocking vs non-blocking collective computing");
    // 8 ranks, interleaved requests, and a compute cost comparable to the
    // read cost — the regime where overlap matters most (paper Fig. 9).
    let workload = ClimateWorkload::interleaved_3d(8, 32, 4, 256, 256 << 10, 16);
    let mut model = ClusterModel::hopper_like(2, 4);
    model.cpu.map_cost_per_byte = 6.0 / model.disk.ost_bandwidth;

    let (t_mpi, _) = run(&workload, &model, true, true);
    let (t_block, _) = run(&workload, &model, false, false);
    let (t_nb, timeline) = run(&workload, &model, false, true);

    println!("traditional MPI (read, then compute, then reduce): {t_mpi}");
    println!("collective computing, single-lane (blocking):      {t_block}");
    println!("collective computing, pipelined (non-blocking):    {t_nb}");
    println!(
        "\noverlap gain over blocking CC: {:.2}x; over traditional: {:.2}x",
        t_block.secs() / t_nb.secs(),
        t_mpi.secs() / t_nb.secs()
    );

    println!("\naggregator 0 pipeline (first 10 iterations):");
    println!("{:>5}  {:>10}  {:>10}", "iter", "read", "map");
    for (i, (read, map)) in timeline.iter().take(10).enumerate() {
        println!("{i:>5}  {read:>10}  {map:>10}");
    }
    println!(
        "\n(iteration i's map runs concurrently with iteration i+1's read,\n\
         the mechanism of the paper's Fig. 7; with a single lane the same\n\
         work strictly alternates.)"
    );
}
