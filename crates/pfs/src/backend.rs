//! File data backends.
//!
//! A backend supplies the *contents* of a file, independent of its striping
//! or timing. [`MemBackend`] holds real bytes (small files, write tests);
//! [`SyntheticBackend`] generates bytes on demand from a closed-form
//! function of the element index, which is how this reproduction represents
//! the paper's terabyte-scale climate variables without materializing them —
//! and, crucially, how every reduction computed through the full stack can
//! be checked against an independently computed expected value.

use std::sync::RwLock;

/// Element value generator for synthetic files: a pure function from the
/// flat element index to a value.
pub trait ValueFn: Send + Sync {
    /// The value of element `index`.
    fn value(&self, index: u64) -> f64;
}

impl<F: Fn(u64) -> f64 + Send + Sync> ValueFn for F {
    fn value(&self, index: u64) -> f64 {
        self(index)
    }
}

/// Supplies and (optionally) accepts file bytes.
pub trait Backend: Send + Sync {
    /// Fills `buf` with the bytes at `offset..offset + buf.len()`.
    ///
    /// # Panics
    /// Panics if the range exceeds the backend size.
    fn read_into(&self, offset: u64, buf: &mut [u8]);

    /// Writes `data` at `offset`.
    ///
    /// # Panics
    /// Panics if the backend is read-only or the range is out of bounds.
    fn write_at(&self, offset: u64, data: &[u8]);

    /// Total size in bytes.
    fn size(&self) -> u64;
}

/// A plain in-memory byte store.
pub struct MemBackend {
    data: RwLock<Vec<u8>>,
}

impl MemBackend {
    /// A zero-filled store of `size` bytes.
    pub fn zeroed(size: usize) -> Self {
        Self {
            data: RwLock::new(vec![0u8; size]),
        }
    }

    /// A store initialized with `data`.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Self {
            data: RwLock::new(data),
        }
    }
}

impl Backend for MemBackend {
    fn read_into(&self, offset: u64, buf: &mut [u8]) {
        let data = self.data.read().unwrap();
        let start = offset as usize;
        let end = start + buf.len();
        assert!(
            end <= data.len(),
            "read [{start}, {end}) beyond file size {}",
            data.len()
        );
        buf.copy_from_slice(&data[start..end]);
    }

    fn write_at(&self, offset: u64, incoming: &[u8]) {
        let mut data = self.data.write().unwrap();
        let start = offset as usize;
        let end = start + incoming.len();
        assert!(
            end <= data.len(),
            "write [{start}, {end}) beyond file size {}",
            data.len()
        );
        data[start..end].copy_from_slice(incoming);
    }

    fn size(&self) -> u64 {
        self.data.read().unwrap().len() as u64
    }
}

/// Element width of a synthetic file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemKind {
    /// 4-byte little-endian IEEE 754 floats.
    F32,
    /// 8-byte little-endian IEEE 754 floats.
    F64,
}

impl ElemKind {
    /// Bytes per element.
    pub fn size(self) -> u64 {
        match self {
            ElemKind::F32 => 4,
            ElemKind::F64 => 8,
        }
    }
}

/// A read-only file whose bytes are generated on demand from a [`ValueFn`].
///
/// Reads may start and end at arbitrary byte offsets, including mid-element;
/// partial elements are handled by generating the covering element and
/// copying the requested slice.
pub struct SyntheticBackend<V> {
    elems: u64,
    kind: ElemKind,
    value_fn: V,
}

impl<V: ValueFn> SyntheticBackend<V> {
    /// A synthetic file of `elems` elements of width `kind`.
    pub fn new(elems: u64, kind: ElemKind, value_fn: V) -> Self {
        Self {
            elems,
            kind,
            value_fn,
        }
    }

    /// The generator's value for element `index` (for test oracles).
    pub fn value(&self, index: u64) -> f64 {
        self.value_fn.value(index)
    }

    fn elem_bytes(&self, index: u64) -> [u8; 8] {
        let v = self.value_fn.value(index);
        let mut out = [0u8; 8];
        match self.kind {
            ElemKind::F32 => out[..4].copy_from_slice(&(v as f32).to_le_bytes()),
            ElemKind::F64 => out.copy_from_slice(&v.to_le_bytes()),
        }
        out
    }

    /// Fills `buf` with the file bytes at `offset..offset + buf.len()` by
    /// generating whole element runs: an unaligned head element (if the
    /// range starts mid-element), a run of full elements written straight
    /// into `buf` via `chunks_exact_mut` with no per-element offset
    /// arithmetic or temporaries, and an unaligned tail element.
    ///
    /// Bit-identical to generating each element with [`Self::value`] and
    /// slicing its little-endian encoding.
    ///
    /// # Panics
    /// Panics if the range exceeds the backend size.
    pub fn fill_range(&self, offset: u64, buf: &mut [u8]) {
        let esize = self.kind.size() as usize;
        let end = offset + buf.len() as u64;
        assert!(
            end <= self.size(),
            "read [{offset}, {end}) beyond synthetic size {}",
            self.size()
        );
        if buf.is_empty() {
            return;
        }
        let mut index = offset / esize as u64;
        let within = (offset % esize as u64) as usize;
        let mut rest = buf;
        if within != 0 {
            // Unaligned head: copy the trailing bytes of the covering element.
            let bytes = self.elem_bytes(index);
            let take = (esize - within).min(rest.len());
            rest[..take].copy_from_slice(&bytes[within..within + take]);
            rest = &mut rest[take..];
            index += 1;
        }
        let mut chunks = rest.chunks_exact_mut(esize);
        match self.kind {
            ElemKind::F32 => {
                for chunk in &mut chunks {
                    let v = self.value_fn.value(index) as f32;
                    chunk.copy_from_slice(&v.to_le_bytes());
                    index += 1;
                }
            }
            ElemKind::F64 => {
                for chunk in &mut chunks {
                    let v = self.value_fn.value(index);
                    chunk.copy_from_slice(&v.to_le_bytes());
                    index += 1;
                }
            }
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            // Unaligned tail: the leading bytes of one final element.
            let bytes = self.elem_bytes(index);
            let take = tail.len();
            tail.copy_from_slice(&bytes[..take]);
        }
    }
}

impl<V: ValueFn> Backend for SyntheticBackend<V> {
    fn read_into(&self, offset: u64, buf: &mut [u8]) {
        self.fill_range(offset, buf);
    }

    fn write_at(&self, _offset: u64, _data: &[u8]) {
        panic!("synthetic backends are read-only");
    }

    fn size(&self) -> u64 {
        self.elems * self.kind.size()
    }
}

/// A copy-on-write overlay: reads fall through to a base backend except
/// where writes have landed. This is how a (read-only, generated)
/// synthetic file becomes writable — e.g. running a collective *write*
/// benchmark against a virtually TB-scale file — while storing only the
/// written byte ranges.
pub struct OverlayBackend<B> {
    base: B,
    /// Sorted, disjoint written ranges: start -> bytes.
    written: RwLock<std::collections::BTreeMap<u64, Vec<u8>>>,
}

impl<B: Backend> OverlayBackend<B> {
    /// Wraps `base` with an initially-empty overlay.
    pub fn new(base: B) -> Self {
        Self {
            base,
            written: RwLock::new(std::collections::BTreeMap::new()),
        }
    }

    /// Total bytes currently stored in the overlay.
    pub fn overlay_bytes(&self) -> u64 {
        self.written.read().unwrap().values().map(|v| v.len() as u64).sum()
    }
}

impl<B: Backend> Backend for OverlayBackend<B> {
    fn read_into(&self, offset: u64, buf: &mut [u8]) {
        self.base.read_into(offset, buf);
        let end = offset + buf.len() as u64;
        let written = self.written.read().unwrap();
        // Patch every overlapping written range over the base bytes.
        for (&w_start, bytes) in written.range(..end) {
            let w_end = w_start + bytes.len() as u64;
            if w_end <= offset {
                continue;
            }
            let lo = w_start.max(offset);
            let hi = w_end.min(end);
            buf[(lo - offset) as usize..(hi - offset) as usize]
                .copy_from_slice(&bytes[(lo - w_start) as usize..(hi - w_start) as usize]);
        }
    }

    fn write_at(&self, offset: u64, data: &[u8]) {
        assert!(
            offset + data.len() as u64 <= self.base.size(),
            "write beyond file size {}",
            self.base.size()
        );
        if data.is_empty() {
            return;
        }
        let mut written = self.written.write().unwrap();
        let end = offset + data.len() as u64;
        // Collect ranges overlapping or adjacent to the new write, merge
        // them into one contiguous range, then reinsert.
        let mut merged_start = offset;
        let mut merged: Vec<u8> = Vec::new();
        let overlapping: Vec<u64> = written
            .range(..=end)
            .filter(|(&s, v)| s + v.len() as u64 >= offset)
            .map(|(&s, _)| s)
            .collect();
        if let Some(&first) = overlapping.first() {
            merged_start = merged_start.min(first);
        }
        let merged_end = overlapping
            .last()
            .map(|&s| s + written[&s].len() as u64)
            .unwrap_or(end)
            .max(end);
        merged.resize((merged_end - merged_start) as usize, 0);
        for s in overlapping {
            let bytes = written.remove(&s).expect("key just enumerated");
            let at = (s - merged_start) as usize;
            merged[at..at + bytes.len()].copy_from_slice(&bytes);
        }
        let at = (offset - merged_start) as usize;
        merged[at..at + data.len()].copy_from_slice(data);
        written.insert(merged_start, merged);
    }

    fn size(&self) -> u64 {
        self.base.size()
    }
}

/// The default synthetic climate-style value function used across the
/// benchmarks: bounded, non-constant, cheap, and exactly reproducible.
pub fn default_climate_value(index: u64) -> f64 {
    // A Weyl-style mix keeps neighboring values distinct without trig costs.
    let h = index.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
    250.0 + (h % 10_000) as f64 / 100.0 // "temperature" in 250..350
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mem_backend_roundtrip() {
        let b = MemBackend::zeroed(16);
        b.write_at(4, &[1, 2, 3, 4]);
        let mut buf = [0u8; 6];
        b.read_into(3, &mut buf);
        assert_eq!(buf, [0, 1, 2, 3, 4, 0]);
        assert_eq!(b.size(), 16);
    }

    #[test]
    #[should_panic]
    fn mem_backend_oob_read_panics() {
        let b = MemBackend::zeroed(8);
        let mut buf = [0u8; 4];
        b.read_into(6, &mut buf);
    }

    #[test]
    fn synthetic_f64_elements_roundtrip() {
        let b = SyntheticBackend::new(100, ElemKind::F64, default_climate_value);
        let mut buf = vec![0u8; 800];
        b.read_into(0, &mut buf);
        for i in 0..100u64 {
            let got = f64::from_le_bytes(buf[(i as usize) * 8..][..8].try_into().unwrap());
            assert_eq!(got, default_climate_value(i));
        }
    }

    #[test]
    fn synthetic_f32_narrowing_is_consistent() {
        let b = SyntheticBackend::new(10, ElemKind::F32, default_climate_value);
        let mut buf = vec![0u8; 40];
        b.read_into(0, &mut buf);
        let got = f32::from_le_bytes(buf[4..8].try_into().unwrap());
        assert_eq!(got, default_climate_value(1) as f32);
    }

    #[test]
    fn synthetic_unaligned_reads_match_aligned() {
        let b = SyntheticBackend::new(64, ElemKind::F64, default_climate_value);
        let mut whole = vec![0u8; 512];
        b.read_into(0, &mut whole);
        // Read an awkward, element-straddling window and compare.
        let mut window = vec![0u8; 37];
        b.read_into(13, &mut window);
        assert_eq!(&window[..], &whole[13..50]);
    }

    #[test]
    #[should_panic]
    fn synthetic_write_panics() {
        let b = SyntheticBackend::new(4, ElemKind::F64, default_climate_value);
        b.write_at(0, &[0u8; 8]);
    }

    #[test]
    fn climate_values_are_bounded() {
        for i in (0..1_000_000).step_by(9973) {
            let v = default_climate_value(i);
            assert!((250.0..350.0).contains(&v), "value {v} out of range");
        }
    }

    #[test]
    fn overlay_patches_base_reads() {
        let base = SyntheticBackend::new(32, ElemKind::F64, |_| 1.0);
        let o = OverlayBackend::new(base);
        // Overwrite elements 2..4 with 9.0.
        let nine = 9.0f64.to_le_bytes().repeat(2);
        o.write_at(16, &nine);
        let mut buf = vec![0u8; 48];
        o.read_into(0, &mut buf);
        let vals: Vec<f64> = buf
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(vals, vec![1.0, 1.0, 9.0, 9.0, 1.0, 1.0]);
        assert_eq!(o.overlay_bytes(), 16);
    }

    #[test]
    fn overlay_merges_adjacent_and_overlapping_writes() {
        let o = OverlayBackend::new(MemBackend::zeroed(64));
        o.write_at(10, &[1; 5]);
        o.write_at(15, &[2; 5]); // adjacent: merges
        o.write_at(12, &[3; 6]); // overlapping: merges
        assert_eq!(o.overlay_bytes(), 10);
        let mut buf = [0u8; 12];
        o.read_into(9, &mut buf);
        assert_eq!(buf, [0, 1, 1, 3, 3, 3, 3, 3, 3, 2, 2, 0]);
    }

    #[test]
    fn overlay_write_read_many_disjoint_ranges() {
        let o = OverlayBackend::new(MemBackend::zeroed(1000));
        for k in 0..10u64 {
            o.write_at(k * 100, &[k as u8 + 1; 10]);
        }
        let mut buf = vec![0u8; 1000];
        o.read_into(0, &mut buf);
        for k in 0..10usize {
            assert_eq!(buf[k * 100], k as u8 + 1);
            assert_eq!(buf[k * 100 + 9], k as u8 + 1);
            assert_eq!(buf[k * 100 + 10], 0);
        }
    }

    #[test]
    #[should_panic]
    fn overlay_oob_write_panics() {
        let o = OverlayBackend::new(MemBackend::zeroed(8));
        o.write_at(4, &[0u8; 8]);
    }

    proptest! {
        #[test]
        fn prop_overlay_equals_mem_reference(
            writes in proptest::collection::vec((0u64..200, 1usize..40, any::<u8>()), 0..20),
        ) {
            // An overlay over zeroes must behave exactly like a plain
            // memory backend receiving the same writes.
            let overlay = OverlayBackend::new(MemBackend::zeroed(256));
            let reference = MemBackend::zeroed(256);
            for (off, len, val) in writes {
                let len = len.min((256 - off as usize).max(1)).min(256 - off as usize);
                if len == 0 { continue; }
                let data = vec![val; len];
                overlay.write_at(off, &data);
                reference.write_at(off, &data);
            }
            let mut a = vec![0u8; 256];
            let mut b = vec![0u8; 256];
            overlay.read_into(0, &mut a);
            reference.read_into(0, &mut b);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_fill_range_matches_per_element_oracle(
            offset in 0u64..790,
            len in 0usize..300,
            wide in any::<bool>(),
        ) {
            // Bulk generation must be bit-identical to encoding each
            // element independently from the `value()` oracle, for both
            // element widths and arbitrary (unaligned) byte windows.
            let kind = if wide { ElemKind::F64 } else { ElemKind::F32 };
            let elems = 100u64;
            let b = SyntheticBackend::new(elems, kind, default_climate_value);
            let total = (elems * kind.size()) as usize;
            prop_assume!(offset as usize + len <= total);
            let mut expected = vec![0u8; total];
            for (i, chunk) in expected.chunks_exact_mut(kind.size() as usize).enumerate() {
                let v = b.value(i as u64);
                match kind {
                    ElemKind::F32 => chunk.copy_from_slice(&(v as f32).to_le_bytes()),
                    ElemKind::F64 => chunk.copy_from_slice(&v.to_le_bytes()),
                }
            }
            let mut got = vec![0u8; len];
            b.fill_range(offset, &mut got);
            prop_assert_eq!(&got[..], &expected[offset as usize..offset as usize + len]);
        }

        #[test]
        fn prop_unaligned_window_equals_aligned(
            offset in 0u64..500,
            len in 0usize..300,
        ) {
            let b = SyntheticBackend::new(100, ElemKind::F64, default_climate_value);
            prop_assume!(offset as usize + len <= 800);
            let mut whole = vec![0u8; 800];
            b.read_into(0, &mut whole);
            let mut window = vec![0u8; len];
            b.read_into(offset, &mut window);
            prop_assert_eq!(&window[..], &whole[offset as usize..offset as usize + len]);
        }
    }
}
