//! A Lustre-like striped parallel file system simulator.
//!
//! Files are striped round-robin over OST (object storage target) objects,
//! exactly like the 40/156-OST Lustre volumes in the paper. Reads and
//! writes move real bytes (from in-memory or lazily-generated synthetic
//! backends) and are *timed*: each OST is a serially-reused server with a
//! positioning cost per discontiguous extent and a streaming bandwidth, so
//! aggregated contiguous access is fast and scattered small access is slow —
//! the asymmetry that two-phase collective I/O exists to exploit.
//!
//! TB-scale datasets (the paper's 429 TB climate variable) are representable
//! because [`backend::SyntheticBackend`] generates bytes
//! as a closed-form function of the element index; nothing is materialized.

#![warn(missing_docs)]

pub mod backend;
pub mod fault;
pub mod fs;
pub mod layout;
pub mod ost;

pub use backend::{Backend, MemBackend, OverlayBackend, SyntheticBackend, ValueFn};
pub use fault::RetryPlan;
pub use fs::{FileHandle, OstBalance, Pfs, PfsStats, PfsStatsSnapshot};
pub use layout::StripeLayout;
pub use ost::OstSnapshot;
