//! OST service scheduling.
//!
//! Each OST serves one extent at a time. Service is booked as *intervals
//! in virtual time with backfill*: a request arriving at virtual time `t`
//! takes the earliest free interval at or after `t` that fits its service
//! time. Backfill matters because rank threads run at different wall-clock
//! speeds — a thread that races ahead books slots deep in the virtual
//! future, and without backfill it would starve threads whose virtual
//! clocks lag behind their wall-clock arrival, an artifact no real disk
//! exhibits. With backfill, OST capacity is conserved and contention
//! emerges from genuinely overlapping virtual-time demand.
//!
//! Booked intervals are coalesced, so memory stays proportional to the
//! number of idle gaps, not the number of requests.
//!
//! Persistent degradation from a [`cc_model::FaultPlan`] is applied with
//! [`OstPool::apply_faults`]: a *slow* OST multiplies every service time,
//! and a *stalled* OST books its whole stall window up front so the first
//! requests queue behind it — a controller failover, as seen by clients.

use cc_model::{BusyLedger, DiskModel, FaultPlan, SimTime};
use std::sync::Mutex;

#[derive(Debug, Default)]
struct OstState {
    /// Busy intervals, delegated to the shared interval algebra in
    /// `cc_model::booking` (hoisted from this module so the service layer
    /// can arbitrate other resources with identical semantics).
    ledger: BusyLedger,
    requests: u64,
    bytes: u64,
    /// Total service seconds booked (independent of coalescing).
    busy_secs: f64,
    /// Seconds requests spent queued behind other bookings (booked start
    /// minus requested start, summed over all requests).
    waited_secs: f64,
    /// Requests that could not start at their requested time.
    delayed_requests: u64,
}

impl OstState {
    /// Books one extent's service and updates the load counters; returns
    /// the completion time.
    fn book(&mut self, now: SimTime, service: SimTime, bytes: u64) -> SimTime {
        let done = self.ledger.book(now, service);
        self.requests += 1;
        self.bytes += bytes;
        self.busy_secs += service.secs();
        let waited = (done - service).saturating_since(now);
        if waited > SimTime::ZERO {
            self.waited_secs += waited.secs();
            self.delayed_requests += 1;
        }
        done
    }
}

/// A point-in-time view of one OST's load, for attributing cross-job
/// contention: cumulative totals plus the queue depth (backlog of already-
/// booked service) at the probe time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OstSnapshot {
    /// Extents served so far.
    pub requests: u64,
    /// Bytes served so far.
    pub bytes: u64,
    /// Total service seconds booked so far.
    pub busy_secs: f64,
    /// Seconds requests spent queued behind other bookings so far.
    pub waited_secs: f64,
    /// Requests that could not start at their requested time.
    pub delayed_requests: u64,
    /// Service seconds booked at or after the probe time — the OST's
    /// queue depth in service-seconds.
    pub backlog_secs: f64,
}

/// The OST pool of one file system.
pub struct OstPool {
    osts: Vec<Mutex<OstState>>,
    disk: DiskModel,
    /// Per-OST service-time multiplier (1.0 = healthy), from the fault plan.
    slowdown: Vec<f64>,
}

impl OstPool {
    /// A pool of `count` idle OSTs sharing one disk model.
    pub fn new(count: usize, disk: DiskModel) -> Self {
        assert!(count > 0, "need at least one OST");
        Self {
            osts: (0..count).map(|_| Mutex::new(OstState::default())).collect(),
            disk,
            slowdown: vec![1.0; count],
        }
    }

    /// Number of OSTs.
    pub fn count(&self) -> usize {
        self.osts.len()
    }

    /// Applies the OST-degradation part of a fault plan: slow OSTs serve
    /// every extent at a multiple of the healthy service time, stalled
    /// OSTs are blocked from time zero until their stall deadline.
    /// OST indices outside the pool are ignored (the plan may be written
    /// for a larger machine).
    pub fn apply_faults(&mut self, plan: &FaultPlan) {
        for (ost, factor) in self.slowdown.iter_mut().enumerate() {
            *factor = plan.ost_slowdown(ost);
        }
        for (ost, state) in self.osts.iter_mut().enumerate() {
            // The stall window is not billed as busy seconds — the OST is
            // unavailable, not doing work.
            state
                .get_mut()
                .unwrap()
                .ledger
                .block_until(plan.ost_stall(ost));
        }
    }

    /// Healthy (fault-free) service time for one extent on `ost` —
    /// what an idle, undegraded OST would take.
    pub fn ideal_service_time(&self, bytes: u64) -> SimTime {
        self.disk.service_time(bytes as usize)
    }

    /// Serves one contiguous extent of `bytes` on `ost`, requested at
    /// virtual time `now`. Returns the completion time.
    pub fn serve(&self, ost: usize, now: SimTime, bytes: u64) -> SimTime {
        let mut state = self.osts[ost].lock().unwrap();
        let service = self.disk.service_time(bytes as usize).scale(self.slowdown[ost]);
        state.book(now, service, bytes)
    }

    /// Serves a batch of merged extent runs on `ost` under a single lock
    /// acquisition, chaining each run after the previous one's completion
    /// exactly as sequential [`serve`](Self::serve) calls would. Returns
    /// the completion time of the last run (`now` if the batch is empty).
    pub fn book_many(&self, ost: usize, now: SimTime, byte_runs: &[u64]) -> SimTime {
        if byte_runs.is_empty() {
            return now;
        }
        let mut state = self.osts[ost].lock().unwrap();
        let mut done = now;
        for &bytes in byte_runs {
            let service = self.disk.service_time(bytes as usize).scale(self.slowdown[ost]);
            done = state.book(done, service, bytes);
        }
        done
    }

    /// Total service seconds booked per OST — the utilization profile of
    /// the pool, for diagnosing striping imbalance.
    pub fn per_ost_busy_secs(&self) -> Vec<f64> {
        self.osts.iter().map(|o| o.lock().unwrap().busy_secs).collect()
    }

    /// Load imbalance: busiest OST's service time over the mean (1.0 =
    /// perfectly balanced; only meaningful once traffic has flowed).
    pub fn imbalance(&self) -> f64 {
        let busy = self.per_ost_busy_secs();
        let total: f64 = busy.iter().sum();
        if total <= 0.0 {
            return 1.0;
        }
        let mean = total / busy.len() as f64;
        busy.iter().cloned().fold(0.0, f64::max) / mean
    }

    /// Total (requests, bytes) served per OST so far.
    pub fn per_ost_totals(&self) -> Vec<(u64, u64)> {
        self.osts
            .iter()
            .map(|o| {
                let s = o.lock().unwrap();
                (s.requests, s.bytes)
            })
            .collect()
    }

    /// Per-OST load snapshots at virtual time `now`: cumulative totals plus
    /// the backlog of booked-but-unfinished service at the probe time. The
    /// multi-job scheduler and bench use deltas of these to attribute
    /// cross-job contention to individual OSTs.
    pub fn snapshot_at(&self, now: SimTime) -> Vec<OstSnapshot> {
        self.osts
            .iter()
            .map(|o| {
                let s = o.lock().unwrap();
                OstSnapshot {
                    requests: s.requests,
                    bytes: s.bytes,
                    busy_secs: s.busy_secs,
                    waited_secs: s.waited_secs,
                    delayed_requests: s.delayed_requests,
                    backlog_secs: s.ledger.backlog_secs(now),
                }
            })
            .collect()
    }

    /// The disk model backing the pool.
    pub fn disk(&self) -> &DiskModel {
        &self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pool() -> OstPool {
        OstPool::new(
            2,
            DiskModel {
                seek: 1.0,
                ost_bandwidth: 100.0,
            },
        )
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn sequential_requests_queue() {
        let p = pool();
        // Two requests at t=0 on the same OST serialize.
        let d1 = p.serve(0, SimTime::ZERO, 100); // 1 seek + 1s stream = 2
        let d2 = p.serve(0, SimTime::ZERO, 100); // queued: 2 + 2 = 4
        assert_eq!(d1.secs(), 2.0);
        assert_eq!(d2.secs(), 4.0);
    }

    #[test]
    fn different_osts_run_in_parallel() {
        let p = pool();
        let d1 = p.serve(0, SimTime::ZERO, 100);
        let d2 = p.serve(1, SimTime::ZERO, 100);
        assert_eq!(d1.secs(), 2.0);
        assert_eq!(d2.secs(), 2.0);
    }

    #[test]
    fn idle_ost_starts_at_request_time() {
        let p = pool();
        let d = p.serve(0, SimTime::from_secs(10.0), 100);
        assert_eq!(d.secs(), 12.0);
    }

    #[test]
    fn backfill_uses_earlier_gaps() {
        let p = pool();
        // A far-future booking must not starve an earlier request.
        let far = p.serve(0, t(100.0), 100); // books [100, 102)
        assert_eq!(far.secs(), 102.0);
        let early = p.serve(0, SimTime::ZERO, 100); // backfills [0, 2)
        assert_eq!(early.secs(), 2.0);
        // A request that does not fit in the gap [2, 100) only if too long:
        // service of 100 bytes is 2s, fits at [2, 4).
        let mid = p.serve(0, t(1.0), 100);
        assert_eq!(mid.secs(), 4.0);
    }

    #[test]
    fn gap_too_small_is_skipped() {
        let p = pool();
        let _ = p.serve(0, t(3.0), 100); // [3, 5)
        let _ = p.serve(0, SimTime::ZERO, 100); // [0, 2) backfill
        // Next request at t=1.5: gap [2, 3) is 1s, too small for 2s:
        // lands after [3, 5).
        let d = p.serve(0, t(1.5), 100);
        assert_eq!(d.secs(), 7.0);
    }

    #[test]
    fn intervals_coalesce() {
        let p = pool();
        for _ in 0..100 {
            let _ = p.serve(0, SimTime::ZERO, 100);
        }
        // All requests form one solid busy block [0, 200).
        let d = p.serve(0, SimTime::ZERO, 100);
        assert_eq!(d.secs(), 202.0);
        let state = p.osts[0].lock().unwrap();
        assert_eq!(state.ledger.intervals().len(), 1);
    }

    #[test]
    fn utilization_tracks_service_time() {
        let p = pool();
        p.serve(0, SimTime::ZERO, 100); // 2s
        p.serve(0, SimTime::ZERO, 100); // 2s
        p.serve(1, SimTime::ZERO, 100); // 2s
        let busy = p.per_ost_busy_secs();
        assert!((busy[0] - 4.0).abs() < 1e-12);
        assert!((busy[1] - 2.0).abs() < 1e-12);
        // Imbalance: max 4 over mean 3.
        assert!((p.imbalance() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn idle_pool_reports_balanced() {
        assert_eq!(pool().imbalance(), 1.0);
    }

    #[test]
    fn slow_ost_multiplies_service_time() {
        let mut p = pool();
        p.apply_faults(&FaultPlan::default().slow_ost(0, 10.0));
        // OST 0: (1 seek + 1s stream) × 10 = 20s. OST 1 healthy: 2s.
        assert_eq!(p.serve(0, SimTime::ZERO, 100).secs(), 20.0);
        assert_eq!(p.serve(1, SimTime::ZERO, 100).secs(), 2.0);
    }

    #[test]
    fn stalled_ost_queues_early_requests() {
        let mut p = pool();
        p.apply_faults(&FaultPlan::default().stall_ost(0, t(50.0)));
        // First request waits out the stall, then serves normally.
        assert_eq!(p.serve(0, SimTime::ZERO, 100).secs(), 52.0);
        // A request arriving after the stall is unaffected.
        assert_eq!(p.serve(0, t(60.0), 100).secs(), 62.0);
        // The stall window is not billed as busy seconds.
        assert!((p.per_ost_busy_secs()[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fault_plan_for_larger_machine_is_clipped() {
        let mut p = pool();
        // OST 7 does not exist in this 2-OST pool; must not panic.
        p.apply_faults(&FaultPlan::default().slow_ost(7, 4.0));
        assert_eq!(p.serve(0, SimTime::ZERO, 100).secs(), 2.0);
    }

    #[test]
    fn snapshot_reports_waits_and_backlog() {
        let p = pool();
        let d1 = p.serve(0, SimTime::ZERO, 100); // [0, 2), no wait
        let d2 = p.serve(0, SimTime::ZERO, 100); // [2, 4), waited 2 s
        assert_eq!(d1, t(2.0));
        assert_eq!(d2, t(4.0));
        let snaps = p.snapshot_at(t(1.0));
        assert_eq!(snaps.len(), 2);
        let s = &snaps[0];
        assert_eq!(s.requests, 2);
        assert_eq!(s.bytes, 200);
        assert!((s.busy_secs - 4.0).abs() < 1e-12);
        assert!((s.waited_secs - 2.0).abs() < 1e-12);
        assert_eq!(s.delayed_requests, 1);
        // At t=1, three of the four booked seconds are still ahead.
        assert!((s.backlog_secs - 3.0).abs() < 1e-12);
        // The idle OST is all zeros.
        assert_eq!(snaps[1], OstSnapshot::default());
        // Past the horizon the backlog drains to zero; totals remain.
        let late = p.snapshot_at(t(10.0));
        assert!((late[0].backlog_secs).abs() < 1e-12);
        assert_eq!(late[0].requests, 2);
    }

    #[test]
    fn snapshot_waits_match_book_many_chaining() {
        // A chained batch waits only where pre-existing bookings force it:
        // identical to the sequential-serve oracle.
        let p = pool();
        let q = pool();
        let _ = p.serve(0, SimTime::ZERO, 100);
        let _ = q.serve(0, SimTime::ZERO, 100);
        let _ = p.book_many(0, SimTime::ZERO, &[100, 100]);
        let mut chained = SimTime::ZERO;
        for _ in 0..2 {
            chained = q.serve(0, chained, 100);
        }
        let ps = p.snapshot_at(SimTime::ZERO);
        let qs = q.snapshot_at(SimTime::ZERO);
        assert!((ps[0].waited_secs - qs[0].waited_secs).abs() < 1e-12);
        assert_eq!(ps[0].delayed_requests, qs[0].delayed_requests);
    }

    #[test]
    fn totals_accumulate() {
        let p = pool();
        p.serve(0, SimTime::ZERO, 10);
        p.serve(0, SimTime::ZERO, 20);
        p.serve(1, SimTime::ZERO, 5);
        assert_eq!(p.per_ost_totals(), vec![(2, 30), (1, 5)]);
    }

    #[test]
    fn book_many_matches_sequential_serves() {
        let p = pool();
        let q = pool();
        let _ = p.serve(0, t(3.0), 100); // pre-existing booking to backfill around
        let _ = q.serve(0, t(3.0), 100);
        let runs = [100u64, 50, 200];
        let batched = p.book_many(0, SimTime::ZERO, &runs);
        let mut chained = SimTime::ZERO;
        for &bytes in &runs {
            chained = q.serve(0, chained, bytes);
        }
        assert_eq!(batched, chained);
        assert_eq!(p.per_ost_totals(), q.per_ost_totals());
    }

    #[test]
    fn book_many_empty_batch_is_free() {
        let p = pool();
        assert_eq!(p.book_many(0, t(5.0), &[]), t(5.0));
        assert_eq!(p.per_ost_totals()[0], (0, 0));
    }

    #[test]
    fn deep_future_book_skips_history() {
        // Many early bookings, then one far in the virtual future: the
        // partition_point start must land it correctly after history.
        let p = pool();
        for i in 0..50 {
            let _ = p.serve(0, t(i as f64 * 10.0), 100); // [10i, 10i+2)
        }
        let d = p.serve(0, t(1000.0), 100);
        assert_eq!(d.secs(), 1002.0);
        // And a backfill into an early gap still works.
        let d = p.serve(0, t(2.0), 100);
        assert_eq!(d.secs(), 4.0);
    }

    proptest! {
        #[test]
        fn prop_book_many_equals_sequential_book_oracle(
            pre in proptest::collection::vec((0u64..200, 1u64..400), 0..10),
            runs in proptest::collection::vec(1u64..500, 0..20),
            now in 0u64..300,
        ) {
            // book_many on a batch of merged runs lands exactly where a
            // chain of sequential serve calls would, with identical totals.
            let p = pool();
            let q = pool();
            for (at, bytes) in &pre {
                let at = SimTime::from_secs(*at as f64 / 10.0);
                let _ = p.serve(0, at, *bytes);
                let _ = q.serve(0, at, *bytes);
            }
            let now = SimTime::from_secs(now as f64 / 10.0);
            let batched = p.book_many(0, now, &runs);
            let mut chained = now;
            for &bytes in &runs {
                chained = q.serve(0, chained, bytes);
            }
            prop_assert_eq!(batched, chained);
            prop_assert_eq!(p.per_ost_totals(), q.per_ost_totals());
            prop_assert!((p.per_ost_busy_secs()[0] - q.per_ost_busy_secs()[0]).abs() < 1e-9);
        }

        #[test]
        fn prop_completion_respects_request_and_capacity(
            requests in proptest::collection::vec((0u64..1000, 1u64..500), 1..40),
        ) {
            // Each completion is at least now + service; the sum of service
            // times is conserved regardless of booking order.
            let p = pool();
            let mut total_service = 0.0;
            for (now, bytes) in &requests {
                let now = SimTime::from_secs(*now as f64 / 100.0);
                let done = p.serve(0, now, *bytes);
                let service = p.disk().service_time(*bytes as usize);
                total_service += service.secs();
                prop_assert!(done >= now + service);
            }
            prop_assert!((p.per_ost_busy_secs()[0] - total_service).abs() < 1e-9);
            // The booked intervals are disjoint and cover exactly the
            // service time.
            let state = p.osts[0].lock().unwrap();
            let mut covered = 0.0;
            let mut prev_end = SimTime::ZERO;
            for &(s, e) in state.ledger.intervals() {
                prop_assert!(s >= prev_end, "intervals overlap");
                covered += (e - s).secs();
                prev_end = e;
            }
            prop_assert!((covered - total_service).abs() < 1e-9);
        }

        #[test]
        fn prop_backfill_never_worse_than_fifo(
            requests in proptest::collection::vec((0u64..100, 1u64..300), 1..25),
        ) {
            // Completion under backfill is never later than under strict
            // arrival-order FIFO queueing.
            let p = pool();
            let mut fifo_free = 0.0f64;
            for (now, bytes) in &requests {
                let now_s = *now as f64 / 10.0;
                let service = p.disk().service_time(*bytes as usize).secs();
                let done = p.serve(0, SimTime::from_secs(now_s), *bytes);
                fifo_free = fifo_free.max(now_s) + service;
                prop_assert!(done.secs() <= fifo_free + 1e-9,
                    "backfill {done} later than FIFO {fifo_free}");
            }
        }
    }
}
