//! OST service scheduling.
//!
//! Each OST serves one extent at a time. Service is booked as *intervals
//! in virtual time with backfill*: a request arriving at virtual time `t`
//! takes the earliest free interval at or after `t` that fits its service
//! time. Backfill matters because rank threads run at different wall-clock
//! speeds — a thread that races ahead books slots deep in the virtual
//! future, and without backfill it would starve threads whose virtual
//! clocks lag behind their wall-clock arrival, an artifact no real disk
//! exhibits. With backfill, OST capacity is conserved and contention
//! emerges from genuinely overlapping virtual-time demand.
//!
//! Booked intervals are coalesced, so memory stays proportional to the
//! number of idle gaps, not the number of requests.
//!
//! Persistent degradation from a [`cc_model::FaultPlan`] is applied with
//! [`OstPool::apply_faults`]: a *slow* OST multiplies every service time,
//! and a *stalled* OST books its whole stall window up front so the first
//! requests queue behind it — a controller failover, as seen by clients.

use cc_model::{DiskModel, FaultPlan, SimTime};
use std::sync::Mutex;

#[derive(Debug, Default)]
struct OstState {
    /// Disjoint, sorted, coalesced busy intervals `[start, end)`.
    busy: Vec<(SimTime, SimTime)>,
    requests: u64,
    bytes: u64,
    /// Total service seconds booked (independent of coalescing).
    busy_secs: f64,
}

impl OstState {
    /// Books the earliest interval of length `dur` starting at or after
    /// `now`; returns its end.
    fn book(&mut self, now: SimTime, dur: SimTime) -> SimTime {
        let mut start = now;
        // Intervals ending at or before `now` can never conflict nor offer
        // a usable gap, so the scan starts at the first interval ending
        // after `now` — deep virtual-future books skip the whole history.
        let first = self.busy.partition_point(|&(_, e)| e <= now);
        let mut pos = self.busy.len();
        for (i, &(b_start, b_end)) in self.busy.iter().enumerate().skip(first) {
            if b_end <= start {
                continue; // interval entirely before our earliest start
            }
            if start + dur <= b_start {
                pos = i; // fits in the gap before this interval
                break;
            }
            start = start.max(b_end);
        }
        let end = start + dur;
        // The gap search guarantees the new interval overlaps nothing, and
        // `pos` is its sorted position — merge in place with whichever
        // neighbours it exactly abuts (`start` came from a neighbour's end,
        // so abutment is exact equality).
        let abuts_prev = pos > 0 && self.busy[pos - 1].1 == start;
        let abuts_next = pos < self.busy.len() && end == self.busy[pos].0;
        match (abuts_prev, abuts_next) {
            (true, true) => {
                self.busy[pos - 1].1 = self.busy[pos].1;
                self.busy.remove(pos);
            }
            (true, false) => self.busy[pos - 1].1 = end,
            (false, true) => self.busy[pos].0 = start,
            (false, false) => self.busy.insert(pos, (start, end)),
        }
        end
    }

    /// Re-sorts and merges the interval list. [`book`](Self::book) keeps
    /// the list coalesced incrementally; this is only needed after an
    /// out-of-order push like [`block_until`](Self::block_until).
    fn coalesce(&mut self) {
        self.busy.sort_by_key(|&(s, _)| s);
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(self.busy.len());
        for &(s, e) in &self.busy {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.busy = merged;
    }

    /// Marks the OST busy from time zero until `until`, pushing all
    /// service behind the stall. Not counted as busy seconds — the OST is
    /// unavailable, not doing work.
    fn block_until(&mut self, until: SimTime) {
        if until > SimTime::ZERO {
            self.busy.push((SimTime::ZERO, until));
            self.coalesce();
        }
    }
}

/// The OST pool of one file system.
pub struct OstPool {
    osts: Vec<Mutex<OstState>>,
    disk: DiskModel,
    /// Per-OST service-time multiplier (1.0 = healthy), from the fault plan.
    slowdown: Vec<f64>,
}

impl OstPool {
    /// A pool of `count` idle OSTs sharing one disk model.
    pub fn new(count: usize, disk: DiskModel) -> Self {
        assert!(count > 0, "need at least one OST");
        Self {
            osts: (0..count).map(|_| Mutex::new(OstState::default())).collect(),
            disk,
            slowdown: vec![1.0; count],
        }
    }

    /// Number of OSTs.
    pub fn count(&self) -> usize {
        self.osts.len()
    }

    /// Applies the OST-degradation part of a fault plan: slow OSTs serve
    /// every extent at a multiple of the healthy service time, stalled
    /// OSTs are blocked from time zero until their stall deadline.
    /// OST indices outside the pool are ignored (the plan may be written
    /// for a larger machine).
    pub fn apply_faults(&mut self, plan: &FaultPlan) {
        for (ost, factor) in self.slowdown.iter_mut().enumerate() {
            *factor = plan.ost_slowdown(ost);
        }
        for (ost, state) in self.osts.iter_mut().enumerate() {
            state.get_mut().unwrap().block_until(plan.ost_stall(ost));
        }
    }

    /// Healthy (fault-free) service time for one extent on `ost` —
    /// what an idle, undegraded OST would take.
    pub fn ideal_service_time(&self, bytes: u64) -> SimTime {
        self.disk.service_time(bytes as usize)
    }

    /// Serves one contiguous extent of `bytes` on `ost`, requested at
    /// virtual time `now`. Returns the completion time.
    pub fn serve(&self, ost: usize, now: SimTime, bytes: u64) -> SimTime {
        let mut state = self.osts[ost].lock().unwrap();
        let service = self.disk.service_time(bytes as usize).scale(self.slowdown[ost]);
        let done = state.book(now, service);
        state.requests += 1;
        state.bytes += bytes;
        state.busy_secs += service.secs();
        done
    }

    /// Serves a batch of merged extent runs on `ost` under a single lock
    /// acquisition, chaining each run after the previous one's completion
    /// exactly as sequential [`serve`](Self::serve) calls would. Returns
    /// the completion time of the last run (`now` if the batch is empty).
    pub fn book_many(&self, ost: usize, now: SimTime, byte_runs: &[u64]) -> SimTime {
        if byte_runs.is_empty() {
            return now;
        }
        let mut state = self.osts[ost].lock().unwrap();
        let mut done = now;
        for &bytes in byte_runs {
            let service = self.disk.service_time(bytes as usize).scale(self.slowdown[ost]);
            done = state.book(done, service);
            state.requests += 1;
            state.bytes += bytes;
            state.busy_secs += service.secs();
        }
        done
    }

    /// Total service seconds booked per OST — the utilization profile of
    /// the pool, for diagnosing striping imbalance.
    pub fn per_ost_busy_secs(&self) -> Vec<f64> {
        self.osts.iter().map(|o| o.lock().unwrap().busy_secs).collect()
    }

    /// Load imbalance: busiest OST's service time over the mean (1.0 =
    /// perfectly balanced; only meaningful once traffic has flowed).
    pub fn imbalance(&self) -> f64 {
        let busy = self.per_ost_busy_secs();
        let total: f64 = busy.iter().sum();
        if total <= 0.0 {
            return 1.0;
        }
        let mean = total / busy.len() as f64;
        busy.iter().cloned().fold(0.0, f64::max) / mean
    }

    /// Total (requests, bytes) served per OST so far.
    pub fn per_ost_totals(&self) -> Vec<(u64, u64)> {
        self.osts
            .iter()
            .map(|o| {
                let s = o.lock().unwrap();
                (s.requests, s.bytes)
            })
            .collect()
    }

    /// The disk model backing the pool.
    pub fn disk(&self) -> &DiskModel {
        &self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pool() -> OstPool {
        OstPool::new(
            2,
            DiskModel {
                seek: 1.0,
                ost_bandwidth: 100.0,
            },
        )
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn sequential_requests_queue() {
        let p = pool();
        // Two requests at t=0 on the same OST serialize.
        let d1 = p.serve(0, SimTime::ZERO, 100); // 1 seek + 1s stream = 2
        let d2 = p.serve(0, SimTime::ZERO, 100); // queued: 2 + 2 = 4
        assert_eq!(d1.secs(), 2.0);
        assert_eq!(d2.secs(), 4.0);
    }

    #[test]
    fn different_osts_run_in_parallel() {
        let p = pool();
        let d1 = p.serve(0, SimTime::ZERO, 100);
        let d2 = p.serve(1, SimTime::ZERO, 100);
        assert_eq!(d1.secs(), 2.0);
        assert_eq!(d2.secs(), 2.0);
    }

    #[test]
    fn idle_ost_starts_at_request_time() {
        let p = pool();
        let d = p.serve(0, SimTime::from_secs(10.0), 100);
        assert_eq!(d.secs(), 12.0);
    }

    #[test]
    fn backfill_uses_earlier_gaps() {
        let p = pool();
        // A far-future booking must not starve an earlier request.
        let far = p.serve(0, t(100.0), 100); // books [100, 102)
        assert_eq!(far.secs(), 102.0);
        let early = p.serve(0, SimTime::ZERO, 100); // backfills [0, 2)
        assert_eq!(early.secs(), 2.0);
        // A request that does not fit in the gap [2, 100) only if too long:
        // service of 100 bytes is 2s, fits at [2, 4).
        let mid = p.serve(0, t(1.0), 100);
        assert_eq!(mid.secs(), 4.0);
    }

    #[test]
    fn gap_too_small_is_skipped() {
        let p = pool();
        let _ = p.serve(0, t(3.0), 100); // [3, 5)
        let _ = p.serve(0, SimTime::ZERO, 100); // [0, 2) backfill
        // Next request at t=1.5: gap [2, 3) is 1s, too small for 2s:
        // lands after [3, 5).
        let d = p.serve(0, t(1.5), 100);
        assert_eq!(d.secs(), 7.0);
    }

    #[test]
    fn intervals_coalesce() {
        let p = pool();
        for _ in 0..100 {
            let _ = p.serve(0, SimTime::ZERO, 100);
        }
        // All requests form one solid busy block [0, 200).
        let d = p.serve(0, SimTime::ZERO, 100);
        assert_eq!(d.secs(), 202.0);
        let state = p.osts[0].lock().unwrap();
        assert_eq!(state.busy.len(), 1);
    }

    #[test]
    fn utilization_tracks_service_time() {
        let p = pool();
        p.serve(0, SimTime::ZERO, 100); // 2s
        p.serve(0, SimTime::ZERO, 100); // 2s
        p.serve(1, SimTime::ZERO, 100); // 2s
        let busy = p.per_ost_busy_secs();
        assert!((busy[0] - 4.0).abs() < 1e-12);
        assert!((busy[1] - 2.0).abs() < 1e-12);
        // Imbalance: max 4 over mean 3.
        assert!((p.imbalance() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn idle_pool_reports_balanced() {
        assert_eq!(pool().imbalance(), 1.0);
    }

    #[test]
    fn slow_ost_multiplies_service_time() {
        let mut p = pool();
        p.apply_faults(&FaultPlan::default().slow_ost(0, 10.0));
        // OST 0: (1 seek + 1s stream) × 10 = 20s. OST 1 healthy: 2s.
        assert_eq!(p.serve(0, SimTime::ZERO, 100).secs(), 20.0);
        assert_eq!(p.serve(1, SimTime::ZERO, 100).secs(), 2.0);
    }

    #[test]
    fn stalled_ost_queues_early_requests() {
        let mut p = pool();
        p.apply_faults(&FaultPlan::default().stall_ost(0, t(50.0)));
        // First request waits out the stall, then serves normally.
        assert_eq!(p.serve(0, SimTime::ZERO, 100).secs(), 52.0);
        // A request arriving after the stall is unaffected.
        assert_eq!(p.serve(0, t(60.0), 100).secs(), 62.0);
        // The stall window is not billed as busy seconds.
        assert!((p.per_ost_busy_secs()[0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fault_plan_for_larger_machine_is_clipped() {
        let mut p = pool();
        // OST 7 does not exist in this 2-OST pool; must not panic.
        p.apply_faults(&FaultPlan::default().slow_ost(7, 4.0));
        assert_eq!(p.serve(0, SimTime::ZERO, 100).secs(), 2.0);
    }

    #[test]
    fn totals_accumulate() {
        let p = pool();
        p.serve(0, SimTime::ZERO, 10);
        p.serve(0, SimTime::ZERO, 20);
        p.serve(1, SimTime::ZERO, 5);
        assert_eq!(p.per_ost_totals(), vec![(2, 30), (1, 5)]);
    }

    #[test]
    fn book_many_matches_sequential_serves() {
        let p = pool();
        let q = pool();
        let _ = p.serve(0, t(3.0), 100); // pre-existing booking to backfill around
        let _ = q.serve(0, t(3.0), 100);
        let runs = [100u64, 50, 200];
        let batched = p.book_many(0, SimTime::ZERO, &runs);
        let mut chained = SimTime::ZERO;
        for &bytes in &runs {
            chained = q.serve(0, chained, bytes);
        }
        assert_eq!(batched, chained);
        assert_eq!(p.per_ost_totals(), q.per_ost_totals());
    }

    #[test]
    fn book_many_empty_batch_is_free() {
        let p = pool();
        assert_eq!(p.book_many(0, t(5.0), &[]), t(5.0));
        assert_eq!(p.per_ost_totals()[0], (0, 0));
    }

    #[test]
    fn deep_future_book_skips_history() {
        // Many early bookings, then one far in the virtual future: the
        // partition_point start must land it correctly after history.
        let p = pool();
        for i in 0..50 {
            let _ = p.serve(0, t(i as f64 * 10.0), 100); // [10i, 10i+2)
        }
        let d = p.serve(0, t(1000.0), 100);
        assert_eq!(d.secs(), 1002.0);
        // And a backfill into an early gap still works.
        let d = p.serve(0, t(2.0), 100);
        assert_eq!(d.secs(), 4.0);
    }

    proptest! {
        #[test]
        fn prop_book_many_equals_sequential_book_oracle(
            pre in proptest::collection::vec((0u64..200, 1u64..400), 0..10),
            runs in proptest::collection::vec(1u64..500, 0..20),
            now in 0u64..300,
        ) {
            // book_many on a batch of merged runs lands exactly where a
            // chain of sequential serve calls would, with identical totals.
            let p = pool();
            let q = pool();
            for (at, bytes) in &pre {
                let at = SimTime::from_secs(*at as f64 / 10.0);
                let _ = p.serve(0, at, *bytes);
                let _ = q.serve(0, at, *bytes);
            }
            let now = SimTime::from_secs(now as f64 / 10.0);
            let batched = p.book_many(0, now, &runs);
            let mut chained = now;
            for &bytes in &runs {
                chained = q.serve(0, chained, bytes);
            }
            prop_assert_eq!(batched, chained);
            prop_assert_eq!(p.per_ost_totals(), q.per_ost_totals());
            prop_assert!((p.per_ost_busy_secs()[0] - q.per_ost_busy_secs()[0]).abs() < 1e-9);
        }

        #[test]
        fn prop_completion_respects_request_and_capacity(
            requests in proptest::collection::vec((0u64..1000, 1u64..500), 1..40),
        ) {
            // Each completion is at least now + service; the sum of service
            // times is conserved regardless of booking order.
            let p = pool();
            let mut total_service = 0.0;
            for (now, bytes) in &requests {
                let now = SimTime::from_secs(*now as f64 / 100.0);
                let done = p.serve(0, now, *bytes);
                let service = p.disk().service_time(*bytes as usize);
                total_service += service.secs();
                prop_assert!(done >= now + service);
            }
            prop_assert!((p.per_ost_busy_secs()[0] - total_service).abs() < 1e-9);
            // The booked intervals are disjoint and cover exactly the
            // service time.
            let state = p.osts[0].lock().unwrap();
            let mut covered = 0.0;
            let mut prev_end = SimTime::ZERO;
            for &(s, e) in &state.busy {
                prop_assert!(s >= prev_end, "intervals overlap");
                covered += (e - s).secs();
                prev_end = e;
            }
            prop_assert!((covered - total_service).abs() < 1e-9);
        }

        #[test]
        fn prop_backfill_never_worse_than_fifo(
            requests in proptest::collection::vec((0u64..100, 1u64..300), 1..25),
        ) {
            // Completion under backfill is never later than under strict
            // arrival-order FIFO queueing.
            let p = pool();
            let mut fifo_free = 0.0f64;
            for (now, bytes) in &requests {
                let now_s = *now as f64 / 10.0;
                let service = p.disk().service_time(*bytes as usize).secs();
                let done = p.serve(0, SimTime::from_secs(now_s), *bytes);
                fifo_free = fifo_free.max(now_s) + service;
                prop_assert!(done.secs() <= fifo_free + 1e-9,
                    "backfill {done} later than FIFO {fifo_free}");
            }
        }
    }
}
