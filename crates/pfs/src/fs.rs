//! The file system facade: namespace, handles, timed reads and writes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cc_model::{DiskModel, SimTime};
use std::sync::RwLock;

use crate::backend::Backend;
use crate::fault::RetryPlan;
use crate::layout::StripeLayout;
use crate::ost::{OstPool, OstSnapshot};

/// Global counters for one file system instance.
#[derive(Debug, Default)]
pub struct PfsStats {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    extents_served: AtomicU64,
}

/// A point-in-time copy of [`PfsStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PfsStatsSnapshot {
    /// Read calls.
    pub reads: u64,
    /// Write calls.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Discontiguous extents served (each costs one positioning op).
    pub extents_served: u64,
}

impl PfsStats {
    fn snapshot(&self) -> PfsStatsSnapshot {
        PfsStatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            extents_served: self.extents_served.load(Ordering::Relaxed),
        }
    }
}

/// An open file: striping plus contents.
pub struct FileHandle {
    name: String,
    layout: StripeLayout,
    backend: Box<dyn Backend>,
}

impl FileHandle {
    /// The file's name in the namespace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The file's striping.
    pub fn layout(&self) -> &StripeLayout {
        &self.layout
    }

    /// File size in bytes.
    pub fn size(&self) -> u64 {
        self.backend.size()
    }
}

/// A point-in-time OST load snapshot, for surfacing striping imbalance
/// in iterative outcomes and benchmark artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OstBalance {
    /// Number of OSTs in the pool.
    pub osts: usize,
    /// Busiest OST's booked service seconds over the mean (1.0 = balanced).
    pub imbalance: f64,
    /// Service seconds booked on the busiest OST.
    pub busiest_secs: f64,
    /// Mean service seconds booked per OST.
    pub mean_secs: f64,
}

/// A simulated striped parallel file system.
pub struct Pfs {
    pool: OstPool,
    files: RwLock<HashMap<String, Arc<FileHandle>>>,
    fault: Option<RetryPlan>,
    stats: PfsStats,
}

impl Pfs {
    /// A file system with `total_osts` OSTs and the given disk model.
    pub fn new(total_osts: usize, disk: DiskModel) -> Self {
        Self {
            pool: OstPool::new(total_osts, disk),
            files: RwLock::new(HashMap::new()),
            fault: None,
            stats: PfsStats::default(),
        }
    }

    /// Adds a transient-fault retry plan (see [`RetryPlan`]).
    pub fn with_retries(mut self, plan: RetryPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The retry plan, if any.
    pub fn retry_plan(&self) -> Option<&RetryPlan> {
        self.fault.as_ref()
    }

    /// Applies the OST-degradation part of a [`cc_model::FaultPlan`]:
    /// slow OSTs serve every extent at a multiple of the healthy service
    /// time, stalled OSTs queue everything behind their stall window.
    /// Network and straggler faults are applied by `cc-mpi` from
    /// `ClusterModel::fault`, not here.
    pub fn with_fault_plan(mut self, plan: &cc_model::FaultPlan) -> Self {
        self.pool.apply_faults(plan);
        self
    }

    /// Number of OSTs.
    pub fn ost_count(&self) -> usize {
        self.pool.count()
    }

    /// Creates (or replaces) a file and returns its handle.
    ///
    /// # Panics
    /// Panics if the layout references OSTs outside the pool.
    pub fn create(
        &self,
        name: &str,
        layout: StripeLayout,
        backend: Box<dyn Backend>,
    ) -> Arc<FileHandle> {
        assert!(
            layout.osts.iter().all(|&o| o < self.pool.count()),
            "layout references OSTs outside the pool of {}",
            self.pool.count()
        );
        let handle = Arc::new(FileHandle {
            name: name.to_string(),
            layout,
            backend,
        });
        self.files.write().unwrap().insert(name.to_string(), Arc::clone(&handle));
        handle
    }

    /// Opens an existing file.
    pub fn open(&self, name: &str) -> Option<Arc<FileHandle>> {
        self.files.read().unwrap().get(name).cloned()
    }

    /// Reads `len` bytes at `offset`, requested at virtual time `now`.
    /// Returns the data and the completion time. Extents on different OSTs
    /// proceed in parallel; extents on the same OST queue.
    pub fn read_at(
        &self,
        file: &FileHandle,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> (Vec<u8>, SimTime) {
        let mut buf = Vec::new();
        let done = self.read_at_into(file, offset, len, now, &mut buf);
        (buf, done)
    }

    /// Like [`read_at`](Self::read_at), but reads into a caller-owned
    /// buffer (cleared and resized to `len`), so a pipeline draining many
    /// chunks can reuse one allocation. Returns the completion time.
    pub fn read_at_into(
        &self,
        file: &FileHandle,
        offset: u64,
        len: u64,
        now: SimTime,
        buf: &mut Vec<u8>,
    ) -> SimTime {
        assert!(
            offset + len <= file.size(),
            "read [{offset}, {}) beyond file '{}' of size {}",
            offset + len,
            file.name,
            file.size()
        );
        buf.clear();
        buf.resize(len as usize, 0);
        file.backend.read_into(offset, buf);
        let done = self.charge_io(file, offset, len, now);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_read.fetch_add(len, Ordering::Relaxed);
        done
    }

    /// Reads several sorted, disjoint ranges of one collective-buffer
    /// iteration in a single vectorized call. Data lands in `buf` at
    /// `offset - base` (cleared, then resized to cover `base..` through the
    /// farthest range end); the timing model groups the object extents of
    /// *all* ranges per OST, merges object-contiguous runs, and books each
    /// OST once under a single lock — one seek charged per merged run, not
    /// per extent. Returns the completion time (`now` if nothing to read).
    ///
    /// Safe under software pipelining: the engines issue the read for
    /// iteration `i + depth` while iteration `i` is still draining, so
    /// calls arrive with `now` values that are neither monotone per rank
    /// nor ordered across ranks. Backfill booking (see `cc-pfs::ost`)
    /// makes that harmless — an early-issued deep-future read takes the
    /// earliest free interval at or after its own `now`, never capacity a
    /// lagging iteration still needs.
    pub fn read_multi(
        &self,
        file: &FileHandle,
        base: u64,
        ranges: &[(u64, u64)],
        now: SimTime,
        buf: &mut Vec<u8>,
    ) -> SimTime {
        let total = self.check_ranges(file, base, ranges, "read_multi");
        let span = ranges.iter().map(|&(o, l)| o + l).max().unwrap_or(base) - base;
        buf.clear();
        buf.resize(span as usize, 0);
        for &(off, len) in ranges {
            if len == 0 {
                continue;
            }
            let dst = (off - base) as usize;
            file.backend.read_into(off, &mut buf[dst..dst + len as usize]);
        }
        let done = self.charge_io_multi(file, ranges, now);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_read.fetch_add(total, Ordering::Relaxed);
        done
    }

    /// Vectorized counterpart of [`write_at`](Self::write_at): writes the
    /// sorted, disjoint `ranges`, sourcing each from `data[offset - base..]`,
    /// and charges the whole batch with per-OST run merging and one booking
    /// lock per OST. Returns the completion time.
    pub fn write_multi(
        &self,
        file: &FileHandle,
        base: u64,
        data: &[u8],
        ranges: &[(u64, u64)],
        now: SimTime,
    ) -> SimTime {
        let total = self.check_ranges(file, base, ranges, "write_multi");
        for &(off, len) in ranges {
            if len == 0 {
                continue;
            }
            let src = (off - base) as usize;
            file.backend.write_at(off, &data[src..src + len as usize]);
        }
        let done = self.charge_io_multi(file, ranges, now);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_written.fetch_add(total, Ordering::Relaxed);
        done
    }

    /// [`write_multi`](Self::write_multi) for data that reached the file
    /// system compressed: the full logical `ranges` are stored (offsets,
    /// extents, and byte counters stay logical so readers are unaffected),
    /// but the disk charge is scaled to `wire_bytes` — the compressed size
    /// actually streamed to the OSTs. Each merged per-OST run is shortened
    /// by `wire_bytes / total_logical_bytes` (floored at one byte), so the
    /// seek count is unchanged and only streaming time shrinks.
    pub fn write_multi_scaled(
        &self,
        file: &FileHandle,
        base: u64,
        data: &[u8],
        ranges: &[(u64, u64)],
        now: SimTime,
        wire_bytes: u64,
    ) -> SimTime {
        let total = self.check_ranges(file, base, ranges, "write_multi_scaled");
        for &(off, len) in ranges {
            if len == 0 {
                continue;
            }
            let src = (off - base) as usize;
            file.backend.write_at(off, &data[src..src + len as usize]);
        }
        let scale = if total == 0 {
            1.0
        } else {
            wire_bytes as f64 / total as f64
        };
        let done = self.charge_io_multi_scaled(file, ranges, now, scale);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_written.fetch_add(total, Ordering::Relaxed);
        done
    }

    /// Validates a vectorized range list (sorted, disjoint, at or after
    /// `base`, within the file) and returns the total byte count.
    fn check_ranges(&self, file: &FileHandle, base: u64, ranges: &[(u64, u64)], op: &str) -> u64 {
        let mut prev_end = base;
        let mut total = 0u64;
        for &(off, len) in ranges {
            assert!(
                off >= prev_end,
                "{op} ranges must be sorted and disjoint at or after base {base}"
            );
            assert!(
                off + len <= file.size(),
                "{op} [{off}, {}) beyond file '{}' of size {}",
                off + len,
                file.name,
                file.size()
            );
            prev_end = off + len;
            total += len;
        }
        total
    }

    /// Writes `data` at `offset`, requested at virtual time `now`. Returns
    /// the completion time.
    pub fn write_at(&self, file: &FileHandle, offset: u64, data: &[u8], now: SimTime) -> SimTime {
        file.backend.write_at(offset, data);
        let done = self.charge_io(file, offset, data.len() as u64, now);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        done
    }

    /// The fault-free, queue-free duration of a read: max over OSTs of the
    /// summed healthy service times of its extents. The gap between an
    /// actual completion and `now + ideal_read_time` is queueing — under a
    /// fault plan, the part attributable to degradation and contention.
    pub fn ideal_read_time(&self, file: &FileHandle, offset: u64, len: u64) -> SimTime {
        if len == 0 {
            return SimTime::ZERO;
        }
        let mut worst = SimTime::ZERO;
        for (_ost, extents) in file.layout.map_range_by_ost(offset, len) {
            let ost_total: SimTime = extents
                .iter()
                .map(|ext| self.pool.ideal_service_time(ext.len))
                .sum();
            worst = worst.max(ost_total);
        }
        worst
    }

    /// Charges the timing of one I/O call: transient-fault retries, then one
    /// positioning op plus streaming per discontiguous object extent, with
    /// OSTs in parallel and per-OST queueing.
    fn charge_io(&self, file: &FileHandle, offset: u64, len: u64, now: SimTime) -> SimTime {
        let mut start = now;
        if let Some(plan) = &self.fault {
            let mut tries = 0;
            while plan.attempt_fails() {
                tries += 1;
                assert!(
                    tries <= plan.max_retries,
                    "read of '{}' failed permanently after {} retries",
                    file.name,
                    plan.max_retries
                );
                plan.note_retry();
                start += plan.retry_penalty;
            }
        }
        if len == 0 {
            return start;
        }
        let mut done = start;
        for (ost, extents) in file.layout.map_range_by_ost(offset, len) {
            let mut ost_done = start;
            for ext in &extents {
                ost_done = self.pool.serve(ost, ost_done, ext.len);
                self.stats.extents_served.fetch_add(1, Ordering::Relaxed);
            }
            done = done.max(ost_done);
        }
        done
    }

    /// Charges the timing of one vectorized I/O call: transient-fault
    /// retries once for the batch, then the object extents of *all* ranges
    /// grouped per OST, sorted by object offset, merged into contiguous
    /// runs, and booked on each OST under a single lock acquisition. OSTs
    /// proceed in parallel; runs on one OST queue.
    fn charge_io_multi(&self, file: &FileHandle, ranges: &[(u64, u64)], now: SimTime) -> SimTime {
        self.charge_io_multi_scaled(file, ranges, now, 1.0)
    }

    /// `charge_io_multi` with each merged run's *streamed* length scaled by
    /// `scale` (compressed write-back charges the wire bytes, not the
    /// logical bytes). Runs keep their identity — one seek each — and never
    /// shrink below one byte.
    fn charge_io_multi_scaled(
        &self,
        file: &FileHandle,
        ranges: &[(u64, u64)],
        now: SimTime,
        scale: f64,
    ) -> SimTime {
        let mut start = now;
        if let Some(plan) = &self.fault {
            let mut tries = 0;
            while plan.attempt_fails() {
                tries += 1;
                assert!(
                    tries <= plan.max_retries,
                    "I/O on '{}' failed permanently after {} retries",
                    file.name,
                    plan.max_retries
                );
                plan.note_retry();
                start += plan.retry_penalty;
            }
        }
        // (object_offset, len) pieces grouped per OST across all ranges.
        let mut per_ost: Vec<(usize, Vec<(u64, u64)>)> = Vec::new();
        for &(off, len) in ranges {
            if len == 0 {
                continue;
            }
            for ext in file.layout.map_range(off, len) {
                match per_ost.iter_mut().find(|(o, _)| *o == ext.ost) {
                    Some((_, list)) => list.push((ext.object_offset, ext.len)),
                    None => per_ost.push((ext.ost, vec![(ext.object_offset, ext.len)])),
                }
            }
        }
        let mut done = start;
        let mut runs: Vec<u64> = Vec::new();
        for (ost, mut pieces) in per_ost {
            pieces.sort_unstable();
            runs.clear();
            let mut last_end = u64::MAX;
            for (obj_off, len) in pieces {
                if obj_off == last_end {
                    *runs.last_mut().unwrap() += len; // object-contiguous: no new seek
                } else {
                    runs.push(len);
                }
                last_end = obj_off + len;
            }
            if scale != 1.0 {
                for run in &mut runs {
                    *run = ((*run as f64 * scale).round() as u64).max(1);
                }
            }
            let ost_done = self.pool.book_many(ost, start, &runs);
            self.stats.extents_served.fetch_add(runs.len() as u64, Ordering::Relaxed);
            done = done.max(ost_done);
        }
        done
    }

    /// A snapshot of the global counters.
    pub fn stats(&self) -> PfsStatsSnapshot {
        self.stats.snapshot()
    }

    /// Per-OST (requests, bytes) served so far.
    pub fn per_ost_totals(&self) -> Vec<(u64, u64)> {
        self.pool.per_ost_totals()
    }

    /// Per-OST busy seconds (service time booked).
    pub fn per_ost_busy_secs(&self) -> Vec<f64> {
        self.pool.per_ost_busy_secs()
    }

    /// OST load imbalance: busiest over mean, 1.0 = balanced.
    pub fn ost_imbalance(&self) -> f64 {
        self.pool.imbalance()
    }

    /// Per-OST load snapshots at virtual time `now` (cumulative totals,
    /// wait seconds, and the service backlog still queued at the probe
    /// time) — see [`crate::ost::OstPool::snapshot_at`]. The multi-job
    /// service takes deltas of these around each job step to attribute
    /// cross-job contention.
    pub fn ost_snapshot(&self, now: SimTime) -> Vec<OstSnapshot> {
        self.pool.snapshot_at(now)
    }

    /// A point-in-time OST load snapshot (count, imbalance, busiest and
    /// mean service seconds) for outcomes and benchmark artifacts.
    pub fn ost_balance(&self) -> OstBalance {
        let busy = self.pool.per_ost_busy_secs();
        let total: f64 = busy.iter().sum();
        let busiest = busy.iter().cloned().fold(0.0, f64::max);
        let mean = total / busy.len() as f64;
        OstBalance {
            osts: busy.len(),
            imbalance: if total <= 0.0 { 1.0 } else { busiest / mean },
            busiest_secs: busiest,
            mean_secs: mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ElemKind, MemBackend, SyntheticBackend};

    fn test_fs(osts: usize) -> Pfs {
        Pfs::new(
            osts,
            DiskModel {
                seek: 0.5,
                ost_bandwidth: 1000.0,
            },
        )
    }

    fn mem_file(fs: &Pfs, size: usize, stripe: u64, count: usize) -> Arc<FileHandle> {
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        fs.create(
            "f",
            StripeLayout::round_robin(stripe, count, 0, fs.ost_count()),
            Box::new(MemBackend::from_bytes(data)),
        )
    }

    #[test]
    fn read_returns_correct_bytes() {
        let fs = test_fs(4);
        let f = mem_file(&fs, 1000, 64, 4);
        let (data, done) = fs.read_at(&f, 100, 200, SimTime::ZERO);
        let expect: Vec<u8> = (100..300).map(|i| (i % 251) as u8).collect();
        assert_eq!(data, expect);
        assert!(done > SimTime::ZERO);
    }

    #[test]
    fn striped_read_is_faster_than_single_ost() {
        // Same volume: 4-way striping splits streaming across OSTs.
        let fs4 = test_fs(4);
        let f4 = mem_file(&fs4, 8000, 1000, 4);
        let (_, t4) = fs4.read_at(&f4, 0, 8000, SimTime::ZERO);

        let fs1 = test_fs(4);
        let f1 = mem_file(&fs1, 8000, 1000, 1);
        let (_, t1) = fs1.read_at(&f1, 0, 8000, SimTime::ZERO);
        assert!(
            t4 < t1,
            "striped read {t4} should beat single-OST {t1}"
        );
    }

    #[test]
    fn scattered_reads_pay_per_seek() {
        // One contiguous 1000-byte read vs ten scattered 100-byte reads.
        let fs = test_fs(1);
        let f = mem_file(&fs, 10_000, 1 << 20, 1);
        let (_, contiguous) = fs.read_at(&f, 0, 1000, SimTime::ZERO);
        let fs2 = test_fs(1);
        let f2 = mem_file(&fs2, 10_000, 1 << 20, 1);
        let mut scattered = SimTime::ZERO;
        for i in 0..10 {
            let (_, t) = fs2.read_at(&f2, i * 1000, 100, scattered);
            scattered = t;
        }
        // Contiguous: 1 seek + 1s. Scattered: 10 seeks + 1s.
        assert!((contiguous.secs() - 1.5).abs() < 1e-9);
        assert!((scattered.secs() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let fs = test_fs(2);
        let f = fs.create(
            "w",
            StripeLayout::round_robin(8, 2, 0, 2),
            Box::new(MemBackend::zeroed(64)),
        );
        fs.write_at(&f, 5, &[7, 8, 9], SimTime::ZERO);
        let (data, _) = fs.read_at(&f, 4, 6, SimTime::ZERO);
        assert_eq!(data, vec![0, 7, 8, 9, 0, 0]);
    }

    #[test]
    fn synthetic_file_reads_through_fs() {
        let fs = test_fs(3);
        let f = fs.create(
            "climate",
            StripeLayout::round_robin(16, 3, 0, 3),
            Box::new(SyntheticBackend::new(
                1000,
                ElemKind::F64,
                crate::backend::default_climate_value,
            )),
        );
        let (data, _) = fs.read_at(&f, 80, 16, SimTime::ZERO);
        let v10 = f64::from_le_bytes(data[0..8].try_into().unwrap());
        assert_eq!(v10, crate::backend::default_climate_value(10));
    }

    #[test]
    fn open_finds_created_files() {
        let fs = test_fs(1);
        mem_file(&fs, 10, 4, 1);
        assert!(fs.open("f").is_some());
        assert!(fs.open("missing").is_none());
    }

    #[test]
    fn stats_track_traffic() {
        let fs = test_fs(2);
        let f = mem_file(&fs, 100, 10, 2);
        fs.read_at(&f, 0, 50, SimTime::ZERO);
        let s = fs.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_read, 50);
        assert!(s.extents_served >= 2);
    }

    #[test]
    fn fault_injection_delays_but_preserves_data() {
        let fs = test_fs(1).with_retries(RetryPlan::every(
            2,
            SimTime::from_secs(10.0),
            3,
        ));
        let f = mem_file(&fs, 100, 64, 1);
        let (d1, t1) = fs.read_at(&f, 0, 10, SimTime::ZERO); // attempt 1: ok
        let (d2, t2) = fs.read_at(&f, 0, 10, SimTime::ZERO); // attempt 2 fails, 3 ok
        assert_eq!(d1, d2);
        assert!(t2 > t1 + SimTime::from_secs(9.0), "retry penalty missing");
        assert_eq!(fs.retry_plan().unwrap().retries(), 1);
    }

    #[test]
    #[should_panic]
    fn read_past_eof_panics() {
        let fs = test_fs(1);
        let f = mem_file(&fs, 100, 64, 1);
        let _ = fs.read_at(&f, 90, 20, SimTime::ZERO);
    }

    #[test]
    fn zero_length_read_is_free() {
        let fs = test_fs(1);
        let f = mem_file(&fs, 100, 64, 1);
        let (d, t) = fs.read_at(&f, 50, 0, SimTime::from_secs(3.0));
        assert!(d.is_empty());
        assert_eq!(t.secs(), 3.0);
    }

    #[test]
    fn read_multi_single_range_matches_read_at() {
        let fs_a = test_fs(4);
        let fa = mem_file(&fs_a, 4000, 64, 4);
        let fs_b = test_fs(4);
        let fb = mem_file(&fs_b, 4000, 64, 4);
        let (want, t_at) = fs_a.read_at(&fa, 128, 1000, SimTime::ZERO);
        let mut buf = Vec::new();
        let t_multi = fs_b.read_multi(&fb, 128, &[(128, 1000)], SimTime::ZERO, &mut buf);
        assert_eq!(buf, want);
        assert_eq!(t_multi, t_at, "single-range timing must be identical");
        assert_eq!(fs_a.stats().extents_served, fs_b.stats().extents_served);
    }

    #[test]
    fn read_multi_scatters_into_covering_buffer() {
        let fs = test_fs(2);
        let f = mem_file(&fs, 1000, 32, 2);
        let mut buf = Vec::new();
        fs.read_multi(&f, 100, &[(110, 20), (200, 10)], SimTime::ZERO, &mut buf);
        assert_eq!(buf.len(), 110); // covers [100, 210)
        let want: Vec<u8> = (110..130).map(|i| (i % 251) as u8).collect();
        assert_eq!(&buf[10..30], &want[..]);
        let want2: Vec<u8> = (200..210).map(|i| (i % 251) as u8).collect();
        assert_eq!(&buf[100..110], &want2[..]);
        assert!(buf[0..10].iter().all(|&b| b == 0), "gap bytes stay zero");
    }

    #[test]
    fn read_multi_merges_object_contiguous_ranges() {
        // Stripe 32 over 2 OSTs: file ranges [0,32) and [64,32) are the
        // first two stripes of OST 0 — object-contiguous, so the batch
        // charges ONE seek, while separate reads charge two.
        let fs_a = test_fs(2);
        let fa = mem_file(&fs_a, 1000, 32, 2);
        let mut buf = Vec::new();
        let t_multi = fs_a.read_multi(&fa, 0, &[(0, 32), (64, 32)], SimTime::ZERO, &mut buf);
        assert_eq!(fs_a.stats().extents_served, 1);

        let fs_b = test_fs(2);
        let fb = mem_file(&fs_b, 1000, 32, 2);
        let t1 = fs_b.read_at(&fb, 0, 32, SimTime::ZERO).1;
        let (_, t2) = fs_b.read_at(&fb, 64, 32, t1);
        assert_eq!(fs_b.stats().extents_served, 2);
        assert!(
            t_multi < t2,
            "coalesced batch {t_multi} should beat sequential reads {t2}"
        );
    }

    #[test]
    fn write_multi_roundtrips_and_coalesces() {
        let fs = test_fs(2);
        let f = fs.create(
            "w",
            StripeLayout::round_robin(8, 2, 0, 2),
            Box::new(MemBackend::zeroed(64)),
        );
        let data: Vec<u8> = (0..32).map(|i| i as u8 + 1).collect();
        fs.write_multi(&f, 4, &data, &[(4, 6), (20, 4)], SimTime::ZERO);
        let (got, _) = fs.read_at(&f, 0, 32, SimTime::ZERO);
        assert_eq!(&got[4..10], &data[0..6]);
        assert_eq!(&got[20..24], &data[16..20]);
        assert!(got[10..20].iter().all(|&b| b == 0));
        assert_eq!(fs.stats().writes, 1);
        assert_eq!(fs.stats().bytes_written, 10);
    }

    #[test]
    fn ost_balance_snapshot_matches_imbalance() {
        let fs = test_fs(2);
        let f = mem_file(&fs, 1000, 1000, 1); // all traffic on OST 0
        fs.read_at(&f, 0, 500, SimTime::ZERO);
        let b = fs.ost_balance();
        assert_eq!(b.osts, 2);
        assert!((b.imbalance - fs.ost_imbalance()).abs() < 1e-12);
        assert!((b.imbalance - 2.0).abs() < 1e-12, "one of two OSTs busy");
        assert!(b.busiest_secs > 0.0 && (b.mean_secs - b.busiest_secs / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn read_multi_rejects_unsorted_ranges() {
        let fs = test_fs(1);
        let f = mem_file(&fs, 100, 64, 1);
        let mut buf = Vec::new();
        fs.read_multi(&f, 0, &[(50, 10), (10, 10)], SimTime::ZERO, &mut buf);
    }
}
