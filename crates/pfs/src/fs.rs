//! The file system facade: namespace, handles, timed reads and writes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cc_model::{DiskModel, SimTime};
use std::sync::RwLock;

use crate::backend::Backend;
use crate::fault::RetryPlan;
use crate::layout::StripeLayout;
use crate::ost::OstPool;

/// Global counters for one file system instance.
#[derive(Debug, Default)]
pub struct PfsStats {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    extents_served: AtomicU64,
}

/// A point-in-time copy of [`PfsStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PfsStatsSnapshot {
    /// Read calls.
    pub reads: u64,
    /// Write calls.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Discontiguous extents served (each costs one positioning op).
    pub extents_served: u64,
}

impl PfsStats {
    fn snapshot(&self) -> PfsStatsSnapshot {
        PfsStatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            extents_served: self.extents_served.load(Ordering::Relaxed),
        }
    }
}

/// An open file: striping plus contents.
pub struct FileHandle {
    name: String,
    layout: StripeLayout,
    backend: Box<dyn Backend>,
}

impl FileHandle {
    /// The file's name in the namespace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The file's striping.
    pub fn layout(&self) -> &StripeLayout {
        &self.layout
    }

    /// File size in bytes.
    pub fn size(&self) -> u64 {
        self.backend.size()
    }
}

/// A simulated striped parallel file system.
pub struct Pfs {
    pool: OstPool,
    files: RwLock<HashMap<String, Arc<FileHandle>>>,
    fault: Option<RetryPlan>,
    stats: PfsStats,
}

impl Pfs {
    /// A file system with `total_osts` OSTs and the given disk model.
    pub fn new(total_osts: usize, disk: DiskModel) -> Self {
        Self {
            pool: OstPool::new(total_osts, disk),
            files: RwLock::new(HashMap::new()),
            fault: None,
            stats: PfsStats::default(),
        }
    }

    /// Adds a transient-fault retry plan (see [`RetryPlan`]).
    pub fn with_retries(mut self, plan: RetryPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The retry plan, if any.
    pub fn retry_plan(&self) -> Option<&RetryPlan> {
        self.fault.as_ref()
    }

    /// Applies the OST-degradation part of a [`cc_model::FaultPlan`]:
    /// slow OSTs serve every extent at a multiple of the healthy service
    /// time, stalled OSTs queue everything behind their stall window.
    /// Network and straggler faults are applied by `cc-mpi` from
    /// `ClusterModel::fault`, not here.
    pub fn with_fault_plan(mut self, plan: &cc_model::FaultPlan) -> Self {
        self.pool.apply_faults(plan);
        self
    }

    /// Number of OSTs.
    pub fn ost_count(&self) -> usize {
        self.pool.count()
    }

    /// Creates (or replaces) a file and returns its handle.
    ///
    /// # Panics
    /// Panics if the layout references OSTs outside the pool.
    pub fn create(
        &self,
        name: &str,
        layout: StripeLayout,
        backend: Box<dyn Backend>,
    ) -> Arc<FileHandle> {
        assert!(
            layout.osts.iter().all(|&o| o < self.pool.count()),
            "layout references OSTs outside the pool of {}",
            self.pool.count()
        );
        let handle = Arc::new(FileHandle {
            name: name.to_string(),
            layout,
            backend,
        });
        self.files.write().unwrap().insert(name.to_string(), Arc::clone(&handle));
        handle
    }

    /// Opens an existing file.
    pub fn open(&self, name: &str) -> Option<Arc<FileHandle>> {
        self.files.read().unwrap().get(name).cloned()
    }

    /// Reads `len` bytes at `offset`, requested at virtual time `now`.
    /// Returns the data and the completion time. Extents on different OSTs
    /// proceed in parallel; extents on the same OST queue.
    pub fn read_at(
        &self,
        file: &FileHandle,
        offset: u64,
        len: u64,
        now: SimTime,
    ) -> (Vec<u8>, SimTime) {
        let mut buf = Vec::new();
        let done = self.read_at_into(file, offset, len, now, &mut buf);
        (buf, done)
    }

    /// Like [`read_at`](Self::read_at), but reads into a caller-owned
    /// buffer (cleared and resized to `len`), so a pipeline draining many
    /// chunks can reuse one allocation. Returns the completion time.
    pub fn read_at_into(
        &self,
        file: &FileHandle,
        offset: u64,
        len: u64,
        now: SimTime,
        buf: &mut Vec<u8>,
    ) -> SimTime {
        assert!(
            offset + len <= file.size(),
            "read [{offset}, {}) beyond file '{}' of size {}",
            offset + len,
            file.name,
            file.size()
        );
        buf.clear();
        buf.resize(len as usize, 0);
        file.backend.read_into(offset, buf);
        let done = self.charge_io(file, offset, len, now);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_read.fetch_add(len, Ordering::Relaxed);
        done
    }

    /// Writes `data` at `offset`, requested at virtual time `now`. Returns
    /// the completion time.
    pub fn write_at(&self, file: &FileHandle, offset: u64, data: &[u8], now: SimTime) -> SimTime {
        file.backend.write_at(offset, data);
        let done = self.charge_io(file, offset, data.len() as u64, now);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        done
    }

    /// The fault-free, queue-free duration of a read: max over OSTs of the
    /// summed healthy service times of its extents. The gap between an
    /// actual completion and `now + ideal_read_time` is queueing — under a
    /// fault plan, the part attributable to degradation and contention.
    pub fn ideal_read_time(&self, file: &FileHandle, offset: u64, len: u64) -> SimTime {
        if len == 0 {
            return SimTime::ZERO;
        }
        let mut worst = SimTime::ZERO;
        for (_ost, extents) in file.layout.map_range_by_ost(offset, len) {
            let ost_total: SimTime = extents
                .iter()
                .map(|ext| self.pool.ideal_service_time(ext.len))
                .sum();
            worst = worst.max(ost_total);
        }
        worst
    }

    /// Charges the timing of one I/O call: transient-fault retries, then one
    /// positioning op plus streaming per discontiguous object extent, with
    /// OSTs in parallel and per-OST queueing.
    fn charge_io(&self, file: &FileHandle, offset: u64, len: u64, now: SimTime) -> SimTime {
        let mut start = now;
        if let Some(plan) = &self.fault {
            let mut tries = 0;
            while plan.attempt_fails() {
                tries += 1;
                assert!(
                    tries <= plan.max_retries,
                    "read of '{}' failed permanently after {} retries",
                    file.name,
                    plan.max_retries
                );
                plan.note_retry();
                start += plan.retry_penalty;
            }
        }
        if len == 0 {
            return start;
        }
        let mut done = start;
        for (ost, extents) in file.layout.map_range_by_ost(offset, len) {
            let mut ost_done = start;
            for ext in &extents {
                ost_done = self.pool.serve(ost, ost_done, ext.len);
                self.stats.extents_served.fetch_add(1, Ordering::Relaxed);
            }
            done = done.max(ost_done);
        }
        done
    }

    /// A snapshot of the global counters.
    pub fn stats(&self) -> PfsStatsSnapshot {
        self.stats.snapshot()
    }

    /// Per-OST (requests, bytes) served so far.
    pub fn per_ost_totals(&self) -> Vec<(u64, u64)> {
        self.pool.per_ost_totals()
    }

    /// Per-OST busy seconds (service time booked).
    pub fn per_ost_busy_secs(&self) -> Vec<f64> {
        self.pool.per_ost_busy_secs()
    }

    /// OST load imbalance: busiest over mean, 1.0 = balanced.
    pub fn ost_imbalance(&self) -> f64 {
        self.pool.imbalance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ElemKind, MemBackend, SyntheticBackend};

    fn test_fs(osts: usize) -> Pfs {
        Pfs::new(
            osts,
            DiskModel {
                seek: 0.5,
                ost_bandwidth: 1000.0,
            },
        )
    }

    fn mem_file(fs: &Pfs, size: usize, stripe: u64, count: usize) -> Arc<FileHandle> {
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        fs.create(
            "f",
            StripeLayout::round_robin(stripe, count, 0, fs.ost_count()),
            Box::new(MemBackend::from_bytes(data)),
        )
    }

    #[test]
    fn read_returns_correct_bytes() {
        let fs = test_fs(4);
        let f = mem_file(&fs, 1000, 64, 4);
        let (data, done) = fs.read_at(&f, 100, 200, SimTime::ZERO);
        let expect: Vec<u8> = (100..300).map(|i| (i % 251) as u8).collect();
        assert_eq!(data, expect);
        assert!(done > SimTime::ZERO);
    }

    #[test]
    fn striped_read_is_faster_than_single_ost() {
        // Same volume: 4-way striping splits streaming across OSTs.
        let fs4 = test_fs(4);
        let f4 = mem_file(&fs4, 8000, 1000, 4);
        let (_, t4) = fs4.read_at(&f4, 0, 8000, SimTime::ZERO);

        let fs1 = test_fs(4);
        let f1 = mem_file(&fs1, 8000, 1000, 1);
        let (_, t1) = fs1.read_at(&f1, 0, 8000, SimTime::ZERO);
        assert!(
            t4 < t1,
            "striped read {t4} should beat single-OST {t1}"
        );
    }

    #[test]
    fn scattered_reads_pay_per_seek() {
        // One contiguous 1000-byte read vs ten scattered 100-byte reads.
        let fs = test_fs(1);
        let f = mem_file(&fs, 10_000, 1 << 20, 1);
        let (_, contiguous) = fs.read_at(&f, 0, 1000, SimTime::ZERO);
        let fs2 = test_fs(1);
        let f2 = mem_file(&fs2, 10_000, 1 << 20, 1);
        let mut scattered = SimTime::ZERO;
        for i in 0..10 {
            let (_, t) = fs2.read_at(&f2, i * 1000, 100, scattered);
            scattered = t;
        }
        // Contiguous: 1 seek + 1s. Scattered: 10 seeks + 1s.
        assert!((contiguous.secs() - 1.5).abs() < 1e-9);
        assert!((scattered.secs() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let fs = test_fs(2);
        let f = fs.create(
            "w",
            StripeLayout::round_robin(8, 2, 0, 2),
            Box::new(MemBackend::zeroed(64)),
        );
        fs.write_at(&f, 5, &[7, 8, 9], SimTime::ZERO);
        let (data, _) = fs.read_at(&f, 4, 6, SimTime::ZERO);
        assert_eq!(data, vec![0, 7, 8, 9, 0, 0]);
    }

    #[test]
    fn synthetic_file_reads_through_fs() {
        let fs = test_fs(3);
        let f = fs.create(
            "climate",
            StripeLayout::round_robin(16, 3, 0, 3),
            Box::new(SyntheticBackend::new(
                1000,
                ElemKind::F64,
                crate::backend::default_climate_value,
            )),
        );
        let (data, _) = fs.read_at(&f, 80, 16, SimTime::ZERO);
        let v10 = f64::from_le_bytes(data[0..8].try_into().unwrap());
        assert_eq!(v10, crate::backend::default_climate_value(10));
    }

    #[test]
    fn open_finds_created_files() {
        let fs = test_fs(1);
        mem_file(&fs, 10, 4, 1);
        assert!(fs.open("f").is_some());
        assert!(fs.open("missing").is_none());
    }

    #[test]
    fn stats_track_traffic() {
        let fs = test_fs(2);
        let f = mem_file(&fs, 100, 10, 2);
        fs.read_at(&f, 0, 50, SimTime::ZERO);
        let s = fs.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_read, 50);
        assert!(s.extents_served >= 2);
    }

    #[test]
    fn fault_injection_delays_but_preserves_data() {
        let fs = test_fs(1).with_retries(RetryPlan::every(
            2,
            SimTime::from_secs(10.0),
            3,
        ));
        let f = mem_file(&fs, 100, 64, 1);
        let (d1, t1) = fs.read_at(&f, 0, 10, SimTime::ZERO); // attempt 1: ok
        let (d2, t2) = fs.read_at(&f, 0, 10, SimTime::ZERO); // attempt 2 fails, 3 ok
        assert_eq!(d1, d2);
        assert!(t2 > t1 + SimTime::from_secs(9.0), "retry penalty missing");
        assert_eq!(fs.retry_plan().unwrap().retries(), 1);
    }

    #[test]
    #[should_panic]
    fn read_past_eof_panics() {
        let fs = test_fs(1);
        let f = mem_file(&fs, 100, 64, 1);
        let _ = fs.read_at(&f, 90, 20, SimTime::ZERO);
    }

    #[test]
    fn zero_length_read_is_free() {
        let fs = test_fs(1);
        let f = mem_file(&fs, 100, 64, 1);
        let (d, t) = fs.read_at(&f, 50, 0, SimTime::from_secs(3.0));
        assert!(d.is_empty());
        assert_eq!(t.secs(), 3.0);
    }
}
