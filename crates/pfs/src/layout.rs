//! Round-robin striping, Lustre style.
//!
//! A file of stripe size `s` over OSTs `[o0, o1, ..., o{k-1}]` places file
//! stripe `i` on OST `o[i % k]`, at *object offset* `(i / k) * s + within`.
//! Consecutive stripes that land on the same OST are therefore contiguous
//! in that OST's object — which is why one large aggregated read costs one
//! positioning operation per OST, while many small scattered reads cost one
//! each.

/// Striping of one file across a set of OSTs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeLayout {
    /// Stripe size in bytes.
    pub stripe_size: u64,
    /// OST ids used by the file, in round-robin order.
    pub osts: Vec<usize>,
}

/// One contiguous piece of a file range as mapped to an OST object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectExtent {
    /// The OST holding this piece.
    pub ost: usize,
    /// Offset within the OST object.
    pub object_offset: u64,
    /// File offset this piece starts at.
    pub file_offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl StripeLayout {
    /// Creates a layout with `stripe_count` OSTs starting at `start_ost`
    /// (wrapping modulo `total_osts`), mirroring `lfs setstripe -c -i`.
    pub fn round_robin(
        stripe_size: u64,
        stripe_count: usize,
        start_ost: usize,
        total_osts: usize,
    ) -> Self {
        assert!(stripe_size > 0, "stripe size must be positive");
        assert!(stripe_count > 0, "need at least one stripe");
        assert!(
            stripe_count <= total_osts,
            "stripe count {stripe_count} exceeds OST pool {total_osts}"
        );
        let osts = (0..stripe_count)
            .map(|i| (start_ost + i) % total_osts)
            .collect();
        Self { stripe_size, osts }
    }

    /// Number of OSTs in the layout.
    pub fn stripe_count(&self) -> usize {
        self.osts.len()
    }

    /// Maps a file byte range to per-OST object extents, in file order.
    /// Adjacent file stripes on the *same* OST are merged into a single
    /// extent when they are contiguous in object space (which, for a
    /// contiguous file range, happens exactly when `stripe_count == 1`).
    pub fn map_range(&self, offset: u64, len: u64) -> Vec<ObjectExtent> {
        let mut extents: Vec<ObjectExtent> = Vec::new();
        let s = self.stripe_size;
        let k = self.osts.len() as u64;
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let stripe = pos / s;
            let within = pos % s;
            let take = (s - within).min(end - pos);
            let ost = self.osts[(stripe % k) as usize];
            let object_offset = (stripe / k) * s + within;
            match extents.last_mut() {
                Some(last)
                    if last.ost == ost
                        && last.object_offset + last.len == object_offset
                        && last.file_offset + last.len == pos =>
                {
                    last.len += take;
                }
                _ => extents.push(ObjectExtent {
                    ost,
                    object_offset,
                    file_offset: pos,
                    len: take,
                }),
            }
            pos += take;
        }
        extents
    }

    /// Groups the extents of `map_range` by OST, preserving object order
    /// within each OST, and merging object-contiguous runs. The per-OST
    /// lists are what the timing model charges: one seek per discontiguous
    /// run per OST.
    pub fn map_range_by_ost(&self, offset: u64, len: u64) -> Vec<(usize, Vec<ObjectExtent>)> {
        let mut per_ost: Vec<(usize, Vec<ObjectExtent>)> = Vec::new();
        for ext in self.map_range(offset, len) {
            match per_ost.iter_mut().find(|(o, _)| *o == ext.ost) {
                Some((_, list)) => {
                    match list.last_mut() {
                        Some(last) if last.object_offset + last.len == ext.object_offset => {
                            last.len += ext.len;
                        }
                        _ => list.push(ext),
                    };
                }
                None => per_ost.push((ext.ost, vec![ext])),
            }
        }
        per_ost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_stripe_is_identity() {
        let l = StripeLayout::round_robin(4, 1, 0, 4);
        let exts = l.map_range(3, 10);
        assert_eq!(exts.len(), 1);
        assert_eq!(exts[0].ost, 0);
        assert_eq!(exts[0].object_offset, 3);
        assert_eq!(exts[0].len, 10);
    }

    #[test]
    fn round_robin_rotates_osts() {
        let l = StripeLayout::round_robin(10, 3, 1, 5);
        assert_eq!(l.osts, vec![1, 2, 3]);
        let exts = l.map_range(0, 40);
        let osts: Vec<usize> = exts.iter().map(|e| e.ost).collect();
        assert_eq!(osts, vec![1, 2, 3, 1]);
        // Stripe 3 is the second stripe on OST 1: object offset 10.
        assert_eq!(exts[3].object_offset, 10);
        assert_eq!(exts[3].len, 10);
    }

    #[test]
    fn mid_stripe_range() {
        let l = StripeLayout::round_robin(8, 2, 0, 2);
        // Bytes 5..19: tail of stripe 0 (OST0), stripe 1 (OST1), head of stripe 2 (OST0).
        let exts = l.map_range(5, 14);
        assert_eq!(exts.len(), 3);
        assert_eq!((exts[0].ost, exts[0].object_offset, exts[0].len), (0, 5, 3));
        assert_eq!((exts[1].ost, exts[1].object_offset, exts[1].len), (1, 0, 8));
        assert_eq!((exts[2].ost, exts[2].object_offset, exts[2].len), (0, 8, 3));
    }

    #[test]
    fn by_ost_merges_contiguous_object_runs() {
        let l = StripeLayout::round_robin(4, 2, 0, 2);
        // 16 bytes = stripes 0..4; per OST the object runs are contiguous.
        let per_ost = l.map_range_by_ost(0, 16);
        assert_eq!(per_ost.len(), 2);
        for (_, list) in &per_ost {
            assert_eq!(list.len(), 1, "contiguous object run should merge");
            assert_eq!(list[0].len, 8);
        }
    }

    #[test]
    fn zero_length_range_is_empty() {
        let l = StripeLayout::round_robin(4, 2, 0, 2);
        assert!(l.map_range(7, 0).is_empty());
        assert!(l.map_range_by_ost(7, 0).is_empty());
    }

    proptest! {
        #[test]
        fn prop_extents_tile_the_range(
            stripe_size in 1u64..64,
            stripe_count in 1usize..8,
            offset in 0u64..1000,
            len in 0u64..1000,
        ) {
            let l = StripeLayout::round_robin(stripe_size, stripe_count, 0, 8);
            let exts = l.map_range(offset, len);
            // Extents cover [offset, offset+len) exactly, in order.
            let total: u64 = exts.iter().map(|e| e.len).sum();
            prop_assert_eq!(total, len);
            let mut pos = offset;
            for e in &exts {
                prop_assert_eq!(e.file_offset, pos);
                pos += e.len;
            }
        }

        #[test]
        fn prop_object_offsets_unique_per_ost(
            stripe_size in 1u64..32,
            stripe_count in 1usize..6,
            offset in 0u64..500,
            len in 1u64..500,
        ) {
            let l = StripeLayout::round_robin(stripe_size, stripe_count, 0, 6);
            // No two extents on the same OST may overlap in object space.
            for (_, list) in l.map_range_by_ost(offset, len) {
                for w in list.windows(2) {
                    prop_assert!(w[0].object_offset + w[0].len <= w[1].object_offset);
                }
            }
        }
    }
}
