//! Deterministic transient-fault retries for reads.
//!
//! The paper's conclusion names fault tolerance as future work; this module
//! provides the substrate for exercising it. Faults are injected by a
//! deterministic counter — every `fail_every`-th read attempt fails
//! transiently — so tests are reproducible. The file system retries failed
//! attempts internally (up to a bound) and charges a virtual-time penalty
//! per retry, exactly like a Lustre client resending an RPC.
//!
//! This models *transient, retried* failures. Persistent degradation —
//! slow or stalled OSTs, bad links, straggler ranks — is described by
//! [`cc_model::FaultPlan`] and applied via `Pfs::with_fault_plan` and
//! `ClusterModel::with_fault`.

use std::sync::atomic::{AtomicU64, Ordering};

use cc_model::SimTime;

/// A plan for injecting transient read faults.
#[derive(Debug)]
pub struct RetryPlan {
    /// Every `fail_every`-th read attempt fails (1-based counting).
    pub fail_every: u64,
    /// Virtual-time penalty charged per retry.
    pub retry_penalty: SimTime,
    /// Maximum retries before the read panics (a hard failure).
    pub max_retries: u32,
    attempts: AtomicU64,
    retries: AtomicU64,
}

impl RetryPlan {
    /// A plan failing every `fail_every`-th attempt.
    ///
    /// # Panics
    /// Panics if `fail_every` is zero.
    pub fn every(fail_every: u64, retry_penalty: SimTime, max_retries: u32) -> Self {
        assert!(fail_every > 0, "fail_every must be at least 1");
        Self {
            fail_every,
            retry_penalty,
            max_retries,
            attempts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    /// Records one attempt; returns `true` if this attempt fails.
    pub fn attempt_fails(&self) -> bool {
        let n = self.attempts.fetch_add(1, Ordering::Relaxed) + 1;
        n.is_multiple_of(self.fail_every)
    }

    /// Records a retry.
    pub fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Attempts observed so far.
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_third_attempt_fails() {
        let plan = RetryPlan::every(3, SimTime::from_secs(0.1), 5);
        let pattern: Vec<bool> = (0..9).map(|_| plan.attempt_fails()).collect();
        assert_eq!(
            pattern,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(plan.attempts(), 9);
    }

    #[test]
    fn retries_are_counted() {
        let plan = RetryPlan::every(1, SimTime::ZERO, 3);
        plan.note_retry();
        plan.note_retry();
        assert_eq!(plan.retries(), 2);
    }

    #[test]
    #[should_panic]
    fn zero_interval_panics() {
        let _ = RetryPlan::every(0, SimTime::ZERO, 1);
    }
}
