//! The frame codec: self-describing compressed payloads.
//!
//! Every encoded frame opens with a one-byte mode tag and the LEB128
//! varint logical (decoded) byte length, so a receiver needs no side
//! channel to decode — the engines' strict length asserts move from the
//! wire length to the decoded length. Three body formats follow:
//!
//! * **Stored** — the logical bytes verbatim. The universal fallback:
//!   no mode ever produces a frame larger than `stored` (header + raw),
//!   so compression never *expands* traffic beyond the few header bytes.
//! * **Words** (lossless) — the payload as little-endian `u64` words,
//!   each XOR'd with its predecessor and LEB128-coded, plus a raw tail
//!   for the last `len % 8` bytes. Bit-exact for any payload; compresses
//!   slowly-varying floats and small integers (piece indices, lengths)
//!   because XOR-delta zeroes the high bytes.
//! * **F64 / F32** (error-bounded lossy) — SZ-style: a linear predictor
//!   `2·rᵢ₋₁ − rᵢ₋₂` over *reconstructed* values feeds a uniform
//!   quantizer with step `2·eb`; each element emits the zigzag varint of
//!   its quantization level (biased by one), with token `0` escaping to
//!   the raw little-endian element. Every element is verified at encode
//!   time — if the reconstruction would miss the bound (non-finite,
//!   level overflow, accumulated rounding), it escapes — so the resolved
//!   bound `eb = max(abs, rel·range)` recorded in the frame header is a
//!   hard guarantee on every decoded element.
//!
//! The decoder replays the identical predictor/reconstruction arithmetic
//! (same operations, same order), so encoder and decoder agree bit-for-bit
//! on reconstructed values — decode is deterministic, and re-encoding a
//! decoded frame is idempotent.

use crate::{Compression, ErrorBound};

const MODE_STORED: u8 = 0;
const MODE_WORDS: u8 = 1;
const MODE_F64: u8 = 2;
const MODE_F32: u8 = 3;

/// Quantization levels beyond ±2⁵³ lose integer precision in the f64
/// arithmetic the decoder replays; escape rather than risk drift.
const MAX_LEVEL: f64 = 9.0e15;

#[inline]
fn put_varint(dst: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        dst.push((v as u8) | 0x80);
        v >>= 7;
    }
    dst.push(v as u8);
}

#[inline]
fn get_varint(src: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = src[*pos];
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return v;
        }
        shift += 7;
        assert!(shift < 64, "malformed varint in compressed frame");
    }
}

#[inline]
fn zigzag(q: i64) -> u64 {
    ((q << 1) ^ (q >> 63)) as u64
}

#[inline]
fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn write_header(dst: &mut Vec<u8>, mode: u8, logical_len: usize) {
    dst.push(mode);
    put_varint(dst, logical_len as u64);
}

fn encode_stored(src: &[u8], dst: &mut Vec<u8>) {
    dst.clear();
    write_header(dst, MODE_STORED, src.len());
    dst.extend_from_slice(src);
}

/// Rewrites `dst` as a stored frame if the chosen encoding came out
/// larger than storing the bytes raw would.
fn fallback_to_stored(src: &[u8], dst: &mut Vec<u8>) {
    let mut stored_header = 1;
    let mut v = src.len() as u64;
    loop {
        stored_header += 1;
        v >>= 7;
        if v == 0 {
            break;
        }
    }
    if dst.len() > stored_header + src.len() {
        encode_stored(src, dst);
    }
}

fn encode_words(src: &[u8], dst: &mut Vec<u8>) {
    dst.clear();
    write_header(dst, MODE_WORDS, src.len());
    let mut prev = 0u64;
    let mut chunks = src.chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().unwrap());
        put_varint(dst, w ^ prev);
        prev = w;
    }
    dst.extend_from_slice(chunks.remainder());
}

fn decode_words(src: &[u8], pos: &mut usize, logical_len: usize, dst: &mut Vec<u8>) {
    let words = logical_len / 8;
    let mut prev = 0u64;
    for _ in 0..words {
        let w = get_varint(src, pos) ^ prev;
        dst.extend_from_slice(&w.to_le_bytes());
        prev = w;
    }
    let tail = logical_len % 8;
    dst.extend_from_slice(&src[*pos..*pos + tail]);
    *pos += tail;
}

/// The linear predictor over the last two reconstructed values.
#[inline]
fn predict(count: usize, p1: f64, p2: f64) -> f64 {
    match count {
        0 => 0.0,
        1 => p1,
        _ => 2.0 * p1 - p2,
    }
}

fn encode_f64(bound: &ErrorBound, src: &[u8], dst: &mut Vec<u8>) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for chunk in src.chunks_exact(8) {
        let x = f64::from_le_bytes(chunk.try_into().unwrap());
        if x.is_finite() {
            min = min.min(x);
            max = max.max(x);
        }
    }
    let eb = if min <= max { bound.resolve(min, max) } else { 0.0 };
    let twoeb = 2.0 * eb;
    dst.clear();
    write_header(dst, MODE_F64, src.len());
    dst.extend_from_slice(&eb.to_le_bytes());
    let (mut p1, mut p2) = (0.0f64, 0.0f64);
    for (count, chunk) in src.chunks_exact(8).enumerate() {
        let x = f64::from_le_bytes(chunk.try_into().unwrap());
        let pred = predict(count, p1, p2);
        // `x == pred` short-circuits to level 0 so an eb of zero (rel
        // bound on a constant field) still quantizes instead of hitting
        // 0/0 and escaping every element.
        let qf = if x == pred { 0.0 } else { ((x - pred) / twoeb).round() };
        let mut recon = x;
        if qf.is_finite() && qf.abs() < MAX_LEVEL {
            let q = qf as i64;
            let r = pred + (q as f64) * twoeb;
            if r.is_finite() && (r - x).abs() <= eb {
                put_varint(dst, zigzag(q) + 1);
                recon = r;
            } else {
                put_varint(dst, 0);
                dst.extend_from_slice(chunk);
            }
        } else {
            put_varint(dst, 0);
            dst.extend_from_slice(chunk);
        }
        p2 = p1;
        p1 = recon;
    }
}

fn decode_f64(src: &[u8], pos: &mut usize, logical_len: usize, dst: &mut Vec<u8>) {
    let eb: f64 = f64::from_le_bytes(src[*pos..*pos + 8].try_into().unwrap());
    *pos += 8;
    let twoeb = 2.0 * eb;
    let (mut p1, mut p2) = (0.0f64, 0.0f64);
    for count in 0..logical_len / 8 {
        let token = get_varint(src, pos);
        let recon = if token == 0 {
            let x = f64::from_le_bytes(src[*pos..*pos + 8].try_into().unwrap());
            *pos += 8;
            x
        } else {
            let q = unzigzag(token - 1);
            predict(count, p1, p2) + (q as f64) * twoeb
        };
        dst.extend_from_slice(&recon.to_le_bytes());
        p2 = p1;
        p1 = recon;
    }
}

fn encode_f32(bound: &ErrorBound, src: &[u8], dst: &mut Vec<u8>) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for chunk in src.chunks_exact(4) {
        let x = f64::from(f32::from_le_bytes(chunk.try_into().unwrap()));
        if x.is_finite() {
            min = min.min(x);
            max = max.max(x);
        }
    }
    let eb = if min <= max { bound.resolve(min, max) } else { 0.0 };
    let twoeb = 2.0 * eb;
    dst.clear();
    write_header(dst, MODE_F32, src.len());
    dst.extend_from_slice(&eb.to_le_bytes());
    let (mut p1, mut p2) = (0.0f64, 0.0f64);
    for (count, chunk) in src.chunks_exact(4).enumerate() {
        let x32 = f32::from_le_bytes(chunk.try_into().unwrap());
        let x = f64::from(x32);
        let pred = predict(count, p1, p2);
        let qf = if x == pred { 0.0 } else { ((x - pred) / twoeb).round() };
        let mut recon = x;
        if qf.is_finite() && qf.abs() < MAX_LEVEL {
            let q = qf as i64;
            let r32 = (pred + (q as f64) * twoeb) as f32;
            if r32.is_finite() && (f64::from(r32) - x).abs() <= eb {
                put_varint(dst, zigzag(q) + 1);
                recon = f64::from(r32);
            } else {
                put_varint(dst, 0);
                dst.extend_from_slice(chunk);
            }
        } else {
            put_varint(dst, 0);
            dst.extend_from_slice(chunk);
        }
        p2 = p1;
        p1 = recon;
    }
}

fn decode_f32(src: &[u8], pos: &mut usize, logical_len: usize, dst: &mut Vec<u8>) {
    let eb: f64 = f64::from_le_bytes(src[*pos..*pos + 8].try_into().unwrap());
    *pos += 8;
    let twoeb = 2.0 * eb;
    let (mut p1, mut p2) = (0.0f64, 0.0f64);
    for count in 0..logical_len / 4 {
        let token = get_varint(src, pos);
        let r32 = if token == 0 {
            let x = f32::from_le_bytes(src[*pos..*pos + 4].try_into().unwrap());
            *pos += 4;
            x
        } else {
            let q = unzigzag(token - 1);
            (predict(count, p1, p2) + (q as f64) * twoeb) as f32
        };
        dst.extend_from_slice(&r32.to_le_bytes());
        p2 = p1;
        p1 = f64::from(r32);
    }
}

/// Encodes `src` into `dst` (cleared first) under `mode`.
///
/// `Lossless` payloads decode bit-exactly. `ErrorBounded` payloads are
/// framed as f64 elements when 8-byte-aligned (and at least two elements
/// long), as f32 elements when only 4-byte-aligned, and losslessly
/// otherwise — index/metadata payloads that don't look like float arrays
/// are never lossy. Any encoding that would exceed `stored` size falls
/// back to a stored frame, so the wire length never exceeds
/// `src.len() + header` (≤ 11 bytes). `Off` is accepted and produces a
/// stored frame, but engines keep `Off` traffic unframed entirely.
pub fn encode_into(mode: &Compression, src: &[u8], dst: &mut Vec<u8>) {
    match mode {
        Compression::Off => encode_stored(src, dst),
        Compression::Lossless => {
            encode_words(src, dst);
            fallback_to_stored(src, dst);
        }
        Compression::ErrorBounded(bound) => {
            if src.len() >= 16 && src.len().is_multiple_of(8) {
                encode_f64(bound, src, dst);
            } else if src.len() >= 8 && src.len().is_multiple_of(4) {
                encode_f32(bound, src, dst);
            } else {
                encode_words(src, dst);
            }
            fallback_to_stored(src, dst);
        }
    }
}

/// The logical (decoded) byte length recorded in a frame's header.
pub fn decoded_len(frame: &[u8]) -> usize {
    let mut pos = 1;
    get_varint(frame, &mut pos) as usize
}

/// Decodes a frame produced by [`encode_into`] into `dst` (cleared
/// first); returns the decoded byte length. Panics on a malformed or
/// truncated frame — frames only travel between simulated ranks, so
/// corruption is a bug, not an input condition.
pub fn decode_into(frame: &[u8], dst: &mut Vec<u8>) -> usize {
    let mode = frame[0];
    let mut pos = 1;
    let logical_len = get_varint(frame, &mut pos) as usize;
    dst.clear();
    dst.reserve(logical_len);
    match mode {
        MODE_STORED => {
            dst.extend_from_slice(&frame[pos..pos + logical_len]);
            pos += logical_len;
        }
        MODE_WORDS => decode_words(frame, &mut pos, logical_len, dst),
        MODE_F64 => decode_f64(frame, &mut pos, logical_len, dst),
        MODE_F32 => decode_f32(frame, &mut pos, logical_len, dst),
        other => panic!("unknown compressed-frame mode {other}"),
    }
    assert_eq!(pos, frame.len(), "trailing garbage in compressed frame");
    assert_eq!(dst.len(), logical_len, "frame decoded to the wrong length");
    logical_len
}

/// The maximum absolute elementwise difference between two byte buffers
/// viewed as little-endian f64 arrays (a test/bench helper for checking
/// observed error against the configured bound). Positions where both
/// sides are NaN count as zero error.
pub fn max_f64_error(a: &[u8], b: &[u8]) -> f64 {
    assert_eq!(a.len(), b.len());
    let mut worst = 0.0f64;
    for (ca, cb) in a.chunks_exact(8).zip(b.chunks_exact(8)) {
        let xa = f64::from_le_bytes(ca.try_into().unwrap());
        let xb = f64::from_le_bytes(cb.try_into().unwrap());
        if xa.is_nan() && xb.is_nan() {
            continue;
        }
        worst = worst.max((xa - xb).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn f64_bytes(values: &[f64]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn roundtrip(mode: &Compression, src: &[u8]) -> (Vec<u8>, usize) {
        let mut wire = Vec::new();
        encode_into(mode, src, &mut wire);
        assert_eq!(decoded_len(&wire), src.len());
        let mut out = Vec::new();
        let n = decode_into(&wire, &mut out);
        assert_eq!(n, src.len());
        (out, wire.len())
    }

    /// A smooth synthetic science field: large offset, gentle waves.
    fn smooth_field(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                300.0 + 40.0 * (t * 1e-3).sin() + 5.0 * (t * 1.7e-2).sin()
            })
            .collect()
    }

    #[test]
    fn lossless_is_bit_exact_on_arbitrary_bytes() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 1000] {
            let src: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(37) ^ 0x5a).collect();
            let (out, _) = roundtrip(&Compression::Lossless, &src);
            assert_eq!(out, src, "len {len}");
        }
    }

    #[test]
    fn lossless_never_expands_beyond_header() {
        // Incompressible noise: XOR-delta varints would expand, so the
        // codec must fall back to a stored frame.
        let src: Vec<u8> = (0..4096u64)
            .flat_map(|i| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (i << 23)).to_le_bytes())
            .collect();
        let mut wire = Vec::new();
        encode_into(&Compression::Lossless, &src, &mut wire);
        assert!(wire.len() <= src.len() + 11, "{} > {}", wire.len(), src.len());
        let mut out = Vec::new();
        decode_into(&wire, &mut out);
        assert_eq!(out, src);
    }

    #[test]
    fn lossless_compresses_small_integer_words() {
        let src: Vec<u8> = (0..512u64).flat_map(|i| i.to_le_bytes()).collect();
        let mut wire = Vec::new();
        encode_into(&Compression::Lossless, &src, &mut wire);
        assert!(wire.len() < src.len() / 2, "{} vs {}", wire.len(), src.len());
    }

    #[test]
    fn lossy_error_bounded_on_smooth_field_and_compresses_hard() {
        let field = smooth_field(8192);
        let src = f64_bytes(&field);
        for bound in [ErrorBound::absolute(1e-3), ErrorBound::relative(1e-4)] {
            let mode = Compression::ErrorBounded(bound);
            let (out, wire_len) = roundtrip(&mode, &src);
            let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
            for &v in &field {
                min = min.min(v);
                max = max.max(v);
            }
            let eb = bound.resolve(min, max);
            assert!(max_f64_error(&src, &out) <= eb);
            assert!(
                wire_len * 3 < src.len(),
                "smooth field should compress >3x, got {wire_len} of {}",
                src.len()
            );
        }
    }

    #[test]
    fn lossy_error_bounded_on_rough_field() {
        // Pseudo-random but finite values; the predictor misses, levels
        // are large or escape, yet the bound must still hold.
        let field: Vec<f64> = (0..2048u64)
            .map(|i| {
                let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                ((h >> 11) as f64 / (1u64 << 53) as f64) * 2e6 - 1e6
            })
            .collect();
        let src = f64_bytes(&field);
        let bound = ErrorBound::absolute(0.5);
        let (out, _) = roundtrip(&Compression::ErrorBounded(bound), &src);
        assert!(max_f64_error(&src, &out) <= 0.5);
    }

    #[test]
    fn lossy_escapes_non_finite_values_exactly() {
        let field = [1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 2.0, 3.0];
        let src = f64_bytes(&field);
        let (out, _) = roundtrip(
            &Compression::ErrorBounded(ErrorBound::absolute(1e-6)),
            &src,
        );
        let decoded: Vec<f64> = out
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert!(decoded[1].is_nan());
        assert_eq!(decoded[2], f64::INFINITY);
        assert_eq!(decoded[3], f64::NEG_INFINITY);
        assert!((decoded[0] - 1.0).abs() <= 1e-6);
    }

    #[test]
    fn lossy_constant_field_is_exact_and_tiny() {
        let src = f64_bytes(&[42.5; 4096]);
        let mode = Compression::ErrorBounded(ErrorBound::relative(1e-4));
        let (out, wire_len) = roundtrip(&mode, &src);
        // rel bound on zero range resolves to eb = 0: the verify step
        // forces exactness, the predictor locks on, tokens are one byte.
        assert_eq!(out, src);
        assert!(wire_len < src.len() / 4);
    }

    #[test]
    fn lossy_f32_path_error_bounded() {
        let field: Vec<f32> = (0..4096).map(|i| (i as f32 * 1e-3).sin() * 100.0).collect();
        let src: Vec<u8> = field.iter().flat_map(|v| v.to_le_bytes()).collect();
        // 4-byte aligned but not 8-byte aligned -> f32 framing.
        let src = &src[..src.len() - 4];
        let (out, _) = roundtrip(
            &Compression::ErrorBounded(ErrorBound::absolute(1e-2)),
            src,
        );
        for (ca, cb) in src.chunks_exact(4).zip(out.chunks_exact(4)) {
            let xa = f32::from_le_bytes(ca.try_into().unwrap());
            let xb = f32::from_le_bytes(cb.try_into().unwrap());
            assert!((f64::from(xa) - f64::from(xb)).abs() <= 1e-2);
        }
    }

    #[test]
    fn lossy_misaligned_payload_falls_back_lossless() {
        let src: Vec<u8> = (0..101).map(|i| i as u8).collect();
        let (out, _) = roundtrip(
            &Compression::ErrorBounded(ErrorBound::default()),
            &src,
        );
        assert_eq!(out, src);
    }

    #[test]
    fn reencoding_decoded_lossy_frame_is_idempotent() {
        let src = f64_bytes(&smooth_field(1024));
        let mode = Compression::ErrorBounded(ErrorBound::absolute(1e-3));
        let (once, _) = roundtrip(&mode, &src);
        let (twice, _) = roundtrip(&mode, &once);
        assert_eq!(once, twice);
    }

    proptest! {
        #[test]
        fn prop_lossless_roundtrips_bit_exact(src in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let (out, wire_len) = roundtrip(&Compression::Lossless, &src);
            prop_assert_eq!(&out, &src);
            prop_assert!(wire_len <= src.len() + 11);
        }

        #[test]
        fn prop_lossy_error_within_bound(
            values in proptest::collection::vec(-1e9f64..1e9f64, 2..512),
            abs in 1e-9f64..1e3f64,
        ) {
            let src = f64_bytes(&values);
            let mode = Compression::ErrorBounded(ErrorBound::absolute(abs));
            let (out, _) = roundtrip(&mode, &src);
            prop_assert!(max_f64_error(&src, &out) <= abs);
        }

        #[test]
        fn prop_lossy_relative_bound_holds(
            values in proptest::collection::vec(-1e6f64..1e6f64, 2..256),
            rel in 1e-7f64..1e-2f64,
        ) {
            let src = f64_bytes(&values);
            let bound = ErrorBound::relative(rel);
            let (out, _) = roundtrip(&Compression::ErrorBounded(bound), &src);
            let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
            for &v in &values {
                min = min.min(v);
                max = max.max(v);
            }
            prop_assert!(max_f64_error(&src, &out) <= bound.resolve(min, max));
        }

        #[test]
        fn prop_varint_roundtrips(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            prop_assert_eq!(get_varint(&buf, &mut pos), v);
            prop_assert_eq!(pos, buf.len());
        }

        #[test]
        fn prop_zigzag_roundtrips(q in any::<i64>()) {
            prop_assert_eq!(unzigzag(zigzag(q)), q);
        }
    }
}
