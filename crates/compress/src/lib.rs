//! Error-bounded lossy compression for data-movement frames.
//!
//! C-Coll-style (arXiv:2304.03890) integration of an SZ-like predictor +
//! uniform-quantizer codec into the simulated collective stack: the smooth
//! f32/f64 science fields the two-phase engines shuffle compress heavily
//! under a linear predictor with an error-bounded quantizer, turning cheap
//! CPU into inter-node byte savings. This crate is the codec itself plus
//! the configuration types the rest of the workspace shares:
//!
//! * [`Compression`] — the knob carried by `Hints` (off / lossless /
//!   error-bounded), hashable so it enters the plan-cache key;
//! * [`ErrorBound`] — absolute and value-range-relative bounds, resolved
//!   per payload to `eb = max(abs, rel * (max - min))`;
//! * [`Tolerance`] — the kernel-declared error class that clamps
//!   error-bounded framing back to lossless for exact kernels
//!   (Min/Max/MinLoc/MaxLoc), the wrong-winner guard;
//! * [`codec`] — the wire format: self-describing frames holding either
//!   stored bytes, losslessly delta-coded words, or quantized prediction
//!   residuals with a raw escape path.
//!
//! No external dependencies; everything is deterministic and
//! platform-independent (little-endian serialization throughout).

#![warn(missing_docs)]

pub mod codec;

pub use codec::{decode_into, decoded_len, encode_into, max_f64_error};

use std::hash::{Hash, Hasher};

/// Absolute and relative error bounds for lossy framing.
///
/// The bound actually enforced on a payload is
/// `eb = max(abs, rel * (max - min))` over the finite values in that
/// payload, the SZ convention: `abs` is a floor in engineering units,
/// `rel` scales with the field's local dynamic range. Either may be zero
/// (but not both); the codec escapes to raw bytes wherever quantization
/// cannot honor the bound, so `eb` is a hard guarantee, not a target.
#[derive(Debug, Clone, Copy)]
pub struct ErrorBound {
    /// Absolute error floor, in the field's units.
    pub abs: f64,
    /// Error relative to the payload's value range (`max - min`).
    pub rel: f64,
}

impl ErrorBound {
    /// A bound with both components; each must be finite and `>= 0`, and
    /// at least one must be positive.
    pub fn new(abs: f64, rel: f64) -> Self {
        assert!(abs.is_finite() && abs >= 0.0, "abs bound must be finite and >= 0");
        assert!(rel.is_finite() && rel >= 0.0, "rel bound must be finite and >= 0");
        assert!(abs > 0.0 || rel > 0.0, "error bound must be positive");
        Self { abs, rel }
    }

    /// A purely absolute bound.
    pub fn absolute(abs: f64) -> Self {
        Self::new(abs, 0.0)
    }

    /// A purely range-relative bound.
    pub fn relative(rel: f64) -> Self {
        Self::new(0.0, rel)
    }

    /// The bound enforced on a payload whose finite values span
    /// `[min, max]`.
    pub fn resolve(&self, min: f64, max: f64) -> f64 {
        let range = if max > min { max - min } else { 0.0 };
        (self.rel * range).max(self.abs)
    }
}

/// `1e-4` of the payload's value range — the default the benchmarks sweep
/// around, tight enough to be invisible on smooth science fields and loose
/// enough to quantize most residuals into one-byte tokens.
impl Default for ErrorBound {
    fn default() -> Self {
        Self::relative(1e-4)
    }
}

impl PartialEq for ErrorBound {
    fn eq(&self, other: &Self) -> bool {
        self.abs.to_bits() == other.abs.to_bits() && self.rel.to_bits() == other.rel.to_bits()
    }
}

impl Eq for ErrorBound {}

impl Hash for ErrorBound {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.abs.to_bits().hash(state);
        self.rel.to_bits().hash(state);
    }
}

/// How data-movement frames are compressed.
///
/// Carried by `cc_mpiio::Hints`, so it enters the `PlanCache` key: plans
/// compiled under different compression settings never alias. `Off` keeps
/// every engine on its original code path, byte- and clock-identical to a
/// build without this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Compression {
    /// No compression; frames carry raw bytes (the seed behavior).
    #[default]
    Off,
    /// Bit-exact frames: XOR-delta word coding with a stored-bytes
    /// fallback, never larger than the raw payload plus a small header.
    Lossless,
    /// Error-bounded lossy frames for float payloads (lossless fallback
    /// for payloads that are not element-aligned).
    ErrorBounded(ErrorBound),
}

impl Compression {
    /// Whether frames are framed at all (anything but `Off`).
    pub fn is_on(&self) -> bool {
        !matches!(self, Compression::Off)
    }

    /// Clamps the requested mode to what a kernel's [`Tolerance`] admits:
    /// an `Exact` consumer downgrades `ErrorBounded` to `Lossless`
    /// (index-exact framing), everything else passes through. This is the
    /// wrong-winner guard for Min/Max/MinLoc/MaxLoc — a lossy frame could
    /// flip a near-tie winner, so exact kernels never see one.
    pub fn clamp_for(self, tolerance: Tolerance) -> Compression {
        match (self, tolerance) {
            (Compression::ErrorBounded(_), Tolerance::Exact) => Compression::Lossless,
            (mode, _) => mode,
        }
    }
}

/// The error class a reduction kernel declares for the bytes it consumes.
///
/// Additive kernels (Sum, SumSq, Mean, Count) tolerate value noise within
/// an error bound: the reduction's own result moves by at most the bound
/// (times element count), which is the accuracy contract the user already
/// accepted by setting a bound. Selection kernels (Min/Max/MinLoc/MaxLoc)
/// are `Exact`: an epsilon on a near-tie changes *which* element wins,
/// an unbounded output error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tolerance {
    /// Results must be bit-identical to the uncompressed run; only
    /// lossless framing is admissible.
    #[default]
    Exact,
    /// Bounded value error is acceptable; error-bounded lossy framing is
    /// admissible.
    BoundedError,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn bound_resolution_takes_the_max_component() {
        let b = ErrorBound::new(0.5, 1e-2);
        assert_eq!(b.resolve(0.0, 10.0), 0.5); // abs floor wins
        assert_eq!(b.resolve(0.0, 1000.0), 10.0); // rel wins
        assert_eq!(b.resolve(3.0, 3.0), 0.5); // degenerate range
    }

    #[test]
    fn compression_is_hashable_and_distinguishes_bounds() {
        let a = Compression::ErrorBounded(ErrorBound::absolute(1e-3));
        let b = Compression::ErrorBounded(ErrorBound::absolute(1e-4));
        assert_ne!(a, b);
        assert_ne!(hash_of(&a), hash_of(&b));
        assert_eq!(a, Compression::ErrorBounded(ErrorBound::new(1e-3, 0.0)));
    }

    #[test]
    fn clamp_downgrades_lossy_for_exact_consumers() {
        let lossy = Compression::ErrorBounded(ErrorBound::default());
        assert_eq!(lossy.clamp_for(Tolerance::Exact), Compression::Lossless);
        assert_eq!(lossy.clamp_for(Tolerance::BoundedError), lossy);
        assert_eq!(Compression::Lossless.clamp_for(Tolerance::Exact), Compression::Lossless);
        assert_eq!(Compression::Off.clamp_for(Tolerance::Exact), Compression::Off);
    }

    #[test]
    #[should_panic(expected = "error bound must be positive")]
    fn zero_bound_rejected() {
        ErrorBound::new(0.0, 0.0);
    }
}
