//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so this workspace ships
//! a small wall-clock benchmark harness with the slice of criterion's API
//! our benches use: [`Criterion::bench_function`], benchmark groups,
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Like the real criterion, running the bench binary *without* the
//! `--bench` flag (what `cargo test` does for `harness = false` targets)
//! executes each benchmark body once as a smoke test; `cargo bench` passes
//! `--bench` and triggers full measurement. Measurements are
//! median-of-samples wall time; results print as `name  time: <t>/iter`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark in full mode.
const TARGET_MEASURE: Duration = Duration::from_millis(300);

/// The benchmark driver handed to each group function.
pub struct Criterion {
    mode: Mode,
    default_samples: usize,
    filter: Option<String>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// One un-timed pass per benchmark (running under `cargo test`).
    Smoke,
    /// Full measurement (running under `cargo bench`).
    Measure,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mode = if args.iter().any(|a| a == "--bench") {
            Mode::Measure
        } else {
            Mode::Smoke
        };
        // First free argument (if any) filters benchmarks by substring,
        // mirroring `cargo bench -- <filter>`.
        let filter = args
            .iter()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .cloned();
        Self {
            mode,
            default_samples: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Runs (or smoke-tests) one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_named(name, self.default_samples, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            samples: None,
        }
    }

    fn run_named<F>(&self, name: &str, samples: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filt) = &self.filter {
            if !name.contains(filt.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            mode: self.mode,
            samples,
            per_iter: Duration::ZERO,
        };
        f(&mut b);
        if self.mode == Mode::Measure {
            println!("{name:<48} time: {}/iter", fmt_duration(b.per_iter));
        }
    }
}

/// A group of related benchmarks sharing a sample-count override.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measurement samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n.max(1));
        self
    }

    /// Runs one benchmark within the group (`group/name` in the output).
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let samples = self.samples.unwrap_or(self.parent.default_samples);
        self.parent.run_named(&full, samples, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Times one benchmark body.
pub struct Bencher {
    mode: Mode,
    samples: usize,
    per_iter: Duration,
}

impl Bencher {
    /// Measures `f`, calling it in batches until the target measurement
    /// time is covered; records the median per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.mode == Mode::Smoke {
            black_box(f());
            return;
        }
        // Calibrate a batch size so one sample takes a measurable slice.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_MEASURE / (self.samples as u32 * 2).max(1) || batch >= 1 << 24 {
                break;
            }
            batch = (batch * 2).max((batch as f64 * 1.5) as u64 + 1);
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t.elapsed() / batch as u32
            })
            .collect();
        times.sort_unstable();
        self.per_iter = times[times.len() / 2];
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut calls = 0;
        let mut b = Bencher {
            mode: Mode::Smoke,
            samples: 10,
            per_iter: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn format_covers_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
