//! The collective-computing engine (the paper's Figs. 4, 7, 8).
//!
//! Phase 1 is the two-phase protocol's aggregated read, unchanged. But
//! instead of shuffling raw bytes, each aggregator *constructs* the logical
//! runs of every requester inside the chunk (the logical map), applies the
//! user kernel to them in place, and caches one partial result per owner.
//! The shuffle phase then moves only those partials, under one of two
//! reduce topologies (paper §III-C): all-to-one (everything to a single
//! node, which constructs per-process results and reduces) or all-to-all
//! (each process gets its own partials, reduces locally, and a final
//! reduce produces the global result).
//!
//! In non-blocking mode (the paper's default) the map of iteration `i`
//! runs on a separate lane and overlaps the read of iteration `i+1`, with
//! the map rate scaled by the node's idle cores (see the crate docs).

use cc_array::{construct_runs, Hyperslab, Variable};
use cc_model::{BufferRing, Lane, SimTime};
use cc_mpi::comm::TagValue;
use cc_mpi::Comm;
use cc_mpiio::exchange::exchange_requests;
use cc_mpiio::{independent_read, Hints, PlanCache, PlanSchedule, PlanSource, Striping};
use cc_pfs::{FileHandle, Pfs};
use cc_profile::{Activity, Segment};

use crate::baseline::{map_buffer, traditional_get_vara_partial};
use crate::intermediate::IntermediateSet;
use crate::kernel::{MapKernel, Partial, PartialReduceOp};
use crate::object::{IoMode, ObjectIo, ReduceMode};
use crate::scratch::Scratch;

/// Tag for intermediate-result messages.
// Tag base for intermediate-result shuffles; each operation stamps its
// sequence number into the low bits (see `Comm::next_engine_tag`), so
// back-to-back operations never cross-match.
const TAG_RESULTS: TagValue = 0x5000_0000;

/// The default root rank for reductions.
pub fn default_root() -> usize {
    0
}

/// Durations of one collective-computing iteration at an aggregator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcIterTiming {
    /// Read-phase duration (including OST queueing).
    pub read: SimTime,
    /// Map-phase duration (kernel + metadata construction).
    pub map: SimTime,
}

/// What one rank observed during a collective-computing operation.
#[derive(Debug, Clone, Default)]
pub struct CcReport {
    /// Virtual time entering the operation.
    pub start: SimTime,
    /// Virtual time when this rank's role completed.
    pub end: SimTime,
    /// Per-iteration read/map timings (aggregators only).
    pub iterations: Vec<CcIterTiming>,
    /// Bytes this rank read from the file system (aggregator role).
    pub bytes_read: u64,
    /// Words of intermediate results this rank sent.
    pub result_words_shuffled: u64,
    /// Logical-run metadata entries this rank created (Fig. 12's x-axis
    /// sweep changes this through the buffer size).
    pub metadata_entries: u64,
    /// Bytes of that metadata.
    pub metadata_bytes: u64,
    /// The paper's "local reduction" overhead: logical construction plus
    /// intermediate-result combining (Fig. 11).
    pub local_reduction: SimTime,
    /// Activity segments for CPU profiling.
    pub segments: Vec<Segment>,
}

impl CcReport {
    /// Total elapsed virtual time.
    pub fn elapsed(&self) -> SimTime {
        self.end.saturating_since(self.start)
    }
}

/// The results of one object-I/O call.
#[derive(Debug, Clone)]
pub struct CcOutcome {
    /// This rank's own-subset result. Present on every rank under
    /// all-to-all reduce (and in independent/blocking modes); under
    /// all-to-one it is only known at the root.
    pub my_result: Option<Vec<f64>>,
    /// The global reduction — present at the reduce root only.
    pub global: Option<Vec<f64>>,
    /// Per-rank results, indexed by rank — present at the all-to-one root
    /// (where every process's partials were constructed).
    pub per_rank: Option<Vec<Option<Vec<f64>>>>,
    /// The raw (pre-finalize) global partial — present wherever `global`
    /// is. Iterative sweeps fold these; finalized outputs of kernels like
    /// `mean` cannot be folded.
    pub global_partial: Option<Partial>,
    /// This rank's phase observations.
    pub report: CcReport,
}

/// The paper's `ncmpi_object_get_vara` (Fig. 6, line 11): performs the
/// object I/O described by `io`, running `kernel` inside the collective.
/// Must be called by all ranks.
pub fn object_get_vara(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    var: &Variable,
    io: &ObjectIo,
    kernel: &dyn MapKernel,
) -> CcOutcome {
    object_get_vara_cached(comm, pfs, file, var, io, kernel, None)
}

/// [`object_get_vara`] with an optional compiled-plan cache: iterative
/// sweeps pass one cache across steps so that steps with an identical (or
/// constant-offset-shifted) access shape reuse the compiled schedule
/// instead of replanning. Every rank must pass a cache with identical
/// contents (or none); the cache only matters on the collective
/// non-blocking path — blocking and independent modes ignore it.
pub fn object_get_vara_cached(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    var: &Variable,
    io: &ObjectIo,
    kernel: &dyn MapKernel,
    cache: Option<&mut PlanCache>,
) -> CcOutcome {
    object_get_vara_planned(
        comm,
        pfs,
        file,
        var,
        io,
        kernel,
        &mut PlanSource::from_option(cache),
    )
}

/// [`object_get_vara`] drawing its compiled schedule from an explicit
/// [`PlanSource`]: fresh compiles, a per-run cache, or the multi-job
/// service's process-wide shared cache (which tags each lookup with the
/// job id so cross-job reuse is counted). Every rank must pass an
/// equivalent source; the source only matters on the collective
/// non-blocking path — blocking and independent modes ignore it.
pub fn object_get_vara_planned(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    var: &Variable,
    io: &ObjectIo,
    kernel: &dyn MapKernel,
    plans: &mut PlanSource<'_>,
) -> CcOutcome {
    let slab = Hyperslab::new(io.start.clone(), io.count.clone());
    if io.blocking {
        // io.block = true: "essentially identical to the traditional
        // MPI-IO code" (paper §III-A).
        return run_blocking(comm, pfs, file, var, &slab, io, kernel);
    }
    match io.mode {
        IoMode::Independent => run_independent(comm, pfs, file, var, &slab, io, kernel),
        IoMode::Collective => {
            run_collective_computing(comm, pfs, file, var, &slab, io, kernel, plans)
        }
    }
}

/// Blocking escape hatch: delegate to the traditional baseline and adapt.
fn run_blocking(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    var: &Variable,
    slab: &Hyperslab,
    io: &ObjectIo,
    kernel: &dyn MapKernel,
) -> CcOutcome {
    let root = io.reduce.root();
    // The traditional path shuffles *raw field bytes*, so an exact kernel
    // (min/max/located selection) must not see lossily-perturbed values:
    // clamp error-bounded hints to lossless before the read.
    let mut hints = io.hints.clone();
    hints.compression = hints.compression.clamp_for(kernel.tolerance());
    let (global, mine, rep) =
        traditional_get_vara_partial(comm, pfs, file, var, slab, &hints, kernel, root);
    CcOutcome {
        my_result: Some(kernel.finalize(&mine)),
        global: global.as_ref().map(|p| kernel.finalize(p)),
        global_partial: global,
        per_rank: None,
        report: CcReport {
            start: rep.start,
            end: rep.end,
            bytes_read: rep.two_phase.bytes_read,
            local_reduction: rep.reduce_elapsed,
            segments: rep.segments,
            ..CcReport::default()
        },
    }
}

/// Independent mode: every rank reads and maps its own request, then the
/// partials ride a plain reduce.
fn run_independent(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    var: &Variable,
    slab: &Hyperslab,
    io: &ObjectIo,
    kernel: &dyn MapKernel,
) -> CcOutcome {
    let mut report = CcReport {
        start: comm.clock(),
        ..CcReport::default()
    };
    let mut scratch = Scratch::new();
    let request = var.byte_extents(slab);
    let (bytes, io_rep) = independent_read(comm, pfs, file, &request);
    report.bytes_read = io_rep.bytes_read;
    report
        .segments
        .push(Segment::new(report.start, comm.clock(), Activity::Wait));
    var.dtype().decode_into(&bytes, &mut scratch.values);
    let compute_start = comm.clock();
    let partial = map_buffer(var, slab, kernel, &scratch.values);
    comm.advance(comm.model().cpu.map_time(bytes.len()));
    report
        .segments
        .push(Segment::new(compute_start, comm.clock(), Activity::User));
    let global = final_reduce(comm, kernel, &partial, io.reduce.root(), &mut scratch);
    report.end = comm.clock();
    CcOutcome {
        my_result: Some(kernel.finalize(&partial)),
        global: global.as_ref().map(|p| kernel.finalize(p)),
        global_partial: global,
        per_rank: None,
        report,
    }
}

/// The collective-computing path proper.
#[allow(clippy::too_many_arguments)]
fn run_collective_computing(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    var: &Variable,
    slab: &Hyperslab,
    io: &ObjectIo,
    kernel: &dyn MapKernel,
    plans: &mut PlanSource<'_>,
) -> CcOutcome {
    let mut report = CcReport {
        start: comm.clock(),
        ..CcReport::default()
    };
    let esize = var.dtype().size();
    // Element-aligned planning: chunk and domain boundaries must never
    // split an element, or the logical map could not reconstruct it.
    let mut hints = io.hints.clone();
    // Error bounds are a kernel property: only kernels declaring bounded-
    // error tolerance may consume lossily-compressed field bytes; exact
    // (selection) kernels are clamped to lossless framing. The clamped
    // value also keys the plan cache, so the two classes never share a
    // compiled schedule.
    hints.compression = hints.compression.clamp_for(kernel.tolerance());
    hints.cb_buffer_size = round_up(hints.cb_buffer_size.max(esize), esize);
    hints.align_domains_to = Some(match hints.align_domains_to {
        Some(a) => lcm(a.max(1), esize),
        None => esize,
    });
    // Striping rides the hints (ROMIO's striping_unit/striping_factor), so
    // stripe-aware partition strategies and the plan-cache key see the
    // open file's layout. If the stripe size is not element-aligned the
    // planner falls back to stripe-aligned-even partitioning on its own.
    hints.striping = Some(Striping::from(file.layout()));

    let request = var.byte_extents(slab);
    let requests = exchange_requests(comm, &request);
    let topology = comm.model().topology.clone();
    let schedule = plans.get(requests, &topology, comm.nprocs(), &hints);
    // The request exchange is collective, so the tag counter is symmetric
    // across ranks here and this operation's result tag is unique to it.
    let results_tag = comm.next_engine_tag(TAG_RESULTS);

    // --- Phase 1 + map: the aggregator pipeline (paper Fig. 7). ---------
    // One scratch arena serves the whole operation: chunk bytes, decoded
    // values, and shuffle words all reuse their high-water allocations.
    let mut scratch = Scratch::new();
    let mut inter = IntermediateSet::new();
    let mut agg_done = comm.clock();
    if let Some(agg_idx) = schedule.aggregator_index(comm.rank()) {
        agg_done = run_map_pipeline(
            comm,
            pfs,
            file,
            var,
            &schedule,
            agg_idx,
            &hints,
            kernel,
            &mut inter,
            &mut scratch,
            &mut report,
        );
    }
    report.metadata_entries = inter.metadata_entries;
    report.metadata_bytes = inter.metadata_bytes;

    // --- Phase 2: shuffle of intermediate results + reduce. -------------
    let outcome = match io.reduce {
        ReduceMode::AllToOne { root } => reduce_all_to_one(
            comm,
            kernel,
            &schedule,
            &inter,
            agg_done,
            root,
            results_tag,
            &mut scratch,
            &mut report,
        ),
        ReduceMode::AllToAll { root } => reduce_all_to_all(
            comm,
            kernel,
            &schedule,
            &inter,
            agg_done,
            root,
            results_tag,
            &mut scratch,
            &mut report,
        ),
    };
    report.end = comm.clock();
    CcOutcome {
        my_result: outcome.0,
        global: outcome.2.as_ref().map(|p| kernel.finalize(p)),
        global_partial: outcome.2,
        per_rank: outcome.1,
        report,
    }
}

/// What the reduce phases hand back: `(my_result, per_rank,
/// global_partial)`.
type ReduceOutcome = (
    Option<Vec<f64>>,
    Option<Vec<Option<Vec<f64>>>>,
    Option<Partial>,
);

/// Runs one aggregator's read→construct→map pipeline over its file domain.
/// Returns the time the last map completed.
#[allow(clippy::too_many_arguments)]
fn run_map_pipeline(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    var: &Variable,
    schedule: &PlanSchedule,
    agg_idx: usize,
    hints: &Hints,
    kernel: &dyn MapKernel,
    inter: &mut IntermediateSet,
    scratch: &mut Scratch,
    report: &mut CcReport,
) -> SimTime {
    let cpu = comm.model().cpu.clone();
    let esize = var.dtype().size() as usize;
    // The map soaks up the node's idle cores (see crate docs): each
    // aggregator can draw on cores_per_node / aggregators_per_node workers.
    let workers =
        (comm.model().topology.cores_per_node / hints.aggregators_per_node).max(1) as f64;
    let start = comm.clock();
    // The I/O lane models the paper's I/O thread; the map lane models the
    // node-parallel map workers (Fig. 7). With unbounded `PipelineDepth`,
    // reads are gated only by the I/O lane — the runtime is assumed to
    // have enough staging buffers to keep the disk streaming, which also
    // keeps every rank's file-system requests causally close in virtual
    // time (the OST queues are shared state; see cc-pfs::ost). A bounded
    // depth stages iterations through a [`BufferRing`] over that many
    // scratch slots: the read of iteration `i` additionally waits for
    // iteration `i - depth` to finish mapping out of its slot. Blocking
    // mode is depth 1 — read and map strictly alternate.
    let mut io_lane = Lane::free_from(start);
    let mut map_lane = Lane::free_from(start);
    let depth = if hints.nonblocking {
        hints.pipeline_depth.bound()
    } else {
        Some(1)
    };
    let mut ring = depth.map(BufferRing::new);
    let iters = schedule.active_iterations(agg_idx);
    let nslots = depth.unwrap_or(1).min(iters.len()).max(1);
    scratch.ensure_slots(nslots);
    // Per-iteration read bookkeeping (`(rlo, ready, read_done)`), filled
    // at issue time and consumed at map time `depth` iterations later.
    let mut reads: Vec<Option<(u64, SimTime, SimTime)>> = vec![None; iters.len()];
    let mut issued = 0usize;
    let mut last = start;

    let mut blocks: Vec<(u64, u64)> = Vec::new();
    for (pos, &iter) in iters.iter().enumerate() {
        // Issue stage: software-pipelined read-ahead — book the OST
        // extents of up to `depth` iterations while earlier ones map.
        let horizon = match depth {
            Some(d) => iters.len().min(pos + d),
            None => pos + 1,
        };
        while issued < horizon {
            let j = issued;
            issued += 1;
            let ranges = schedule.read_ranges(agg_idx, iters[j]);
            let Some(&(rlo, _)) = ranges.first() else {
                continue;
            };
            let floor = ring.as_ref().map_or(SimTime::ZERO, |r| r.available(j));
            let ready = io_lane.free_at().max(floor);
            let read_done =
                pfs.read_multi(file, rlo, ranges, ready, &mut scratch.slots[j % nslots]);
            io_lane.advance_to(read_done);
            report.bytes_read += ranges.iter().map(|&(_, len)| len).sum::<u64>();
            report
                .segments
                .push(Segment::new(ready, read_done, Activity::Wait));
            reads[j] = Some((rlo, ready, read_done));
        }
        let Some((rlo, ready, read_done)) = reads[pos] else {
            // Nothing was read for this iteration; carry the slot's
            // previous drain time forward.
            if let Some(r) = ring.as_mut() {
                let t = r.available(pos);
                r.drain(pos, t);
            }
            continue;
        };

        // Construct logical runs and map them, per destination owner and
        // per covered block — a merged iteration's bounding range spans
        // stride gaps whose bytes belong to other aggregators.
        blocks.clear();
        schedule.chunk_blocks(agg_idx, iter, |blo, bhi| blocks.push((blo, bhi)));
        let mut mapped_bytes = 0usize;
        let mut entries = 0u64;
        let mut meta_bytes = 0u64;
        for &dst in schedule.destinations(agg_idx, iter) {
            let acc = inter.partial_mut(dst, kernel);
            for &(blo, bhi) in &blocks {
                let runs = construct_runs(var, &schedule.plan().requests[dst], blo, bhi);
                for run in &runs {
                    let off = (var.byte_of_elem(run.start_elem) - rlo) as usize;
                    let len = run.len as usize * esize;
                    // Decode into the reused scratch slice: the kernel folds
                    // over `&[f64]` with no per-run allocation.
                    var.dtype().decode_into(
                        &scratch.slots[pos % nslots][off..off + len],
                        &mut scratch.values,
                    );
                    kernel.map(acc, run.start_elem, &scratch.values);
                    mapped_bytes += len;
                    entries += 1;
                    meta_bytes += run.metadata_bytes(var);
                }
            }
        }
        inter.note_metadata(entries, meta_bytes);

        let construct_cost = cpu.metadata_time(entries as usize);
        let map_cost = cpu.map_time(mapped_bytes).scale(1.0 / workers) + construct_cost;
        report.local_reduction += construct_cost;
        let map_start = read_done.max(map_lane.free_at());
        let map_done = map_lane.acquire(read_done, map_cost);
        // The slot is reusable once the kernel has folded its last run.
        if let Some(r) = ring.as_mut() {
            r.drain(pos, map_done);
        }
        report
            .segments
            .push(Segment::new(map_start, map_done, Activity::User));
        report.iterations.push(CcIterTiming {
            read: read_done.saturating_since(ready),
            map: map_cost,
        });
        last = last.max(map_done);
    }
    last
}

/// All-to-one reduce: every active aggregator ships its whole intermediate
/// set to `root`; the root constructs per-owner results and reduces them.
#[allow(clippy::too_many_arguments)]
fn reduce_all_to_one(
    comm: &mut Comm,
    kernel: &dyn MapKernel,
    schedule: &PlanSchedule,
    inter: &IntermediateSet,
    agg_done: SimTime,
    root: usize,
    tag: TagValue,
    scratch: &mut Scratch,
    report: &mut CcReport,
) -> ReduceOutcome {
    let cpu = comm.model().cpu.clone();
    let active: Vec<usize> = (0..schedule.plan().aggregators.len())
        .filter(|&a| schedule.is_active(a))
        .map(|a| schedule.aggregator_rank(a))
        .collect();

    // Sender side (aggregators): serialize into the scratch word buffer,
    // then onto a pooled wire buffer.
    let mut done = agg_done;
    if active.contains(&comm.rank()) && comm.rank() != root {
        inter.encode_all_into(&mut scratch.words);
        report.result_words_shuffled += scratch.words.len() as u64;
        let depart =
            agg_done + cpu.memcpy_time(scratch.words.len() * 8) + comm.model().net.send_cost();
        let mut bytes = comm.take_buf();
        cc_mpi::elem::encode_slice_into(&scratch.words, &mut bytes);
        comm.post_bytes_at(root, tag, bytes, depart);
        done = done.max(depart);
    }

    // Root side: construct and reduce.
    if comm.rank() == root {
        let mut per_owner: Vec<Option<Partial>> = vec![None; comm.nprocs()];
        let mut absorb = |pairs: Vec<(usize, Partial)>, inter_set: &mut u64| {
            for (owner, p) in pairs {
                *inter_set += 1;
                match &mut per_owner[owner] {
                    Some(acc) => kernel.combine(acc, &p),
                    slot => *slot = Some(p),
                }
            }
        };
        let mut combines = 0u64;
        inter.encode_all_into(&mut scratch.words);
        absorb(IntermediateSet::decode(&scratch.words), &mut combines);
        for &agg in &active {
            if agg == root {
                continue;
            }
            let (bytes, info) = comm.recv_bytes_no_clock(agg, tag);
            cc_mpi::elem::decode_into(&bytes, &mut scratch.words);
            comm.recycle_buf(bytes);
            absorb(IntermediateSet::decode(&scratch.words), &mut combines);
            done = done.max(info.arrival);
        }
        let reduce_start = done;
        let mut global = kernel.identity();
        let mut any = false;
        for p in per_owner.iter().flatten() {
            kernel.combine(&mut global, p);
            any = true;
        }
        let reduce_cost = cpu.reduce_time(combines as usize + comm.nprocs());
        done += reduce_cost;
        report.local_reduction += reduce_cost;
        report
            .segments
            .push(Segment::new(reduce_start, done, Activity::User));
        comm.advance_to(done);
        let per_rank: Vec<Option<Vec<f64>>> = per_owner
            .iter()
            .map(|p| p.as_ref().map(|p| kernel.finalize(p)))
            .collect();
        let my = per_rank[root].clone();
        return (my, Some(per_rank), any.then_some(global));
    }

    comm.advance_to(done);
    (None, None, None)
}

/// All-to-all reduce: each aggregator ships each owner its partial; owners
/// reduce locally, then a tree reduce produces the global result at `root`.
#[allow(clippy::too_many_arguments)]
fn reduce_all_to_all(
    comm: &mut Comm,
    kernel: &dyn MapKernel,
    schedule: &PlanSchedule,
    inter: &IntermediateSet,
    agg_done: SimTime,
    root: usize,
    tag: TagValue,
    scratch: &mut Scratch,
    report: &mut CcReport,
) -> ReduceOutcome {
    let cpu = comm.model().cpu.clone();

    // Sender side: one small message per owner with data in my domain,
    // serialized through the scratch words and a pooled wire buffer.
    let mut shuffle_lane = Lane::free_from(agg_done);
    let owners: Vec<usize> = inter.owners().collect();
    for owner in owners {
        if owner == comm.rank() {
            continue;
        }
        inter.encode_owner_into(owner, &mut scratch.words);
        report.result_words_shuffled += scratch.words.len() as u64;
        let same_node = comm.model().topology.same_node(comm.rank(), owner);
        let cost = cpu.memcpy_time(scratch.words.len() * 8)
            + comm.model().net.send_cost()
            + comm.model().net.wire_time(scratch.words.len() * 8, same_node)
            + comm.model().net.msg_cost(same_node);
        let depart = shuffle_lane.acquire(agg_done, cost);
        let mut bytes = comm.take_buf();
        cc_mpi::elem::encode_slice_into(&scratch.words, &mut bytes);
        comm.post_bytes_at(owner, tag, bytes, depart);
    }
    let mut done = agg_done.max(shuffle_lane.free_at());

    // Receiver side: my partials come from every aggregator whose domain
    // holds any of my bytes — exactly the aggregators appearing in my
    // source list, which is (aggregator, iteration)-ordered, so adjacent
    // dedup suffices.
    let mut mine = kernel.identity();
    if let Some(p) = inter.get(comm.rank()) {
        kernel.combine(&mut mine, p);
    }
    let mut my_senders: Vec<usize> = Vec::new();
    for &(a, _) in schedule.sources_for(comm.rank()) {
        let agg_rank = schedule.aggregator_rank(a);
        if agg_rank != comm.rank() && my_senders.last() != Some(&agg_rank) {
            my_senders.push(agg_rank);
        }
    }
    let mut combines = 0usize;
    for src in my_senders {
        let (bytes, info) = comm.recv_bytes_no_clock(src, tag);
        cc_mpi::elem::decode_into(&bytes, &mut scratch.words);
        comm.recycle_buf(bytes);
        for (owner, p) in IntermediateSet::decode(&scratch.words) {
            assert_eq!(
                owner,
                comm.rank(),
                "rank {}: misrouted intermediate result from rank {src} \
                 (owner {owner}, tag {tag:#x})",
                comm.rank(),
            );
            kernel.combine(&mut mine, &p);
            combines += 1;
        }
        done = done.max(info.arrival);
    }
    let local_cost = cpu.reduce_time(combines);
    done += local_cost;
    report.local_reduction += local_cost;
    comm.advance_to(done);

    // Final global reduce over the per-rank results.
    let global = final_reduce(comm, kernel, &mine, root, scratch);
    (Some(kernel.finalize(&mine)), None, global)
}

/// Tree-reduces `partial` to `root`; returns the global partial at the
/// root, `None` elsewhere.
fn final_reduce(
    comm: &mut Comm,
    kernel: &dyn MapKernel,
    partial: &Partial,
    root: usize,
    scratch: &mut Scratch,
) -> Option<Partial> {
    scratch.words.clear();
    partial.write_words_into(&mut scratch.words);
    comm.reduce(root, &scratch.words, &PartialReduceOp(kernel))
        .map(|words| Partial::from_words(&words).0)
}

/// Rounds `v` up to the next multiple of `m`.
fn round_up(v: u64, m: u64) -> u64 {
    v.div_ceil(m) * m
}

/// Least common multiple.
fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_helpers() {
        assert_eq!(round_up(7, 4), 8);
        assert_eq!(round_up(8, 4), 8);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(8, 8), 8);
        assert_eq!(gcd(12, 18), 6);
    }
}
