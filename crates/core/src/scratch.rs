//! Reusable scratch buffers for the engine hot path.
//!
//! The map pipeline touches three kinds of transient storage on every
//! iteration: the raw chunk bytes read from the file system, the decoded
//! `f64` run values the kernel folds over, and the word buffers partials
//! serialize into for the shuffle. Allocating them per run (the seed
//! behavior) put the allocator squarely on the per-chunk path; a
//! [`Scratch`] owns one of each and is threaded through the engine so
//! steady state reuses the same three allocations for the whole operation.

/// One rank's reusable hot-path buffers.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Chunk staging bytes (the aggregator's collective buffer).
    pub bytes: Vec<u8>,
    /// Per-slot chunk staging arenas for the software-pipelined engine:
    /// when the `PipelineDepth` hint bounds staging to `d` buffers, slot
    /// `i % d` holds iteration `i`'s collective buffer while earlier
    /// iterations are still draining theirs. Like the flat buffers, each
    /// slot keeps its high-water allocation across iterations and steps.
    pub slots: Vec<Vec<u8>>,
    /// Per-slot codec wire-staging arenas, grown in lockstep with
    /// [`slots`](Self::slots): when an engine compresses slot `i`'s bytes
    /// for the wire or the write-back, `codec_slots[i]` holds the encoded
    /// frame, so compression adds zero steady-state allocations to the
    /// pipelined hot path (the shuffle engines' transient codec buffers
    /// ride the communicator's recycled buffer pool the same way).
    pub codec_slots: Vec<Vec<u8>>,
    /// Decoded run values handed to the kernel.
    pub values: Vec<f64>,
    /// Serialized partial/intermediate words bound for the wire.
    pub words: Vec<u64>,
}

impl Scratch {
    /// An empty scratch arena; buffers grow to their high-water marks on
    /// first use and stay there.
    pub fn new() -> Self {
        Self::default()
    }

    /// Makes sure at least `n` chunk slots exist (never shrinks, so an
    /// iterative sweep alternating depths keeps every slot's allocation).
    pub fn ensure_slots(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize_with(n, Vec::new);
        }
        if self.codec_slots.len() < n {
            self.codec_slots.resize_with(n, Vec::new);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_keep_capacity_across_reuse() {
        let mut s = Scratch::new();
        s.values.extend([1.0; 100]);
        s.bytes.extend([0u8; 800]);
        s.words.extend([0u64; 10]);
        let caps = (s.bytes.capacity(), s.values.capacity(), s.words.capacity());
        s.bytes.clear();
        s.values.clear();
        s.words.clear();
        assert_eq!(
            caps,
            (s.bytes.capacity(), s.values.capacity(), s.words.capacity())
        );
    }
}
