//! The traditional MPI baseline (the paper's Fig. 5).
//!
//! Collective read first, computation strictly after, `MPI_Reduce` last —
//! the blocking workflow every experiment in the paper compares collective
//! computing against. The same [`MapKernel`] runs here over the fully
//! assembled buffer, so result equality between baseline and collective
//! computing is a meaningful end-to-end check.

use cc_array::{get_vara_all, Hyperslab, Variable};
use cc_model::SimTime;
use cc_mpi::Comm;
use cc_mpiio::{Hints, TwoPhaseReport};
use cc_pfs::{FileHandle, Pfs};
use cc_profile::{Activity, Segment};

use crate::kernel::{MapKernel, Partial, PartialReduceOp};

/// Phase breakdown of one baseline run, per rank.
#[derive(Debug, Clone, Default)]
pub struct BaselineReport {
    /// Virtual time entering the operation.
    pub start: SimTime,
    /// Virtual time after the final reduce.
    pub end: SimTime,
    /// Duration of the collective read (both of its phases).
    pub io_elapsed: SimTime,
    /// Duration of the local computation.
    pub compute_elapsed: SimTime,
    /// Duration of the `MPI_Reduce`.
    pub reduce_elapsed: SimTime,
    /// The inner two-phase report (aggregator timings, bytes).
    pub two_phase: TwoPhaseReport,
    /// Activity segments for CPU profiling.
    pub segments: Vec<Segment>,
}

impl BaselineReport {
    /// Total elapsed virtual time.
    pub fn elapsed(&self) -> SimTime {
        self.end.saturating_since(self.start)
    }
}

/// Runs the traditional workflow: collective read of `slab`, local map over
/// the received values, reduce of partials to `root`. Returns
/// `(global_at_root, my_partial_result, report)`. Must be called by all
/// ranks.
#[allow(clippy::too_many_arguments)]
pub fn traditional_get_vara(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    var: &Variable,
    slab: &Hyperslab,
    hints: &Hints,
    kernel: &dyn MapKernel,
    root: usize,
) -> (Option<Vec<f64>>, Vec<f64>, BaselineReport) {
    let (global, mine, report) =
        traditional_get_vara_partial(comm, pfs, file, var, slab, hints, kernel, root);
    (
        global.map(|p| kernel.finalize(&p)),
        kernel.finalize(&mine),
        report,
    )
}

/// Like [`traditional_get_vara`] but returns the raw [`Partial`]s, which
/// callers that fold across multiple operations (iterative sweeps) need.
#[allow(clippy::too_many_arguments)]
pub fn traditional_get_vara_partial(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    var: &Variable,
    slab: &Hyperslab,
    hints: &Hints,
    kernel: &dyn MapKernel,
    root: usize,
) -> (Option<Partial>, Partial, BaselineReport) {
    let mut report = BaselineReport {
        start: comm.clock(),
        ..BaselineReport::default()
    };

    // Phase A: blocking collective read (lines 1-4 of the paper's Fig. 5).
    let (values, two_phase) = get_vara_all(comm, pfs, file, var, slab, hints);
    let io_end = comm.clock();
    report.io_elapsed = io_end.saturating_since(report.start);
    report
        .segments
        .push(Segment::new(report.start, io_end, Activity::Wait));
    report.two_phase = two_phase;

    // Phase B: local computation (lines 5-7).
    let partial = map_buffer(var, slab, kernel, &values);
    let bytes = values.len() as u64 * var.dtype().size();
    comm.advance(comm.model().cpu.map_time(bytes as usize));
    let compute_end = comm.clock();
    report.compute_elapsed = compute_end.saturating_since(io_end);
    report
        .segments
        .push(Segment::new(io_end, compute_end, Activity::User));

    // Phase C: MPI_Reduce with the kernel as the user op (line 8).
    let reduced = comm.reduce(root, &partial.to_words(), &PartialReduceOp(kernel));
    let reduce_end = comm.clock();
    report.reduce_elapsed = reduce_end.saturating_since(compute_end);
    report
        .segments
        .push(Segment::new(compute_end, reduce_end, Activity::Sys));
    report.end = reduce_end;

    let global = reduced.map(|words| Partial::from_words(&words).0);
    (global, partial, report)
}

/// Maps a fully assembled request buffer, run by run, preserving element
/// positions so positional kernels work.
pub fn map_buffer(
    var: &Variable,
    slab: &Hyperslab,
    kernel: &dyn MapKernel,
    values: &[f64],
) -> Partial {
    let mut partial = kernel.identity();
    let mut cursor = 0usize;
    for (start_elem, len) in slab.runs(var.shape()) {
        let len = len as usize;
        kernel.map(&mut partial, start_elem, &values[cursor..cursor + len]);
        cursor += len;
    }
    assert_eq!(cursor, values.len(), "buffer does not match selection size");
    partial
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{MinLocKernel, SumKernel};
    use cc_array::{DType, Shape};
    use cc_model::{ClusterModel, Topology};
    use cc_mpi::World;
    use cc_pfs::backend::ElemKind;
    use cc_pfs::{StripeLayout, SyntheticBackend};
    use std::sync::Arc;

    fn setup(elems: u64) -> Arc<Pfs> {
        let fs = Pfs::new(
            4,
            cc_model::DiskModel {
                seek: 1e-3,
                ost_bandwidth: 1e8,
            },
        );
        fs.create(
            "d",
            StripeLayout::round_robin(256, 4, 0, 4),
            Box::new(SyntheticBackend::new(elems, ElemKind::F64, |i: u64| {
                (i % 97) as f64
            })),
        );
        Arc::new(fs)
    }

    #[test]
    fn global_sum_matches_direct_computation() {
        let shape = Shape::new(vec![8, 16]);
        let var = Variable::new("t", shape, DType::F64, 0);
        let fs = setup(128);
        let mut model = ClusterModel::test_tiny(4);
        model.topology = Topology::new(2, 2);
        let world = World::new(4, model);
        let var = &var;
        let fs = &fs;
        let results = world.run(move |comm| {
            let file = fs.open("d").expect("exists");
            // Rank r reads rows 2r..2r+2.
            let slab = Hyperslab::new(vec![2 * comm.rank() as u64, 0], vec![2, 16]);
            traditional_get_vara(
                comm,
                fs,
                &file,
                var,
                &slab,
                &Hints::default(),
                &SumKernel,
                0,
            )
        });
        let expect: f64 = (0..128u64).map(|i| (i % 97) as f64).sum();
        assert_eq!(results[0].0.as_ref().unwrap()[0], expect);
        assert!(results[1].0.is_none());
        // Per-rank partial results sum to the global.
        let partial_sum: f64 = results.iter().map(|r| r.1[0]).sum();
        assert_eq!(partial_sum, expect);
    }

    #[test]
    fn minloc_finds_global_position() {
        let shape = Shape::new(vec![4, 25]);
        let var = Variable::new("t", shape, DType::F64, 0);
        let fs = setup(100);
        let world = World::new(4, ClusterModel::test_tiny(4));
        let var = &var;
        let fs = &fs;
        let results = world.run(move |comm| {
            let file = fs.open("d").expect("exists");
            let slab = Hyperslab::new(vec![comm.rank() as u64, 0], vec![1, 25]);
            traditional_get_vara(
                comm,
                fs,
                &file,
                var,
                &slab,
                &Hints::default(),
                &MinLocKernel,
                0,
            )
        });
        // Minimum of i % 97 over 0..100 is 0, first at element 0.
        let global = results[0].0.as_ref().unwrap();
        assert_eq!(global[0], 0.0);
        assert_eq!(global[1], 0.0);
    }

    #[test]
    fn phases_are_ordered_and_accounted() {
        let shape = Shape::new(vec![2, 50]);
        let var = Variable::new("t", shape, DType::F64, 0);
        let fs = setup(100);
        let world = World::new(2, ClusterModel::test_tiny(2));
        let var = &var;
        let fs = &fs;
        let results = world.run(move |comm| {
            let file = fs.open("d").expect("exists");
            let slab = Hyperslab::new(vec![comm.rank() as u64, 0], vec![1, 50]);
            let (_, _, rep) = traditional_get_vara(
                comm,
                fs,
                &file,
                var,
                &slab,
                &Hints::default(),
                &SumKernel,
                0,
            );
            rep
        });
        for rep in &results {
            assert!(rep.io_elapsed > SimTime::ZERO);
            assert!(rep.compute_elapsed > SimTime::ZERO);
            assert!(rep.end >= rep.start);
            // Segments tile [start, end).
            assert_eq!(rep.segments.len(), 3);
            assert_eq!(rep.segments[0].start, rep.start);
            assert_eq!(rep.segments[2].end, rep.end);
            for w in rep.segments.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    #[should_panic]
    fn map_buffer_rejects_wrong_length() {
        let var = Variable::new("t", Shape::new(vec![4]), DType::F64, 0);
        let slab = Hyperslab::new(vec![0], vec![4]);
        let _ = map_buffer(&var, &slab, &SumKernel, &[1.0, 2.0]);
    }
}
