//! Kernel fusion: several analyses in one pass over the data.
//!
//! The paper's benchmark "simulate\[s\] the computation part with different
//! operations, e.g., sum, max, and average" — in practice an analyst wants
//! several statistics of the same subset. Running them as separate object
//! I/Os re-reads the data each time; [`FusedKernel`] computes all of them
//! in a single collective, with the partials of each component traveling
//! side by side. The I/O cost is paid once.

use crate::kernel::{MapKernel, Partial};

/// A compound kernel: applies every component kernel to each run and
/// carries their partials concatenated (`[n, len_0, values_0..., count_0,
/// len_1, ...]` in the `values` slot).
pub struct FusedKernel<'a> {
    components: Vec<&'a dyn MapKernel>,
}

impl<'a> FusedKernel<'a> {
    /// Fuses the given kernels.
    ///
    /// # Panics
    /// Panics on an empty component list.
    pub fn new(components: Vec<&'a dyn MapKernel>) -> Self {
        assert!(!components.is_empty(), "fusion needs at least one kernel");
        Self { components }
    }

    /// The component kernels.
    pub fn components(&self) -> &[&'a dyn MapKernel] {
        &self.components
    }

    /// Splits a fused partial back into per-component partials.
    ///
    /// # Panics
    /// Panics if `fused` was not produced by this kernel arrangement.
    pub fn split(&self, fused: &Partial) -> Vec<Partial> {
        let mut out = Vec::with_capacity(self.components.len());
        let mut pos = 0usize;
        for _ in &self.components {
            let len = fused.values[pos] as usize;
            let count = fused.values[pos + 1] as u64;
            let values = fused.values[pos + 2..pos + 2 + len].to_vec();
            out.push(Partial { values, count });
            pos += 2 + len;
        }
        assert_eq!(pos, fused.values.len(), "fused partial shape mismatch");
        out
    }

    /// Finalizes each component and returns their results in order.
    pub fn finalize_each(&self, fused: &Partial) -> Vec<Vec<f64>> {
        self.split(fused)
            .iter()
            .zip(&self.components)
            .map(|(p, k)| k.finalize(p))
            .collect()
    }

    fn pack(&self, parts: &[Partial]) -> Partial {
        let mut values = Vec::new();
        let mut count = 0;
        for p in parts {
            values.push(p.values.len() as f64);
            values.push(p.count as f64);
            values.extend_from_slice(&p.values);
            count = count.max(p.count);
        }
        Partial { values, count }
    }
}

impl MapKernel for FusedKernel<'_> {
    fn name(&self) -> &'static str {
        "fused"
    }

    fn identity(&self) -> Partial {
        let parts: Vec<Partial> = self.components.iter().map(|k| k.identity()).collect();
        self.pack(&parts)
    }

    fn map(&self, acc: &mut Partial, start_elem: u64, values: &[f64]) {
        // Walk the fused layout in place: each component's slot is staged
        // through one reused scratch partial instead of splitting and
        // repacking the whole accumulator per call.
        let mut tmp = Partial::new(Vec::new());
        let mut pos = 0usize;
        let mut max_count = 0u64;
        for k in &self.components {
            let len = acc.values[pos] as usize;
            tmp.count = acc.values[pos + 1] as u64;
            tmp.values.clear();
            tmp.values.extend_from_slice(&acc.values[pos + 2..pos + 2 + len]);
            k.map(&mut tmp, start_elem, values);
            assert_eq!(tmp.values.len(), len, "component changed partial shape");
            acc.values[pos + 1] = tmp.count as f64;
            acc.values[pos + 2..pos + 2 + len].copy_from_slice(&tmp.values);
            max_count = max_count.max(tmp.count);
            pos += 2 + len;
        }
        assert_eq!(pos, acc.values.len(), "fused partial shape mismatch");
        acc.count = max_count;
    }

    fn combine(&self, acc: &mut Partial, other: &Partial) {
        let mut tmp = Partial::new(Vec::new());
        let mut tmp_other = Partial::new(Vec::new());
        let mut pos = 0usize;
        let mut max_count = 0u64;
        for k in &self.components {
            let len = acc.values[pos] as usize;
            assert_eq!(
                len, other.values[pos] as usize,
                "fused partial shape mismatch"
            );
            tmp.count = acc.values[pos + 1] as u64;
            tmp.values.clear();
            tmp.values.extend_from_slice(&acc.values[pos + 2..pos + 2 + len]);
            tmp_other.count = other.values[pos + 1] as u64;
            tmp_other.values.clear();
            tmp_other
                .values
                .extend_from_slice(&other.values[pos + 2..pos + 2 + len]);
            k.combine(&mut tmp, &tmp_other);
            assert_eq!(tmp.values.len(), len, "component changed partial shape");
            acc.values[pos + 1] = tmp.count as f64;
            acc.values[pos + 2..pos + 2 + len].copy_from_slice(&tmp.values);
            max_count = max_count.max(tmp.count);
            pos += 2 + len;
        }
        assert_eq!(pos, acc.values.len(), "fused partial shape mismatch");
        acc.count = max_count;
    }

    fn finalize(&self, acc: &Partial) -> Vec<f64> {
        // The flat concatenation of every component's finalized output.
        self.finalize_each(acc).concat()
    }

    fn tolerance(&self) -> cc_compress::Tolerance {
        // A fused sweep is only as tolerant as its strictest component:
        // one exact kernel (a located min, say) forces lossless framing
        // for the whole shared read.
        if self
            .components
            .iter()
            .all(|k| k.tolerance() == cc_compress::Tolerance::BoundedError)
        {
            cc_compress::Tolerance::BoundedError
        } else {
            cc_compress::Tolerance::Exact
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{CountKernel, MaxKernel, MeanKernel, MinLocKernel, SumKernel};

    fn fused<'a>() -> FusedKernel<'a> {
        FusedKernel::new(vec![&SumKernel, &MaxKernel, &MeanKernel, &CountKernel])
    }

    #[test]
    fn fused_matches_separate_kernels() {
        let data = [3.0, -1.0, 4.0, 1.5, 9.0];
        let k = fused();
        let mut acc = k.identity();
        k.map(&mut acc, 0, &data[..2]);
        k.map(&mut acc, 2, &data[2..]);
        let results = k.finalize_each(&acc);
        assert_eq!(results[0], vec![16.5]); // sum
        assert_eq!(results[1], vec![9.0]); // max
        assert_eq!(results[2], vec![16.5 / 5.0]); // mean
        assert_eq!(results[3], vec![5.0]); // count
    }

    #[test]
    fn fused_combine_is_componentwise() {
        let k = fused();
        let mut a = k.identity();
        k.map(&mut a, 0, &[1.0, 2.0]);
        let mut b = k.identity();
        k.map(&mut b, 2, &[10.0]);
        k.combine(&mut a, &b);
        let results = k.finalize_each(&a);
        assert_eq!(results[0], vec![13.0]);
        assert_eq!(results[1], vec![10.0]);
        assert_eq!(results[3], vec![3.0]);
    }

    #[test]
    fn fused_with_positional_component() {
        let k = FusedKernel::new(vec![&MinLocKernel, &SumKernel]);
        let mut acc = k.identity();
        k.map(&mut acc, 100, &[5.0, 1.0, 7.0]);
        let results = k.finalize_each(&acc);
        assert_eq!(results[0], vec![1.0, 101.0]);
        assert_eq!(results[1], vec![13.0]);
    }

    #[test]
    fn fused_word_roundtrip_survives_reduce_path() {
        // The fused partial must survive the wire codec used by reduce.
        let k = fused();
        let mut acc = k.identity();
        k.map(&mut acc, 0, &[1.0, 2.0, 3.0]);
        let (back, _) = Partial::from_words(&acc.to_words());
        assert_eq!(back, acc);
    }

    #[test]
    #[should_panic]
    fn empty_fusion_panics() {
        let _ = FusedKernel::new(vec![]);
    }
}
