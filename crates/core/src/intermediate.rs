//! Intermediate results and their logical metadata.
//!
//! After the map, an aggregator holds one [`Partial`] per requesting rank,
//! tagged with the owner and accounting for the logical-run metadata the
//! runtime had to carry (the storage overhead of the paper's Fig. 12).
//! [`IntermediateSet`] is that store plus the wire codec used by both
//! reduce topologies.

use std::collections::BTreeMap;

use crate::kernel::{MapKernel, Partial};

/// One aggregator's per-owner intermediate results.
#[derive(Debug, Clone, Default)]
pub struct IntermediateSet {
    /// Owner rank -> accumulated partial. `BTreeMap` keeps iteration (and
    /// thus message layout and combine order) deterministic.
    by_owner: BTreeMap<usize, Partial>,
    /// Logical-run metadata entries created while mapping.
    pub metadata_entries: u64,
    /// Bytes those metadata entries occupy.
    pub metadata_bytes: u64,
}

impl IntermediateSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The partial for `owner`, created from `kernel`'s identity on first
    /// touch.
    pub fn partial_mut(&mut self, owner: usize, kernel: &dyn MapKernel) -> &mut Partial {
        self.by_owner
            .entry(owner)
            .or_insert_with(|| kernel.identity())
    }

    /// Records `entries` metadata records of `bytes` total.
    pub fn note_metadata(&mut self, entries: u64, bytes: u64) {
        self.metadata_entries += entries;
        self.metadata_bytes += bytes;
    }

    /// Owners with results, ascending.
    pub fn owners(&self) -> impl Iterator<Item = usize> + '_ {
        self.by_owner.keys().copied()
    }

    /// The partial for `owner`, if any.
    pub fn get(&self, owner: usize) -> Option<&Partial> {
        self.by_owner.get(&owner)
    }

    /// Number of owners with results.
    pub fn len(&self) -> usize {
        self.by_owner.len()
    }

    /// Whether no owner has results.
    pub fn is_empty(&self) -> bool {
        self.by_owner.is_empty()
    }

    /// Serializes all (owner, partial) pairs: `[n, owner, partial...]*`.
    pub fn encode_all(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.encode_all_into(&mut out);
        out
    }

    /// [`encode_all`](Self::encode_all) into a caller-owned buffer, cleared
    /// and sized in one reservation, so the shuffle path serializes the
    /// whole set without reallocating.
    pub fn encode_all_into(&self, out: &mut Vec<u64>) {
        out.clear();
        let total: usize = self.by_owner.values().map(|p| 1 + p.words_len()).sum();
        out.reserve(1 + total);
        out.push(self.by_owner.len() as u64);
        for (owner, p) in &self.by_owner {
            out.push(*owner as u64);
            p.write_words_into(out);
        }
    }

    /// Serializes just `owner`'s entry (for all-to-all shuffling); empty
    /// vector if absent.
    pub fn encode_owner(&self, owner: usize) -> Vec<u64> {
        let mut out = Vec::new();
        self.encode_owner_into(owner, &mut out);
        out
    }

    /// [`encode_owner`](Self::encode_owner) into a caller-owned buffer,
    /// cleared first.
    pub fn encode_owner_into(&self, owner: usize, out: &mut Vec<u64>) {
        out.clear();
        match self.by_owner.get(&owner) {
            Some(p) => {
                out.reserve(2 + p.words_len());
                out.push(1);
                out.push(owner as u64);
                p.write_words_into(out);
            }
            None => out.push(0),
        }
    }

    /// Decodes [`encode_all`](Self::encode_all)/
    /// [`encode_owner`](Self::encode_owner) output into (owner, partial)
    /// pairs.
    ///
    /// # Panics
    /// Panics on a malformed buffer.
    pub fn decode(words: &[u64]) -> Vec<(usize, Partial)> {
        assert!(!words.is_empty(), "empty intermediate message");
        let n = words[0] as usize;
        let mut out = Vec::with_capacity(n);
        let mut pos = 1;
        for _ in 0..n {
            assert!(pos < words.len(), "truncated intermediate message");
            let owner = words[pos] as usize;
            pos += 1;
            let (p, used) = Partial::from_words(&words[pos..]);
            pos += used;
            out.push((owner, p));
        }
        assert_eq!(pos, words.len(), "trailing bytes in intermediate message");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SumKernel;

    #[test]
    fn partials_accumulate_per_owner() {
        let mut set = IntermediateSet::new();
        let k = SumKernel;
        k.map(set.partial_mut(2, &k), 0, &[1.0, 2.0]);
        k.map(set.partial_mut(0, &k), 0, &[10.0]);
        k.map(set.partial_mut(2, &k), 5, &[3.0]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(2).unwrap().values[0], 6.0);
        assert_eq!(set.get(2).unwrap().count, 3);
        assert_eq!(set.owners().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn encode_all_roundtrip() {
        let mut set = IntermediateSet::new();
        let k = SumKernel;
        k.map(set.partial_mut(1, &k), 0, &[4.0]);
        k.map(set.partial_mut(3, &k), 0, &[5.0, 6.0]);
        let pairs = IntermediateSet::decode(&set.encode_all());
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, 1);
        assert_eq!(pairs[0].1.values[0], 4.0);
        assert_eq!(pairs[1].0, 3);
        assert_eq!(pairs[1].1.count, 2);
    }

    #[test]
    fn encode_owner_roundtrip_and_missing() {
        let mut set = IntermediateSet::new();
        let k = SumKernel;
        k.map(set.partial_mut(7, &k), 0, &[1.0]);
        let present = IntermediateSet::decode(&set.encode_owner(7));
        assert_eq!(present.len(), 1);
        assert_eq!(present[0].0, 7);
        let absent = IntermediateSet::decode(&set.encode_owner(4));
        assert!(absent.is_empty());
    }

    #[test]
    fn metadata_accumulates() {
        let mut set = IntermediateSet::new();
        set.note_metadata(3, 120);
        set.note_metadata(1, 40);
        assert_eq!(set.metadata_entries, 4);
        assert_eq!(set.metadata_bytes, 160);
    }

    #[test]
    #[should_panic]
    fn trailing_garbage_panics() {
        let mut words = vec![0u64];
        words.push(99);
        let _ = IntermediateSet::decode(&words);
    }
}
