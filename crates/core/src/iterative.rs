//! Iterative collective computing — the paper's named future work.
//!
//! Many analyses sweep a sequence of selections (time steps of a
//! simulation, variables of a dataset) and fold the per-step results into
//! one running answer. [`iterative_get_vara`] runs one object I/O per
//! step and combines the global partials with the kernel itself, so the
//! whole sweep behaves like a single reduction; per-step results are also
//! returned for trend analyses (e.g. storm intensity over time).

use cc_array::Variable;
use cc_mpi::{Comm, CommStats};
use cc_mpiio::{PlanCache, PlanCacheStats, PlanSource, SharedPlanCache};
use cc_pfs::{FileHandle, OstBalance, Pfs};

use crate::engine::{object_get_vara_planned, CcOutcome};
use crate::kernel::{MapKernel, Partial};
use crate::object::ObjectIo;

/// The result of an iterative sweep.
#[derive(Debug, Clone)]
pub struct IterativeOutcome {
    /// The fold of all steps' global results — present at the reduce root.
    pub global: Option<Vec<f64>>,
    /// Each step's own global result, in step order — present at the root.
    pub per_step: Option<Vec<Vec<f64>>>,
    /// Every step's full outcome (reports etc.), in step order.
    pub steps: Vec<CcOutcome>,
    /// How the sweep's plan cache was exercised: the canonical timestep
    /// sweep compiles step 0 and hits or translates every later step.
    pub plan_cache: PlanCacheStats,
    /// Cumulative per-OST load balance of the file system after the sweep
    /// (busiest/mean busy-seconds): how evenly the chosen domain-partition
    /// strategy spread the sweep's reads over the OSTs.
    pub ost_balance: OstBalance,
    /// This rank's communication counters over the sweep alone (a delta
    /// against the communicator's state at entry). The per-lane
    /// `logical_*` vs `bytes_*` gap is exactly the compression saving:
    /// with `Hints::compression` off they are equal; with a codec on, the
    /// inter-node lane's wire bytes fall below its logical bytes.
    pub comm: CommStats,
}

/// Runs `kernel` over a sequence of `(variable, selection)` steps and
/// folds the per-step partials into one running global. Must be called by
/// all ranks with identical step sequences; each rank supplies its own
/// selections inside the [`ObjectIo`]s.
pub fn iterative_get_vara(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    steps: &[(&Variable, ObjectIo)],
    kernel: &dyn MapKernel,
) -> IterativeOutcome {
    // One plan cache spans the sweep: steps that repeat (or merely shift)
    // the access shape reuse the compiled schedule instead of replanning.
    let mut plans = PlanCache::new();
    iterative_get_vara_planned(comm, pfs, file, steps, kernel, &mut PlanSource::Local(&mut plans))
}

/// [`iterative_get_vara`] drawing schedules from a process-wide
/// [`SharedPlanCache`] on behalf of job `job` — the multi-job service's
/// entry point. Sweeps of different jobs issuing the same hyperslab shapes
/// (same rank count, topology, hints, striping) share one compiled
/// schedule; the outcome's `plan_cache` reports only *this* sweep's
/// lookups, with the cross-job subsets filled in.
pub fn iterative_get_vara_shared(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    steps: &[(&Variable, ObjectIo)],
    kernel: &dyn MapKernel,
    cache: &SharedPlanCache,
    job: u64,
) -> IterativeOutcome {
    iterative_get_vara_planned(comm, pfs, file, steps, kernel, &mut PlanSource::shared(cache, job))
}

/// The common sweep body over an explicit [`PlanSource`].
pub fn iterative_get_vara_planned(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    steps: &[(&Variable, ObjectIo)],
    kernel: &dyn MapKernel,
    plans: &mut PlanSource<'_>,
) -> IterativeOutcome {
    assert!(!steps.is_empty(), "iterative sweep needs at least one step");
    let comm_since = comm.stats();
    let mut outcomes = Vec::with_capacity(steps.len());
    let mut folded: Option<Partial> = None;
    let mut per_step: Vec<Vec<f64>> = Vec::new();
    let mut at_root = false;
    for (step_idx, (var, io)) in steps.iter().enumerate() {
        let out = object_get_vara_planned(comm, pfs, file, var, io, kernel, plans);
        if let Some(p) = &out.global_partial {
            at_root = true;
            let Some(global) = out.global.clone() else {
                // A malformed engine outcome would otherwise strand the
                // sweep's peers mid-collective; panic with enough context
                // for the supervisor's abort report to place the failure.
                panic!(
                    "rank {}: sweep step {step_idx}/{} produced a global \
                     partial without its finalized global",
                    comm.rank(),
                    steps.len(),
                );
            };
            per_step.push(global);
            // Fold the raw partials, which is exact for every kernel
            // (finalized outputs of kernels like `mean` cannot be folded).
            match &mut folded {
                Some(acc) => kernel.combine(acc, p),
                acc => *acc = Some(p.clone()),
            }
        }
        outcomes.push(out);
    }
    IterativeOutcome {
        global: at_root.then(|| {
            let Some(acc) = folded.as_ref() else {
                panic!(
                    "rank {}: sweep marked at-root after {} steps but folded \
                     no partial",
                    comm.rank(),
                    steps.len(),
                );
            };
            kernel.finalize(acc)
        }),
        per_step: at_root.then_some(per_step),
        steps: outcomes,
        plan_cache: plans.seen(),
        ost_balance: pfs.ost_balance(),
        comm: comm.stats().delta(&comm_since),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{MinLocKernel, SumKernel};
    use crate::object::ReduceMode;
    use cc_array::{DType, Shape};
    use cc_model::{ClusterModel, DiskModel, Topology};
    use cc_mpi::World;
    use cc_pfs::backend::{ElemKind, SyntheticBackend};
    use cc_pfs::{Pfs, StripeLayout};
    use std::sync::Arc;

    fn value(i: u64) -> f64 {
        ((i * 13 + 5) % 211) as f64 - 100.0
    }

    fn setup(elems: u64) -> (Arc<Pfs>, Variable) {
        let fs = Pfs::new(4, DiskModel::lustre_like());
        let var = Variable::new("v", Shape::new(vec![8, elems / 8]), DType::F64, 0);
        fs.create(
            "d",
            StripeLayout::round_robin(512, 4, 0, 4),
            Box::new(SyntheticBackend::new(elems, ElemKind::F64, value)),
        );
        (Arc::new(fs), var)
    }

    #[test]
    fn sweep_of_sums_equals_total_sum() {
        // 4 steps each covering 2 rows: the folded global must equal the
        // sum over the whole variable.
        let (fs, var) = setup(256);
        let mut model = ClusterModel::test_tiny(2);
        model.topology = Topology::new(1, 2);
        let world = World::new(2, model);
        let fs = &fs;
        let var = &var;
        let results = world.run(move |comm| {
            let file = fs.open("d").expect("exists");
            let steps: Vec<(&Variable, ObjectIo)> = (0..4u64)
                .map(|step| {
                    // Within each step, rank r reads one of the two rows.
                    let io = ObjectIo::new(
                        vec![step * 2 + comm.rank() as u64, 0],
                        vec![1, 32],
                    );
                    (var, io)
                })
                .collect();
            iterative_get_vara(comm, fs, &file, &steps, &SumKernel)
        });
        let expect: f64 = (0..256).map(value).sum();
        let got = results[0].global.as_ref().expect("root folded");
        assert!((got[0] - expect).abs() < 1e-9 * expect.abs().max(1.0));
        // Per-step results partition the total.
        let steps = results[0].per_step.as_ref().expect("per-step at root");
        assert_eq!(steps.len(), 4);
        let step_total: f64 = steps.iter().map(|s| s[0]).sum();
        assert!((step_total - expect).abs() < 1e-9 * expect.abs().max(1.0));
        // The sweep surfaces the file system's cumulative OST balance.
        let bal = &results[0].ost_balance;
        assert_eq!(bal.osts, 4);
        assert!(bal.imbalance >= 1.0 - 1e-12, "imbalance {}", bal.imbalance);
        assert!(bal.busiest_secs > 0.0);
        // And this rank's comm counters for the sweep alone. Compression
        // is off here, so every lane's logical bytes equal its wire bytes.
        let comm = &results[0].comm;
        assert!(comm.msgs_sent > 0, "sweep moved no messages");
        assert_eq!(comm.logical_intra, comm.bytes_intra);
        assert_eq!(comm.logical_inter, comm.bytes_inter);
        assert_eq!(comm.logical_self, comm.bytes_self);
    }

    #[test]
    fn sweep_minloc_tracks_global_minimum() {
        let (fs, var) = setup(256);
        let world = World::new(2, ClusterModel::test_tiny(2));
        let fs = &fs;
        let var = &var;
        let results = world.run(move |comm| {
            let file = fs.open("d").expect("exists");
            let steps: Vec<(&Variable, ObjectIo)> = (0..4u64)
                .map(|step| {
                    let io = ObjectIo::new(
                        vec![step * 2 + comm.rank() as u64, 0],
                        vec![1, 32],
                    )
                    .reduce(ReduceMode::AllToOne { root: 0 });
                    (var, io)
                })
                .collect();
            iterative_get_vara(comm, fs, &file, &steps, &MinLocKernel)
        });
        let (mut ev, mut ei) = (f64::INFINITY, 0u64);
        for i in 0..256 {
            if value(i) < ev {
                ev = value(i);
                ei = i;
            }
        }
        let got = results[0].global.as_ref().expect("root folded");
        assert_eq!(got[0], ev);
        assert_eq!(got[1], ei as f64);
    }

    #[test]
    fn virtual_time_advances_across_steps() {
        let (fs, var) = setup(128);
        let world = World::new(2, ClusterModel::test_tiny(2));
        let fs = &fs;
        let var = &var;
        let results = world.run(move |comm| {
            let file = fs.open("d").expect("exists");
            let steps: Vec<(&Variable, ObjectIo)> = (0..3u64)
                .map(|s| {
                    (
                        var,
                        ObjectIo::new(vec![s * 2 + comm.rank() as u64, 0], vec![1, 16]),
                    )
                })
                .collect();
            iterative_get_vara(comm, fs, &file, &steps, &SumKernel)
        });
        for out in &results {
            for w in out.steps.windows(2) {
                assert!(w[1].report.start >= w[0].report.end);
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_sweep_panics() {
        let (fs, _var) = setup(64);
        let world = World::new(1, ClusterModel::test_tiny(1));
        let fs = &fs;
        world.run(move |comm| {
            let file = fs.open("d").expect("exists");
            let _ = iterative_get_vara(comm, fs, &file, &[], &SumKernel);
        });
    }
}
