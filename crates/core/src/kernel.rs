//! Map kernels: the user computation carried by object I/O.
//!
//! A kernel folds runs of decoded values into a small [`Partial`]
//! accumulator, combines partials associatively, and finalizes to the
//! user-visible result. The same kernel drives both the collective-
//! computing engine (mapping mid-collective at aggregators) and the
//! traditional baseline (mapping after the read), so comparisons are
//! apples-to-apples. Kernels receive the linear element index of each run's
//! first value, so positional analyses (the WRF "where is the pressure
//! minimum" task) work even though the data arrives as anonymous runs.

use cc_compress::Tolerance;
use cc_mpi::ops::ReduceOp;

/// A small, fixed-shape accumulator: a handful of values plus an element
/// count. All partials of one kernel have the same `values` length, which
/// is what lets them ride `MPI_Reduce`-style collectives.
#[derive(Debug, Clone, PartialEq)]
pub struct Partial {
    /// Kernel-defined slots (a sum, a min and its location, ...).
    pub values: Vec<f64>,
    /// Elements folded into this partial.
    pub count: u64,
}

impl Partial {
    /// A partial with the given slots and zero count.
    pub fn new(values: Vec<f64>) -> Self {
        Self { values, count: 0 }
    }

    /// Serializes to words (bit-exact) for the wire: `[count, n, bits...]`.
    pub fn to_words(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.words_len());
        self.write_words_into(&mut out);
        out
    }

    /// Words [`to_words`](Self::to_words) produces for this partial.
    pub fn words_len(&self) -> usize {
        self.values.len() + 2
    }

    /// Appends the wire encoding to `out` without clearing it, so callers
    /// batch many partials into one reused buffer. Identical output to
    /// [`to_words`](Self::to_words).
    pub fn write_words_into(&self, out: &mut Vec<u64>) {
        out.reserve(self.words_len());
        out.push(self.count);
        out.push(self.values.len() as u64);
        out.extend(self.values.iter().map(|v| v.to_bits()));
    }

    /// Deserializes [`to_words`](Self::to_words) output; returns the partial
    /// and the words consumed.
    ///
    /// # Panics
    /// Panics on a truncated buffer.
    pub fn from_words(words: &[u64]) -> (Self, usize) {
        assert!(words.len() >= 2, "truncated partial");
        let count = words[0];
        let n = words[1] as usize;
        assert!(words.len() >= 2 + n, "truncated partial values");
        let values = words[2..2 + n].iter().map(|&b| f64::from_bits(b)).collect();
        (Self { values, count }, 2 + n)
    }
}

/// A user computation pushed into the collective (the paper's object-I/O
/// operator, `MPI_Op_create` analogue).
///
/// `combine` must be associative and commutative so partials can be reduced
/// in any tree order.
pub trait MapKernel: Send + Sync {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// The identity accumulator.
    fn identity(&self) -> Partial;

    /// Folds a run of values into `acc`. `start_elem` is the linear element
    /// index (in the variable) of `values[0]`; consecutive values are
    /// consecutive elements.
    fn map(&self, acc: &mut Partial, start_elem: u64, values: &[f64]);

    /// Merges `other` into `acc`.
    fn combine(&self, acc: &mut Partial, other: &Partial);

    /// Produces the user-visible result.
    fn finalize(&self, acc: &Partial) -> Vec<f64>;

    /// How this kernel tolerates error-bounded lossy compression of the
    /// field bytes it consumes. Defaults to [`Tolerance::Exact`] — the
    /// safe class: selection kernels (min/max and their located variants)
    /// can return the *wrong winner or index* if a near-tie is perturbed
    /// within the bound, so the engine clamps `ErrorBounded` hints to
    /// lossless for them. Smooth accumulations (sum, mean, moments) opt
    /// in to [`Tolerance::BoundedError`]: a per-element error `<= eb`
    /// moves an n-element sum by at most `n * eb`.
    fn tolerance(&self) -> Tolerance {
        Tolerance::Exact
    }
}

/// Sum of all elements.
pub struct SumKernel;

impl MapKernel for SumKernel {
    fn name(&self) -> &'static str {
        "sum"
    }

    fn identity(&self) -> Partial {
        Partial::new(vec![0.0])
    }

    fn map(&self, acc: &mut Partial, _start_elem: u64, values: &[f64]) {
        acc.values[0] += values.iter().sum::<f64>();
        acc.count += values.len() as u64;
    }

    fn combine(&self, acc: &mut Partial, other: &Partial) {
        acc.values[0] += other.values[0];
        acc.count += other.count;
    }

    fn finalize(&self, acc: &Partial) -> Vec<f64> {
        vec![acc.values[0]]
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::BoundedError
    }
}

/// Minimum element value.
pub struct MinKernel;

impl MapKernel for MinKernel {
    fn name(&self) -> &'static str {
        "min"
    }

    fn identity(&self) -> Partial {
        Partial::new(vec![f64::INFINITY])
    }

    fn map(&self, acc: &mut Partial, _start_elem: u64, values: &[f64]) {
        // Fold in a register, not through the Vec: one store per run.
        let mut best = acc.values[0];
        for &v in values {
            if v < best {
                best = v;
            }
        }
        acc.values[0] = best;
        acc.count += values.len() as u64;
    }

    fn combine(&self, acc: &mut Partial, other: &Partial) {
        if other.values[0] < acc.values[0] {
            acc.values[0] = other.values[0];
        }
        acc.count += other.count;
    }

    fn finalize(&self, acc: &Partial) -> Vec<f64> {
        vec![acc.values[0]]
    }
}

/// Maximum element value.
pub struct MaxKernel;

impl MapKernel for MaxKernel {
    fn name(&self) -> &'static str {
        "max"
    }

    fn identity(&self) -> Partial {
        Partial::new(vec![f64::NEG_INFINITY])
    }

    fn map(&self, acc: &mut Partial, _start_elem: u64, values: &[f64]) {
        let mut best = acc.values[0];
        for &v in values {
            if v > best {
                best = v;
            }
        }
        acc.values[0] = best;
        acc.count += values.len() as u64;
    }

    fn combine(&self, acc: &mut Partial, other: &Partial) {
        if other.values[0] > acc.values[0] {
            acc.values[0] = other.values[0];
        }
        acc.count += other.count;
    }

    fn finalize(&self, acc: &Partial) -> Vec<f64> {
        vec![acc.values[0]]
    }
}

/// Arithmetic mean (sum and count travel; division happens at finalize).
pub struct MeanKernel;

impl MapKernel for MeanKernel {
    fn name(&self) -> &'static str {
        "mean"
    }

    fn identity(&self) -> Partial {
        Partial::new(vec![0.0])
    }

    fn map(&self, acc: &mut Partial, _start_elem: u64, values: &[f64]) {
        acc.values[0] += values.iter().sum::<f64>();
        acc.count += values.len() as u64;
    }

    fn combine(&self, acc: &mut Partial, other: &Partial) {
        acc.values[0] += other.values[0];
        acc.count += other.count;
    }

    fn finalize(&self, acc: &Partial) -> Vec<f64> {
        if acc.count == 0 {
            vec![f64::NAN]
        } else {
            vec![acc.values[0] / acc.count as f64]
        }
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::BoundedError
    }
}

/// Element count (useful for coverage checks and selectivity studies).
pub struct CountKernel;

impl MapKernel for CountKernel {
    fn name(&self) -> &'static str {
        "count"
    }

    fn identity(&self) -> Partial {
        Partial::new(vec![])
    }

    fn map(&self, acc: &mut Partial, _start_elem: u64, values: &[f64]) {
        acc.count += values.len() as u64;
    }

    fn combine(&self, acc: &mut Partial, other: &Partial) {
        acc.count += other.count;
    }

    fn finalize(&self, acc: &Partial) -> Vec<f64> {
        vec![acc.count as f64]
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::BoundedError
    }
}

/// Minimum value and the linear element index where it occurs — the WRF
/// "min sea-level pressure (and where)" task. Ties resolve to the lowest
/// index, which keeps the kernel associative-commutative and deterministic.
pub struct MinLocKernel;

impl MapKernel for MinLocKernel {
    fn name(&self) -> &'static str {
        "minloc"
    }

    fn identity(&self) -> Partial {
        Partial::new(vec![f64::INFINITY, -1.0])
    }

    fn map(&self, acc: &mut Partial, start_elem: u64, values: &[f64]) {
        // A running f64 index replaces per-element integer→float
        // conversion; exact for indices below 2^53, same as the cast.
        let mut best = acc.values[0];
        let mut best_idx = acc.values[1];
        let mut idx = start_elem as f64;
        for &v in values {
            if v < best || (v == best && idx < best_idx) {
                best = v;
                best_idx = idx;
            }
            idx += 1.0;
        }
        acc.values[0] = best;
        acc.values[1] = best_idx;
        acc.count += values.len() as u64;
    }

    fn combine(&self, acc: &mut Partial, other: &Partial) {
        let better = other.values[0] < acc.values[0]
            || (other.values[0] == acc.values[0]
                && other.values[1] >= 0.0
                && (acc.values[1] < 0.0 || other.values[1] < acc.values[1]));
        if better {
            acc.values[0] = other.values[0];
            acc.values[1] = other.values[1];
        }
        acc.count += other.count;
    }

    fn finalize(&self, acc: &Partial) -> Vec<f64> {
        vec![acc.values[0], acc.values[1]]
    }
}

/// Maximum value and its linear element index — the WRF "max 10 m wind
/// speed" task.
pub struct MaxLocKernel;

impl MapKernel for MaxLocKernel {
    fn name(&self) -> &'static str {
        "maxloc"
    }

    fn identity(&self) -> Partial {
        Partial::new(vec![f64::NEG_INFINITY, -1.0])
    }

    fn map(&self, acc: &mut Partial, start_elem: u64, values: &[f64]) {
        let mut best = acc.values[0];
        let mut best_idx = acc.values[1];
        let mut idx = start_elem as f64;
        for &v in values {
            if v > best || (v == best && idx < best_idx) {
                best = v;
                best_idx = idx;
            }
            idx += 1.0;
        }
        acc.values[0] = best;
        acc.values[1] = best_idx;
        acc.count += values.len() as u64;
    }

    fn combine(&self, acc: &mut Partial, other: &Partial) {
        let better = other.values[0] > acc.values[0]
            || (other.values[0] == acc.values[0]
                && other.values[1] >= 0.0
                && (acc.values[1] < 0.0 || other.values[1] < acc.values[1]));
        if better {
            acc.values[0] = other.values[0];
            acc.values[1] = other.values[1];
        }
        acc.count += other.count;
    }

    fn finalize(&self, acc: &Partial) -> Vec<f64> {
        vec![acc.values[0], acc.values[1]]
    }
}

/// Sum and sum of squares (first two moments; variance at finalize).
pub struct SumSqKernel;

impl MapKernel for SumSqKernel {
    fn name(&self) -> &'static str {
        "sumsq"
    }

    fn identity(&self) -> Partial {
        Partial::new(vec![0.0, 0.0])
    }

    fn map(&self, acc: &mut Partial, _start_elem: u64, values: &[f64]) {
        let mut sum = acc.values[0];
        let mut sumsq = acc.values[1];
        for &v in values {
            sum += v;
            sumsq += v * v;
        }
        acc.values[0] = sum;
        acc.values[1] = sumsq;
        acc.count += values.len() as u64;
    }

    fn combine(&self, acc: &mut Partial, other: &Partial) {
        acc.values[0] += other.values[0];
        acc.values[1] += other.values[1];
        acc.count += other.count;
    }

    fn finalize(&self, acc: &Partial) -> Vec<f64> {
        // [mean, variance]
        if acc.count == 0 {
            return vec![f64::NAN, f64::NAN];
        }
        let n = acc.count as f64;
        let mean = acc.values[0] / n;
        vec![mean, acc.values[1] / n - mean * mean]
    }

    fn tolerance(&self) -> Tolerance {
        Tolerance::BoundedError
    }
}

/// Adapter letting word-encoded partials ride the MPI reduce collectives:
/// the traditional baseline's `MPI_Reduce` with a user op (Fig. 5, line 8).
pub struct PartialReduceOp<'a>(pub &'a dyn MapKernel);

impl ReduceOp<u64> for PartialReduceOp<'_> {
    fn combine(&self, acc: &mut [u64], incoming: &[u64]) {
        let (mut a, used_a) = Partial::from_words(acc);
        let (b, used_b) = Partial::from_words(incoming);
        assert_eq!(used_a, acc.len(), "partial word length mismatch");
        assert_eq!(used_b, incoming.len(), "partial word length mismatch");
        self.0.combine(&mut a, &b);
        assert_eq!(a.words_len(), acc.len(), "combine changed partial shape");
        acc[0] = a.count;
        acc[1] = a.values.len() as u64;
        for (slot, v) in acc[2..].iter_mut().zip(&a.values) {
            *slot = v.to_bits();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fold(kernel: &dyn MapKernel, values: &[f64]) -> Vec<f64> {
        let mut acc = kernel.identity();
        kernel.map(&mut acc, 0, values);
        kernel.finalize(&acc)
    }

    #[test]
    fn sum_min_max_mean_count() {
        let v = [3.0, -1.0, 4.0, 1.5];
        assert_eq!(fold(&SumKernel, &v), vec![7.5]);
        assert_eq!(fold(&MinKernel, &v), vec![-1.0]);
        assert_eq!(fold(&MaxKernel, &v), vec![4.0]);
        assert_eq!(fold(&MeanKernel, &v), vec![7.5 / 4.0]);
        assert_eq!(fold(&CountKernel, &v), vec![4.0]);
    }

    #[test]
    fn minloc_tracks_position() {
        let mut acc = MinLocKernel.identity();
        MinLocKernel.map(&mut acc, 100, &[5.0, 2.0, 7.0]);
        MinLocKernel.map(&mut acc, 500, &[2.0, 9.0]);
        // 2.0 occurs at elems 101 and 500; ties take the lower index.
        assert_eq!(MinLocKernel.finalize(&acc), vec![2.0, 101.0]);
    }

    #[test]
    fn maxloc_tracks_position() {
        let mut acc = MaxLocKernel.identity();
        MaxLocKernel.map(&mut acc, 10, &[5.0, 8.0]);
        MaxLocKernel.map(&mut acc, 0, &[8.0]);
        assert_eq!(MaxLocKernel.finalize(&acc), vec![8.0, 0.0]);
    }

    #[test]
    fn sumsq_gives_mean_and_variance() {
        let out = fold(&SumSqKernel, &[1.0, 3.0]);
        assert_eq!(out[0], 2.0);
        assert_eq!(out[1], 1.0);
    }

    #[test]
    fn mean_of_nothing_is_nan() {
        let k = MeanKernel;
        let out = k.finalize(&k.identity());
        assert!(out[0].is_nan());
    }

    #[test]
    fn partial_word_roundtrip() {
        let p = Partial {
            values: vec![1.5, -0.0, f64::INFINITY],
            count: 42,
        };
        let (q, used) = Partial::from_words(&p.to_words());
        assert_eq!(used, 5);
        assert_eq!(q.count, 42);
        assert_eq!(q.values[0], 1.5);
        assert!(q.values[1] == 0.0 && q.values[1].is_sign_negative());
        assert_eq!(q.values[2], f64::INFINITY);
    }

    #[test]
    fn partial_reduce_op_combines_through_words() {
        let k = SumKernel;
        let mut a = Partial::new(vec![10.0]);
        a.count = 2;
        let mut b = Partial::new(vec![5.0]);
        b.count = 3;
        let mut words = a.to_words();
        PartialReduceOp(&k).combine(&mut words, &b.to_words());
        let (c, _) = Partial::from_words(&words);
        assert_eq!(c.values[0], 15.0);
        assert_eq!(c.count, 5);
    }

    /// All kernels under one roof for generic law tests.
    fn all_kernels() -> Vec<Box<dyn MapKernel>> {
        vec![
            Box::new(SumKernel),
            Box::new(MinKernel),
            Box::new(MaxKernel),
            Box::new(MeanKernel),
            Box::new(CountKernel),
            Box::new(MinLocKernel),
            Box::new(MaxLocKernel),
            Box::new(SumSqKernel),
        ]
    }

    proptest! {
        #[test]
        fn prop_split_map_equals_whole_map(
            values in proptest::collection::vec(-100.0f64..100.0, 1..40),
            split in 0usize..40,
        ) {
            // Mapping a run in one piece or two must agree (up to fp
            // rounding in sums; exact for order stable folds like these).
            let split = split.min(values.len());
            for k in all_kernels() {
                let mut whole = k.identity();
                k.map(&mut whole, 7, &values);
                let mut parts = k.identity();
                k.map(&mut parts, 7, &values[..split]);
                k.map(&mut parts, 7 + split as u64, &values[split..]);
                prop_assert_eq!(whole.count, parts.count, "kernel {}", k.name());
                for (a, b) in whole.values.iter().zip(&parts.values) {
                    prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0),
                        "kernel {}: {a} vs {b}", k.name());
                }
            }
        }

        #[test]
        fn prop_combine_is_commutative(
            v1 in proptest::collection::vec(-50.0f64..50.0, 1..20),
            v2 in proptest::collection::vec(-50.0f64..50.0, 1..20),
        ) {
            for k in all_kernels() {
                let mut a = k.identity();
                k.map(&mut a, 0, &v1);
                let mut b = k.identity();
                k.map(&mut b, 1000, &v2);
                let mut ab = a.clone();
                k.combine(&mut ab, &b);
                let mut ba = b.clone();
                k.combine(&mut ba, &a);
                prop_assert_eq!(ab.count, ba.count);
                for (x, y) in ab.values.iter().zip(&ba.values) {
                    prop_assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0),
                        "kernel {} not commutative: {x} vs {y}", k.name());
                }
            }
        }

        #[test]
        fn prop_identity_is_neutral(
            values in proptest::collection::vec(-50.0f64..50.0, 1..20),
        ) {
            for k in all_kernels() {
                let mut a = k.identity();
                k.map(&mut a, 3, &values);
                let mut with_id = a.clone();
                k.combine(&mut with_id, &k.identity());
                prop_assert_eq!(&with_id.count, &a.count);
                prop_assert_eq!(&with_id.values, &a.values, "kernel {}", k.name());
            }
        }
    }
}
