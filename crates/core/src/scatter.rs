//! Per-task result scatter: fold each task's kernel out of a fused
//! collective buffer, bit-identical to a solo execution.
//!
//! The task-fusion layer reads the *union* of many task requests in one
//! collective sweep. This module projects each task's bytes back out of
//! that fused buffer and folds its kernel over them. Bit-identity with
//! solo execution holds by construction: a fused pattern is a set of
//! maximal disjoint non-adjacent runs, so every task extent lies inside
//! exactly one run ([`cc_mpiio::project_extent`] panics otherwise), and
//! the kernel therefore sees the same `map(start_elem, values)` call
//! sequence — same run boundaries, same value order, same floating-point
//! fold order — as an independent read of the task alone.

use cc_array::Variable;
use cc_mpiio::{project_extent, OffsetList};

use crate::kernel::{MapKernel, Partial};

/// Folds `kernel` over the bytes of `request`, as returned by any read
/// that delivers the request in buffer order (independent or collective).
/// `values` is caller-owned decode scratch, reused across tasks.
///
/// # Panics
/// Panics with the task id if `bytes` does not match the request size —
/// a torn read would otherwise fold garbage silently.
pub fn fold_task_bytes(
    task_id: u64,
    var: &Variable,
    request: &OffsetList,
    bytes: &[u8],
    kernel: &dyn MapKernel,
    values: &mut Vec<f64>,
) -> Partial {
    assert!(
        bytes.len() as u64 == request.total_bytes(),
        "task {task_id}: read returned {} bytes for a {}-byte request",
        bytes.len(),
        request.total_bytes(),
    );
    let mut acc = kernel.identity();
    let mut cursor = 0usize;
    for e in request.extents() {
        let len = e.len as usize;
        var.dtype().decode_into(&bytes[cursor..cursor + len], values);
        kernel.map(&mut acc, var.elem_of_byte(e.offset), values);
        cursor += len;
    }
    acc
}

/// Folds `kernel` over one task's bytes *as sliced out of a fused
/// buffer*: `fused_bytes` holds the fused request in buffer order, and
/// each task extent is projected to its single covering piece. Produces
/// the identical partial to [`fold_task_bytes`] over a solo read of
/// `task` — the call sequence into the kernel is the same.
///
/// # Panics
/// Panics with the task id if the task is not fully contained in the
/// fused pattern (see [`cc_mpiio::project_extent`]) or if `fused_bytes`
/// does not match the fused request size.
pub fn fold_task_from_fused(
    task_id: u64,
    var: &Variable,
    task: &OffsetList,
    fused: &OffsetList,
    fused_bytes: &[u8],
    kernel: &dyn MapKernel,
    values: &mut Vec<f64>,
) -> Partial {
    assert!(
        fused_bytes.len() as u64 == fused.total_bytes(),
        "task {task_id}: fused buffer holds {} bytes for a {}-byte pattern",
        fused_bytes.len(),
        fused.total_bytes(),
    );
    let mut acc = kernel.identity();
    for &e in task.extents() {
        let p = project_extent(task_id, e, fused);
        let at = p.buf_offset as usize;
        var.dtype()
            .decode_into(&fused_bytes[at..at + e.len as usize], values);
        kernel.map(&mut acc, var.elem_of_byte(e.offset), values);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{MinLocKernel, SumKernel};
    use cc_array::{DType, Shape};
    use cc_mpiio::fuse_extents;

    fn value(i: u64) -> f64 {
        ((i.wrapping_mul(37) ^ (i >> 2)) % 501) as f64 - 250.0
    }

    /// A 64-element f64 variable at base offset 40, with backing bytes.
    fn fixture() -> (Variable, Vec<u8>) {
        let var = Variable::new("v", Shape::new(vec![64]), DType::F64, 40);
        let mut file = vec![0u8; 40 + 64 * 8];
        for i in 0..64u64 {
            file[(40 + i * 8) as usize..(40 + i * 8 + 8) as usize]
                .copy_from_slice(&value(i).to_le_bytes());
        }
        (var, file)
    }

    fn solo_bytes(file: &[u8], req: &OffsetList) -> Vec<u8> {
        let mut out = Vec::new();
        for e in req.extents() {
            out.extend_from_slice(&file[e.offset as usize..e.end() as usize]);
        }
        out
    }

    #[test]
    fn fused_fold_bit_identical_to_solo_fold() {
        let (var, file) = fixture();
        // Three tasks: overlapping, disjoint, and an exact duplicate.
        let tasks = [
            OffsetList::new(vec![
                cc_mpiio::Extent { offset: 40, len: 32 },
                cc_mpiio::Extent { offset: 200, len: 48 },
            ]),
            OffsetList::new(vec![cc_mpiio::Extent { offset: 56, len: 64 }]),
            OffsetList::new(vec![
                cc_mpiio::Extent { offset: 40, len: 32 },
                cc_mpiio::Extent { offset: 200, len: 48 },
            ]),
        ];
        let (fused, _) = fuse_extents(tasks.iter());
        let fused_bytes = solo_bytes(&file, &fused);
        let mut scratch = Vec::new();
        for kernel in [&SumKernel as &dyn MapKernel, &MinLocKernel] {
            for (id, task) in tasks.iter().enumerate() {
                let solo = fold_task_bytes(
                    id as u64,
                    &var,
                    task,
                    &solo_bytes(&file, task),
                    kernel,
                    &mut scratch,
                );
                let fused_out = fold_task_from_fused(
                    id as u64,
                    &var,
                    task,
                    &fused,
                    &fused_bytes,
                    kernel,
                    &mut scratch,
                );
                // PartialEq over f64 slots: exact bits, not approximate.
                assert_eq!(solo, fused_out, "task {id} kernel {}", kernel.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "read returned")]
    fn torn_read_panics_with_task_context() {
        let (var, _) = fixture();
        let req = OffsetList::contiguous(40, 16);
        let mut scratch = Vec::new();
        let _ = fold_task_bytes(9, &var, &req, &[0u8; 8], &SumKernel, &mut scratch);
    }
}
