//! Collective computing: the paper's contribution.
//!
//! The two-phase collective I/O of [`cc_mpiio`] reads aggregated chunks and
//! shuffles *raw bytes* to the requesting ranks, which then compute. This
//! crate breaks that constraint open: a user computation (a [`MapKernel`],
//! the paper's "object I/O" operator of Fig. 6) is pushed *into* the
//! collective, applied by each aggregator to every chunk as soon as it is
//! read (the "map on logical subsets" of Fig. 8), and only small partial
//! results — tagged with owner and logical metadata — travel in the second
//! phase, where a reduce completes the analysis (Fig. 4).
//!
//! The crate also implements the traditional baseline (collective read →
//! compute → `MPI_Reduce`, the paper's Fig. 5) that every experiment
//! compares against, with identical kernels and cost accounting.
//!
//! # Node-parallel map
//!
//! The paper motivates collective computing with CPU profiles (Figs. 2-3)
//! showing compute cores mostly idle during collective I/O; the inserted
//! map soaks up exactly that idle capacity. Accordingly, the engine models
//! the per-aggregator map rate as using the node's share of cores
//! (`cores_per_node / aggregators_per_node`), which makes the total map
//! capacity equal to the baseline's compute capacity — the assumption under
//! which the paper's Fig. 9 speedup curve is reproducible.

#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod fused;
pub mod intermediate;
pub mod iterative;
pub mod kernel;
pub mod object;
pub mod scatter;
pub mod scratch;

pub use baseline::{traditional_get_vara, traditional_get_vara_partial, BaselineReport};
pub use iterative::{
    iterative_get_vara, iterative_get_vara_planned, iterative_get_vara_shared, IterativeOutcome,
};
pub use engine::{
    object_get_vara, object_get_vara_cached, object_get_vara_planned, CcOutcome, CcReport,
};
pub use fused::FusedKernel;
pub use intermediate::IntermediateSet;
pub use cc_compress::Tolerance;
pub use kernel::{
    CountKernel, MapKernel, MaxKernel, MaxLocKernel, MeanKernel, MinKernel, MinLocKernel,
    Partial, SumKernel, SumSqKernel,
};
pub use object::{IoMode, ObjectIo, ReduceMode};
pub use scatter::{fold_task_bytes, fold_task_from_fused};
pub use scratch::Scratch;
