//! Object I/O: the user-facing request descriptor of the paper's Fig. 6.
//!
//! ```text
//! io.start[0]  = (dim/nprocs)*rank;   ->  ObjectIo::new(start, count)
//! io.mode      = collective;          ->  .mode(IoMode::Collective)
//! io.block     = false;               ->  .blocking(false)
//! MPI_Op_create(compute, 1, &op);     ->  a MapKernel
//! ncmpi_object_get_vara_float(io,op); ->  object_get_vara(..., &io, &op)
//! ```

use cc_mpiio::Hints;

use crate::engine::default_root;

/// How the I/O phase runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Two-phase collective I/O (aggregators + shuffle).
    Collective,
    /// Each rank reads its own request directly.
    Independent,
}

/// How intermediate results are reduced (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceMode {
    /// All intermediate results go to one node, which constructs each
    /// process's partials and performs the final reduce.
    AllToOne {
        /// The collecting rank.
        root: usize,
    },
    /// Intermediate results are shuffled so each process gets its own
    /// partials and reduces locally; a final reduce then produces the
    /// global result at `root`. Costs more communication but leaves
    /// per-process results in place for further local processing.
    AllToAll {
        /// The rank holding the final global result.
        root: usize,
    },
}

impl ReduceMode {
    /// The rank that ends up with the global result.
    pub fn root(&self) -> usize {
        match *self {
            ReduceMode::AllToOne { root } | ReduceMode::AllToAll { root } => root,
        }
    }
}

/// An object-I/O request: access region, I/O mode, blocking flag, hints,
/// and reduce mode. The computation itself travels separately as a
/// [`MapKernel`](crate::MapKernel), mirroring the paper's split between the
/// I/O region and the `MPI_Op`.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectIo {
    /// Per-dimension selection start (the paper's `io.start`).
    pub start: Vec<u64>,
    /// Per-dimension selection count (the paper's `io.count`).
    pub count: Vec<u64>,
    /// I/O mode (the paper's `io.mode`).
    pub mode: IoMode,
    /// `true` reproduces traditional MPI-IO behaviour: compute only after
    /// the full read (the paper's `io.block = true` escape hatch).
    pub blocking: bool,
    /// Two-phase engine hints.
    pub hints: Hints,
    /// Reduce topology for the intermediate results.
    pub reduce: ReduceMode,
}

impl ObjectIo {
    /// A collective, non-blocking object I/O over the given selection with
    /// default hints and all-to-one reduce at rank 0 — the paper's default
    /// configuration.
    pub fn new(start: Vec<u64>, count: Vec<u64>) -> Self {
        assert_eq!(start.len(), count.len(), "start/count rank mismatch");
        Self {
            start,
            count,
            mode: IoMode::Collective,
            blocking: false,
            hints: Hints::default(),
            reduce: ReduceMode::AllToOne {
                root: default_root(),
            },
        }
    }

    /// Sets the I/O mode.
    pub fn mode(mut self, mode: IoMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the blocking flag.
    pub fn blocking(mut self, blocking: bool) -> Self {
        self.blocking = blocking;
        self
    }

    /// Sets the engine hints.
    pub fn hints(mut self, hints: Hints) -> Self {
        self.hints = hints;
        self
    }

    /// Sets the reduce mode.
    pub fn reduce(mut self, reduce: ReduceMode) -> Self {
        self.reduce = reduce;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_mirrors_figure_six() {
        let io = ObjectIo::new(vec![0, 4], vec![2, 2])
            .mode(IoMode::Collective)
            .blocking(false)
            .reduce(ReduceMode::AllToAll { root: 3 });
        assert_eq!(io.start, vec![0, 4]);
        assert_eq!(io.count, vec![2, 2]);
        assert_eq!(io.mode, IoMode::Collective);
        assert!(!io.blocking);
        assert_eq!(io.reduce.root(), 3);
    }

    #[test]
    fn default_is_collective_nonblocking_all_to_one() {
        let io = ObjectIo::new(vec![0], vec![1]);
        assert_eq!(io.mode, IoMode::Collective);
        assert!(!io.blocking);
        assert_eq!(io.reduce, ReduceMode::AllToOne { root: 0 });
    }

    #[test]
    #[should_panic]
    fn rank_mismatch_panics() {
        let _ = ObjectIo::new(vec![0, 0], vec![1]);
    }
}
