//! End-to-end tests of the collective-computing engine against the
//! traditional baseline and against directly computed oracles.

use std::sync::Arc;

use cc_array::{DType, Hyperslab, Shape, Variable};
use cc_core::{
    object_get_vara, traditional_get_vara, CcOutcome, IoMode, MapKernel, MaxKernel,
    MeanKernel, MinKernel, MinLocKernel, ObjectIo, ReduceMode, SumKernel,
};
use cc_model::{ClusterModel, SimTime, Topology};
use cc_mpi::World;
use cc_mpiio::Hints;
use cc_pfs::backend::ElemKind;
use cc_pfs::{Pfs, StripeLayout, SyntheticBackend};

/// Deterministic element values with a unique global minimum at index 37.
fn value(i: u64) -> f64 {
    if i == 37 {
        -5.0
    } else {
        ((i * 7 + 3) % 101) as f64
    }
}

fn setup_fs(elems: u64, osts: usize, stripe: u64) -> Arc<Pfs> {
    let fs = Pfs::new(
        osts,
        cc_model::DiskModel {
            seek: 1e-3,
            ost_bandwidth: 1e8,
        },
    );
    fs.create(
        "d",
        StripeLayout::round_robin(stripe, osts, 0, osts),
        Box::new(SyntheticBackend::new(elems, ElemKind::F64, value)),
    );
    Arc::new(fs)
}

/// Runs `nprocs` ranks, each selecting `rows_per_rank` full rows of an
/// `nrows x ncols` variable, through the CC engine.
fn run_cc(
    nprocs: usize,
    topo: Topology,
    nrows: u64,
    ncols: u64,
    kernel: &dyn MapKernel,
    io_template: &ObjectIo,
) -> Vec<CcOutcome> {
    let rows_per_rank = nrows / nprocs as u64;
    assert_eq!(nrows % nprocs as u64, 0);
    let shape = Shape::new(vec![nrows, ncols]);
    let var = Variable::new("t", shape, DType::F64, 0);
    let fs = setup_fs(nrows * ncols, 4, 256);
    let mut model = ClusterModel::test_tiny(1);
    model.topology = topo;
    let world = World::new(nprocs, model);
    let var = &var;
    let fs = &fs;
    world.run(move |comm| {
        let file = fs.open("d").expect("exists");
        let io = ObjectIo {
            start: vec![comm.rank() as u64 * rows_per_rank, 0],
            count: vec![rows_per_rank, ncols],
            ..io_template.clone()
        };
        object_get_vara(comm, fs, &file, var, &io, kernel)
    })
}

fn oracle_sum(elems: u64) -> f64 {
    (0..elems).map(value).sum()
}

fn approx(a: f64, b: f64) {
    assert!(
        (a - b).abs() <= 1e-9 * a.abs().max(1.0),
        "{a} != {b}"
    );
}

#[test]
fn all_to_one_sum_matches_oracle() {
    let outcomes = run_cc(
        4,
        Topology::new(2, 2),
        8,
        32,
        &SumKernel,
        &ObjectIo::new(vec![], vec![]),
    );
    let global = outcomes[0].global.as_ref().expect("root has global");
    approx(global[0], oracle_sum(256));
    // Non-roots know nothing under all-to-one.
    assert!(outcomes[1].global.is_none());
    assert!(outcomes[1].my_result.is_none());
    // The root also has per-rank results that sum to the global.
    let per_rank = outcomes[0].per_rank.as_ref().expect("per-rank at root");
    let s: f64 = per_rank.iter().map(|p| p.as_ref().unwrap()[0]).sum();
    approx(s, oracle_sum(256));
}

#[test]
fn all_to_all_gives_every_rank_its_result() {
    let io = ObjectIo::new(vec![], vec![]).reduce(ReduceMode::AllToAll { root: 1 });
    let outcomes = run_cc(4, Topology::new(2, 2), 8, 32, &SumKernel, &io);
    for (r, o) in outcomes.iter().enumerate() {
        // Rank r's own result: sum over its 2 rows (64 elements).
        let expect: f64 = (r as u64 * 64..(r as u64 + 1) * 64).map(value).sum();
        approx(o.my_result.as_ref().expect("own result")[0], expect);
    }
    approx(
        outcomes[1].global.as_ref().expect("root has global")[0],
        oracle_sum(256),
    );
    assert!(outcomes[0].global.is_none());
}

#[test]
fn minloc_survives_the_full_pipeline() {
    let outcomes = run_cc(
        2,
        Topology::new(1, 2),
        4,
        32,
        &MinLocKernel,
        &ObjectIo::new(vec![], vec![]),
    );
    let global = outcomes[0].global.as_ref().expect("root has global");
    assert_eq!(global[0], -5.0);
    assert_eq!(global[1], 37.0);
}

#[test]
fn min_max_mean_match_baseline() {
    for kernel in [&MinKernel as &dyn MapKernel, &MaxKernel, &MeanKernel] {
        let cc = run_cc(
            4,
            Topology::new(2, 2),
            8,
            16,
            kernel,
            &ObjectIo::new(vec![], vec![]),
        );
        let blocking =
            ObjectIo::new(vec![], vec![]).blocking(true);
        let base = run_cc(4, Topology::new(2, 2), 8, 16, kernel, &blocking);
        let g_cc = cc[0].global.as_ref().expect("cc global");
        let g_b = base[0].global.as_ref().expect("baseline global");
        for (a, b) in g_cc.iter().zip(g_b) {
            approx(*a, *b);
        }
    }
}

#[test]
fn independent_mode_matches_collective() {
    let io_ind = ObjectIo::new(vec![], vec![])
        .mode(IoMode::Independent)
        .reduce(ReduceMode::AllToAll { root: 0 });
    let ind = run_cc(4, Topology::new(1, 4), 8, 16, &SumKernel, &io_ind);
    approx(
        ind[0].global.as_ref().expect("global")[0],
        oracle_sum(128),
    );
    for (r, o) in ind.iter().enumerate() {
        let expect: f64 = (r as u64 * 32..(r as u64 + 1) * 32).map(value).sum();
        approx(o.my_result.as_ref().expect("own")[0], expect);
    }
}

#[test]
fn small_collective_buffer_multiplies_metadata() {
    // The Fig. 12 mechanism: smaller buffers split logical subsets across
    // iterations, creating more metadata entries.
    let run_with_cb = |cb: u64| {
        let io = ObjectIo::new(vec![], vec![]).hints(Hints {
            cb_buffer_size: cb,
            ..Hints::default()
        });
        let outs = run_cc(4, Topology::new(2, 2), 8, 64, &SumKernel, &io);
        outs.iter()
            .map(|o| o.report.metadata_entries)
            .sum::<u64>()
    };
    let small = run_with_cb(256); // splits every 256 bytes
    let large = run_with_cb(1 << 20); // everything in one iteration
    assert!(
        small > large,
        "small buffer ({small} entries) must exceed large ({large})"
    );
    assert!(large >= 4, "at least one entry per rank");
}

#[test]
fn cc_is_faster_than_baseline_at_balanced_ratio() {
    // Computation ~ I/O: the paper's peak-speedup regime (Fig. 9, ratio
    // 1:1). CC must beat the traditional baseline on total virtual time.
    let nprocs = 8;
    let nrows = 8u64;
    let ncols = 4096u64;
    let shape = Shape::new(vec![nrows, ncols]);
    let var = Variable::new("t", shape, DType::F64, 0);
    let mut model = ClusterModel::test_tiny(1);
    model.topology = Topology::new(2, 4);
    // Map cost per byte = read cost per byte (aggregate): ratio ~1:1.
    model.cpu.map_cost_per_byte = 1.0 / model.disk.ost_bandwidth;
    let elapsed = |blocking: bool| -> SimTime {
        let fs = setup_fs(nrows * ncols, 4, 4096);
        let world = World::new(nprocs, model.clone());
        let var = &var;
        let fs = &fs;
        let ends = world.run(move |comm| {
            let file = fs.open("d").expect("exists");
            let io = ObjectIo {
                start: vec![comm.rank() as u64, 0],
                count: vec![1, ncols],
                ..ObjectIo::new(vec![], vec![])
            }
            .blocking(blocking);
            let out = object_get_vara(comm, fs, &file, var, &io, &SumKernel);
            out.report.end
        });
        ends.into_iter().max().expect("nonempty")
    };
    let t_cc = elapsed(false);
    let t_mpi = elapsed(true);
    assert!(
        t_cc < t_mpi,
        "collective computing {t_cc} should beat traditional {t_mpi}"
    );
}

#[test]
fn blocking_object_io_equals_traditional_call() {
    // io.block = true must behave exactly like the hand-written baseline.
    let nprocs = 4;
    let shape = Shape::new(vec![4, 32]);
    let var = Variable::new("t", shape, DType::F64, 0);
    let fs = setup_fs(128, 4, 256);
    let world = World::new(nprocs, ClusterModel::test_tiny(nprocs));
    let var = &var;
    let fs = &fs;
    let results = world.run(move |comm| {
        let file = fs.open("d").expect("exists");
        let slab = Hyperslab::new(vec![comm.rank() as u64, 0], vec![1, 32]);
        let (g1, m1, _) = traditional_get_vara(
            comm,
            fs,
            &file,
            var,
            &slab,
            &Hints::default(),
            &SumKernel,
            0,
        );
        let io = ObjectIo::new(vec![comm.rank() as u64, 0], vec![1, 32]).blocking(true);
        let out = object_get_vara(comm, fs, &file, var, &io, &SumKernel);
        (g1, m1, out.global, out.my_result)
    });
    for (g1, m1, g2, m2) in &results {
        assert_eq!(g1, g2);
        assert_eq!(Some(m1.clone()), *m2);
    }
}

#[test]
fn aggregators_report_pipeline_iterations() {
    let io = ObjectIo::new(vec![], vec![]).hints(Hints {
        cb_buffer_size: 512,
        ..Hints::default()
    });
    let outcomes = run_cc(4, Topology::new(2, 2), 8, 64, &SumKernel, &io);
    let total_iters: usize = outcomes.iter().map(|o| o.report.iterations.len()).sum();
    assert!(total_iters >= 4, "expected several pipeline iterations");
    for o in &outcomes {
        for it in &o.report.iterations {
            assert!(it.read > SimTime::ZERO);
            assert!(it.map > SimTime::ZERO);
        }
        assert!(o.report.end >= o.report.start);
    }
    // Aggregators read every byte exactly once in total.
    let bytes: u64 = outcomes.iter().map(|o| o.report.bytes_read).sum();
    assert_eq!(bytes, 8 * 64 * 8);
}

#[test]
fn nonuniform_and_empty_requests() {
    // Uneven shares: rank 0 takes most rows, rank 1 the rest, and rank 2
    // re-reads element (0,0) that rank 0 also wants — requests may not
    // overlap within one rank's list, but may across ranks.
    let shape = Shape::new(vec![8, 16]);
    let var = Variable::new("t", shape, DType::F64, 0);
    let fs = setup_fs(128, 2, 128);
    let world = World::new(3, ClusterModel::test_tiny(3));
    let var = &var;
    let fs = &fs;
    let results = world.run(move |comm| {
        let file = fs.open("d").expect("exists");
        let (start, count) = match comm.rank() {
            0 => (vec![0, 0], vec![6, 16]),
            1 => (vec![6, 0], vec![2, 16]),
            _ => (vec![0, 0], vec![1, 1]),
        };
        let io = ObjectIo::new(start, count).reduce(ReduceMode::AllToAll { root: 0 });
        object_get_vara(comm, fs, &file, var, &io, &SumKernel)
    });
    approx(
        results[0].my_result.as_ref().unwrap()[0],
        (0..96u64).map(value).sum(),
    );
    approx(
        results[1].my_result.as_ref().unwrap()[0],
        (96..128u64).map(value).sum(),
    );
    approx(results[2].my_result.as_ref().unwrap()[0], value(0));
}
