//! Profiling and reporting utilities shared by the engines and benchmarks.
//!
//! The paper motivates collective computing with CPU profiles (Figs. 2-3:
//! user/system/wait percentages over time) and evaluates it with phase
//! timings. Engines in this workspace record [`Segment`]s of virtual time
//! tagged with an [`Activity`]; [`CpuProfile`] bins them into the
//! user/sys/wait time series of the paper's figures, and [`Table`] renders
//! benchmark output as aligned text or CSV.

#![warn(missing_docs)]

pub mod activity;
pub mod cpu;
pub mod table;

pub use activity::{Activity, Segment};
pub use cpu::CpuProfile;
pub use table::Table;
