//! Binned user/sys/wait CPU profiles (the paper's Figs. 2-3).

use cc_model::SimTime;

use crate::activity::{Activity, Segment};

/// One time bucket's accumulated seconds per category.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Bucket {
    /// Seconds of user computation.
    pub user: f64,
    /// Seconds of system-side data movement.
    pub sys: f64,
    /// Seconds blocked on I/O.
    pub wait: f64,
}

impl Bucket {
    /// Total accounted seconds.
    pub fn total(&self) -> f64 {
        self.user + self.sys + self.wait
    }
}

/// A time-binned CPU profile built from activity segments of one or many
/// ranks. Unaccounted time within a bin is idle and excluded, like the
/// paper's profiles which normalize to busy categories.
#[derive(Debug, Clone)]
pub struct CpuProfile {
    bin_width: SimTime,
    buckets: Vec<Bucket>,
}

impl CpuProfile {
    /// An empty profile with `bins` buckets of `bin_width` starting at 0.
    ///
    /// # Panics
    /// Panics on zero width or zero bins.
    pub fn new(bin_width: SimTime, bins: usize) -> Self {
        assert!(bin_width > SimTime::ZERO, "bin width must be positive");
        assert!(bins > 0, "need at least one bin");
        Self {
            bin_width,
            buckets: vec![Bucket::default(); bins],
        }
    }

    /// Builds a profile spanning `[0, horizon)` from segments, choosing the
    /// bucket count from the horizon.
    pub fn from_segments(
        segments: impl IntoIterator<Item = Segment>,
        bin_width: SimTime,
        horizon: SimTime,
    ) -> Self {
        let bins = (horizon.secs() / bin_width.secs()).ceil().max(1.0) as usize;
        let mut p = Self::new(bin_width, bins);
        for s in segments {
            p.add(s);
        }
        p
    }

    /// Accumulates one segment, splitting it across the buckets it spans.
    /// Time beyond the last bucket is dropped.
    pub fn add(&mut self, seg: Segment) {
        let w = self.bin_width.secs();
        let mut lo = seg.start.secs();
        let end = seg.end.secs();
        while lo < end {
            let bin = (lo / w) as usize;
            if bin >= self.buckets.len() {
                break;
            }
            let mut hi = end.min((bin as f64 + 1.0) * w);
            // Guarantee progress: when lo sits exactly on a bucket edge
            // whose product rounds down to lo (division and multiplication
            // can disagree in the last ulp), extend into the next bucket
            // rather than looping forever.
            if hi <= lo {
                hi = end.min((bin as f64 + 2.0) * w);
            }
            if hi <= lo {
                break;
            }
            let b = &mut self.buckets[bin];
            match seg.activity {
                Activity::User => b.user += hi - lo,
                Activity::Sys => b.sys += hi - lo,
                Activity::Wait => b.wait += hi - lo,
            }
            lo = hi;
        }
    }

    /// The buckets in time order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// The bucket width.
    pub fn bin_width(&self) -> SimTime {
        self.bin_width
    }

    /// Percentages `(user, sys, wait)` per bucket, normalized to the busy
    /// time in that bucket; `(0, 0, 0)` for idle buckets.
    pub fn percentages(&self) -> Vec<(f64, f64, f64)> {
        self.buckets
            .iter()
            .map(|b| {
                let t = b.total();
                if t <= 0.0 {
                    (0.0, 0.0, 0.0)
                } else {
                    (
                        100.0 * b.user / t,
                        100.0 * b.sys / t,
                        100.0 * b.wait / t,
                    )
                }
            })
            .collect()
    }

    /// Whole-profile percentages `(user, sys, wait)` over all buckets.
    pub fn overall(&self) -> (f64, f64, f64) {
        let (mut u, mut s, mut w) = (0.0, 0.0, 0.0);
        for b in &self.buckets {
            u += b.user;
            s += b.sys;
            w += b.wait;
        }
        let t = u + s + w;
        if t <= 0.0 {
            (0.0, 0.0, 0.0)
        } else {
            (100.0 * u / t, 100.0 * s / t, 100.0 * w / t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn segments_split_across_bins() {
        let mut p = CpuProfile::new(t(1.0), 3);
        p.add(Segment::new(t(0.5), t(2.5), Activity::User));
        let b = p.buckets();
        assert!((b[0].user - 0.5).abs() < 1e-12);
        assert!((b[1].user - 1.0).abs() < 1e-12);
        assert!((b[2].user - 0.5).abs() < 1e-12);
    }

    #[test]
    fn categories_accumulate_independently() {
        let mut p = CpuProfile::new(t(1.0), 1);
        p.add(Segment::new(t(0.0), t(0.2), Activity::User));
        p.add(Segment::new(t(0.2), t(0.5), Activity::Sys));
        p.add(Segment::new(t(0.5), t(1.0), Activity::Wait));
        let (u, s, w) = p.percentages()[0];
        assert!((u - 20.0).abs() < 1e-9);
        assert!((s - 30.0).abs() < 1e-9);
        assert!((w - 50.0).abs() < 1e-9);
    }

    #[test]
    fn idle_bucket_is_zero() {
        let p = CpuProfile::new(t(1.0), 2);
        assert_eq!(p.percentages()[1], (0.0, 0.0, 0.0));
        assert_eq!(p.overall(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn overflow_beyond_last_bucket_is_dropped() {
        let mut p = CpuProfile::new(t(1.0), 2);
        p.add(Segment::new(t(1.5), t(10.0), Activity::Wait));
        assert!((p.buckets()[1].wait - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bucket_edge_rounding_terminates() {
        // A start time that divides to just-under an integer while the
        // reverse multiplication rounds back to it must not loop forever.
        let w = 0.1f64;
        let lo = 17.0 * 0.1; // 1.7000000000000002: lo/w = 17.0 exactly? either
                             // way, add() must terminate and account the time.
        let mut p = CpuProfile::new(SimTime::from_secs(w), 64);
        p.add(Segment::new(
            SimTime::from_secs(lo),
            SimTime::from_secs(lo + 0.05),
            Activity::User,
        ));
        let total: f64 = p.buckets().iter().map(|b| b.user).sum();
        assert!((total - 0.05).abs() < 1e-9);
    }

    #[test]
    fn pathological_edges_fuzz_terminates() {
        // Many awkward widths and offsets; the loop must always terminate
        // and conserve (or drop past-horizon) time.
        for k in 1..200u64 {
            let w = 1.0 / k as f64;
            let mut p = CpuProfile::new(SimTime::from_secs(w), 1000);
            for j in 0..50u64 {
                let lo = j as f64 * w * 3.0000000000000004;
                p.add(Segment::new(
                    SimTime::from_secs(lo),
                    SimTime::from_secs(lo + w * 0.5),
                    Activity::Sys,
                ));
            }
        }
    }

    #[test]
    fn from_segments_sizes_by_horizon() {
        let p = CpuProfile::from_segments(
            [Segment::new(t(0.0), t(4.5), Activity::Wait)],
            t(1.0),
            t(4.5),
        );
        assert_eq!(p.buckets().len(), 5);
        let (_, _, w) = p.overall();
        assert!((w - 100.0).abs() < 1e-9);
    }
}
