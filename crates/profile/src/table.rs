//! Aligned-text and CSV tables for benchmark output.

use std::fmt;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as comma-separated values (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        writeln!(f, "# {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (w, c) in widths.iter().zip(cells) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{c:>w$}", w = w)?;
                first = false;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

/// Formats a float with 3 significant decimals (benchmark convention).
pub fn fmt_f(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1.5".into()]);
        t.row(&["longer".into(), "2".into()]);
        let s = format!("{t}");
        assert!(s.contains("# demo"));
        assert!(s.contains("name"));
        assert!(s.lines().count() >= 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic]
    fn ragged_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn fmt_f_rounds() {
        assert_eq!(fmt_f(1.23456), "1.235");
    }
}
