//! Activity-tagged virtual time segments.

use cc_model::SimTime;

/// What a core was doing during a segment, mapped to the categories of the
/// paper's CPU profiles (Figs. 2-3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// User computation (map kernels, application analysis) — `User%`.
    User,
    /// Kernel-side data movement (packing, shuffling, memcpy) — `Sys%`.
    Sys,
    /// Blocked on I/O — `Wait%`.
    Wait,
}

/// A half-open interval `[start, end)` of virtual time tagged with what the
/// rank was doing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Segment start.
    pub start: SimTime,
    /// Segment end.
    pub end: SimTime,
    /// What the rank was doing.
    pub activity: Activity,
}

impl Segment {
    /// Creates a segment; zero-length segments are allowed and ignored by
    /// consumers.
    ///
    /// # Panics
    /// Panics if `end < start`.
    pub fn new(start: SimTime, end: SimTime, activity: Activity) -> Self {
        assert!(end >= start, "segment ends before it starts");
        Self {
            start,
            end,
            activity,
        }
    }

    /// The segment's duration.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_is_end_minus_start() {
        let s = Segment::new(
            SimTime::from_secs(1.0),
            SimTime::from_secs(3.5),
            Activity::User,
        );
        assert_eq!(s.duration().secs(), 2.5);
    }

    #[test]
    #[should_panic]
    fn backwards_segment_panics() {
        let _ = Segment::new(SimTime::from_secs(2.0), SimTime::from_secs(1.0), Activity::Sys);
    }
}
