//! Deterministic fault injection: degraded OSTs, bad links, stragglers.
//!
//! The paper's performance claims assume healthy hardware; production
//! collectives meet degraded OSTs, congested links, and slow ranks. A
//! [`FaultPlan`] describes such adversity declaratively, and the runtime
//! crates thread it through their cost paths behind zero-cost defaults
//! (`ClusterModel::fault` is `None` unless a test or experiment injects
//! one):
//!
//! * **OSTs** — `cc-pfs` scales each degraded OST's service time by
//!   [`FaultPlan::ost_slowdown`] and books a busy interval until
//!   [`FaultPlan::ost_stall`], so a sick server queues exactly like a
//!   healthy one under proportional extra load.
//! * **Links** — `cc-mpi` adds [`FaultPlan::link_extra`] to every
//!   message's arrival time: a fixed per-link (or all-links) delay plus a
//!   deterministic, hash-derived jitter. No randomness: the same plan
//!   yields the same virtual timeline on every run.
//! * **Ranks** — `cc-mpi` scales local-work charges on straggler ranks by
//!   [`FaultPlan::compute_factor`].
//!
//! Everything here is pure data + arithmetic; injection points live in the
//! crates that own the respective resources.

use crate::time::SimTime;

/// A declarative plan of injected faults. Build one with the chained
/// constructors, attach it via `ClusterModel::with_fault` (for network and
/// straggler faults) and `Pfs::with_fault_plan` (for OST faults).
///
/// ```
/// use cc_model::{FaultPlan, SimTime};
/// let plan = FaultPlan::new()
///     .slow_ost(3, 10.0)                       // OST 3 serves 10x slower
///     .stall_ost(0, SimTime::from_secs(2.0))   // OST 0 busy until t=2s
///     .delay_link(0, 5, 1e-3)                  // rank 0 -> rank 5 adds 1ms
///     .jitter(5e-4, 42)                        // deterministic <=0.5ms jitter
///     .straggle_rank(7, 4.0);                  // rank 7 computes 4x slower
/// assert_eq!(plan.ost_slowdown(3), 10.0);
/// assert_eq!(plan.compute_factor(7), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    slow_osts: Vec<(usize, f64)>,
    stalled_osts: Vec<(usize, SimTime)>,
    link_delays: Vec<(usize, usize, f64)>,
    link_delay_all: f64,
    jitter_amplitude: f64,
    jitter_seed: u64,
    stragglers: Vec<(usize, f64)>,
}

impl FaultPlan {
    /// An empty plan: no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Degrades `ost`: its service time is multiplied by `factor`.
    ///
    /// # Panics
    /// Panics unless `factor >= 1.0` (faults only slow things down).
    pub fn slow_ost(mut self, ost: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "OST slowdown factor must be >= 1, got {factor}");
        self.slow_osts.push((ost, factor));
        self
    }

    /// Stalls `ost`: it is busy (serving nothing) until virtual time
    /// `until`. Requests arriving earlier queue behind the stall.
    pub fn stall_ost(mut self, ost: usize, until: SimTime) -> Self {
        self.stalled_osts.push((ost, until));
        self
    }

    /// Adds `extra_secs` of one-way delay to every message on the directed
    /// link `src -> dst`.
    ///
    /// # Panics
    /// Panics if `extra_secs` is negative or NaN.
    pub fn delay_link(mut self, src: usize, dst: usize, extra_secs: f64) -> Self {
        assert!(extra_secs >= 0.0, "link delay must be non-negative");
        self.link_delays.push((src, dst, extra_secs));
        self
    }

    /// Adds `extra_secs` of one-way delay to every message on every link.
    ///
    /// # Panics
    /// Panics if `extra_secs` is negative or NaN.
    pub fn delay_all_links(mut self, extra_secs: f64) -> Self {
        assert!(extra_secs >= 0.0, "link delay must be non-negative");
        self.link_delay_all += extra_secs;
        self
    }

    /// Adds deterministic per-message jitter in `[0, amplitude_secs)`,
    /// derived by hashing `(seed, src, dst, message index)` — reproducible
    /// across runs, varying across messages.
    ///
    /// # Panics
    /// Panics if `amplitude_secs` is negative or NaN.
    pub fn jitter(mut self, amplitude_secs: f64, seed: u64) -> Self {
        assert!(amplitude_secs >= 0.0, "jitter amplitude must be non-negative");
        self.jitter_amplitude = amplitude_secs;
        self.jitter_seed = seed;
        self
    }

    /// Makes `rank` a straggler: its local-work charges (`Comm::advance`)
    /// are multiplied by `factor`.
    ///
    /// # Panics
    /// Panics unless `factor >= 1.0`.
    pub fn straggle_rank(mut self, rank: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "straggler factor must be >= 1, got {factor}");
        self.stragglers.push((rank, factor));
        self
    }

    /// The combined service-time multiplier for `ost` (1.0 if healthy).
    pub fn ost_slowdown(&self, ost: usize) -> f64 {
        self.slow_osts
            .iter()
            .filter(|(o, _)| *o == ost)
            .map(|(_, f)| f)
            .product()
    }

    /// The virtual time until which `ost` is stalled (ZERO if not stalled).
    pub fn ost_stall(&self, ost: usize) -> SimTime {
        self.stalled_osts
            .iter()
            .filter(|(o, _)| *o == ost)
            .map(|(_, t)| *t)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// The extra delay injected into message number `msg_index` on the
    /// directed link `src -> dst`: fixed per-link and all-link delays plus
    /// deterministic jitter.
    pub fn link_extra(&self, src: usize, dst: usize, msg_index: u64) -> SimTime {
        let fixed: f64 = self.link_delay_all
            + self
                .link_delays
                .iter()
                .filter(|(s, d, _)| *s == src && *d == dst)
                .map(|(_, _, secs)| secs)
                .sum::<f64>();
        let jitter = if self.jitter_amplitude > 0.0 {
            let h = splitmix64(
                self.jitter_seed
                    ^ (src as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ (dst as u64).rotate_left(32)
                    ^ msg_index.wrapping_mul(0xd134_2543_de82_ef95),
            );
            self.jitter_amplitude * (h as f64 / (u64::MAX as f64 + 1.0))
        } else {
            0.0
        };
        SimTime::from_secs(fixed + jitter)
    }

    /// The local-work multiplier for `rank` (1.0 if not a straggler).
    pub fn compute_factor(&self, rank: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|(r, _)| *r == rank)
            .map(|(_, f)| f)
            .product()
    }

    /// Whether the plan injects any network fault (fast-path check for the
    /// messaging layer).
    pub fn affects_links(&self) -> bool {
        self.link_delay_all > 0.0 || !self.link_delays.is_empty() || self.jitter_amplitude > 0.0
    }
}

/// SplitMix64: a tiny, high-quality bit mixer for deterministic jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_a_no_op() {
        let plan = FaultPlan::new();
        assert_eq!(plan.ost_slowdown(0), 1.0);
        assert_eq!(plan.ost_stall(0), SimTime::ZERO);
        assert_eq!(plan.link_extra(0, 1, 0), SimTime::ZERO);
        assert_eq!(plan.compute_factor(0), 1.0);
        assert!(!plan.affects_links());
    }

    #[test]
    fn ost_faults_compose() {
        let plan = FaultPlan::new()
            .slow_ost(2, 10.0)
            .slow_ost(2, 2.0)
            .stall_ost(1, SimTime::from_secs(5.0))
            .stall_ost(1, SimTime::from_secs(3.0));
        assert_eq!(plan.ost_slowdown(2), 20.0);
        assert_eq!(plan.ost_slowdown(0), 1.0);
        assert_eq!(plan.ost_stall(1), SimTime::from_secs(5.0));
    }

    #[test]
    fn link_delay_is_per_directed_link() {
        let plan = FaultPlan::new().delay_link(0, 1, 1e-3);
        assert_eq!(plan.link_extra(0, 1, 7).secs(), 1e-3);
        assert_eq!(plan.link_extra(1, 0, 7), SimTime::ZERO);
        assert!(plan.affects_links());
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_varying() {
        let plan = FaultPlan::new().jitter(1e-3, 99);
        let a = plan.link_extra(0, 1, 0);
        let b = plan.link_extra(0, 1, 0);
        assert_eq!(a, b, "same message, same jitter");
        let c = plan.link_extra(0, 1, 1);
        assert_ne!(a, c, "different messages jitter differently");
        for i in 0..100 {
            let j = plan.link_extra(3, 4, i).secs();
            assert!((0.0..1e-3).contains(&j), "jitter {j} out of range");
        }
    }

    #[test]
    fn straggler_factor_applies_to_chosen_rank_only() {
        let plan = FaultPlan::new().straggle_rank(3, 4.0);
        assert_eq!(plan.compute_factor(3), 4.0);
        assert_eq!(plan.compute_factor(2), 1.0);
    }

    #[test]
    #[should_panic]
    fn speedup_factor_panics() {
        let _ = FaultPlan::new().slow_ost(0, 0.5);
    }
}
