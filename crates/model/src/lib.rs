//! Cost models and virtual time for the collective-computing simulator.
//!
//! Every subsystem in this workspace moves *real bytes* between real OS
//! threads, but charges *virtual time* according to the models defined here.
//! This mirrors how the ICPP'15 "Collective Computing" paper reasons about
//! performance: phase durations are functions of bytes moved, messages sent,
//! seeks performed, and bytes computed — not of the host machine's clock.
//!
//! The crate is dependency-free and purely computational, which keeps the
//! models easy to property-test.

#![warn(missing_docs)]

pub mod booking;
pub mod cpu;
pub mod disk;
pub mod fault;
pub mod net;
pub mod pipeline;
pub mod time;
pub mod topology;

use std::time::Duration;

pub use booking::{BusyLedger, LaneStats, SharedLane};
pub use cpu::CpuModel;
pub use disk::DiskModel;
pub use fault::FaultPlan;
pub use net::NetModel;
pub use pipeline::{BufferRing, Lane};
pub use time::SimTime;
pub use topology::Topology;

/// How the runtime maps collectives and shuffles onto the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveMode {
    /// Pick per run: hierarchical when the world spans multiple multi-core
    /// nodes, flat otherwise (where hierarchy would only add hops).
    #[default]
    Auto,
    /// Always the topology-oblivious flat algorithms (one message per rank
    /// pair / binomial over ranks).
    Flat,
    /// Request node-leader hierarchical algorithms; the runtime still falls
    /// back to flat when `cores_per_node == 1` or only one node is in use,
    /// since there is nothing to coalesce.
    Hierarchical,
}

/// The complete cost model for a simulated cluster: topology plus network,
/// disk, and CPU parameters. One `ClusterModel` is shared (immutably) by all
/// rank threads of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterModel {
    /// Node/core layout and rank placement.
    pub topology: Topology,
    /// Interconnect cost parameters.
    pub net: NetModel,
    /// Parallel-file-system disk parameters.
    pub disk: DiskModel,
    /// Computation cost parameters.
    pub cpu: CpuModel,
    /// Injected faults (degraded links, stragglers); `None` — the default —
    /// is the zero-cost healthy-cluster fast path. OST faults from the same
    /// plan are applied separately via `Pfs::with_fault_plan`.
    pub fault: Option<FaultPlan>,
    /// How long a receive may block in *real* (wall-clock) time before the
    /// runtime declares the run deadlocked and aborts with a diagnostic.
    /// Virtual time is unaffected. Production-shaped models keep this
    /// high; test models drop it to seconds so a reintroduced hang fails
    /// the suite fast.
    pub recv_watchdog: Duration,
    /// Whether collectives and shuffles use the flat or the node-leader
    /// hierarchical algorithms (`Auto` decides per run from the topology).
    pub collectives: CollectiveMode,
    /// Losslessly compress the inter-node (leader-to-leader) frames of
    /// the hierarchical collectives. Lossless only — collectives carry
    /// typed application data whose bit-exactness the flat/hierarchical
    /// equivalence contract guarantees — and SPMD-consistent because every
    /// rank reads the same model. Wire time is charged on the compressed
    /// frame, plus codec CPU on both ends. Default off.
    pub compress_collective_frames: bool,
}

impl ClusterModel {
    /// A model loosely calibrated to the paper's testbed (NERSC Hopper:
    /// Cray XE6, Gemini interconnect, Lustre with 35 GB/s peak over 156
    /// OSTs). Absolute values are representative, not measured; the
    /// benchmarks only rely on the *ratios* between phases.
    pub fn hopper_like(nodes: usize, cores_per_node: usize) -> Self {
        Self {
            topology: Topology::new(nodes, cores_per_node),
            net: NetModel::gemini_like(),
            disk: DiskModel::lustre_like(),
            cpu: CpuModel::magny_cours_like(),
            fault: None,
            recv_watchdog: Duration::from_secs(120),
            collectives: CollectiveMode::Auto,
            compress_collective_frames: false,
        }
    }

    /// A tiny, fast model for unit tests: single node, negligible latency,
    /// round numbers that make hand-computed expectations easy.
    pub fn test_tiny(cores: usize) -> Self {
        Self {
            topology: Topology::new(1, cores),
            net: NetModel {
                latency_intra: 1e-6,
                latency_inter: 1e-5,
                bw_intra: 1e9,
                bw_inter: 1e9,
                send_overhead: 1e-7,
                scatter_overhead: 1e-7,
                msg_overhead_intra: 1e-7,
                msg_overhead_inter: 1e-6,
            },
            disk: DiskModel {
                seek: 1e-4,
                ost_bandwidth: 1e8,
            },
            cpu: CpuModel {
                map_cost_per_byte: 1e-9,
                reduce_cost_per_element: 1e-9,
                memcpy_cost_per_byte: 1e-10,
                metadata_cost_per_entry: 1e-7,
                compress_cost_per_element: 1e-9,
            },
            fault: None,
            // Tests fail fast: a receive blocked this long in real time is
            // a genuine deadlock, not a slow peer.
            recv_watchdog: Duration::from_secs(30),
            collectives: CollectiveMode::Auto,
            compress_collective_frames: false,
        }
    }

    /// Overrides the collective algorithm selection.
    pub fn with_collectives(mut self, mode: CollectiveMode) -> Self {
        self.collectives = mode;
        self
    }

    /// Attaches a fault-injection plan (network delays, stragglers).
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Overrides the blocked-receive watchdog duration.
    pub fn with_recv_watchdog(mut self, watchdog: Duration) -> Self {
        self.recv_watchdog = watchdog;
        self
    }

    /// Enables lossless compression of inter-node hierarchical-collective
    /// frames (see [`ClusterModel::compress_collective_frames`]).
    pub fn with_compressed_collective_frames(mut self, on: bool) -> Self {
        self.compress_collective_frames = on;
        self
    }

    /// Number of ranks this model can host (one per core).
    pub fn capacity(&self) -> usize {
        self.topology.nodes * self.topology.cores_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hopper_like_capacity() {
        let m = ClusterModel::hopper_like(5, 24);
        assert_eq!(m.capacity(), 120);
    }

    #[test]
    fn test_tiny_is_single_node() {
        let m = ClusterModel::test_tiny(8);
        assert_eq!(m.topology.nodes, 1);
        assert!(m.topology.same_node(0, 7));
    }
}
