//! Interval booking: the virtual-time capacity algebra shared resources use.
//!
//! A [`BusyLedger`] tracks disjoint, sorted, coalesced busy intervals of one
//! serially-shared resource and books new service as *intervals in virtual
//! time with backfill*: a request arriving at virtual time `t` takes the
//! earliest free interval at or after `t` that fits its service time.
//! Backfill matters because client threads run at different wall-clock
//! speeds — a thread that races ahead books slots deep in the virtual
//! future, and without backfill it would starve threads whose virtual
//! clocks lag behind their wall-clock arrival, an artifact no real device
//! exhibits. With backfill, capacity is conserved and contention emerges
//! from genuinely overlapping virtual-time demand.
//!
//! The ledger began life inside `cc-pfs`'s OST scheduler; it is hoisted
//! here so the multi-job service layer can arbitrate *any* shared resource
//! — per-OST disk service, and the cluster's inter-node backbone via
//! [`SharedLane`] — with identical semantics.

use std::sync::Mutex;

use crate::time::SimTime;

/// Disjoint, sorted, coalesced busy intervals `[start, end)` of one
/// serially-shared resource. Memory stays proportional to the number of
/// idle gaps, not the number of bookings.
#[derive(Debug, Default, Clone)]
pub struct BusyLedger {
    busy: Vec<(SimTime, SimTime)>,
}

impl BusyLedger {
    /// An empty (fully idle) ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Books the earliest interval of length `dur` starting at or after
    /// `now`; returns its end.
    pub fn book(&mut self, now: SimTime, dur: SimTime) -> SimTime {
        let mut start = now;
        // Intervals ending at or before `now` can never conflict nor offer
        // a usable gap, so the scan starts at the first interval ending
        // after `now` — deep virtual-future books skip the whole history.
        let first = self.busy.partition_point(|&(_, e)| e <= now);
        let mut pos = self.busy.len();
        for (i, &(b_start, b_end)) in self.busy.iter().enumerate().skip(first) {
            if b_end <= start {
                continue; // interval entirely before our earliest start
            }
            if start + dur <= b_start {
                pos = i; // fits in the gap before this interval
                break;
            }
            start = start.max(b_end);
        }
        let end = start + dur;
        // The gap search guarantees the new interval overlaps nothing, and
        // `pos` is its sorted position — merge in place with whichever
        // neighbours it exactly abuts (`start` came from a neighbour's end,
        // so abutment is exact equality).
        let abuts_prev = pos > 0 && self.busy[pos - 1].1 == start;
        let abuts_next = pos < self.busy.len() && end == self.busy[pos].0;
        match (abuts_prev, abuts_next) {
            (true, true) => {
                self.busy[pos - 1].1 = self.busy[pos].1;
                self.busy.remove(pos);
            }
            (true, false) => self.busy[pos - 1].1 = end,
            (false, true) => self.busy[pos].0 = start,
            (false, false) => self.busy.insert(pos, (start, end)),
        }
        end
    }

    /// Marks the resource busy from time zero until `until`, pushing all
    /// service behind the block (a stalled controller, a link failover).
    pub fn block_until(&mut self, until: SimTime) {
        if until > SimTime::ZERO {
            self.busy.push((SimTime::ZERO, until));
            self.coalesce();
        }
    }

    /// Re-sorts and merges the interval list. [`book`](Self::book) keeps
    /// the list coalesced incrementally; this is only needed after an
    /// out-of-order push like [`block_until`](Self::block_until).
    fn coalesce(&mut self) {
        self.busy.sort_by_key(|&(s, _)| s);
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(self.busy.len());
        for &(s, e) in &self.busy {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.busy = merged;
    }

    /// The booked intervals, sorted and disjoint.
    pub fn intervals(&self) -> &[(SimTime, SimTime)] {
        &self.busy
    }

    /// Seconds of booked service lying at or after `now` — the resource's
    /// queue depth in service-seconds at the probe time: how long a zero-
    /// length request arriving at `now` could be pushed back, worst case.
    pub fn backlog_secs(&self, now: SimTime) -> f64 {
        self.busy
            .iter()
            .filter(|&&(_, e)| e > now)
            .map(|&(s, e)| (e - s.max(now)).secs())
            .sum()
    }

    /// The end of the last booked interval (time zero when idle): the
    /// virtual horizon up to which this resource's capacity is spoken for.
    pub fn horizon(&self) -> SimTime {
        self.busy.last().map_or(SimTime::ZERO, |&(_, e)| e)
    }
}

/// Aggregate counters of one [`SharedLane`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LaneStats {
    /// Transfers booked.
    pub transfers: u64,
    /// Bytes streamed.
    pub bytes: u64,
    /// Service seconds booked (independent of coalescing).
    pub busy_secs: f64,
    /// Seconds transfers spent queued behind other bookings (booked start
    /// minus requested start, summed).
    pub waited_secs: f64,
}

/// One capacity-shared network lane — the cluster's inter-node backbone as
/// seen by the multi-job service layer.
///
/// Per-message wire time inside a job is already charged by
/// [`NetModel`](crate::NetModel) on uncontended per-link terms; what that
/// model cannot express is *other jobs'* traffic occupying the same
/// aggregate fabric. A `SharedLane` arbitrates exactly that: each job books
/// its inter-node bytes (`bytes / bytes_per_sec` of service) with backfill,
/// and the completion it gets back reflects every other job's overlapping
/// demand. Thread-safe; jobs book concurrently.
#[derive(Debug)]
pub struct SharedLane {
    state: Mutex<(BusyLedger, LaneStats)>,
    bytes_per_sec: f64,
}

impl SharedLane {
    /// A lane streaming `bytes_per_sec` of aggregate capacity.
    ///
    /// # Panics
    /// Panics on a non-positive capacity.
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0,
            "shared lane needs positive capacity, got {bytes_per_sec}"
        );
        Self {
            state: Mutex::new((BusyLedger::new(), LaneStats::default())),
            bytes_per_sec,
        }
    }

    /// Aggregate capacity in bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Books a transfer of `bytes` requested at virtual time `now` and
    /// returns its completion time (`now` for an empty transfer). Backfill
    /// booking: an early-requested transfer takes the earliest free
    /// interval at or after its own `now`, never capacity a lagging peer
    /// still needs.
    pub fn book_bytes(&self, now: SimTime, bytes: u64) -> SimTime {
        if bytes == 0 {
            return now;
        }
        let service = SimTime::from_secs(bytes as f64 / self.bytes_per_sec);
        let mut state = self.state.lock().unwrap();
        let done = state.0.book(now, service);
        state.1.transfers += 1;
        state.1.bytes += bytes;
        state.1.busy_secs += service.secs();
        state.1.waited_secs += (done - service).saturating_since(now).secs();
        done
    }

    /// Aggregate counters so far.
    pub fn stats(&self) -> LaneStats {
        self.state.lock().unwrap().1
    }

    /// Seconds of booked service at or after `now` (see
    /// [`BusyLedger::backlog_secs`]).
    pub fn backlog_secs(&self, now: SimTime) -> f64 {
        self.state.lock().unwrap().0.backlog_secs(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn sequential_bookings_queue_and_backfill() {
        let mut l = BusyLedger::new();
        assert_eq!(l.book(SimTime::ZERO, t(2.0)), t(2.0));
        assert_eq!(l.book(SimTime::ZERO, t(2.0)), t(4.0));
        // A far-future booking then a backfill into the idle gap.
        assert_eq!(l.book(t(100.0), t(2.0)), t(102.0));
        assert_eq!(l.book(t(4.0), t(2.0)), t(6.0));
        assert_eq!(l.intervals().len(), 2, "abutting intervals coalesce");
    }

    #[test]
    fn block_until_pushes_service_back() {
        let mut l = BusyLedger::new();
        l.block_until(t(10.0));
        assert_eq!(l.book(SimTime::ZERO, t(1.0)), t(11.0));
    }

    #[test]
    fn backlog_counts_only_future_service() {
        let mut l = BusyLedger::new();
        let _ = l.book(SimTime::ZERO, t(4.0)); // [0, 4)
        let _ = l.book(t(10.0), t(2.0)); // [10, 12)
        assert!((l.backlog_secs(t(2.0)) - 4.0).abs() < 1e-12); // [2,4) + [10,12)
        assert!((l.backlog_secs(t(20.0))).abs() < 1e-12);
        assert_eq!(l.horizon(), t(12.0));
    }

    #[test]
    fn shared_lane_serializes_overlapping_jobs() {
        let lane = SharedLane::new(100.0);
        // Two jobs book 200 bytes each at the same instant: 2 s each,
        // serialized on the shared capacity.
        let a = lane.book_bytes(SimTime::ZERO, 200);
        let b = lane.book_bytes(SimTime::ZERO, 200);
        assert_eq!(a, t(2.0));
        assert_eq!(b, t(4.0));
        let s = lane.stats();
        assert_eq!(s.transfers, 2);
        assert_eq!(s.bytes, 400);
        assert!((s.busy_secs - 4.0).abs() < 1e-12);
        assert!((s.waited_secs - 2.0).abs() < 1e-12, "second booking queued 2 s");
    }

    #[test]
    fn shared_lane_empty_transfer_is_free() {
        let lane = SharedLane::new(10.0);
        assert_eq!(lane.book_bytes(t(3.0), 0), t(3.0));
        assert_eq!(lane.stats(), LaneStats::default());
    }

    proptest! {
        #[test]
        fn prop_ledger_conserves_capacity(
            reqs in proptest::collection::vec((0u64..1000, 1u64..500), 1..40),
        ) {
            // Completion >= now + dur; intervals stay disjoint and cover
            // exactly the booked service, regardless of booking order.
            let mut l = BusyLedger::new();
            let mut total = 0.0;
            for (now, dur) in &reqs {
                let now = SimTime::from_secs(*now as f64 / 100.0);
                let dur = SimTime::from_secs(*dur as f64 / 100.0);
                let done = l.book(now, dur);
                total += dur.secs();
                prop_assert!(done >= now + dur);
            }
            let mut covered = 0.0;
            let mut prev_end = SimTime::ZERO;
            for &(s, e) in l.intervals() {
                prop_assert!(s >= prev_end, "intervals overlap");
                covered += (e - s).secs();
                prev_end = e;
            }
            prop_assert!((covered - total).abs() < 1e-9);
            prop_assert!((l.backlog_secs(SimTime::ZERO) - total).abs() < 1e-9);
        }
    }
}
