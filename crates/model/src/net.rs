//! Interconnect cost model.
//!
//! A postal/LogGP-style model: each message costs a fixed sender-side CPU
//! overhead, a latency term, and a size-proportional transfer term. Intra-
//! node messages (shared memory) and inter-node messages (the Gemini-like
//! mesh) use different parameters. This is deliberately simple — the paper's
//! phenomena (shuffle ~20% of collective read cost, shuffle cost growing
//! with scale) are driven by message counts and volumes, which this model
//! captures, not by routing detail, which it does not.

use crate::time::SimTime;

/// Network cost parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NetModel {
    /// One-way latency between ranks on the same node (seconds).
    pub latency_intra: f64,
    /// One-way latency between ranks on different nodes (seconds).
    pub latency_inter: f64,
    /// Point-to-point bandwidth within a node (bytes/second).
    pub bw_intra: f64,
    /// Point-to-point bandwidth between nodes (bytes/second).
    pub bw_inter: f64,
    /// Sender-side CPU overhead per message (seconds). This charges the
    /// *sender's* clock; latency and transfer only delay the receiver.
    pub send_overhead: f64,
    /// Per-piece cost of the shuffle scatter path (seconds): packing a
    /// non-contiguous piece, posting it, and driving MPI progress for it.
    /// This — not wire bandwidth — dominates a chunk scattered to a
    /// hundred ranks, and is calibrated so the per-iteration shuffle cost
    /// approaches the read cost, as the paper measures on Hopper (Fig. 1).
    pub scatter_overhead: f64,
    /// Per-message cost of posting one *intra-node* shuffle message
    /// (seconds): matching, queueing, and shared-memory handoff. Charged
    /// once per posted message regardless of how many pieces it carries.
    pub msg_overhead_intra: f64,
    /// Per-message cost of posting one *inter-node* shuffle message
    /// (seconds): NIC doorbell, descriptor setup, and rendezvous/progress
    /// overhead on the interconnect. Much larger than the intra-node cost;
    /// coalescing many per-rank messages into one per-node frame trades
    /// many of these for a few of the cheap intra-node ones.
    pub msg_overhead_inter: f64,
}

impl NetModel {
    /// Parameters loosely matching a Cray Gemini-class interconnect.
    pub fn gemini_like() -> Self {
        Self {
            latency_intra: 5e-7,  // 0.5 us shared memory
            latency_inter: 1.5e-6, // 1.5 us network
            bw_intra: 8e9, // 8 GB/s memcpy-limited
            // Effective per-sender bandwidth under collective load, below
            // the 5+ GB/s point-to-point peak.
            bw_inter: 1.2e9,
            send_overhead: 4e-7,
            scatter_overhead: 1e-5,
            msg_overhead_intra: 8e-7,
            msg_overhead_inter: 8e-6,
        }
    }

    /// The sender-side cost of posting one message.
    pub fn send_cost(&self) -> SimTime {
        SimTime::from_secs(self.send_overhead)
    }

    /// The sender-side cost of one scatter piece (shuffle path).
    pub fn scatter_cost(&self) -> SimTime {
        SimTime::from_secs(self.scatter_overhead)
    }

    /// The sender-side cost of posting one shuffle message to a rank that
    /// does (not) share a node, independent of message size.
    pub fn msg_cost(&self, same_node: bool) -> SimTime {
        SimTime::from_secs(if same_node {
            self.msg_overhead_intra
        } else {
            self.msg_overhead_inter
        })
    }

    /// The serialization-only time of `bytes` on the sender's NIC (no
    /// latency): what a sender-side lane is occupied for while the message
    /// drains.
    pub fn wire_time(&self, bytes: usize, same_node: bool) -> SimTime {
        let bw = if same_node { self.bw_intra } else { self.bw_inter };
        SimTime::from_secs(bytes as f64 / bw)
    }

    /// The wire time of a message of `bytes` between ranks that do (not)
    /// share a node: latency plus serialization.
    pub fn transfer_time(&self, bytes: usize, same_node: bool) -> SimTime {
        let (lat, bw) = if same_node {
            (self.latency_intra, self.bw_intra)
        } else {
            (self.latency_inter, self.bw_inter)
        };
        SimTime::from_secs(lat + bytes as f64 / bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_is_cheaper_than_inter() {
        let m = NetModel::gemini_like();
        let n = 1 << 20;
        assert!(m.transfer_time(n, true) < m.transfer_time(n, false));
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let m = NetModel::gemini_like();
        let small = m.transfer_time(1024, false);
        let big = m.transfer_time(1024 * 1024, false);
        assert!(big > small);
        // The bandwidth component should dominate for large messages:
        // doubling size roughly doubles (time - latency).
        let t1 = m.transfer_time(1 << 24, false).secs() - m.latency_inter;
        let t2 = m.transfer_time(1 << 25, false).secs() - m.latency_inter;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_message_costs_latency_only() {
        let m = NetModel::gemini_like();
        assert_eq!(
            m.transfer_time(0, false).secs(),
            m.latency_inter
        );
    }

    #[test]
    fn wire_time_excludes_latency() {
        let m = NetModel::gemini_like();
        let n = 1 << 20;
        assert_eq!(
            m.wire_time(n, false).secs(),
            n as f64 / m.bw_inter
        );
        assert!(m.wire_time(n, true) < m.wire_time(n, false));
        assert_eq!(m.wire_time(0, false).secs(), 0.0);
    }

    #[test]
    fn per_message_costs_are_constant() {
        let m = NetModel::gemini_like();
        assert_eq!(m.send_cost().secs(), m.send_overhead);
        assert_eq!(m.scatter_cost().secs(), m.scatter_overhead);
        // The scatter path (pack + post + progress per piece) costs far
        // more than a bare send posting.
        assert!(m.scatter_cost() > m.send_cost());
    }

    #[test]
    fn inter_node_message_posting_dominates_intra() {
        let m = NetModel::gemini_like();
        assert_eq!(m.msg_cost(true).secs(), m.msg_overhead_intra);
        assert_eq!(m.msg_cost(false).secs(), m.msg_overhead_inter);
        // Coalescing only pays off if an interconnect message costs
        // meaningfully more to post than a shared-memory one.
        assert!(m.msg_cost(false) >= m.msg_cost(true).scale(4.0));
    }
}
