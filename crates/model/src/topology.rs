//! Cluster topology: nodes, cores, and rank placement.
//!
//! Ranks are placed block-wise onto nodes (ranks `0..cores_per_node` on node
//! 0, and so on), matching the default placement of `aprun` on the Cray XE6
//! the paper used. Aggregator selection follows ROMIO's `cb_config_list`
//! default of spreading aggregators evenly across nodes.

/// Node/core layout of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Number of compute nodes.
    pub nodes: usize,
    /// Cores (and therefore ranks) per node.
    pub cores_per_node: usize,
}

impl Topology {
    /// Creates a topology with `nodes * cores_per_node` rank slots.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(nodes: usize, cores_per_node: usize) -> Self {
        assert!(nodes > 0, "topology needs at least one node");
        assert!(cores_per_node > 0, "topology needs at least one core");
        Self {
            nodes,
            cores_per_node,
        }
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.cores_per_node
    }

    /// Whether two ranks share a node (and therefore use shared memory
    /// rather than the interconnect).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Total rank slots.
    pub fn capacity(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// The leader rank of `node`: its lowest rank slot. Hierarchical
    /// collectives route all of a node's interconnect traffic through this
    /// rank.
    pub fn leader_of_node(&self, node: usize) -> usize {
        node * self.cores_per_node
    }

    /// The leader rank of the node hosting `rank`.
    pub fn leader_of(&self, rank: usize) -> usize {
        self.leader_of_node(self.node_of(rank))
    }

    /// The half-open range `[lo, hi)` of live ranks on `node` when only
    /// `nprocs` ranks are running. Empty (`lo == hi`) for nodes beyond the
    /// populated prefix.
    pub fn node_range(&self, node: usize, nprocs: usize) -> (usize, usize) {
        let lo = (node * self.cores_per_node).min(nprocs);
        let hi = ((node + 1) * self.cores_per_node).min(nprocs);
        (lo, hi)
    }

    /// How many nodes actually host ranks when `nprocs` ranks are running
    /// (blockwise placement fills nodes in order).
    pub fn nodes_used(&self, nprocs: usize) -> usize {
        nprocs.div_ceil(self.cores_per_node).min(self.nodes)
    }

    /// Selects I/O aggregator ranks: `per_node` aggregators on each node,
    /// spread evenly across that node's cores, restricted to ranks below
    /// `nprocs`. This mirrors ROMIO's default of one (or a few) aggregators
    /// per node chosen from distinct nodes.
    ///
    /// The paper's Fig. 1 run uses 6 aggregators per 12-core node; the
    /// Fig. 9 runs use 1 per 24-core node.
    pub fn aggregators(&self, nprocs: usize, per_node: usize) -> Vec<usize> {
        assert!(per_node >= 1, "need at least one aggregator per node");
        assert!(
            per_node <= self.cores_per_node,
            "cannot place {per_node} aggregators on a {}-core node",
            self.cores_per_node
        );
        let mut aggs = Vec::new();
        let stride = self.cores_per_node / per_node;
        for node in 0..self.nodes {
            for slot in 0..per_node {
                let rank = node * self.cores_per_node + slot * stride.max(1);
                if rank < nprocs {
                    aggs.push(rank);
                }
            }
        }
        aggs.sort_unstable();
        aggs.dedup();
        assert!(
            !aggs.is_empty(),
            "no aggregators selected for nprocs={nprocs}"
        );
        aggs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_placement_is_blockwise() {
        let t = Topology::new(3, 4);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(11), 2);
        assert!(t.same_node(4, 7));
        assert!(!t.same_node(3, 4));
    }

    #[test]
    fn leaders_and_node_ranges() {
        let t = Topology::new(3, 4);
        assert_eq!(t.leader_of_node(0), 0);
        assert_eq!(t.leader_of_node(2), 8);
        assert_eq!(t.leader_of(0), 0);
        assert_eq!(t.leader_of(3), 0);
        assert_eq!(t.leader_of(5), 4);
        // Full world: every node holds its whole block.
        assert_eq!(t.node_range(1, 12), (4, 8));
        // Partial world: the last populated node is truncated, later
        // nodes are empty.
        assert_eq!(t.node_range(1, 6), (4, 6));
        assert_eq!(t.node_range(2, 6), (6, 6));
        assert_eq!(t.nodes_used(12), 3);
        assert_eq!(t.nodes_used(6), 2);
        assert_eq!(t.nodes_used(4), 1);
        assert_eq!(t.nodes_used(1), 1);
    }

    #[test]
    fn one_aggregator_per_node() {
        let t = Topology::new(5, 24);
        let aggs = t.aggregators(120, 1);
        assert_eq!(aggs, vec![0, 24, 48, 72, 96]);
    }

    #[test]
    fn six_aggregators_per_twelve_core_node() {
        // The paper's Fig. 1 configuration: 72 ranks, 6 nodes x 12 cores,
        // 6 aggregators per node => 36 aggregators.
        let t = Topology::new(6, 12);
        let aggs = t.aggregators(72, 6);
        assert_eq!(aggs.len(), 36);
        // Aggregators on node 0 are every other core.
        assert_eq!(&aggs[..6], &[0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn aggregators_respect_nprocs() {
        let t = Topology::new(4, 8);
        // Only 10 ranks running: nodes 2 and 3 are empty.
        let aggs = t.aggregators(10, 1);
        assert_eq!(aggs, vec![0, 8]);
    }

    #[test]
    #[should_panic]
    fn too_many_aggregators_panics() {
        let t = Topology::new(1, 4);
        let _ = t.aggregators(4, 5);
    }
}
