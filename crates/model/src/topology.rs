//! Cluster topology: nodes, cores, and rank placement.
//!
//! Ranks are placed block-wise onto nodes (ranks `0..cores_per_node` on node
//! 0, and so on), matching the default placement of `aprun` on the Cray XE6
//! the paper used. Aggregator selection follows ROMIO's `cb_config_list`
//! default of spreading aggregators evenly across nodes.

/// Node/core layout of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Number of compute nodes.
    pub nodes: usize,
    /// Cores (and therefore ranks) per node.
    pub cores_per_node: usize,
}

impl Topology {
    /// Creates a topology with `nodes * cores_per_node` rank slots.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(nodes: usize, cores_per_node: usize) -> Self {
        assert!(nodes > 0, "topology needs at least one node");
        assert!(cores_per_node > 0, "topology needs at least one core");
        Self {
            nodes,
            cores_per_node,
        }
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.cores_per_node
    }

    /// Whether two ranks share a node (and therefore use shared memory
    /// rather than the interconnect).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Total rank slots.
    pub fn capacity(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Selects I/O aggregator ranks: `per_node` aggregators on each node,
    /// spread evenly across that node's cores, restricted to ranks below
    /// `nprocs`. This mirrors ROMIO's default of one (or a few) aggregators
    /// per node chosen from distinct nodes.
    ///
    /// The paper's Fig. 1 run uses 6 aggregators per 12-core node; the
    /// Fig. 9 runs use 1 per 24-core node.
    pub fn aggregators(&self, nprocs: usize, per_node: usize) -> Vec<usize> {
        assert!(per_node >= 1, "need at least one aggregator per node");
        assert!(
            per_node <= self.cores_per_node,
            "cannot place {per_node} aggregators on a {}-core node",
            self.cores_per_node
        );
        let mut aggs = Vec::new();
        let stride = self.cores_per_node / per_node;
        for node in 0..self.nodes {
            for slot in 0..per_node {
                let rank = node * self.cores_per_node + slot * stride.max(1);
                if rank < nprocs {
                    aggs.push(rank);
                }
            }
        }
        aggs.sort_unstable();
        aggs.dedup();
        assert!(
            !aggs.is_empty(),
            "no aggregators selected for nprocs={nprocs}"
        );
        aggs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_placement_is_blockwise() {
        let t = Topology::new(3, 4);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(11), 2);
        assert!(t.same_node(4, 7));
        assert!(!t.same_node(3, 4));
    }

    #[test]
    fn one_aggregator_per_node() {
        let t = Topology::new(5, 24);
        let aggs = t.aggregators(120, 1);
        assert_eq!(aggs, vec![0, 24, 48, 72, 96]);
    }

    #[test]
    fn six_aggregators_per_twelve_core_node() {
        // The paper's Fig. 1 configuration: 72 ranks, 6 nodes x 12 cores,
        // 6 aggregators per node => 36 aggregators.
        let t = Topology::new(6, 12);
        let aggs = t.aggregators(72, 6);
        assert_eq!(aggs.len(), 36);
        // Aggregators on node 0 are every other core.
        assert_eq!(&aggs[..6], &[0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn aggregators_respect_nprocs() {
        let t = Topology::new(4, 8);
        // Only 10 ranks running: nodes 2 and 3 are empty.
        let aggs = t.aggregators(10, 1);
        assert_eq!(aggs, vec![0, 8]);
    }

    #[test]
    #[should_panic]
    fn too_many_aggregators_panics() {
        let t = Topology::new(1, 4);
        let _ = t.aggregators(4, 5);
    }
}
