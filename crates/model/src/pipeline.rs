//! Pipeline lanes for modeling non-blocking overlap.
//!
//! The two-phase engine and the collective-computing runtime overlap three
//! kinds of work per iteration: disk reads (the I/O thread in the paper's
//! Fig. 7), map computation, and shuffle communication (the shuffle thread).
//! A [`Lane`] models one serially-reused resource: an activity can start no
//! earlier than both its data dependency (`ready`) and the lane becoming
//! free. Chaining lane acquisitions expresses exactly the software-pipeline
//! recurrences used to time blocking vs non-blocking execution.

use crate::time::SimTime;

/// One serially-reused resource (a thread, a NIC, a disk stream) in a
/// software pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lane {
    free_at: SimTime,
}

impl Lane {
    /// A lane that is free from time zero.
    pub fn new() -> Self {
        Self {
            free_at: SimTime::ZERO,
        }
    }

    /// A lane that becomes free at `t`.
    pub fn free_from(t: SimTime) -> Self {
        Self { free_at: t }
    }

    /// When the lane next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Schedules an activity of length `duration` that cannot start before
    /// `ready`; returns its completion time and occupies the lane until then.
    pub fn acquire(&mut self, ready: SimTime, duration: SimTime) -> SimTime {
        let start = ready.max(self.free_at);
        let end = start + duration;
        self.free_at = end;
        end
    }

    /// Pushes the lane's free time forward to at least `t` without doing
    /// work (e.g. a barrier releases every lane at the same instant).
    pub fn advance_to(&mut self, t: SimTime) {
        self.free_at = self.free_at.max(t);
    }
}

impl Default for Lane {
    fn default() -> Self {
        Self::new()
    }
}

/// Completion bookkeeping for a double-buffered pipeline stage: with `depth`
/// buffers, iteration `i` may not restart its buffer until iteration
/// `i - depth` has fully drained it.
///
/// The collective engines stage every collective-buffer iteration through
/// a ring of this kind when the `PipelineDepth` hint bounds their
/// staging: depth 1 degenerates to the strictly-sequential (blocking)
/// protocol, depth 2 is the classic double buffer, and the unbounded
/// hint skips the ring entirely (reads gated only by the I/O lane, the
/// engines' historical behavior). Drain times are rank-local lane
/// completions, so bounding the ring never couples one rank's clock to
/// another's through shared OST state.
#[derive(Debug, Clone)]
pub struct BufferRing {
    drained_at: Vec<SimTime>,
}

impl BufferRing {
    /// A ring of `depth` buffers, all free at time zero.
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "buffer ring needs at least one buffer");
        Self {
            drained_at: vec![SimTime::ZERO; depth],
        }
    }

    /// When the buffer used by iteration `iter` becomes reusable.
    pub fn available(&self, iter: usize) -> SimTime {
        self.drained_at[iter % self.drained_at.len()]
    }

    /// Records that iteration `iter` finished draining its buffer at `t`.
    pub fn drain(&mut self, iter: usize, t: SimTime) {
        let len = self.drained_at.len();
        self.drained_at[iter % len] = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn lane_serializes_work() {
        let mut lane = Lane::new();
        let a = lane.acquire(SimTime::ZERO, t(2.0));
        assert_eq!(a, t(2.0));
        // Ready at 1.0 but lane busy until 2.0: starts at 2.0.
        let b = lane.acquire(t(1.0), t(3.0));
        assert_eq!(b, t(5.0));
        // Ready after the lane frees: starts when ready.
        let c = lane.acquire(t(10.0), t(1.0));
        assert_eq!(c, t(11.0));
    }

    #[test]
    fn two_lanes_overlap() {
        // Classic 2-stage pipeline: stage A feeds stage B; with separate
        // lanes the steady-state period is max(a, b), not a + b.
        let a_dur = t(1.0);
        let b_dur = t(2.0);
        let mut a = Lane::new();
        let mut b = Lane::new();
        let mut last_b = SimTime::ZERO;
        for _ in 0..10 {
            let a_done = a.acquire(SimTime::ZERO, a_dur);
            last_b = b.acquire(a_done, b_dur);
        }
        // 10 iterations: first A takes 1, then B dominates: 1 + 10*2 = 21.
        assert_eq!(last_b, t(21.0));
    }

    #[test]
    fn single_lane_is_blocking() {
        // Same workload through one lane: 10 * (1 + 2) = 30.
        let mut lane = Lane::new();
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            let a_done = lane.acquire(last, t(1.0));
            last = lane.acquire(a_done, t(2.0));
        }
        assert_eq!(last, t(30.0));
    }

    #[test]
    fn buffer_ring_limits_lookahead() {
        // Depth-2 ring: iteration 2 cannot start before iteration 0 drains.
        let mut ring = BufferRing::new(2);
        assert_eq!(ring.available(0), SimTime::ZERO);
        assert_eq!(ring.available(1), SimTime::ZERO);
        ring.drain(0, t(5.0));
        assert_eq!(ring.available(2), t(5.0));
        assert_eq!(ring.available(3), SimTime::ZERO);
    }

    #[test]
    fn advance_to_never_moves_backwards() {
        let mut lane = Lane::free_from(t(4.0));
        lane.advance_to(t(2.0));
        assert_eq!(lane.free_at(), t(4.0));
        lane.advance_to(t(6.0));
        assert_eq!(lane.free_at(), t(6.0));
    }
}
