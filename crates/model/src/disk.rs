//! Parallel-file-system disk cost model.
//!
//! Each OST (object storage target) is modeled as a single server with a
//! fixed per-request positioning cost ("seek") and a streaming bandwidth.
//! Requests queue: an OST serves one extent at a time, so concurrent
//! requests from several aggregators serialize on a shared OST — which is
//! exactly the contention that makes non-contiguous independent I/O slow
//! and aggregated collective I/O fast.

use crate::time::SimTime;

/// Per-OST disk parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskModel {
    /// Positioning cost charged per request on an OST (seconds).
    pub seek: f64,
    /// Streaming bandwidth of one OST (bytes/second).
    pub ost_bandwidth: f64,
}

impl DiskModel {
    /// Parameters loosely matching the paper's Lustre system: 156 OSTs with
    /// a 35 GB/s aggregate peak gives ~225 MB/s per OST; positioning cost a
    /// few milliseconds (spinning disks behind each OST in 2014).
    pub fn lustre_like() -> Self {
        Self {
            seek: 2e-3,
            ost_bandwidth: 225e6,
        }
    }

    /// Service time for one extent of `bytes` on one OST, excluding queueing.
    pub fn service_time(&self, bytes: usize) -> SimTime {
        SimTime::from_secs(self.seek + bytes as f64 / self.ost_bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seek_dominates_small_requests() {
        let d = DiskModel::lustre_like();
        // A 4 KB request is almost pure seek.
        let t = d.service_time(4096).secs();
        assert!(t < d.seek * 1.01);
        assert!(t >= d.seek);
    }

    #[test]
    fn bandwidth_dominates_large_requests() {
        let d = DiskModel::lustre_like();
        let t = d.service_time(225_000_000).secs(); // ~1 second of streaming
        assert!(t > 1.0 && t < 1.01);
    }

    #[test]
    fn service_time_is_monotonic_in_size() {
        let d = DiskModel::lustre_like();
        let mut prev = SimTime::ZERO;
        for sz in [0usize, 1, 1024, 1 << 20, 1 << 26] {
            let t = d.service_time(sz);
            assert!(t >= prev);
            prev = t;
        }
    }
}
