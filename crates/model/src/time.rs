//! Virtual time.
//!
//! Simulated time is a non-negative number of seconds. A newtype keeps the
//! units honest across the workspace and gives us a total order (simulated
//! clocks never hold NaN, which we enforce at construction).

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) virtual time, in seconds.
///
/// `SimTime` is totally ordered; constructing one from NaN panics, which
/// turns model bugs into loud failures instead of silently unordered clocks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero: the start of every simulated run.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time value from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative — virtual clocks only move forward.
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        assert!(secs >= 0.0, "SimTime cannot be negative: {secs}");
        SimTime(secs)
    }

    /// The raw number of seconds.
    pub fn secs(self) -> f64 {
        self.0
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Scales a duration by a non-negative factor (e.g. dividing map work
    /// across node-local workers).
    ///
    /// # Panics
    /// Panics if `factor` is negative or NaN.
    pub fn scale(self, factor: f64) -> SimTime {
        SimTime::from_secs(self.0 * factor)
    }

    /// Saturating subtraction: the duration from `earlier` to `self`,
    /// or zero if `earlier` is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        if self.0 > earlier.0 {
            SimTime(self.0 - earlier.0)
        } else {
            SimTime::ZERO
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: construction forbids NaN.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3}us", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_max() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(1.5);
        let b = SimTime::from_secs(0.5);
        assert_eq!((a + b).secs(), 2.0);
        assert_eq!((a - b).secs(), 1.0);
        let mut c = a;
        c += b;
        assert_eq!(c.secs(), 2.0);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(3.0);
        assert_eq!(b.saturating_since(a).secs(), 2.0);
        assert_eq!(a.saturating_since(b), SimTime::ZERO);
    }

    #[test]
    #[should_panic]
    fn negative_time_panics() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = [1.0, 2.0, 3.0]
            .iter()
            .map(|&s| SimTime::from_secs(s))
            .sum();
        assert_eq!(total.secs(), 6.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimTime::from_secs(2.5)), "2.500s");
        assert_eq!(format!("{}", SimTime::from_secs(2.5e-3)), "2.500ms");
        assert_eq!(format!("{}", SimTime::from_secs(2.5e-6)), "2.500us");
    }
}
