//! Computation cost model.
//!
//! The paper's central experiment (Fig. 9) sweeps the computation-to-I/O
//! ratio, which in this reproduction is a direct function of
//! `map_cost_per_byte` relative to the disk model. The other parameters
//! price the bookkeeping that collective computing adds: combining
//! intermediate results and maintaining their logical metadata (Figs. 11-12).

use crate::time::SimTime;

/// CPU cost parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Cost of applying the user map kernel to one byte of raw data
    /// (seconds/byte). Benchmarks sweep this to set the computation:I/O
    /// ratio.
    pub map_cost_per_byte: f64,
    /// Cost of combining one element of intermediate/partial results
    /// (seconds/element).
    pub reduce_cost_per_element: f64,
    /// Cost of staging one byte through a memory copy, e.g. packing shuffle
    /// buffers (seconds/byte).
    pub memcpy_cost_per_byte: f64,
    /// Cost of creating/indexing one intermediate-result metadata entry
    /// (seconds/entry).
    pub metadata_cost_per_entry: f64,
    /// Cost of pushing one element through the error-bounded frame codec
    /// on the encode side — predict, quantize, verify, emit (seconds per
    /// element, where an element is one predictor step: an f64/f32 value
    /// or a u64 word in lossless mode). Decoding replays only the
    /// reconstruction and is charged at half this rate.
    pub compress_cost_per_element: f64,
}

impl CpuModel {
    /// Parameters loosely matching a 2.1 GHz AMD MagnyCours core: a simple
    /// streaming kernel (sum/min/max) sustains a few GB/s per core.
    pub fn magny_cours_like() -> Self {
        Self {
            map_cost_per_byte: 2.5e-10, // ~4 GB/s streaming kernel
            reduce_cost_per_element: 5e-9,
            memcpy_cost_per_byte: 1.5e-10, // ~6.6 GB/s copy
            metadata_cost_per_entry: 2e-7,
            compress_cost_per_element: 2e-9, // ~0.5 Gelem/s quantizer
        }
    }

    /// Time to map-compute over `bytes` of raw data.
    pub fn map_time(&self, bytes: usize) -> SimTime {
        SimTime::from_secs(self.map_cost_per_byte * bytes as f64)
    }

    /// Time to combine `elements` partial-result elements.
    pub fn reduce_time(&self, elements: usize) -> SimTime {
        SimTime::from_secs(self.reduce_cost_per_element * elements as f64)
    }

    /// Time to memcpy `bytes`.
    pub fn memcpy_time(&self, bytes: usize) -> SimTime {
        SimTime::from_secs(self.memcpy_cost_per_byte * bytes as f64)
    }

    /// Time to create `entries` metadata records.
    pub fn metadata_time(&self, entries: usize) -> SimTime {
        SimTime::from_secs(self.metadata_cost_per_entry * entries as f64)
    }

    /// Time to encode a `bytes`-long payload through the frame codec.
    /// Elements are 8-byte predictor steps (f64 values or u64 words);
    /// partial trailing elements round up.
    pub fn compress_time(&self, bytes: usize) -> SimTime {
        SimTime::from_secs(self.compress_cost_per_element * bytes.div_ceil(8) as f64)
    }

    /// Time to decode a payload that reconstructs to `bytes` logical
    /// bytes: half the encode rate (no range scan, no verify pass).
    pub fn decompress_time(&self, bytes: usize) -> SimTime {
        SimTime::from_secs(0.5 * self.compress_cost_per_element * bytes.div_ceil(8) as f64)
    }

    /// Returns a copy whose `map_cost_per_byte` is scaled so that mapping a
    /// byte costs `ratio` times reading a byte at `read_bw` bytes/s. This is
    /// how benchmarks express the paper's "computation vs I/O" ratio knob.
    pub fn with_compute_io_ratio(&self, ratio: f64, read_bw: f64) -> Self {
        assert!(ratio > 0.0 && read_bw > 0.0);
        Self {
            map_cost_per_byte: ratio / read_bw,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_time_is_linear() {
        let c = CpuModel::magny_cours_like();
        let t1 = c.map_time(1 << 20).secs();
        let t2 = c.map_time(1 << 21).secs();
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_knob_sets_relative_cost() {
        let c = CpuModel::magny_cours_like();
        let bw = 100e6; // bytes/s
        // ratio 2:1 -> computing N bytes costs twice reading N bytes.
        let c2 = c.with_compute_io_ratio(2.0, bw);
        let n = 50_000_000usize;
        let compute = c2.map_time(n).secs();
        let read = n as f64 / bw;
        assert!((compute / read - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_work_is_free() {
        let c = CpuModel::magny_cours_like();
        assert_eq!(c.map_time(0), SimTime::ZERO);
        assert_eq!(c.reduce_time(0), SimTime::ZERO);
        assert_eq!(c.memcpy_time(0), SimTime::ZERO);
        assert_eq!(c.metadata_time(0), SimTime::ZERO);
        assert_eq!(c.compress_time(0), SimTime::ZERO);
        assert_eq!(c.decompress_time(0), SimTime::ZERO);
    }

    #[test]
    fn codec_time_counts_eight_byte_elements() {
        let c = CpuModel::magny_cours_like();
        // 4096 bytes = 512 elements; a 4097-byte payload rounds up.
        assert_eq!(c.compress_time(4096), c.compress_time(4089));
        assert!(c.compress_time(4097) > c.compress_time(4096));
        // Decode is charged at half the encode rate.
        assert!((c.decompress_time(4096).secs() / c.compress_time(4096).secs() - 0.5).abs() < 1e-12);
    }
}
