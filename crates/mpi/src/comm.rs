//! Point-to-point messaging and per-rank virtual clocks.
//!
//! Sends are eager and buffered (they never block), receives block until a
//! matching envelope arrives. Matching follows MPI semantics: by source and
//! tag, with wildcards, FIFO per (source, tag) pair. Every operation moves
//! real bytes *and* advances the rank's virtual clock: a send charges the
//! sender-side overhead, and a receive completes at
//! `max(local clock, message arrival time)` where the arrival time was
//! computed from the sender's clock plus the modeled transfer time.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cc_model::{ClusterModel, SimTime};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::elem::{decode_vec, encode_slice_into, Elem};
use crate::pool::BufferPool;
use crate::stats::CommStats;

/// Message tag. Values with the top *nibble* set are reserved: bit 31 for
/// the collectives in this crate, bits 28–30 for engine tag bases (the
/// two-phase shuffles and the collective-computing result shuffle), which
/// stamp the low 28 bits with a per-collective sequence number via
/// [`Comm::next_engine_tag`].
pub type TagValue = u32;

/// Wildcard tag: matches any tag.
pub const ANY_TAG: TagValue = TagValue::MAX;

/// Base of the tag space reserved for collective operations.
pub(crate) const COLLECTIVE_TAG_BASE: TagValue = 0x8000_0000;

/// Mask selecting the per-collective sequence bits of a reserved tag.
pub const SEQ_MASK: TagValue = 0x0fff_ffff;

/// Locks a mutex, ignoring poisoning: during an abort, rank threads unwind
/// while holding mailbox locks, and the survivors still need to read the
/// queues (for diagnostics) and unwind cleanly rather than cascade
/// "poisoned" panics.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Message source selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Match only messages from this rank.
    Rank(usize),
    /// Match messages from any rank.
    Any,
}

impl From<usize> for Source {
    fn from(rank: usize) -> Self {
        Source::Rank(rank)
    }
}

/// Metadata of a received message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvInfo {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: TagValue,
    /// Virtual time at which the message arrived at this rank.
    pub arrival: SimTime,
}

#[derive(Debug)]
struct Envelope {
    src: usize,
    tag: TagValue,
    arrival: SimTime,
    payload: Vec<u8>,
}

impl Envelope {
    fn matches(&self, src: Source, tag: TagValue) -> bool {
        let src_ok = match src {
            Source::Rank(r) => self.src == r,
            Source::Any => true,
        };
        src_ok && (tag == ANY_TAG || self.tag == tag)
    }
}

#[derive(Default)]
struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    arrived: Condvar,
}

/// Last-published per-rank progress, readable by the supervisor while the
/// rank thread is blocked or gone. Updated with cheap relaxed stores on the
/// rank's own hot path.
#[derive(Default)]
struct RankState {
    /// This rank's virtual clock, as `f64` bits.
    clock_bits: AtomicU64,
    /// The rank's collective sequence counter (collectives entered so far).
    seq: AtomicU32,
}

/// Why a run is being torn down: the first rank to panic, with its message.
#[derive(Debug, Clone)]
pub(crate) struct AbortInfo {
    /// The originating rank.
    pub(crate) rank: usize,
    /// The originating panic's message.
    pub(crate) message: String,
}

/// The panic payload used to unwind ranks that did nothing wrong when the
/// world aborts. `World::run` recognizes it (and the default panic hook is
/// bypassed via `resume_unwind`), so only the *originating* rank's panic is
/// ever reported.
pub(crate) struct WorldAborted;

/// State shared by all ranks of one run.
pub(crate) struct Shared {
    pub(crate) model: ClusterModel,
    mailboxes: Vec<Mailbox>,
    /// Fast-path abort flag; set (with `Release`) after `abort` is filled.
    aborted: AtomicBool,
    /// First panic wins; later panics during teardown are ignored.
    abort: Mutex<Option<AbortInfo>>,
    states: Vec<RankState>,
    /// Global mailbox-activity counter: bumped on every shared-mailbox
    /// post and removal. The recv watchdog re-arms whenever it moves — a
    /// busy world is never a deadlocked one, no matter how long a single
    /// rank has been waiting in *real* time (the simulation runs in
    /// virtual time, so a loaded host or a deeply pipelined engine can
    /// legitimately leave one receive parked for a long real-time while
    /// its peers churn through other ranks' traffic).
    progress: AtomicU64,
}

impl Shared {
    pub(crate) fn new(nprocs: usize, model: ClusterModel) -> Arc<Self> {
        Arc::new(Self {
            model,
            mailboxes: (0..nprocs).map(|_| Mailbox::default()).collect(),
            aborted: AtomicBool::new(false),
            abort: Mutex::new(None),
            states: (0..nprocs).map(|_| RankState::default()).collect(),
            progress: AtomicU64::new(0),
        })
    }

    /// Records one unit of global mailbox activity (a post or a removal).
    /// Relaxed suffices: the counter is a liveness heuristic, not a
    /// synchronization point.
    fn note_progress(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value of the global activity counter.
    fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Whether the run is aborting. Safe to call while holding a mailbox
    /// queue lock (it touches no other lock).
    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Records `rank`'s panic (first one wins) and wakes every blocked
    /// receiver so the whole world unwinds immediately instead of waiting
    /// out the watchdog.
    pub(crate) fn signal_abort(&self, rank: usize, message: String) {
        {
            let mut slot = lock_unpoisoned(&self.abort);
            if slot.is_none() {
                *slot = Some(AbortInfo { rank, message });
            }
        }
        self.aborted.store(true, Ordering::Release);
        // Lock each queue mutex before notifying: a receiver that checked
        // the flag and is about to wait holds its queue lock, so taking it
        // here guarantees the notify cannot fall between its check and its
        // wait (no lost wakeup).
        for mb in &self.mailboxes {
            let _guard = lock_unpoisoned(&mb.queue);
            mb.arrived.notify_all();
        }
    }

    /// The recorded abort cause, if any.
    pub(crate) fn abort_info(&self) -> Option<AbortInfo> {
        lock_unpoisoned(&self.abort).clone()
    }

    /// Publishes rank-local progress for the diagnostic snapshot.
    fn publish_clock(&self, rank: usize, clock: SimTime) {
        self.states[rank]
            .clock_bits
            .store(clock.secs().to_bits(), Ordering::Relaxed);
    }

    fn publish_seq(&self, rank: usize, seq: u32) {
        self.states[rank].seq.store(seq, Ordering::Relaxed);
    }

    /// A per-rank snapshot — virtual clock, collectives entered, pending
    /// envelopes — for the abort/watchdog report. Must not be called while
    /// holding a mailbox queue lock.
    pub(crate) fn diagnostic(&self) -> String {
        let mut out = String::from("world state at abort:");
        for (rank, state) in self.states.iter().enumerate() {
            let clock = f64::from_bits(state.clock_bits.load(Ordering::Relaxed));
            let seq = state.seq.load(Ordering::Relaxed);
            let pending = lock_unpoisoned(&self.mailboxes[rank].queue).len();
            let _ = write!(
                out,
                "\n  rank {rank}: clock={}, collectives entered={seq}, \
                 {pending} envelope(s) pending",
                SimTime::from_secs(clock.max(0.0)),
            );
        }
        out
    }
}

/// One rank's endpoint: identity, mailbox access, and the virtual clock.
///
/// A `Comm` is created by [`World::run`](crate::World::run) and handed to the
/// per-rank closure; it is not `Sync` and must stay on its thread.
pub struct Comm {
    rank: usize,
    nprocs: usize,
    shared: Arc<Shared>,
    clock: SimTime,
    stats: CommStats,
    pool: BufferPool,
    /// Self-sends, short-circuited past the shared mailbox: no lock, no
    /// modeled transfer, no network stats. Only this thread touches it.
    self_queue: VecDeque<Envelope>,
    pub(crate) collective_seq: u32,
}

impl Comm {
    pub(crate) fn new(rank: usize, nprocs: usize, shared: Arc<Shared>) -> Self {
        Self {
            rank,
            nprocs,
            shared,
            clock: SimTime::ZERO,
            stats: CommStats::default(),
            pool: BufferPool::new(),
            self_queue: VecDeque::new(),
            collective_seq: 0,
        }
    }

    /// An empty byte buffer from this rank's recycle pool. Fill it and hand
    /// it to [`send_bytes`](Self::send_bytes)/
    /// [`post_bytes_at`](Self::post_bytes_at); the receiving rank recycles
    /// it after decoding.
    pub fn take_buf(&mut self) -> Vec<u8> {
        self.pool.take()
    }

    /// Returns a finished payload buffer to this rank's recycle pool.
    pub fn recycle_buf(&mut self, buf: Vec<u8>) {
        self.pool.put(buf);
    }

    /// `(buffers handed out, of which reused)` from this rank's pool.
    pub fn pool_stats(&self) -> (u64, u64) {
        self.pool.stats()
    }

    /// This rank's id in `0..nprocs`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the run.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The shared cluster cost model.
    pub fn model(&self) -> &ClusterModel {
        &self.shared.model
    }

    /// This rank's virtual clock.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Sets the clock and publishes it for the supervisor's diagnostics.
    fn set_clock(&mut self, t: SimTime) {
        self.clock = t;
        self.shared.publish_clock(self.rank, t);
    }

    /// Charges `dur` of local work (computation, memcpy, ...) to the clock.
    /// On a rank the fault plan marks as a straggler, the charge is scaled
    /// by its compute factor.
    pub fn advance(&mut self, dur: SimTime) {
        let dur = match &self.shared.model.fault {
            Some(plan) => dur.scale(plan.compute_factor(self.rank)),
            None => dur,
        };
        self.set_clock(self.clock + dur);
    }

    /// Moves the clock forward to at least `t` (never backwards).
    pub fn advance_to(&mut self, t: SimTime) {
        self.set_clock(self.clock.max(t));
    }

    /// Stamps `base` (an engine tag base occupying the top nibble) with
    /// this rank's collective sequence number and advances the counter —
    /// the same counter the built-in collectives use, so engine shuffles
    /// and collective internals share one monotonically-tagged space.
    /// Back-to-back or overlapping collectives therefore can never
    /// cross-match envelopes, even when their plans differ. Must be called
    /// SPMD-symmetrically (every rank, same order), like the collectives.
    pub fn next_engine_tag(&mut self, base: TagValue) -> TagValue {
        debug_assert_eq!(base & SEQ_MASK, 0, "engine tag base overlaps seq bits");
        let tag = base | (self.collective_seq & SEQ_MASK);
        self.collective_seq = self.collective_seq.wrapping_add(1);
        self.shared.publish_seq(self.rank, self.collective_seq);
        tag
    }

    /// Communication counters accumulated so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Sends raw bytes to `dst` with `tag`, charging the sender overhead to
    /// this rank's clock. Never blocks (eager buffered send).
    pub fn send_bytes(&mut self, dst: usize, tag: TagValue, payload: Vec<u8>) {
        self.set_clock(self.clock + self.shared.model.net.send_cost());
        let depart = self.clock;
        self.post_bytes_at(dst, tag, payload, depart);
    }

    /// Sends raw bytes with an explicit departure time and *without*
    /// touching this rank's clock. Engines that model their own overlap
    /// (I/O thread / shuffle thread lanes, as in the paper's Fig. 7) use
    /// this to stamp messages from lane times. Returns the arrival time.
    pub fn post_bytes_at(
        &mut self,
        dst: usize,
        tag: TagValue,
        payload: Vec<u8>,
        depart: SimTime,
    ) -> SimTime {
        let logical_len = payload.len();
        self.post_framed_bytes_at(dst, tag, payload, depart, logical_len)
    }

    /// [`post_bytes_at`](Self::post_bytes_at) for compressed frames: the
    /// wire (transfer time, `bytes_*` counters) is charged on the posted
    /// payload, while `logical_len` — the payload's decoded length —
    /// accumulates into the per-lane `logical_*` counters, so the
    /// logical-vs-wire gap in [`CommStats`] measures exactly what
    /// compression saved on each lane.
    pub fn post_framed_bytes_at(
        &mut self,
        dst: usize,
        tag: TagValue,
        payload: Vec<u8>,
        depart: SimTime,
        logical_len: usize,
    ) -> SimTime {
        assert!(dst < self.nprocs, "send to rank {dst} of {}", self.nprocs);
        if dst == self.rank {
            // Self-send short-circuit: the payload never leaves this thread,
            // so there is no envelope in the shared mailbox, no modeled
            // transfer or fault delay, and no network stats — the message
            // "arrives" the moment it departs.
            self.stats.msgs_self += 1;
            self.stats.bytes_self += payload.len();
            self.stats.logical_self += logical_len;
            self.self_queue.push_back(Envelope {
                src: self.rank,
                tag,
                arrival: depart,
                payload,
            });
            return depart;
        }
        let same_node = self.shared.model.topology.same_node(self.rank, dst);
        let mut arrival = depart + self.shared.model.net.transfer_time(payload.len(), same_node);
        // Injected link degradation: fixed per-link delay plus deterministic
        // jitter, keyed by this sender's message count so repeats differ.
        if let Some(plan) = &self.shared.model.fault {
            arrival += plan.link_extra(self.rank, dst, self.stats.msgs_sent as u64);
        }
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += payload.len();
        if same_node {
            self.stats.msgs_intra += 1;
            self.stats.bytes_intra += payload.len();
            self.stats.logical_intra += logical_len;
        } else {
            self.stats.msgs_inter += 1;
            self.stats.bytes_inter += payload.len();
            self.stats.logical_inter += logical_len;
        }
        let env = Envelope {
            src: self.rank,
            tag,
            arrival,
            payload,
        };
        let mailbox = &self.shared.mailboxes[dst];
        lock_unpoisoned(&mailbox.queue).push_back(env);
        mailbox.arrived.notify_all();
        self.shared.note_progress();
        arrival
    }

    /// Pops the first queued self-delivery matching `src`/`tag`, if any.
    /// Self-deliveries are not network messages, so the receive counters
    /// stay untouched (the send side already counted it as a self message).
    fn take_self(&mut self, src: Source, tag: TagValue) -> Option<(Vec<u8>, RecvInfo)> {
        let pos = self.self_queue.iter().position(|e| e.matches(src, tag))?;
        let env = self.self_queue.remove(pos).expect("position is in range");
        let info = RecvInfo {
            src: env.src,
            tag: env.tag,
            arrival: env.arrival,
        };
        Some((env.payload, info))
    }

    /// Receives one message matching `src`/`tag`, blocking until it arrives.
    /// Advances the clock to the message's arrival time.
    pub fn recv_bytes(&mut self, src: impl Into<Source>, tag: TagValue) -> (Vec<u8>, RecvInfo) {
        let (payload, info) = self.recv_bytes_no_clock(src, tag);
        self.set_clock(self.clock.max(info.arrival));
        (payload, info)
    }

    /// Receives like [`recv_bytes`](Self::recv_bytes) but leaves the clock
    /// untouched — for engines that account arrival times into their own
    /// lane structures.
    ///
    /// Blocked receives are supervised: if any rank panics, the supervisor
    /// sets the world's abort flag and wakes every mailbox condvar, and
    /// this call unwinds immediately (quietly — the originating rank's
    /// panic is the one `World::run` reports). The deadlock watchdog is
    /// quiet-window based: the simulation runs in virtual time, so a
    /// receive can legitimately stay parked for a long *real* time while
    /// its peers churn through other traffic (deep pipelining, loaded CI
    /// hosts). The watchdog therefore re-arms on any global mailbox
    /// progress — and only panics, with a per-rank diagnostic snapshot,
    /// after the whole world has been silent for a full `recv_watchdog`
    /// window. The deadline is absolute, so spurious condvar wakeups near
    /// the deadline never double-count elapsed time.
    pub fn recv_bytes_no_clock(
        &mut self,
        src: impl Into<Source>,
        tag: TagValue,
    ) -> (Vec<u8>, RecvInfo) {
        let src = src.into();
        // Self-sends never enter the shared mailbox; they can only already
        // be queued locally (this thread cannot send while blocked here),
        // so one check up front suffices.
        if let Some(hit) = self.take_self(src, tag) {
            return hit;
        }
        let watchdog = self.shared.model.recv_watchdog;
        let mailbox = &self.shared.mailboxes[self.rank];
        let mut queue = lock_unpoisoned(&mailbox.queue);
        let mut seen = self.shared.progress();
        let mut deadline = Instant::now() + watchdog;
        loop {
            if self.shared.is_aborted() {
                drop(queue);
                // Unwind without invoking the panic hook: this rank is a
                // casualty, not the cause.
                std::panic::resume_unwind(Box::new(WorldAborted));
            }
            if let Some(pos) = queue.iter().position(|e| e.matches(src, tag)) {
                let env = queue.remove(pos).expect("position is in range");
                drop(queue);
                self.shared.note_progress();
                self.stats.msgs_recv += 1;
                self.stats.bytes_recv += env.payload.len();
                let info = RecvInfo {
                    src: env.src,
                    tag: env.tag,
                    arrival: env.arrival,
                };
                return (env.payload, info);
            }
            let now = Instant::now();
            if now >= deadline {
                let current = self.shared.progress();
                if current != seen {
                    // The world moved while we slept: re-arm and demand a
                    // full quiet window before declaring a deadlock.
                    seen = current;
                    deadline = now + watchdog;
                } else if !self.shared.is_aborted() {
                    let pending = queue.len();
                    drop(queue);
                    panic!(
                        "rank {} deadlocked waiting for src={src:?} tag={tag:#x} \
                         ({pending} messages pending, none match; no mailbox \
                         progress anywhere for {watchdog:?})\n{}",
                        self.rank,
                        self.shared.diagnostic(),
                    );
                }
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            let (guard, _timeout) = mailbox
                .arrived
                .wait_timeout(queue, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
        }
    }

    /// Non-blocking receive: returns the first matching message if one is
    /// already queued.
    pub fn try_recv_bytes(
        &mut self,
        src: impl Into<Source>,
        tag: TagValue,
    ) -> Option<(Vec<u8>, RecvInfo)> {
        let src = src.into();
        if let Some((payload, info)) = self.take_self(src, tag) {
            self.set_clock(self.clock.max(info.arrival));
            return Some((payload, info));
        }
        let mailbox = &self.shared.mailboxes[self.rank];
        let mut queue = lock_unpoisoned(&mailbox.queue);
        let pos = queue.iter().position(|e| e.matches(src, tag))?;
        let env = queue.remove(pos).expect("position is in range");
        drop(queue);
        self.shared.note_progress();
        self.stats.msgs_recv += 1;
        self.stats.bytes_recv += env.payload.len();
        self.set_clock(self.clock.max(env.arrival));
        let info = RecvInfo {
            src: env.src,
            tag: env.tag,
            arrival: env.arrival,
        };
        Some((env.payload, info))
    }

    /// Typed send: encodes `data` into a pooled buffer and sends it. Sends
    /// are always eager and buffered, so this is also the non-blocking
    /// `MPI_Isend`.
    pub fn send<T: Elem>(&mut self, dst: usize, tag: TagValue, data: &[T]) {
        let mut buf = self.pool.take();
        encode_slice_into(data, &mut buf);
        self.send_bytes(dst, tag, buf);
    }

    /// Posts a non-blocking receive. The returned request completes via
    /// [`RecvRequest::test`] or [`RecvRequest::wait`].
    pub fn irecv(&self, src: impl Into<Source>, tag: TagValue) -> RecvRequest {
        RecvRequest {
            src: src.into(),
            tag,
        }
    }

    /// Typed receive: blocks for a matching message, decodes it, and
    /// recycles the payload buffer into this rank's pool.
    pub fn recv<T: Elem>(&mut self, src: impl Into<Source>, tag: TagValue) -> (Vec<T>, RecvInfo) {
        let (bytes, info) = self.recv_bytes(src, tag);
        let data = decode_vec(&bytes);
        self.pool.put(bytes);
        (data, info)
    }
}

/// A pending non-blocking receive (`MPI_Irecv` analogue). Matching only
/// happens at `test`/`wait`; posting the request costs nothing.
#[derive(Debug, Clone, Copy)]
pub struct RecvRequest {
    src: Source,
    tag: TagValue,
}

impl RecvRequest {
    /// Completes the receive, blocking until a matching message arrives.
    pub fn wait<T: Elem>(self, comm: &mut Comm) -> (Vec<T>, RecvInfo) {
        comm.recv(self.src, self.tag)
    }

    /// Attempts to complete the receive without blocking; returns the
    /// request back if no matching message is queued yet.
    pub fn test<T: Elem>(self, comm: &mut Comm) -> Result<(Vec<T>, RecvInfo), RecvRequest> {
        match comm.try_recv_bytes(self.src, self.tag) {
            Some((bytes, info)) => {
                let data = decode_vec(&bytes);
                comm.recycle_buf(bytes);
                Ok((data, info))
            }
            None => Err(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    fn tiny(n: usize) -> World {
        World::new(n, ClusterModel::test_tiny(n))
    }

    #[test]
    fn ping_pong_moves_data_and_time() {
        let results = tiny(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[1.0f64, 2.0, 3.0]);
                let (data, info) = comm.recv::<f64>(1, 8);
                assert_eq!(info.src, 1);
                (data, comm.clock())
            } else {
                let (mut data, _) = comm.recv::<f64>(0, 7);
                for v in &mut data {
                    *v *= 10.0;
                }
                comm.send(0, 8, &data);
                (data, comm.clock())
            }
        });
        assert_eq!(results[0].0, vec![10.0, 20.0, 30.0]);
        // Rank 0's clock includes two message flights: strictly positive,
        // and the round trip ends after rank 1 posted its reply.
        assert!(results[0].1 > SimTime::ZERO);
        assert!(results[0].1 > results[1].1);
    }

    #[test]
    fn tag_matching_is_selective() {
        let results = tiny(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1u32]);
                comm.send(1, 2, &[2u32]);
                comm.send(1, 3, &[3u32]);
                vec![]
            } else {
                // Receive out of send order by tag.
                let (c, _) = comm.recv::<u32>(0, 3);
                let (a, _) = comm.recv::<u32>(0, 1);
                let (b, _) = comm.recv::<u32>(0, 2);
                vec![a[0], b[0], c[0]]
            }
        });
        assert_eq!(results[1], vec![1, 2, 3]);
    }

    #[test]
    fn wildcard_source_and_tag() {
        let results = tiny(3).run(|comm| {
            if comm.rank() == 2 {
                let mut got = Vec::new();
                for _ in 0..2 {
                    let (v, info) = comm.recv::<u64>(Source::Any, ANY_TAG);
                    got.push((info.src, v[0]));
                }
                got.sort_unstable();
                got
            } else {
                comm.send(2, comm.rank() as TagValue, &[comm.rank() as u64 * 100]);
                vec![]
            }
        });
        assert_eq!(results[2], vec![(0, 0), (1, 100)]);
    }

    #[test]
    fn fifo_per_source_and_tag() {
        let results = tiny(2).run(|comm| {
            if comm.rank() == 0 {
                for i in 0..100u32 {
                    comm.send(1, 5, &[i]);
                }
                vec![]
            } else {
                (0..100).map(|_| comm.recv::<u32>(0, 5).0[0]).collect()
            }
        });
        assert_eq!(results[1], (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn irecv_test_and_wait() {
        tiny(2).run(|comm| {
            if comm.rank() == 0 {
                // Nothing queued yet: test fails and returns the request.
                let req = comm.irecv(1, 3);
                let req = match req.test::<u32>(comm) {
                    Err(r) => r,
                    Ok(_) => panic!("nothing was sent yet"),
                };
                comm.send(1, 2, &[1u8]); // release the peer
                let (data, info) = req.wait::<u32>(comm);
                assert_eq!(data, vec![77]);
                assert_eq!(info.src, 1);
            } else {
                let _ = comm.recv::<u8>(0, 2);
                comm.send(0, 3, &[77u32]);
            }
        });
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        tiny(2).run(|comm| {
            if comm.rank() == 0 {
                assert!(comm.try_recv_bytes(1, 9).is_none());
            }
        });
    }

    #[test]
    fn clock_advances_on_recv_to_arrival() {
        let results = tiny(2).run(|comm| {
            if comm.rank() == 0 {
                // Do a lot of local "work" first so rank 1's message is old.
                comm.advance(SimTime::from_secs(5.0));
                comm.send(1, 0, &[0u8]);
                comm.clock()
            } else {
                let (_, info) = comm.recv_bytes(0, 0);
                // Arrival is after sender's 5 seconds of work.
                assert!(info.arrival > SimTime::from_secs(5.0));
                assert_eq!(comm.clock(), info.arrival);
                comm.clock()
            }
        });
        assert!(results[1] > results[0].saturating_since(SimTime::from_secs(0.1)));
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let results = tiny(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &[1.0f64; 10]);
                comm.stats()
            } else {
                let _ = comm.recv::<f64>(0, 0);
                comm.stats()
            }
        });
        assert_eq!(results[0].msgs_sent, 1);
        assert_eq!(results[0].bytes_sent, 80);
        assert_eq!(results[1].msgs_recv, 1);
        assert_eq!(results[1].bytes_recv, 80);
    }

    #[test]
    fn self_send_short_circuits_the_network() {
        let results = tiny(2).run(|comm| {
            if comm.rank() == 0 {
                let before = comm.clock();
                comm.send(0, 42, &[7.0f64, 8.0]);
                // FIFO with a second self message on the same tag.
                comm.send(0, 42, &[9.0f64]);
                let (a, info) = comm.recv::<f64>(0, 42);
                assert_eq!(a, vec![7.0, 8.0]);
                assert_eq!(info.src, 0);
                // Arrival is the departure: no latency or transfer charged,
                // only the sender-side overhead of the two posts.
                let send_cost = comm.model().net.send_cost();
                assert_eq!(info.arrival, before + send_cost);
                let (b, _) = comm.recv::<f64>(Source::Any, 42);
                assert_eq!(b, vec![9.0]);
            }
            comm.stats()
        });
        // Self-deliveries count as zero network messages on both sides.
        assert_eq!(results[0].msgs_sent, 0);
        assert_eq!(results[0].bytes_sent, 0);
        assert_eq!(results[0].msgs_recv, 0);
        assert_eq!(results[0].bytes_recv, 0);
        assert_eq!(results[0].msgs_intra + results[0].msgs_inter, 0);
        assert_eq!(results[0].msgs_self, 2);
        assert_eq!(results[0].bytes_self, 24);
    }

    #[test]
    fn stats_split_intra_and_inter_node() {
        // 2 nodes x 2 cores: rank 0 -> 1 is intra, rank 0 -> 2 is inter.
        let model = ClusterModel::hopper_like(2, 2);
        let results = World::new(4, model).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1u8; 10]);
                comm.send(2, 1, &[1u8; 30]);
            } else if comm.rank() < 3 {
                let _ = comm.recv::<u8>(0, 1);
            }
            comm.stats()
        });
        assert_eq!(results[0].msgs_intra, 1);
        assert_eq!(results[0].bytes_intra, 10);
        assert_eq!(results[0].msgs_inter, 1);
        assert_eq!(results[0].bytes_inter, 30);
        assert_eq!(results[0].msgs_sent, 2);
        assert_eq!(results[0].bytes_sent, 40);
    }

    #[test]
    #[should_panic]
    fn send_to_out_of_range_rank_panics() {
        tiny(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(5, 0, &[0u8]);
            }
        });
    }

    #[test]
    fn watchdog_rearms_on_global_progress() {
        use std::time::Duration;
        // Regression: the watchdog measures *real* wall-clock while the
        // simulation runs in virtual time. Rank 0 blocks for several full
        // watchdog windows while ranks 1 and 2 keep trafficking between
        // themselves — progress that never touches rank 0's mailbox. The
        // old per-wait timeout (re-armed only by deliveries to the waiting
        // rank) declared a false deadlock here; the quiet-window watchdog
        // must ride out the busy period and complete the receive.
        let model =
            ClusterModel::test_tiny(3).with_recv_watchdog(Duration::from_millis(150));
        let results = World::new(3, model).run(|comm| match comm.rank() {
            0 => comm.recv::<u32>(1, 1).0[0],
            1 => {
                // Stay busy well past several watchdog windows, then
                // release rank 0.
                for i in 0..10u32 {
                    std::thread::sleep(Duration::from_millis(50));
                    comm.send(2, 2, &[i]);
                }
                comm.send(0, 1, &[42u32]);
                0
            }
            _ => {
                for _ in 0..10 {
                    let _ = comm.recv::<u32>(1, 2);
                }
                0
            }
        });
        assert_eq!(results[0], 42);
    }

    #[test]
    fn watchdog_still_catches_true_deadlock() {
        use std::time::Duration;
        // A genuinely silent world must still trip the watchdog after one
        // full quiet window, with the diagnostic snapshot attached.
        let model =
            ClusterModel::test_tiny(2).with_recv_watchdog(Duration::from_millis(150));
        let t0 = Instant::now();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            World::new(2, model).run(|comm| {
                if comm.rank() == 0 {
                    // Nobody ever sends tag 99.
                    let _ = comm.recv::<u8>(1, 99);
                }
            })
        }));
        let payload = result.expect_err("silent world must trip the watchdog");
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic>");
        assert!(
            msg.contains("deadlocked waiting"),
            "watchdog panic must describe the deadlock, got: {msg}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "watchdog must fire promptly, took {:?}",
            t0.elapsed()
        );
    }
}
