//! Plain-old-data element types and their wire codec.
//!
//! Messages travel as little-endian byte vectors. The [`Elem`] trait is the
//! safe, explicit analogue of an MPI datatype: it defines the element size
//! and the per-element encode/decode. No `unsafe` transmutes — the codec is
//! a simple copy loop, which optimizes to `memcpy` for these types anyway.

/// A fixed-size scalar that can cross rank boundaries.
pub trait Elem: Copy + Send + Sync + 'static {
    /// Size of one element on the wire, in bytes.
    const SIZE: usize;

    /// Writes `self` into `out` (exactly `Self::SIZE` bytes).
    fn write_le(&self, out: &mut [u8]);

    /// Reads one element from `input` (exactly `Self::SIZE` bytes).
    fn read_le(input: &[u8]) -> Self;
}

macro_rules! impl_elem {
    ($($t:ty),*) => {$(
        impl Elem for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            fn write_le(&self, out: &mut [u8]) {
                out[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }

            fn read_le(input: &[u8]) -> Self {
                let mut b = [0u8; std::mem::size_of::<$t>()];
                b.copy_from_slice(&input[..Self::SIZE]);
                <$t>::from_le_bytes(b)
            }
        }
    )*};
}

impl_elem!(f32, f64, u8, u16, u32, u64, i8, i16, i32, i64);

/// Encodes a slice of elements into a fresh byte vector.
pub fn encode_slice<T: Elem>(data: &[T]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_slice_into(data, &mut out);
    out
}

/// Encodes into a caller-owned buffer, clearing it first. Hot paths pair
/// this with a recycled buffer (see `pool::BufferPool`) so steady-state
/// encoding does no allocation.
pub fn encode_slice_into<T: Elem>(data: &[T], out: &mut Vec<u8>) {
    out.clear();
    out.resize(data.len() * T::SIZE, 0);
    for (chunk, v) in out.chunks_exact_mut(T::SIZE).zip(data) {
        v.write_le(chunk);
    }
}

/// Decodes a byte buffer produced by [`encode_slice`].
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of the element size.
pub fn decode_vec<T: Elem>(bytes: &[u8]) -> Vec<T> {
    let mut out = Vec::new();
    decode_into(bytes, &mut out);
    out
}

/// Decodes into a caller-owned buffer, clearing it first — the scratch
/// counterpart of [`encode_slice_into`].
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of the element size.
pub fn decode_into<T: Elem>(bytes: &[u8], out: &mut Vec<T>) {
    assert!(
        bytes.len().is_multiple_of(T::SIZE),
        "byte buffer of length {} is not a whole number of {}-byte elements",
        bytes.len(),
        T::SIZE
    );
    out.clear();
    out.reserve(bytes.len() / T::SIZE);
    out.extend(bytes.chunks_exact(T::SIZE).map(T::read_le));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn f64_roundtrip() {
        let data = [1.5f64, -2.25, 0.0, f64::MAX, f64::MIN_POSITIVE];
        let bytes = encode_slice(&data);
        assert_eq!(bytes.len(), data.len() * 8);
        assert_eq!(decode_vec::<f64>(&bytes), data);
    }

    #[test]
    fn u8_is_identity() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(encode_slice(&data), data);
        assert_eq!(decode_vec::<u8>(&data), data);
    }

    #[test]
    fn empty_slice_roundtrip() {
        let empty: [u32; 0] = [];
        let bytes = encode_slice(&empty);
        assert!(bytes.is_empty());
        assert!(decode_vec::<u32>(&bytes).is_empty());
    }

    #[test]
    #[should_panic]
    fn ragged_decode_panics() {
        let _ = decode_vec::<u32>(&[1, 2, 3]);
    }

    proptest! {
        #[test]
        fn prop_f32_roundtrip(data in proptest::collection::vec(any::<f32>(), 0..256)) {
            let decoded = decode_vec::<f32>(&encode_slice(&data));
            prop_assert_eq!(decoded.len(), data.len());
            for (a, b) in decoded.iter().zip(&data) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn prop_i64_roundtrip(data in proptest::collection::vec(any::<i64>(), 0..256)) {
            prop_assert_eq!(decode_vec::<i64>(&encode_slice(&data)), data);
        }

        #[test]
        fn prop_u16_roundtrip(data in proptest::collection::vec(any::<u16>(), 0..256)) {
            prop_assert_eq!(decode_vec::<u16>(&encode_slice(&data)), data);
        }
    }
}
