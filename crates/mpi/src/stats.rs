//! Per-rank communication statistics.
//!
//! The overhead figures in the paper (Figs. 11-12) are fundamentally
//! message/byte counts; keeping them on the communicator makes every
//! benchmark's accounting come from the same source of truth. Messages are
//! classified by locality at post time — intra-node (shared memory),
//! inter-node (interconnect), or self (delivered without touching the
//! network at all) — so the hierarchical collectives' reduction in
//! interconnect traffic is directly observable.

/// Counters accumulated by one rank's [`Comm`](crate::Comm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages posted by this rank.
    pub msgs_sent: usize,
    /// Payload bytes posted by this rank.
    pub bytes_sent: usize,
    /// Messages received by this rank.
    pub msgs_recv: usize,
    /// Payload bytes received by this rank.
    pub bytes_recv: usize,
    /// Of `msgs_sent`: messages to a rank on the same node.
    pub msgs_intra: usize,
    /// Of `bytes_sent`: bytes to a rank on the same node.
    pub bytes_intra: usize,
    /// Of `msgs_sent`: messages that crossed the interconnect.
    pub msgs_inter: usize,
    /// Of `bytes_sent`: bytes that crossed the interconnect.
    pub bytes_inter: usize,
    /// Self-deliveries short-circuited past the mailbox. Not network
    /// messages; excluded from every other counter.
    pub msgs_self: usize,
    /// Payload bytes of self-deliveries.
    pub bytes_self: usize,
    /// Pre-compression (logical) bytes behind `bytes_intra`. Equal to
    /// `bytes_intra` unless a sender posted a compressed frame and
    /// recorded its decoded length; the gap between logical and wire
    /// counters is exactly the compression saving per lane.
    pub logical_intra: usize,
    /// Pre-compression (logical) bytes behind `bytes_inter`.
    pub logical_inter: usize,
    /// Pre-compression (logical) bytes behind `bytes_self`. Self
    /// deliveries are never compressed, so this always equals
    /// `bytes_self`; it exists so lane totals stay comparable.
    pub logical_self: usize,
}

impl CommStats {
    /// Adds another rank's counters into this one (for whole-run totals).
    pub fn merge(&mut self, other: &CommStats) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recv += other.msgs_recv;
        self.bytes_recv += other.bytes_recv;
        self.msgs_intra += other.msgs_intra;
        self.bytes_intra += other.bytes_intra;
        self.msgs_inter += other.msgs_inter;
        self.bytes_inter += other.bytes_inter;
        self.msgs_self += other.msgs_self;
        self.bytes_self += other.bytes_self;
        self.logical_intra += other.logical_intra;
        self.logical_inter += other.logical_inter;
        self.logical_self += other.logical_self;
    }

    /// The counters accumulated since an earlier `since` snapshot of the
    /// same rank's stats (fieldwise subtraction; counters only grow).
    pub fn delta(&self, since: &CommStats) -> CommStats {
        CommStats {
            msgs_sent: self.msgs_sent - since.msgs_sent,
            bytes_sent: self.bytes_sent - since.bytes_sent,
            msgs_recv: self.msgs_recv - since.msgs_recv,
            bytes_recv: self.bytes_recv - since.bytes_recv,
            msgs_intra: self.msgs_intra - since.msgs_intra,
            bytes_intra: self.bytes_intra - since.bytes_intra,
            msgs_inter: self.msgs_inter - since.msgs_inter,
            bytes_inter: self.bytes_inter - since.bytes_inter,
            msgs_self: self.msgs_self - since.msgs_self,
            bytes_self: self.bytes_self - since.bytes_self,
            logical_intra: self.logical_intra - since.logical_intra,
            logical_inter: self.logical_inter - since.logical_inter,
            logical_self: self.logical_self - since.logical_self,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = CommStats {
            msgs_sent: 1,
            bytes_sent: 10,
            msgs_recv: 2,
            bytes_recv: 20,
            msgs_intra: 1,
            bytes_intra: 10,
            msgs_inter: 0,
            bytes_inter: 0,
            msgs_self: 5,
            bytes_self: 50,
            logical_intra: 16,
            logical_inter: 0,
            logical_self: 50,
        };
        let b = CommStats {
            msgs_sent: 3,
            bytes_sent: 30,
            msgs_recv: 4,
            bytes_recv: 40,
            msgs_intra: 1,
            bytes_intra: 12,
            msgs_inter: 2,
            bytes_inter: 18,
            msgs_self: 1,
            bytes_self: 7,
            logical_intra: 12,
            logical_inter: 40,
            logical_self: 7,
        };
        a.merge(&b);
        assert_eq!(
            a,
            CommStats {
                msgs_sent: 4,
                bytes_sent: 40,
                msgs_recv: 6,
                bytes_recv: 60,
                msgs_intra: 2,
                bytes_intra: 22,
                msgs_inter: 2,
                bytes_inter: 18,
                msgs_self: 6,
                bytes_self: 57,
                logical_intra: 28,
                logical_inter: 40,
                logical_self: 57,
            }
        );
        // delta undoes merge.
        assert_eq!(
            a.delta(&b),
            CommStats {
                msgs_sent: 1,
                bytes_sent: 10,
                msgs_recv: 2,
                bytes_recv: 20,
                msgs_intra: 1,
                bytes_intra: 10,
                msgs_inter: 0,
                bytes_inter: 0,
                msgs_self: 5,
                bytes_self: 50,
                logical_intra: 16,
                logical_inter: 0,
                logical_self: 50,
            }
        );
    }
}
