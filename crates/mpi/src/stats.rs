//! Per-rank communication statistics.
//!
//! The overhead figures in the paper (Figs. 11-12) are fundamentally
//! message/byte counts; keeping them on the communicator makes every
//! benchmark's accounting come from the same source of truth.

/// Counters accumulated by one rank's [`Comm`](crate::Comm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Messages posted by this rank.
    pub msgs_sent: usize,
    /// Payload bytes posted by this rank.
    pub bytes_sent: usize,
    /// Messages received by this rank.
    pub msgs_recv: usize,
    /// Payload bytes received by this rank.
    pub bytes_recv: usize,
}

impl CommStats {
    /// Adds another rank's counters into this one (for whole-run totals).
    pub fn merge(&mut self, other: &CommStats) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recv += other.msgs_recv;
        self.bytes_recv += other.bytes_recv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = CommStats {
            msgs_sent: 1,
            bytes_sent: 10,
            msgs_recv: 2,
            bytes_recv: 20,
        };
        let b = CommStats {
            msgs_sent: 3,
            bytes_sent: 30,
            msgs_recv: 4,
            bytes_recv: 40,
        };
        a.merge(&b);
        assert_eq!(
            a,
            CommStats {
                msgs_sent: 4,
                bytes_sent: 40,
                msgs_recv: 6,
                bytes_recv: 60,
            }
        );
    }
}
