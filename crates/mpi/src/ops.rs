//! Reduction operators.
//!
//! The paper's object I/O passes a user computation into the I/O layer via
//! `MPI_Op_create` (Fig. 6, line 10). [`ReduceOp`] is the Rust analogue: an
//! element-wise combiner over equal-length slices, required to be
//! associative (as MPI requires of user ops used with `MPI_Reduce`).
//! Commutativity is *not* required: `reduce`, `allreduce`, and `scan`
//! combine contributions in rank order, merging contiguous ascending rank
//! blocks, matching MPI's defined ordering for non-commutative ops.

use crate::elem::Elem;

/// An element-wise reduction over equal-length slices.
///
/// Implementations must be associative up to floating-point rounding; the
/// collectives apply them in rank order (contiguous ascending blocks), so
/// non-commutative associative ops reduce exactly as MPI specifies.
pub trait ReduceOp<T: Elem>: Send + Sync {
    /// Folds `incoming` into `acc`, element by element.
    ///
    /// # Panics
    /// Implementations may assume and assert `acc.len() == incoming.len()`.
    fn combine(&self, acc: &mut [T], incoming: &[T]);
}

/// Element-wise sum (`MPI_SUM`).
pub struct SumOp;

impl<T> ReduceOp<T> for SumOp
where
    T: Elem + std::ops::Add<Output = T>,
{
    fn combine(&self, acc: &mut [T], incoming: &[T]) {
        assert_eq!(acc.len(), incoming.len(), "reduce length mismatch");
        for (a, b) in acc.iter_mut().zip(incoming) {
            *a = *a + *b;
        }
    }
}

/// Element-wise minimum (`MPI_MIN`).
pub struct MinOp;

impl<T> ReduceOp<T> for MinOp
where
    T: Elem + PartialOrd,
{
    fn combine(&self, acc: &mut [T], incoming: &[T]) {
        assert_eq!(acc.len(), incoming.len(), "reduce length mismatch");
        for (a, b) in acc.iter_mut().zip(incoming) {
            if *b < *a {
                *a = *b;
            }
        }
    }
}

/// Element-wise maximum (`MPI_MAX`).
pub struct MaxOp;

impl<T> ReduceOp<T> for MaxOp
where
    T: Elem + PartialOrd,
{
    fn combine(&self, acc: &mut [T], incoming: &[T]) {
        assert_eq!(acc.len(), incoming.len(), "reduce length mismatch");
        for (a, b) in acc.iter_mut().zip(incoming) {
            if *b > *a {
                *a = *b;
            }
        }
    }
}

/// A user-defined operator built from a closure — the analogue of
/// `MPI_Op_create` on a user function.
pub struct FnOp<F>(pub F);

impl<T, F> ReduceOp<T> for FnOp<F>
where
    T: Elem,
    F: Fn(&mut [T], &[T]) + Send + Sync,
{
    fn combine(&self, acc: &mut [T], incoming: &[T]) {
        assert_eq!(acc.len(), incoming.len(), "reduce length mismatch");
        (self.0)(acc, incoming);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sum_combines_elementwise() {
        let mut acc = [1.0f64, 2.0, 3.0];
        SumOp.combine(&mut acc, &[10.0, 20.0, 30.0]);
        assert_eq!(acc, [11.0, 22.0, 33.0]);
    }

    #[test]
    fn min_max_combine() {
        let mut lo = [5i64, -2, 7];
        MinOp.combine(&mut lo, &[3, 0, 9]);
        assert_eq!(lo, [3, -2, 7]);
        let mut hi = [5i64, -2, 7];
        MaxOp.combine(&mut hi, &[3, 0, 9]);
        assert_eq!(hi, [5, 0, 9]);
    }

    #[test]
    fn fn_op_wraps_closure() {
        let xor = FnOp(|acc: &mut [u32], inc: &[u32]| {
            for (a, b) in acc.iter_mut().zip(inc) {
                *a ^= *b;
            }
        });
        let mut acc = [0b1010u32];
        xor.combine(&mut acc, &[0b0110]);
        assert_eq!(acc, [0b1100]);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut acc = [1.0f32];
        SumOp.combine(&mut acc, &[1.0, 2.0]);
    }

    proptest! {
        // Associativity and commutativity of the integer ops, which is what
        // lets the collectives apply them in arbitrary tree order.
        #[test]
        fn prop_sum_assoc_commut(
            a in -1_000_000_000i64..1_000_000_000,
            b in -1_000_000_000i64..1_000_000_000,
            c in -1_000_000_000i64..1_000_000_000,
        ) {
            let combine = |x: i64, y: i64| {
                let mut acc = [x];
                SumOp.combine(&mut acc, &[y]);
                acc[0]
            };
            prop_assert_eq!(
                combine(combine(a, b), c),
                combine(a, combine(b, c))
            );
            prop_assert_eq!(combine(a, b), combine(b, a));
        }

        #[test]
        fn prop_min_is_lattice_meet(a in any::<i32>(), b in any::<i32>()) {
            let mut acc = [a];
            MinOp.combine(&mut acc, &[b]);
            prop_assert_eq!(acc[0], a.min(b));
            // Idempotent.
            let mut acc2 = [a];
            MinOp.combine(&mut acc2, &[a]);
            prop_assert_eq!(acc2[0], a);
        }
    }
}
