//! SPMD launcher: one OS thread per rank, with run supervision.
//!
//! Every rank closure runs under a panic guard. The first rank to panic
//! records itself as the abort cause and wakes every mailbox condvar, so
//! peers blocked in `recv` unwind immediately (well under the watchdog)
//! instead of timing out. [`World::run`] then re-raises a single panic
//! naming the *originating* rank and its message, plus a per-rank
//! diagnostic snapshot (virtual clock, collectives entered, pending
//! envelopes).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use cc_model::ClusterModel;

use crate::comm::{Comm, Shared, WorldAborted};

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A simulated MPI world: `nprocs` ranks placed on the model's topology.
///
/// `run` may be called repeatedly; each call is an independent job with
/// fresh mailboxes and clocks (like separate `mpiexec` invocations).
pub struct World {
    nprocs: usize,
    model: ClusterModel,
}

impl World {
    /// Creates a world of `nprocs` ranks.
    ///
    /// # Panics
    /// Panics if `nprocs` is zero or exceeds the topology's core count —
    /// the model assumes at most one rank per core.
    pub fn new(nprocs: usize, model: ClusterModel) -> Self {
        assert!(nprocs > 0, "need at least one rank");
        assert!(
            nprocs <= model.capacity(),
            "{nprocs} ranks exceed the topology's {} cores",
            model.capacity()
        );
        Self { nprocs, model }
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The cluster model used by this world.
    pub fn model(&self) -> &ClusterModel {
        &self.model
    }

    /// Runs `f` on every rank concurrently and returns the per-rank results
    /// in rank order. Blocks until all ranks finish.
    ///
    /// # Panics
    /// If any rank panics, every other rank is unwound promptly (blocked
    /// receivers are woken rather than left to the watchdog) and, after all
    /// threads are joined, a single panic is raised naming the originating
    /// rank, its message, and a per-rank diagnostic snapshot.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        let shared = Shared::new(self.nprocs, self.model.clone());
        let f = &f;
        let results: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.nprocs)
                .map(|rank| {
                    let shared = Arc::clone(&shared);
                    let nprocs = self.nprocs;
                    scope.spawn(move || {
                        let mut comm = Comm::new(rank, nprocs, Arc::clone(&shared));
                        match catch_unwind(AssertUnwindSafe(|| f(&mut comm))) {
                            Ok(result) => result,
                            Err(payload) => {
                                // Secondary unwinds (peers woken by the
                                // abort) must not overwrite the cause.
                                if !payload.is::<WorldAborted>() {
                                    shared.signal_abort(rank, panic_message(payload.as_ref()));
                                }
                                resume_unwind(payload);
                            }
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        if let Some(info) = shared.abort_info() {
            panic!(
                "rank {} panicked: {}\n{}",
                info.rank,
                info.message,
                shared.diagnostic()
            );
        }
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|payload| resume_unwind(payload)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_numbered_and_sized() {
        let world = World::new(6, ClusterModel::test_tiny(6));
        let ids = world.run(|comm| (comm.rank(), comm.nprocs()));
        assert_eq!(
            ids,
            (0..6).map(|r| (r, 6)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_is_reusable_with_fresh_state() {
        let world = World::new(2, ClusterModel::test_tiny(2));
        for _ in 0..3 {
            let sent = world.run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 0, &[9u8]);
                    0
                } else {
                    comm.recv::<u8>(0, 0).0[0]
                }
            });
            assert_eq!(sent[1], 9);
        }
    }

    #[test]
    fn rank_panic_aborts_blocked_peers_quickly() {
        // Rank 1 panics while every other rank is blocked in recv on a
        // message that will never come. The supervisor must wake them and
        // surface rank 1's panic well under the watchdog (and under the
        // 5 s budget the tests run with).
        let t0 = std::time::Instant::now();
        let world = World::new(4, ClusterModel::test_tiny(4));
        let result = catch_unwind(AssertUnwindSafe(|| {
            world.run(|comm| {
                if comm.rank() == 1 {
                    panic!("injected failure on rank 1");
                }
                // Blocks forever: nobody sends tag 99.
                let _ = comm.recv::<u8>(0, 99);
            })
        }));
        let elapsed = t0.elapsed();
        let payload = result.expect_err("world must propagate the panic");
        let msg = panic_message(payload.as_ref());
        assert!(
            msg.contains("rank 1 panicked: injected failure on rank 1"),
            "panic must name the originating rank, got: {msg}"
        );
        assert!(
            msg.contains("clock="),
            "panic must carry the diagnostic snapshot, got: {msg}"
        );
        assert!(
            elapsed < std::time::Duration::from_secs(5),
            "abort took {elapsed:?}, should be well under 5 s"
        );
    }

    #[test]
    fn abort_does_not_poison_subsequent_runs() {
        let world = World::new(2, ClusterModel::test_tiny(2));
        let _ = catch_unwind(AssertUnwindSafe(|| {
            world.run(|comm| {
                if comm.rank() == 0 {
                    panic!("boom");
                }
                let _ = comm.recv::<u8>(0, 7);
            })
        }));
        // A fresh run on the same World works: state is per-run.
        let ok = world.run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[3u8]);
                3
            } else {
                comm.recv::<u8>(0, 7).0[0]
            }
        });
        assert_eq!(ok, vec![3, 3]);
    }

    #[test]
    #[should_panic]
    fn oversubscription_panics() {
        let _ = World::new(10, ClusterModel::test_tiny(4));
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = World::new(0, ClusterModel::test_tiny(4));
    }
}
