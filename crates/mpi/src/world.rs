//! SPMD launcher: one OS thread per rank.

use std::sync::Arc;

use cc_model::ClusterModel;

use crate::comm::{Comm, Shared};

/// A simulated MPI world: `nprocs` ranks placed on the model's topology.
///
/// `run` may be called repeatedly; each call is an independent job with
/// fresh mailboxes and clocks (like separate `mpiexec` invocations).
pub struct World {
    nprocs: usize,
    model: ClusterModel,
}

impl World {
    /// Creates a world of `nprocs` ranks.
    ///
    /// # Panics
    /// Panics if `nprocs` is zero or exceeds the topology's core count —
    /// the model assumes at most one rank per core.
    pub fn new(nprocs: usize, model: ClusterModel) -> Self {
        assert!(nprocs > 0, "need at least one rank");
        assert!(
            nprocs <= model.capacity(),
            "{nprocs} ranks exceed the topology's {} cores",
            model.capacity()
        );
        Self { nprocs, model }
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The cluster model used by this world.
    pub fn model(&self) -> &ClusterModel {
        &self.model
    }

    /// Runs `f` on every rank concurrently and returns the per-rank results
    /// in rank order. Blocks until all ranks finish.
    ///
    /// # Panics
    /// Propagates a panic from any rank (after all threads are joined).
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        let shared = Shared::new(self.nprocs, self.model.clone());
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.nprocs)
                .map(|rank| {
                    let shared = Arc::clone(&shared);
                    let nprocs = self.nprocs;
                    scope.spawn(move || {
                        let mut comm = Comm::new(rank, nprocs, shared);
                        f(&mut comm)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_numbered_and_sized() {
        let world = World::new(6, ClusterModel::test_tiny(6));
        let ids = world.run(|comm| (comm.rank(), comm.nprocs()));
        assert_eq!(
            ids,
            (0..6).map(|r| (r, 6)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn run_is_reusable_with_fresh_state() {
        let world = World::new(2, ClusterModel::test_tiny(2));
        for _ in 0..3 {
            let sent = world.run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 0, &[9u8]);
                    0
                } else {
                    comm.recv::<u8>(0, 0).0[0]
                }
            });
            assert_eq!(sent[1], 9);
        }
    }

    #[test]
    #[should_panic]
    fn oversubscription_panics() {
        let _ = World::new(10, ClusterModel::test_tiny(4));
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = World::new(0, ClusterModel::test_tiny(4));
    }
}
