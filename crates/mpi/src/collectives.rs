//! Collective operations built over point-to-point messages.
//!
//! Algorithms follow the MPICH defaults the paper ran on: dissemination
//! barrier, binomial-tree broadcast and reduce, ring allgather, pairwise
//! (eager) alltoallv, flat gather/scatter (flat gather is also exactly how
//! ROMIO exchanges offset lists), and a linear-chain scan. Because they
//! are built on the timed p2p layer,
//! their virtual cost — latency terms growing with `log P` or `P`,
//! bandwidth terms growing with volume — emerges from the model rather than
//! being asserted.
//!
//! All collectives must be called by every rank of the world in the same
//! order (SPMD), like MPI. A per-rank collective sequence number keeps the
//! tag space of concurrent user p2p traffic disjoint from collective
//! internals.

use cc_model::SimTime;

use crate::comm::{Comm, TagValue, COLLECTIVE_TAG_BASE};
use crate::elem::Elem;
use crate::ops::ReduceOp;

impl Comm {
    /// Allocates the tag for the next collective call site.
    fn next_collective_tag(&mut self) -> TagValue {
        self.next_engine_tag(COLLECTIVE_TAG_BASE)
    }

    /// Dissemination barrier: all ranks leave with clocks synchronized to
    /// the latest participant.
    pub fn barrier(&mut self) {
        let tag = self.next_collective_tag();
        let p = self.nprocs();
        if p == 1 {
            return;
        }
        let rank = self.rank();
        let mut step = 1;
        while step < p {
            let to = (rank + step) % p;
            let from = (rank + p - step) % p;
            self.send(to, tag, &[self.clock().secs()]);
            let (peer, _) = self.recv::<f64>(from, tag);
            // The barrier completes no earlier than the peer's send time.
            self.advance_to(SimTime::from_secs(peer[0]));
            step <<= 1;
        }
    }

    /// Binomial-tree broadcast of a byte buffer from `root`. Every rank
    /// returns the payload. Dispatches to the node-leader hierarchical
    /// algorithm (see `hier.rs`) when the topology supports it.
    pub fn bcast_bytes(&mut self, root: usize, data: Option<Vec<u8>>) -> Vec<u8> {
        let tag = self.next_collective_tag();
        assert!(root < self.nprocs(), "bcast root {root} out of range");
        if let Some(view) = self.hier_view() {
            return self.hier_bcast_bytes(&view, root, data, tag);
        }
        let p = self.nprocs();
        assert!(root < p, "bcast root {root} out of range");
        let vrank = (self.rank() + p - root) % p;
        let mut payload = if vrank == 0 {
            data.expect("root must supply the broadcast payload")
        } else {
            Vec::new()
        };
        // Receive from the parent: the classic MPICH binomial numbering,
        // where a node's parent is its virtual rank with the lowest set
        // bit cleared.
        if vrank != 0 {
            let parent_v = vrank & (vrank - 1);
            let parent = (parent_v + root) % p;
            let (bytes, _) = self.recv_bytes(parent, tag);
            payload = bytes;
        }
        // Forward to children: set bits above the lowest set bit of vrank.
        let lowest = if vrank == 0 {
            p.next_power_of_two()
        } else {
            1 << vrank.trailing_zeros()
        };
        let mut bit = lowest >> 1;
        let mut children = Vec::new();
        while bit > 0 {
            let child_v = vrank | bit;
            if child_v < p && child_v != vrank {
                children.push((child_v + root) % p);
            }
            bit >>= 1;
        }
        // Send to the largest subtree first (standard order); each copy
        // rides a pooled buffer.
        for child in children {
            let mut buf = self.take_buf();
            buf.extend_from_slice(&payload);
            self.send_bytes(child, tag, buf);
        }
        payload
    }

    /// Typed broadcast: `data` is ignored on non-roots.
    pub fn bcast<T: Elem>(&mut self, root: usize, data: Option<&[T]>) -> Vec<T> {
        let bytes = self.bcast_bytes(root, data.map(crate::elem::encode_slice));
        let out = crate::elem::decode_vec(&bytes);
        self.recycle_buf(bytes);
        out
    }

    /// Gather of variable-length contributions to `root`. Returns
    /// `Some(contributions_by_rank)` on the root, `None` elsewhere. Flat
    /// (direct sends, exactly ROMIO's offset-list exchange) on a single
    /// node; remote nodes coalesce through their leader otherwise.
    pub fn gatherv<T: Elem>(&mut self, root: usize, mine: &[T]) -> Option<Vec<Vec<T>>> {
        let tag = self.next_collective_tag();
        let p = self.nprocs();
        assert!(root < p, "gather root {root} out of range");
        if let Some(view) = self.hier_view() {
            let bytes = crate::elem::encode_slice(mine);
            let out = self.hier_gatherv_bytes(&view, root, &bytes, tag);
            return out.map(|blocks| {
                blocks
                    .into_iter()
                    .map(|b| crate::elem::decode_vec(&b))
                    .collect()
            });
        }
        if self.rank() == root {
            let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
            out[root] = mine.to_vec();
            for _ in 0..p - 1 {
                let (data, info) = self.recv::<T>(crate::comm::Source::Any, tag);
                out[info.src] = data;
            }
            Some(out)
        } else {
            self.send(root, tag, mine);
            None
        }
    }

    /// Allgather of variable-length contributions: every rank returns all
    /// ranks' contributions, indexed by rank. Ring algorithm when flat;
    /// hierarchical gather-to-zero plus frame broadcast otherwise.
    pub fn allgatherv<T: Elem>(&mut self, mine: &[T]) -> Vec<Vec<T>> {
        let tag = self.next_collective_tag();
        if let Some(view) = self.hier_view() {
            let bytes = crate::elem::encode_slice(mine);
            return self
                .hier_allgatherv_bytes(&view, &bytes, tag)
                .into_iter()
                .map(|b| crate::elem::decode_vec(&b))
                .collect();
        }
        let p = self.nprocs();
        let rank = self.rank();
        let mut blocks: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        blocks[rank] = mine.to_vec();
        if p == 1 {
            return blocks;
        }
        let right = (rank + 1) % p;
        let left = (rank + p - 1) % p;
        for step in 0..p - 1 {
            let send_block = (rank + p - step) % p;
            let recv_block = (rank + p - step - 1) % p;
            self.send(right, tag, &blocks[send_block]);
            let (data, _) = self.recv::<T>(left, tag);
            blocks[recv_block] = data;
        }
        blocks
    }

    /// Personalized all-to-all exchange of variable-length byte buffers.
    /// `sends[d]` goes to rank `d`; returns the buffers received, indexed by
    /// source. The self-block is moved without a message.
    pub fn alltoallv_bytes(&mut self, mut sends: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let tag = self.next_collective_tag();
        if let Some(view) = self.hier_view() {
            return self.hier_alltoallv_bytes(&view, sends, tag);
        }
        let p = self.nprocs();
        assert_eq!(sends.len(), p, "alltoallv needs one buffer per rank");
        let rank = self.rank();
        let mut recvs: Vec<Vec<u8>> = (0..p).map(|_| Vec::new()).collect();
        recvs[rank] = std::mem::take(&mut sends[rank]);
        // Eager sends never block, so post everything then drain.
        for offset in 1..p {
            let dst = (rank + offset) % p;
            self.send_bytes(dst, tag, std::mem::take(&mut sends[dst]));
        }
        for offset in 1..p {
            let src = (rank + p - offset) % p;
            let (data, _) = self.recv_bytes(src, tag);
            recvs[src] = data;
        }
        recvs
    }

    /// Typed all-to-all exchange. Wire buffers come from and return to the
    /// per-rank pool.
    pub fn alltoallv<T: Elem>(&mut self, sends: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let bytes = sends
            .iter()
            .map(|v| {
                let mut buf = self.take_buf();
                crate::elem::encode_slice_into(v, &mut buf);
                buf
            })
            .collect();
        self.alltoallv_bytes(bytes)
            .into_iter()
            .map(|b| {
                let data = crate::elem::decode_vec(&b);
                self.recycle_buf(b);
                data
            })
            .collect()
    }

    /// Binomial-tree reduction to `root`. All ranks pass equal-length
    /// slices; the root returns the element-wise reduction, others `None`.
    ///
    /// Contributions are always combined in *rank order* (MPI's guarantee
    /// for non-commutative ops): the binomial tree runs over the plain rank
    /// numbering — each combine merges contiguous, ascending rank blocks —
    /// and rank 0 forwards the finished result to a nonzero `root`, exactly
    /// as MPICH does rather than rotating the tree (which would rotate the
    /// combine order).
    pub fn reduce<T: Elem>(
        &mut self,
        root: usize,
        data: &[T],
        op: &dyn ReduceOp<T>,
    ) -> Option<Vec<T>> {
        let tag = self.next_collective_tag();
        let p = self.nprocs();
        assert!(root < p, "reduce root {root} out of range");
        if let Some(view) = self.hier_view() {
            return self.hier_reduce(&view, root, data, op, tag);
        }
        let rank = self.rank();
        let mut acc = data.to_vec();
        let mut bit = 1;
        let mut sent_up = false;
        while bit < p {
            if rank & bit != 0 {
                // Send the partial up the tree and stop combining.
                self.send(rank & !bit, tag, &acc);
                sent_up = true;
                break;
            }
            let child = rank | bit;
            if child < p {
                let (incoming, _) = self.recv::<T>(child, tag);
                op.combine(&mut acc, &incoming);
            }
            bit <<= 1;
        }
        if root == 0 {
            return (rank == 0).then_some(acc);
        }
        // Forward the rank-ordered result from the tree root to `root`.
        if rank == 0 {
            self.send(root, tag, &acc);
            None
        } else if rank == root {
            debug_assert!(sent_up || p == 1, "nonzero rank must have sent up");
            Some(self.recv::<T>(0, tag).0)
        } else {
            None
        }
    }

    /// Reduce-to-zero followed by broadcast: every rank returns the
    /// element-wise reduction.
    pub fn allreduce<T: Elem>(&mut self, data: &[T], op: &dyn ReduceOp<T>) -> Vec<T> {
        let reduced = self.reduce(0, data, op);
        self.bcast(0, reduced.as_deref())
    }

    /// Flat scatter of variable-length blocks from `root`: the root passes
    /// one block per rank, every rank returns its block.
    ///
    /// # Panics
    /// Panics if the root's block count differs from the world size.
    pub fn scatterv<T: Elem>(&mut self, root: usize, blocks: Option<Vec<Vec<T>>>) -> Vec<T> {
        let tag = self.next_collective_tag();
        let p = self.nprocs();
        assert!(root < p, "scatter root {root} out of range");
        if self.rank() == root {
            let mut blocks = blocks.expect("root must supply the scatter blocks");
            assert_eq!(blocks.len(), p, "scatter needs one block per rank");
            for (dst, block) in blocks.iter().enumerate() {
                if dst != root {
                    self.send(dst, tag, block);
                }
            }
            std::mem::take(&mut blocks[root])
        } else {
            self.recv::<T>(root, tag).0
        }
    }

    /// Inclusive prefix reduction (`MPI_Scan`): rank `r` returns the
    /// element-wise reduction of ranks `0..=r`'s contributions. Linear
    /// chain algorithm; the op need not be commutative.
    pub fn scan<T: Elem>(&mut self, data: &[T], op: &dyn ReduceOp<T>) -> Vec<T> {
        let tag = self.next_collective_tag();
        let rank = self.rank();
        let mut acc = data.to_vec();
        if rank > 0 {
            let (prefix, _) = self.recv::<T>(rank - 1, tag);
            // acc = prefix op mine, preserving rank order for
            // non-commutative ops: fold mine into the prefix.
            let mut folded = prefix;
            op.combine(&mut folded, &acc);
            acc = folded;
        }
        if rank + 1 < self.nprocs() {
            self.send(rank + 1, tag, &acc);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{MaxOp, MinOp, SumOp};
    use crate::world::World;
    use cc_model::ClusterModel;

    fn run_n<R: Send>(n: usize, f: impl Fn(&mut Comm) -> R + Send + Sync) -> Vec<R> {
        World::new(n, ClusterModel::test_tiny(n)).run(f)
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        for n in [1, 2, 3, 5, 8] {
            let clocks = run_n(n, |comm| {
                // Rank r works for r seconds, then hits the barrier.
                comm.advance(SimTime::from_secs(comm.rank() as f64));
                comm.barrier();
                comm.clock()
            });
            let slowest = SimTime::from_secs((n - 1) as f64);
            for c in clocks {
                assert!(c >= slowest, "clock {c} below slowest entrant");
            }
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for n in [1, 2, 3, 4, 7, 9] {
            for root in 0..n {
                let payload = vec![root as f64, 42.0, -1.0];
                let results = run_n(n, |comm| {
                    let data = (comm.rank() == root).then(|| payload.clone());
                    comm.bcast(root, data.as_deref())
                });
                for r in results {
                    assert_eq!(r, payload);
                }
            }
        }
    }

    #[test]
    fn gatherv_collects_ragged_contributions() {
        let results = run_n(4, |comm| {
            let mine: Vec<u32> = (0..comm.rank() as u32 + 1).collect();
            comm.gatherv(2, &mine)
        });
        let gathered = results[2].as_ref().expect("root has the result");
        assert_eq!(gathered[0], vec![0]);
        assert_eq!(gathered[1], vec![0, 1]);
        assert_eq!(gathered[2], vec![0, 1, 2]);
        assert_eq!(gathered[3], vec![0, 1, 2, 3]);
        assert!(results[0].is_none());
    }

    #[test]
    fn allgatherv_matches_gather_on_all_ranks() {
        for n in [1, 2, 3, 6] {
            let results = run_n(n, |comm| {
                let mine = vec![comm.rank() as u64 * 10];
                comm.allgatherv(&mine)
            });
            for r in &results {
                let expected: Vec<Vec<u64>> = (0..n as u64).map(|i| vec![i * 10]).collect();
                assert_eq!(r, &expected);
            }
        }
    }

    #[test]
    fn alltoallv_permutes_blocks() {
        let n = 5;
        let results = run_n(n, |comm| {
            // Rank s sends [s*10 + d] to rank d.
            let sends: Vec<Vec<u8>> = (0..n)
                .map(|d| vec![(comm.rank() * 10 + d) as u8])
                .collect();
            comm.alltoallv_bytes(sends)
        });
        for (d, recvs) in results.iter().enumerate() {
            for (s, block) in recvs.iter().enumerate() {
                assert_eq!(block, &vec![(s * 10 + d) as u8]);
            }
        }
    }

    #[test]
    fn alltoallv_with_empty_blocks() {
        let n = 4;
        let results = run_n(n, |comm| {
            // Only even ranks send, and only to odd ranks.
            let sends: Vec<Vec<u8>> = (0..n)
                .map(|d| {
                    if comm.rank() % 2 == 0 && d % 2 == 1 {
                        vec![comm.rank() as u8; 3]
                    } else {
                        vec![]
                    }
                })
                .collect();
            comm.alltoallv_bytes(sends)
        });
        assert_eq!(results[1][0], vec![0, 0, 0]);
        assert_eq!(results[1][2], vec![2, 2, 2]);
        assert!(results[0].iter().all(|b| b.is_empty()));
        assert!(results[1][1].is_empty());
        assert!(results[1][3].is_empty());
    }

    #[test]
    fn reduce_sums_across_ranks() {
        for n in [1, 2, 3, 4, 5, 8, 13] {
            for root in [0, n - 1] {
                let results = run_n(n, |comm| {
                    let mine = [comm.rank() as f64, 1.0];
                    comm.reduce(root, &mine, &SumOp)
                });
                let expect_sum = (n * (n - 1) / 2) as f64;
                for (r, res) in results.iter().enumerate() {
                    if r == root {
                        assert_eq!(res.as_ref().unwrap(), &vec![expect_sum, n as f64]);
                    } else {
                        assert!(res.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_respects_rank_order_at_nonzero_root() {
        use crate::ops::FnOp;
        // Two associative, non-commutative ops that expose the combine
        // order directly: "first writer wins" yields rank 0's value,
        // "last writer wins" yields rank (p-1)'s value — regardless of
        // which rank is the root. A rotated tree (the old bug) would
        // have returned the root's own and (root-1)'s values instead.
        let take_left = FnOp(|_acc: &mut [u64], _inc: &[u64]| {});
        let take_right = FnOp(|acc: &mut [u64], inc: &[u64]| {
            acc.copy_from_slice(inc);
        });
        for n in [2, 3, 5, 8] {
            for root in 0..n {
                let firsts = run_n(n, |comm| {
                    comm.reduce(root, &[comm.rank() as u64 + 100], &take_left)
                });
                assert_eq!(
                    firsts[root].as_ref().unwrap(),
                    &vec![100],
                    "first-contributor must be rank 0 (n={n}, root={root})"
                );
                let lasts = run_n(n, |comm| {
                    comm.reduce(root, &[comm.rank() as u64 + 100], &take_right)
                });
                assert_eq!(
                    lasts[root].as_ref().unwrap(),
                    &vec![100 + n as u64 - 1],
                    "last-contributor must be rank p-1 (n={n}, root={root})"
                );
            }
        }
    }

    #[test]
    fn allreduce_min_max() {
        let n = 6;
        let mins = run_n(n, |comm| {
            let mine = [(comm.rank() as i64) - 3];
            comm.allreduce(&mine, &MinOp)[0]
        });
        assert_eq!(mins, vec![-3; n]);
        let maxs = run_n(n, |comm| {
            let mine = [(comm.rank() as i64) - 3];
            comm.allreduce(&mine, &MaxOp)[0]
        });
        assert_eq!(maxs, vec![2; n]);
    }

    #[test]
    fn scatterv_distributes_blocks() {
        for root in [0, 2] {
            let results = run_n(4, move |comm| {
                let blocks = (comm.rank() == root).then(|| {
                    (0..4u64).map(|d| vec![d * 10, d * 10 + 1]).collect::<Vec<_>>()
                });
                comm.scatterv(root, blocks)
            });
            for (r, b) in results.iter().enumerate() {
                assert_eq!(b, &vec![r as u64 * 10, r as u64 * 10 + 1]);
            }
        }
    }

    #[test]
    fn scan_computes_inclusive_prefixes() {
        let results = run_n(5, |comm| {
            comm.scan(&[comm.rank() as i64 + 1], &SumOp)[0]
        });
        // Prefix sums of 1,2,3,4,5.
        assert_eq!(results, vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn scan_respects_rank_order_for_noncommutative_ops() {
        use crate::ops::FnOp;
        // "Last writer wins" keeps the highest-rank value seen so far:
        // associative but order-sensitive if misimplemented.
        let take_right = FnOp(|acc: &mut [u64], inc: &[u64]| {
            acc.copy_from_slice(inc);
        });
        let results = run_n(4, move |comm| {
            comm.scan(&[comm.rank() as u64 * 7], &take_right)[0]
        });
        assert_eq!(results, vec![0, 7, 14, 21]);
    }

    #[test]
    fn collectives_compose_without_tag_collisions() {
        // Interleave user p2p with collectives; matching must stay clean.
        let results = run_n(3, |comm| {
            let next = (comm.rank() + 1) % 3;
            let prev = (comm.rank() + 2) % 3;
            comm.send(next, 17, &[comm.rank() as u32]);
            let total = comm.allreduce(&[1.0f64], &SumOp)[0];
            let (from_prev, _) = comm.recv::<u32>(prev, 17);
            comm.barrier();
            (total, from_prev[0])
        });
        for (r, (total, from)) in results.iter().enumerate() {
            assert_eq!(*total, 3.0);
            assert_eq!(*from as usize, (r + 2) % 3);
        }
    }

    #[test]
    fn collective_cost_grows_with_scale() {
        // Virtual barrier cost must grow with rank count (log P rounds).
        let t4 = run_n(4, |comm| {
            comm.barrier();
            comm.clock()
        })[0];
        let t16 = run_n(16, |comm| {
            comm.barrier();
            comm.clock()
        })[0];
        assert!(t16 > t4);
    }
}
