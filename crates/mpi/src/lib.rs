//! An in-process MPI-like message-passing runtime with virtual time.
//!
//! This crate stands in for MPICH on the paper's Cray XE6: each rank is an
//! OS thread, communicators deliver real bytes through mailboxes, and every
//! operation advances a per-rank *virtual clock* according to the
//! [`cc_model`] cost model. The collectives (barrier, bcast, gather,
//! allgather, alltoallv, reduce, allreduce) are implemented over
//! point-to-point messages with the standard tree/dissemination algorithms,
//! so their virtual cost emerges from the same model as everything else.
//!
//! # Example
//!
//! ```
//! use cc_model::ClusterModel;
//! use cc_mpi::{ops, World};
//!
//! let world = World::new(4, ClusterModel::test_tiny(4));
//! let sums = world.run(|comm| {
//!     let mine = (comm.rank() + 1) as f64;
//!     comm.allreduce(&[mine], &ops::SumOp)[0]
//! });
//! assert_eq!(sums, vec![10.0; 4]);
//! ```

#![warn(missing_docs)]

pub mod collectives;
pub mod comm;
pub mod elem;
pub mod hier;
pub mod ops;
pub mod pool;
pub mod stats;
pub mod world;

pub use comm::{Comm, RecvInfo, RecvRequest, Source, ANY_TAG};
pub use hier::NodeView;
pub use elem::Elem;
pub use ops::ReduceOp;
pub use pool::BufferPool;
pub use stats::CommStats;
pub use world::World;
