//! Recycled byte buffers for the message hot path.
//!
//! Every typed send encodes into a byte vector and every receive hands one
//! back; at steady state a rank allocates and frees the same-sized buffers
//! over and over. [`BufferPool`] is a small per-rank freelist that keeps
//! those allocations alive: senders draw cleared buffers from it, and
//! receivers return payload buffers once decoded. Buffers keep their
//! capacity across recycling, so after warm-up the messaging layer stops
//! touching the allocator.

/// A freelist of reusable `Vec<u8>` allocations.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    taken: u64,
    reused: u64,
}

/// Buffers retained beyond this count are dropped instead of pooled, so a
/// burst (a wide alltoallv) cannot pin memory forever.
const MAX_POOLED: usize = 64;

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer, reusing a recycled allocation when available.
    pub fn take(&mut self) -> Vec<u8> {
        self.taken += 1;
        match self.free.pop() {
            Some(mut buf) => {
                self.reused += 1;
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer's allocation to the pool.
    pub fn put(&mut self, buf: Vec<u8>) {
        if buf.capacity() > 0 && self.free.len() < MAX_POOLED {
            self.free.push(buf);
        }
    }

    /// `(buffers handed out, of which reused)` — for steady-state
    /// allocation checks.
    pub fn stats(&self) -> (u64, u64) {
        (self.taken, self.reused)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_recycled_allocation() {
        let mut pool = BufferPool::new();
        let mut a = pool.take();
        a.extend_from_slice(&[1, 2, 3, 4]);
        let ptr = a.as_ptr();
        let cap = a.capacity();
        pool.put(a);
        let b = pool.take();
        assert!(b.is_empty());
        assert_eq!(b.as_ptr(), ptr);
        assert_eq!(b.capacity(), cap);
        assert_eq!(pool.stats(), (2, 1));
    }

    #[test]
    fn capacityless_buffers_are_not_pooled() {
        let mut pool = BufferPool::new();
        pool.put(Vec::new());
        let _ = pool.take();
        assert_eq!(pool.stats(), (1, 0));
    }

    #[test]
    fn pool_is_bounded() {
        let mut pool = BufferPool::new();
        for _ in 0..2 * MAX_POOLED {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.free.len(), MAX_POOLED);
    }
}
