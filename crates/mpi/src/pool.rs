//! Recycled byte buffers for the message hot path.
//!
//! Every typed send encodes into a byte vector and every receive hands one
//! back; at steady state a rank allocates and frees the same-sized buffers
//! over and over. [`BufferPool`] is a small per-rank freelist that keeps
//! those allocations alive: senders draw cleared buffers from it, and
//! receivers return payload buffers once decoded. Buffers keep their
//! capacity across recycling, so after warm-up the messaging layer stops
//! touching the allocator.
//!
//! Retention is capped both by buffer *count* and by total retained
//! *bytes*: a one-off giant shuffle (one huge coalesced frame per node,
//! say) would otherwise park multi-megabyte allocations in the freelist
//! for the rest of the run.

/// A freelist of reusable `Vec<u8>` allocations.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    free_bytes: usize,
    taken: u64,
    reused: u64,
    evicted: u64,
}

/// Buffers retained beyond this count are dropped instead of pooled, so a
/// burst (a wide alltoallv) cannot pin memory forever.
const MAX_POOLED: usize = 64;

/// Total capacity the freelist may retain. A buffer whose return would push
/// the pool past this is dropped (evicted) instead of pooled, so a one-off
/// giant message doesn't pin its allocation for the rest of the run.
const MAX_POOLED_BYTES: usize = 64 << 20;

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer, reusing a recycled allocation when available.
    pub fn take(&mut self) -> Vec<u8> {
        self.taken += 1;
        match self.free.pop() {
            Some(mut buf) => {
                self.reused += 1;
                self.free_bytes -= buf.capacity();
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer's allocation to the pool, dropping it instead when
    /// the pool is at its count cap or retaining it would exceed the byte
    /// cap.
    pub fn put(&mut self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        if self.free.len() >= MAX_POOLED
            || self.free_bytes + buf.capacity() > MAX_POOLED_BYTES
        {
            self.evicted += 1;
            return;
        }
        self.free_bytes += buf.capacity();
        self.free.push(buf);
    }

    /// `(buffers handed out, of which reused)` — for steady-state
    /// allocation checks.
    pub fn stats(&self) -> (u64, u64) {
        (self.taken, self.reused)
    }

    /// `(buffers evicted at return time, bytes currently retained)` — for
    /// memory-cap regression checks.
    pub fn eviction_stats(&self) -> (u64, usize) {
        (self.evicted, self.free_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_recycled_allocation() {
        let mut pool = BufferPool::new();
        let mut a = pool.take();
        a.extend_from_slice(&[1, 2, 3, 4]);
        let ptr = a.as_ptr();
        let cap = a.capacity();
        pool.put(a);
        let b = pool.take();
        assert!(b.is_empty());
        assert_eq!(b.as_ptr(), ptr);
        assert_eq!(b.capacity(), cap);
        assert_eq!(pool.stats(), (2, 1));
    }

    #[test]
    fn capacityless_buffers_are_not_pooled() {
        let mut pool = BufferPool::new();
        pool.put(Vec::new());
        let _ = pool.take();
        assert_eq!(pool.stats(), (1, 0));
        // Dropping a capacityless buffer is not an eviction.
        assert_eq!(pool.eviction_stats(), (0, 0));
    }

    #[test]
    fn pool_is_bounded_by_count() {
        let mut pool = BufferPool::new();
        for _ in 0..2 * MAX_POOLED {
            pool.put(Vec::with_capacity(8));
        }
        assert_eq!(pool.free.len(), MAX_POOLED);
        let (evicted, retained) = pool.eviction_stats();
        assert_eq!(evicted, MAX_POOLED as u64);
        assert_eq!(retained, MAX_POOLED * 8);
    }

    #[test]
    fn pool_is_bounded_by_bytes() {
        let mut pool = BufferPool::new();
        // A giant buffer that alone exceeds the byte cap is never
        // retained...
        pool.put(Vec::with_capacity(MAX_POOLED_BYTES + 1));
        assert_eq!(pool.eviction_stats(), (1, 0));
        // ...and once retained capacity is at the cap, further returns are
        // evicted even though the count cap has headroom.
        let half = MAX_POOLED_BYTES / 2;
        pool.put(Vec::with_capacity(half));
        pool.put(Vec::with_capacity(half));
        assert_eq!(pool.eviction_stats(), (1, MAX_POOLED_BYTES));
        pool.put(Vec::with_capacity(4096));
        let (evicted, retained) = pool.eviction_stats();
        assert_eq!(evicted, 2);
        assert_eq!(retained, MAX_POOLED_BYTES);
        assert!(pool.free.len() < MAX_POOLED);
        // Taking a buffer frees its share of the budget, letting returns
        // through again.
        let _ = pool.take();
        pool.put(Vec::with_capacity(4096));
        assert_eq!(pool.eviction_stats(), (2, half + 4096));
    }
}
