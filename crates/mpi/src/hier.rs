//! Topology-aware hierarchical collectives.
//!
//! Flat collectives send one message per rank pair even when
//! `Topology::same_node` says the peers share memory. Following the
//! two-level designs of Kang et al. (intra-node request aggregation for
//! collective I/O) and Zhou et al. (leader-based collectives for multi-core
//! clusters), each node elects a *leader* — its lowest rank — and traffic
//! is split into two legs: members exchange with their leader over the
//! cheap intra-node fabric, and leaders exchange one *coalesced frame* per
//! node pair across the interconnect. With `c` cores per node this divides
//! inter-node message counts by up to `c` (alltoallv: by `c²` per node
//! pair) at the price of intra-node hops, which the cost model prices an
//! order of magnitude cheaper.
//!
//! The hierarchical paths are *bit-identical* to the flat ones: byte
//! payloads are moved verbatim, and reductions preserve MPI's rank-order
//! combine guarantee (each combine merges contiguous, ascending rank
//! blocks — members fold into their leader in ascending rank order, and
//! the leader tree runs a non-rotated binomial over ascending node
//! indices). Parenthesization *can* differ from the flat binomial, so
//! results for non-associative float ops may differ in the last ulp; all
//! exactly-associative ops (integers, min/max, selection) are bit-equal.
//!
//! Tag discipline: one collective sequence bump covers a whole
//! hierarchical collective; the intra-node, inter-leader, and relay legs
//! each stamp the sequence onto a distinct reserved base so the legs can
//! never cross-match, and per-(source, tag) FIFO plus fixed enumeration
//! orders (ascending ranks within a node, ascending nodes across the
//! machine) make every match deterministic.
//!
//! Fallback: when `cores_per_node == 1` or only one node hosts ranks there
//! is nothing to coalesce, and [`Comm::hier_view`] returns `None` — the
//! dispatchers in `collectives.rs` then run the flat algorithms. The
//! `ClusterModel::collectives` mode can also force flat globally (every
//! rank shares the model, so the choice is SPMD-consistent).

use cc_model::CollectiveMode;

use crate::comm::{Comm, TagValue, SEQ_MASK};
use crate::elem::Elem;
use crate::ops::ReduceOp;

/// Intra-node leg of a hierarchical collective (member <-> leader).
pub(crate) const HIER_INTRA_BASE: TagValue = 0x9000_0000;
/// Inter-node leg (leader <-> leader coalesced frames).
pub(crate) const HIER_INTER_BASE: TagValue = 0xA000_0000;
/// Member -> leader up-frames in the hierarchical alltoallv (distinct from
/// the direct intra-node data blocks riding `HIER_INTRA_BASE`).
pub(crate) const HIER_UP_BASE: TagValue = 0xB000_0000;
/// Leader -> member relay frames in the hierarchical alltoallv.
pub(crate) const HIER_RELAY_BASE: TagValue = 0xC000_0000;

/// This rank's place in the node hierarchy, derived from the topology and
/// the world size. Only exists when the hierarchical paths are active (see
/// [`Comm::hier_view`]), so holders can assume more than one populated
/// node and more than one core per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeView {
    /// The node hosting this rank.
    pub node: usize,
    /// This node's leader: its lowest rank.
    pub leader: usize,
    /// First live rank on this node.
    pub node_lo: usize,
    /// One past the last live rank on this node.
    pub node_hi: usize,
    /// Number of nodes hosting at least one rank.
    pub nodes_used: usize,
    cores_per_node: usize,
    nprocs: usize,
}

impl NodeView {
    /// Whether this rank is its node's leader.
    pub fn is_leader(&self, rank: usize) -> bool {
        rank == self.leader_of(rank)
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.cores_per_node
    }

    /// The leader rank of `node`.
    pub fn leader_of_node(&self, node: usize) -> usize {
        node * self.cores_per_node
    }

    /// The leader rank of the node hosting `rank`.
    pub fn leader_of(&self, rank: usize) -> usize {
        self.leader_of_node(self.node_of(rank))
    }

    /// The half-open live-rank range of `node`.
    pub fn node_range(&self, node: usize) -> (usize, usize) {
        let lo = (node * self.cores_per_node).min(self.nprocs);
        let hi = ((node + 1) * self.cores_per_node).min(self.nprocs);
        (lo, hi)
    }
}

/// Appends one length-prefixed frame section.
fn push_section(frame: &mut Vec<u8>, bytes: &[u8]) {
    frame.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    frame.extend_from_slice(bytes);
}

/// Reads the length-prefixed section at `*pos`, advancing the cursor.
fn read_section<'f>(frame: &'f [u8], pos: &mut usize) -> &'f [u8] {
    let len = u64::from_le_bytes(frame[*pos..*pos + 8].try_into().expect("section header"));
    *pos += 8;
    let body = &frame[*pos..*pos + len as usize];
    *pos += len as usize;
    body
}

impl Comm {
    /// This rank's node hierarchy when hierarchical collectives are
    /// active; `None` means callers must use the flat algorithms. Active
    /// iff the model does not force `Flat`, nodes have more than one core,
    /// and more than one node hosts ranks — otherwise there is no
    /// interconnect traffic to coalesce.
    pub fn hier_view(&self) -> Option<NodeView> {
        let model = self.model();
        if model.collectives == CollectiveMode::Flat {
            return None;
        }
        let topo = &model.topology;
        if topo.cores_per_node == 1 {
            return None;
        }
        let nodes_used = topo.nodes_used(self.nprocs());
        if nodes_used < 2 {
            return None;
        }
        let node = topo.node_of(self.rank());
        let (node_lo, node_hi) = topo.node_range(node, self.nprocs());
        Some(NodeView {
            node,
            leader: topo.leader_of_node(node),
            node_lo,
            node_hi,
            nodes_used,
            cores_per_node: topo.cores_per_node,
            nprocs: self.nprocs(),
        })
    }

    /// Sends a leader-to-leader collective frame, losslessly compressed
    /// when the model's `compress_collective_frames` switch is on. The
    /// codec CPU joins the sender overhead on this rank's clock; the wire
    /// is charged on the compressed frame while the `logical_*` stats
    /// lanes keep the decoded length. Lossless only, so the flat/
    /// hierarchical bit-identity contract is untouched. (The typed
    /// `hier_reduce` leg stays raw: its per-hop payloads are already the
    /// reduced partials, not coalesced frames.)
    fn send_inter_frame(&mut self, dst: usize, tag: TagValue, frame: Vec<u8>) {
        if !self.model().compress_collective_frames {
            self.send_bytes(dst, tag, frame);
            return;
        }
        let logical_len = frame.len();
        let mut wire = self.take_buf();
        cc_compress::encode_into(&cc_compress::Compression::Lossless, &frame, &mut wire);
        self.recycle_buf(frame);
        let overhead =
            self.model().cpu.compress_time(logical_len) + self.model().net.send_cost();
        self.advance(overhead);
        let depart = self.clock();
        self.post_framed_bytes_at(dst, tag, wire, depart, logical_len);
    }

    /// Receives a leader-to-leader frame sent by
    /// [`send_inter_frame`](Self::send_inter_frame), decoding it (and
    /// charging decode CPU) when the model compresses collective frames.
    fn recv_inter_frame(&mut self, src: usize, tag: TagValue) -> Vec<u8> {
        let (wire, _) = self.recv_bytes(src, tag);
        if !self.model().compress_collective_frames {
            return wire;
        }
        let mut frame = self.take_buf();
        let n = cc_compress::decode_into(&wire, &mut frame);
        self.recycle_buf(wire);
        let decode = self.model().cpu.decompress_time(n);
        self.advance(decode);
        frame
    }

    /// The per-leg tags of one hierarchical collective, all stamped with
    /// the sequence number already embedded in `tag` (the single bump the
    /// dispatcher performed).
    pub(crate) fn hier_tags(tag: TagValue) -> (TagValue, TagValue) {
        let seq = tag & SEQ_MASK;
        (HIER_INTRA_BASE | seq, HIER_INTER_BASE | seq)
    }

    /// Hierarchical binomial broadcast: root -> its node leader (intra),
    /// rotated binomial over node leaders (inter), leaders -> members
    /// (intra).
    pub(crate) fn hier_bcast_bytes(
        &mut self,
        view: &NodeView,
        root: usize,
        data: Option<Vec<u8>>,
        tag: TagValue,
    ) -> Vec<u8> {
        let (t_intra, t_inter) = Self::hier_tags(tag);
        let rank = self.rank();
        let root_node = view.node_of(root);
        let am_leader = rank == view.leader;
        let mut payload = if rank == root {
            data.expect("root must supply the broadcast payload")
        } else {
            Vec::new()
        };

        // Leg 1: the root hands the payload to its node's leader.
        if rank == root && !am_leader {
            let mut buf = self.take_buf();
            buf.extend_from_slice(&payload);
            self.send_bytes(view.leader, t_intra, buf);
        }
        if am_leader && view.node == root_node && rank != root {
            payload = self.recv_bytes(root, t_intra).0;
        }

        // Leg 2: rotated binomial over node indices, leaders only (bcast
        // has no combine order to preserve, so rotation is fine).
        if am_leader {
            let n = view.nodes_used;
            let vnode = (view.node + n - root_node) % n;
            if vnode != 0 {
                let parent_v = vnode & (vnode - 1);
                let parent = view.leader_of_node((parent_v + root_node) % n);
                payload = self.recv_inter_frame(parent, t_inter);
            }
            let lowest = if vnode == 0 {
                n.next_power_of_two()
            } else {
                1 << vnode.trailing_zeros()
            };
            let mut bit = lowest >> 1;
            while bit > 0 {
                let child_v = vnode | bit;
                if child_v < n && child_v != vnode {
                    let child = view.leader_of_node((child_v + root_node) % n);
                    let mut buf = self.take_buf();
                    buf.extend_from_slice(&payload);
                    self.send_inter_frame(child, t_inter, buf);
                }
                bit >>= 1;
            }
            // Leg 3 (send side): fan out to the node's members. The root
            // already holds the payload and posts no receive.
            for dst in view.node_lo..view.node_hi {
                if dst != rank && dst != root {
                    let mut buf = self.take_buf();
                    buf.extend_from_slice(&payload);
                    self.send_bytes(dst, t_intra, buf);
                }
            }
        } else if rank != root {
            // Leg 3 (receive side).
            payload = self.recv_bytes(view.leader, t_intra).0;
        }
        payload
    }

    /// Hierarchical gather of byte blocks to `root`: members of remote
    /// nodes send to their leader (intra), each remote leader sends one
    /// frame of its node's blocks — ascending rank order, length-prefixed
    /// — to the root (inter), and the root's own node sends directly
    /// (intra). Returns `Some(blocks_by_rank)` on the root.
    pub(crate) fn hier_gatherv_bytes(
        &mut self,
        view: &NodeView,
        root: usize,
        mine: &[u8],
        tag: TagValue,
    ) -> Option<Vec<Vec<u8>>> {
        let (t_intra, t_inter) = Self::hier_tags(tag);
        let rank = self.rank();
        let root_node = view.node_of(root);

        if rank == root {
            let mut out: Vec<Vec<u8>> = (0..self.nprocs()).map(|_| Vec::new()).collect();
            out[root] = mine.to_vec();
            #[allow(clippy::needless_range_loop)] // src is the peer rank
            for src in view.node_lo..view.node_hi {
                if src != root {
                    out[src] = self.recv_bytes(src, t_intra).0;
                }
            }
            for node in 0..view.nodes_used {
                if node == root_node {
                    continue;
                }
                let frame = self.recv_inter_frame(view.leader_of_node(node), t_inter);
                let (lo, hi) = view.node_range(node);
                let mut pos = 0;
                #[allow(clippy::needless_range_loop)] // src is the peer rank
                for src in lo..hi {
                    out[src] = read_section(&frame, &mut pos).to_vec();
                }
                self.recycle_buf(frame);
            }
            return Some(out);
        }

        if view.node == root_node {
            // The root's own node needs no coalescing: its members reach
            // the root over shared memory already.
            self.send(root, t_intra, mine);
            return None;
        }
        if rank == view.leader {
            let mut frame = self.take_buf();
            // Sections in ascending rank order; the leader is the node's
            // lowest rank, so its own block comes first.
            push_section(&mut frame, mine);
            for src in view.node_lo + 1..view.node_hi {
                let (bytes, _) = self.recv_bytes(src, t_intra);
                push_section(&mut frame, &bytes);
                self.recycle_buf(bytes);
            }
            self.send_inter_frame(root, t_inter, frame);
        } else {
            self.send(view.leader, t_intra, mine);
        }
        None
    }

    /// Hierarchical allgather: gather everything to rank 0 (the leader of
    /// node 0), then broadcast one frame holding all blocks.
    pub(crate) fn hier_allgatherv_bytes(
        &mut self,
        view: &NodeView,
        mine: &[u8],
        tag: TagValue,
    ) -> Vec<Vec<u8>> {
        let table = self.hier_gatherv_bytes(view, 0, mine, tag);
        let frame = table.map(|blocks| {
            let mut frame = self.take_buf();
            for block in &blocks {
                push_section(&mut frame, block);
            }
            frame
        });
        let frame = self.hier_bcast_bytes(view, 0, frame, tag);
        let mut pos = 0;
        let out = (0..self.nprocs())
            .map(|_| read_section(&frame, &mut pos).to_vec())
            .collect();
        self.recycle_buf(frame);
        out
    }

    /// Hierarchical rank-order reduce: members fold into their leader in
    /// ascending rank order (intra), leaders run a non-rotated binomial
    /// over ascending node indices (inter) so every combine still merges
    /// contiguous ascending rank blocks, and rank 0 — the tree's root —
    /// forwards the finished result to a nonzero `root`, exactly like the
    /// flat algorithm.
    pub(crate) fn hier_reduce<T: Elem>(
        &mut self,
        view: &NodeView,
        root: usize,
        data: &[T],
        op: &dyn ReduceOp<T>,
        tag: TagValue,
    ) -> Option<Vec<T>> {
        let (t_intra, t_inter) = Self::hier_tags(tag);
        let rank = self.rank();
        let mut acc = data.to_vec();

        if rank != view.leader {
            self.send(view.leader, t_intra, &acc);
        } else {
            for src in view.node_lo + 1..view.node_hi {
                let (incoming, _) = self.recv::<T>(src, t_intra);
                op.combine(&mut acc, &incoming);
            }
            // Binomial over node indices, *not* rotated: node n's partial
            // covers ranks [node_lo, node_hi), so combining node n with
            // node n|bit merges adjacent ascending blocks.
            let n = view.node;
            let mut bit = 1;
            while bit < view.nodes_used {
                if n & bit != 0 {
                    self.send(view.leader_of_node(n & !bit), t_inter, &acc);
                    break;
                }
                let child = n | bit;
                if child < view.nodes_used {
                    let (incoming, _) = self.recv::<T>(view.leader_of_node(child), t_inter);
                    op.combine(&mut acc, &incoming);
                }
                bit <<= 1;
            }
        }
        // The tree result lives at rank 0 (leader of node 0).
        if root == 0 {
            return (rank == 0).then_some(acc);
        }
        if rank == 0 {
            self.send(root, t_inter, &acc);
            None
        } else if rank == root {
            Some(self.recv::<T>(0, t_inter).0)
        } else {
            None
        }
    }

    /// Hierarchical personalized all-to-all. Within a node, blocks move
    /// directly between members (shared memory is already cheap). Across
    /// nodes, each member ships one length-prefixed *up-frame* per remote
    /// node to its leader; the leader concatenates its members' up-frames
    /// — ascending source rank — into one frame per node pair, exchanges
    /// them leader-to-leader, and relays each incoming frame's sections to
    /// its members. All loops enumerate ascending (nodes outer, ranks
    /// inner), which with per-(source, tag) FIFO makes every match
    /// deterministic. Leaders' own up-frames and relays ride the self-send
    /// short-circuit, so they move without copies or envelopes.
    pub(crate) fn hier_alltoallv_bytes(
        &mut self,
        view: &NodeView,
        mut sends: Vec<Vec<u8>>,
        tag: TagValue,
    ) -> Vec<Vec<u8>> {
        let (t_intra, t_inter) = Self::hier_tags(tag);
        let seq = tag & SEQ_MASK;
        let (t_up, t_relay) = (HIER_UP_BASE | seq, HIER_RELAY_BASE | seq);
        let p = self.nprocs();
        assert_eq!(sends.len(), p, "alltoallv needs one buffer per rank");
        let rank = self.rank();
        let am_leader = rank == view.leader;
        let mut recvs: Vec<Vec<u8>> = (0..p).map(|_| Vec::new()).collect();
        recvs[rank] = std::mem::take(&mut sends[rank]);

        // Phase 1 (all eager): direct intra-node blocks, then one up-frame
        // per remote node to the leader (the leader's own up-frames
        // short-circuit through its self queue).
        #[allow(clippy::needless_range_loop)] // dst is the peer rank
        for dst in view.node_lo..view.node_hi {
            if dst != rank {
                self.send_bytes(dst, t_intra, std::mem::take(&mut sends[dst]));
            }
        }
        for node in 0..view.nodes_used {
            if node == view.node {
                continue;
            }
            let (lo, hi) = view.node_range(node);
            let mut frame = self.take_buf();
            #[allow(clippy::needless_range_loop)] // dst is the peer rank
            for dst in lo..hi {
                push_section(&mut frame, &sends[dst]);
                sends[dst] = Vec::new();
            }
            self.send_bytes(view.leader, t_up, frame);
        }

        // Phase 2 (leaders): per remote node, concatenate the members'
        // up-frames in ascending source-rank order and exchange one frame
        // per node pair. FIFO per (source, tag) pairs the i-th up-frame
        // from a member with the i-th remote node in ascending order on
        // both sides.
        if am_leader {
            for node in 0..view.nodes_used {
                if node == view.node {
                    continue;
                }
                let mut frame = self.take_buf();
                for src in view.node_lo..view.node_hi {
                    let (up, _) = self.recv_bytes(src, t_up);
                    frame.extend_from_slice(&up);
                    self.recycle_buf(up);
                }
                self.send_inter_frame(view.leader_of_node(node), t_inter, frame);
            }
            // Receive the node-pair frames and relay per-member slices:
            // frame layout is src-major (ascending src in the remote
            // node), dst-minor (ascending dst here), so relaying walks the
            // sections and regroups them by destination member.
            for node in 0..view.nodes_used {
                if node == view.node {
                    continue;
                }
                let frame = self.recv_inter_frame(view.leader_of_node(node), t_inter);
                let (lo, hi) = view.node_range(node);
                let members = view.node_hi - view.node_lo;
                let mut relays: Vec<Vec<u8>> = Vec::with_capacity(members);
                for _ in 0..members {
                    relays.push(self.take_buf());
                }
                let mut pos = 0;
                for _src in lo..hi {
                    for relay in relays.iter_mut() {
                        let body = read_section(&frame, &mut pos);
                        push_section(relay, body);
                    }
                }
                self.recycle_buf(frame);
                for (slot, relay) in relays.into_iter().enumerate() {
                    self.send_bytes(view.node_lo + slot, t_relay, relay);
                }
            }
        }

        // Phase 3 (all ranks): unpack relayed remote blocks, then drain
        // the direct intra-node blocks.
        for node in 0..view.nodes_used {
            if node == view.node {
                continue;
            }
            let (relay, _) = self.recv_bytes(view.leader, t_relay);
            let (lo, hi) = view.node_range(node);
            let mut pos = 0;
            #[allow(clippy::needless_range_loop)] // src is the peer rank
            for src in lo..hi {
                recvs[src] = read_section(&relay, &mut pos).to_vec();
            }
            self.recycle_buf(relay);
        }
        #[allow(clippy::needless_range_loop)] // src is the peer rank
        for src in view.node_lo..view.node_hi {
            if src != rank {
                let (block, _) = self.recv_bytes(src, t_intra);
                recvs[src] = block;
            }
        }
        recvs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{FnOp, MaxOp, MinOp, SumOp};
    use crate::world::World;
    use cc_model::ClusterModel;

    fn model(nodes: usize, cores: usize, mode: CollectiveMode) -> ClusterModel {
        ClusterModel::hopper_like(nodes, cores).with_collectives(mode)
    }

    /// Runs `f` under flat and hierarchical collectives on the same
    /// topology and asserts identical per-rank results.
    fn assert_modes_agree<R>(
        nodes: usize,
        cores: usize,
        nprocs: usize,
        f: impl Fn(&mut Comm) -> R + Send + Sync,
    ) where
        R: PartialEq + std::fmt::Debug + Send,
    {
        let flat = World::new(nprocs, model(nodes, cores, CollectiveMode::Flat)).run(&f);
        let hier = World::new(nprocs, model(nodes, cores, CollectiveMode::Hierarchical)).run(&f);
        assert_eq!(
            flat, hier,
            "hier diverged from flat ({nodes} nodes x {cores} cores, {nprocs} ranks)"
        );
    }

    #[test]
    fn hier_view_gating() {
        // Multi-core multi-node: hierarchical.
        let views = World::new(8, model(2, 4, CollectiveMode::Auto)).run(|c| c.hier_view());
        assert!(views.iter().all(Option::is_some));
        assert_eq!(views[5].unwrap().leader, 4);
        // One core per node: nothing to coalesce.
        let views = World::new(4, model(4, 1, CollectiveMode::Auto)).run(|c| c.hier_view());
        assert!(views.iter().all(Option::is_none));
        // World fits on one node: nothing crosses the interconnect.
        let views = World::new(3, model(4, 4, CollectiveMode::Auto)).run(|c| c.hier_view());
        assert!(views.iter().all(Option::is_none));
        // Flat mode forces the view off even on a hierarchical topology.
        let views = World::new(8, model(2, 4, CollectiveMode::Flat)).run(|c| c.hier_view());
        assert!(views.iter().all(Option::is_none));
    }

    #[test]
    fn all_collectives_agree_on_partial_worlds() {
        // Non-power-of-two nodes, partially filled last node.
        for (nodes, cores, nprocs) in [(2, 2, 4), (3, 4, 10), (5, 3, 13), (2, 16, 32)] {
            assert_modes_agree(nodes, cores, nprocs, move |comm| {
                let rank = comm.rank();
                let root = nprocs / 2;
                let payload: Vec<u8> = (0..50).map(|i| (rank + i) as u8).collect();
                let b = comm.bcast_bytes(root, (rank == root).then(|| payload.clone()));
                let mine: Vec<u32> = (0..rank % 5).map(|i| (rank * 10 + i) as u32).collect();
                let g = comm.gatherv(root, &mine);
                let ag = comm.allgatherv(&mine);
                let sends: Vec<Vec<u8>> = (0..nprocs)
                    .map(|d| vec![(rank * nprocs + d) as u8; (rank + d) % 4])
                    .collect();
                let a2a = comm.alltoallv_bytes(sends);
                let r = comm.reduce(root, &[rank as u64, 1], &SumOp);
                let ar = comm.allreduce(&[rank as i64 - 3], &MinOp);
                (b, g, ag, a2a, r, ar)
            });
        }
    }

    #[test]
    fn reduce_preserves_rank_order_across_node_boundaries() {
        for (nodes, cores, nprocs) in [(3, 4, 12), (3, 4, 9), (4, 2, 7)] {
            for root in [0, 1, nprocs - 1] {
                let results = World::new(nprocs, model(nodes, cores, CollectiveMode::Hierarchical))
                    .run(move |comm| {
                        let take_left = FnOp(|_acc: &mut [u64], _inc: &[u64]| {});
                        comm.reduce(root, &[comm.rank() as u64 + 100], &take_left)
                    });
                assert_eq!(results[root].as_ref().unwrap(), &vec![100]);
                let results = World::new(nprocs, model(nodes, cores, CollectiveMode::Hierarchical))
                    .run(move |comm| {
                        let take_right = FnOp(|acc: &mut [u64], inc: &[u64]| {
                            acc.copy_from_slice(inc);
                        });
                        comm.reduce(root, &[comm.rank() as u64 + 100], &take_right)
                    });
                assert_eq!(results[root].as_ref().unwrap(), &vec![100 + nprocs as u64 - 1]);
            }
        }
    }

    #[test]
    fn hierarchical_alltoallv_cuts_inter_node_messages() {
        let nodes = 4;
        let cores = 4;
        let nprocs = nodes * cores;
        let count_inter = |mode: CollectiveMode| -> (usize, Vec<Vec<u8>>) {
            let runs = World::new(nprocs, model(nodes, cores, mode)).run(move |comm| {
                let sends: Vec<Vec<u8>> =
                    (0..nprocs).map(|d| vec![comm.rank() as u8; d + 1]).collect();
                let recvs = comm.alltoallv_bytes(sends);
                (comm.stats().msgs_inter, recvs)
            });
            let total = runs.iter().map(|(m, _)| m).sum();
            (total, runs.into_iter().flat_map(|(_, r)| r).collect())
        };
        let (flat_inter, flat_data) = count_inter(CollectiveMode::Flat);
        let (hier_inter, hier_data) = count_inter(CollectiveMode::Hierarchical);
        assert_eq!(flat_data, hier_data, "payloads must be bit-identical");
        // Flat: every rank messages all 12 remote ranks => 192 inter
        // messages. Hierarchical: one frame per ordered node pair => 12.
        assert_eq!(flat_inter, nprocs * (nprocs - cores));
        assert_eq!(hier_inter, nodes * (nodes - 1));
        assert!(hier_inter * 4 <= flat_inter);
    }

    #[test]
    fn compressed_collective_frames_agree_and_cut_wire_bytes() {
        let nodes = 3;
        let cores = 4;
        let nprocs = nodes * cores;
        let run = |compress: bool| {
            let model = model(nodes, cores, CollectiveMode::Hierarchical)
                .with_compressed_collective_frames(compress);
            World::new(nprocs, model).run(move |comm| {
                let rank = comm.rank();
                // Highly regular payloads so the lossless word coder has
                // structure to exploit on the coalesced frames.
                let sends: Vec<Vec<u8>> = (0..nprocs)
                    .map(|d| vec![(rank % 7) as u8; 64 + d * 8])
                    .collect();
                let a2a = comm.alltoallv_bytes(sends);
                let b = comm.bcast_bytes(0, (rank == 0).then(|| vec![42u8; 4096]));
                let g = comm.gatherv(0, &vec![rank as u64; 32]);
                let ag = comm.allgatherv(&[rank as u32; 16]);
                ((a2a, b, g, ag), comm.stats())
            })
        };
        let raw = run(false);
        let compressed = run(true);
        for ((r, _), (c, _)) in raw.iter().zip(&compressed) {
            assert_eq!(r, c, "compressed collectives changed results");
        }
        let wire: usize = compressed.iter().map(|(_, s)| s.bytes_inter).sum();
        let logical: usize = compressed.iter().map(|(_, s)| s.logical_inter).sum();
        assert!(
            wire < logical,
            "compressed frames should shrink inter-node wire bytes: wire {wire} logical {logical}"
        );
        let raw_wire: usize = raw.iter().map(|(_, s)| s.bytes_inter).sum();
        assert_eq!(raw_wire, logical, "logical bytes must match the raw run's wire bytes");
    }

    #[test]
    fn collectives_compose_across_modes_with_p2p() {
        // Interleaved p2p and hierarchical collectives: tag spaces stay
        // disjoint and sequence numbers stay symmetric.
        let results = World::new(6, model(3, 2, CollectiveMode::Hierarchical)).run(|comm| {
            let next = (comm.rank() + 1) % 6;
            let prev = (comm.rank() + 5) % 6;
            comm.send(next, 17, &[comm.rank() as u32]);
            let total = comm.allreduce(&[1.0f64], &SumOp)[0];
            let (from_prev, _) = comm.recv::<u32>(prev, 17);
            let maxed = comm.allreduce(&[comm.rank() as u64], &MaxOp)[0];
            comm.barrier();
            (total, from_prev[0], maxed)
        });
        for (r, (total, from, maxed)) in results.iter().enumerate() {
            assert_eq!(*total, 6.0);
            assert_eq!(*from as usize, (r + 5) % 6);
            assert_eq!(*maxed, 5);
        }
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Random world shapes biased toward awkward cases: single-core
        /// nodes, non-power-of-two node counts, partially filled nodes.
        fn shapes() -> impl Strategy<Value = (usize, usize, usize)> {
            (1..6usize, 1..5usize, 1..100usize).prop_map(|(nodes, cores, fill)| {
                let cap = nodes * cores;
                let nprocs = 1 + fill % cap;
                (nodes, cores, nprocs)
            })
        }

        proptest! {
            #![proptest_config(proptest::test_runner::Config::with_cases(16))]

            #[test]
            fn prop_bcast_and_gather_agree(shape in shapes(), seed in any::<u32>()) {
                let (nodes, cores, nprocs) = shape;
                let root = seed as usize % nprocs;
                assert_modes_agree(nodes, cores, nprocs, move |comm| {
                    let rank = comm.rank();
                    let len = (seed as usize + rank * 7) % 60;
                    let payload: Vec<u8> =
                        (0..len).map(|i| (seed as usize + i) as u8).collect();
                    let b = comm.bcast_bytes(root, (rank == root).then(|| payload.clone()));
                    let mine: Vec<u64> = (0..(rank + seed as usize) % 6)
                        .map(|i| (rank * 1000 + i) as u64)
                        .collect();
                    let g = comm.gatherv(root, &mine);
                    let ag = comm.allgatherv(&mine);
                    (b, g, ag)
                });
            }

            #[test]
            fn prop_alltoallv_agrees(shape in shapes(), seed in any::<u32>()) {
                let (nodes, cores, nprocs) = shape;
                assert_modes_agree(nodes, cores, nprocs, move |comm| {
                    let rank = comm.rank();
                    let sends: Vec<Vec<u8>> = (0..nprocs)
                        .map(|d| {
                            let len = (seed as usize + rank * 13 + d * 5) % 40;
                            (0..len).map(|i| (rank * 31 + d * 7 + i) as u8).collect()
                        })
                        .collect();
                    comm.alltoallv_bytes(sends)
                });
            }

            #[test]
            fn prop_reduce_agrees(shape in shapes(), seed in any::<u32>()) {
                let (nodes, cores, nprocs) = shape;
                let root = (seed / 7) as usize % nprocs;
                assert_modes_agree(nodes, cores, nprocs, move |comm| {
                    // Exactly-associative ops only: wrapping sum, min/max,
                    // and noncommutative first/last selection. Float
                    // parenthesization may legitimately differ between the
                    // trees.
                    let wrapping_sum = FnOp(|acc: &mut [u64], inc: &[u64]| {
                        for (a, b) in acc.iter_mut().zip(inc) {
                            *a = a.wrapping_add(*b);
                        }
                    });
                    let take_right = FnOp(|acc: &mut [u64], inc: &[u64]| {
                        acc.copy_from_slice(inc);
                    });
                    let mine = [
                        (comm.rank() as u64).wrapping_mul(seed as u64 | 1),
                        comm.rank() as u64,
                    ];
                    let s = comm.reduce(root, &mine, &wrapping_sum);
                    let r = comm.reduce(root, &mine, &take_right);
                    let mn = comm.allreduce(&mine, &MinOp);
                    let mx = comm.allreduce(&mine, &MaxOp);
                    (s, r, mn, mx)
                });
            }
        }
    }
}
