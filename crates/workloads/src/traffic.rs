//! Mixed multi-job traffic for the collective service.
//!
//! The service bench and tests need a workload that looks like a shared
//! analysis cluster: a population of background *batch sweeps* (full-file
//! timestep scans, all issuing the same hyperslab shapes — the cross-job
//! plan-reuse opportunity) with latency-sensitive *interactive ROI
//! queries* arriving on top of them. [`MixedTraffic`] builds the shared
//! file system (one striped file per batch job, stripe starts rotated so
//! the files do not all hammer OST 0 first) and the [`JobSpec`]s.

use std::sync::Arc;

use cc_array::{DType, Shape, Variable};
use cc_core::SumKernel;
use cc_model::{DiskModel, SimTime};
use cc_pfs::backend::{default_climate_value, ElemKind, SyntheticBackend};
use cc_pfs::{Pfs, StripeLayout};
use cc_service::{JobSpec, QosClass};

/// Generator for a mixed batch + interactive job population over one
/// shared file system.
#[derive(Debug, Clone)]
pub struct MixedTraffic {
    /// Background full-file sweep jobs (class [`QosClass::Batch`]).
    pub batch_jobs: usize,
    /// Small ROI query jobs (class [`QosClass::Interactive`]).
    pub interactive_jobs: usize,
    /// Ranks per batch job.
    pub batch_nprocs: usize,
    /// Ranks per interactive job.
    pub interactive_nprocs: usize,
    /// Steps in each batch sweep.
    pub sweep_steps: u64,
    /// Rows per sweep step (dimension 0 of the variable).
    pub rows_per_step: u64,
    /// Rows in each interactive ROI query (one step).
    pub roi_rows: u64,
    /// Columns (dimension 1); every file's variable is `[rows, cols]` f64.
    pub cols: u64,
    /// Stripe size of every file.
    pub stripe_size: u64,
    /// Stripes per file.
    pub stripe_count: usize,
    /// OSTs in the shared file system.
    pub total_osts: usize,
    /// Gap between consecutive interactive arrivals; the i-th interactive
    /// job arrives at `(i + 1) * spacing` (batch jobs all arrive at zero).
    pub interactive_spacing: SimTime,
}

impl MixedTraffic {
    /// Variable name used in every generated file.
    pub const VAR: &'static str = "field";

    /// A small, fast population for tests and `--quick` benches:
    /// `batch_jobs` sweeps of 4 steps x 32 rows x 256 columns (512 KiB
    /// per step) and `interactive_jobs` 8-row ROI queries, over 8 OSTs.
    pub fn quick(batch_jobs: usize, interactive_jobs: usize) -> Self {
        Self {
            batch_jobs,
            interactive_jobs,
            batch_nprocs: 4,
            interactive_nprocs: 2,
            sweep_steps: 4,
            rows_per_step: 32,
            roi_rows: 8,
            cols: 256,
            stripe_size: 64 << 10,
            stripe_count: 4,
            total_osts: 8,
            interactive_spacing: SimTime::from_secs(1e-3),
        }
    }

    /// A heavier population for the full bench: 8-step sweeps of
    /// 128 x 1024 rows (8 MiB per step) over 16 OSTs.
    pub fn full(batch_jobs: usize, interactive_jobs: usize) -> Self {
        Self {
            batch_jobs,
            interactive_jobs,
            batch_nprocs: 8,
            interactive_nprocs: 2,
            sweep_steps: 8,
            rows_per_step: 128,
            roi_rows: 16,
            cols: 1024,
            stripe_size: 1 << 20,
            stripe_count: 8,
            total_osts: 16,
            interactive_spacing: SimTime::from_secs(5e-3),
        }
    }

    /// Rows of every batch file's variable.
    pub fn file_rows(&self) -> u64 {
        self.sweep_steps * self.rows_per_step
    }

    /// Name of batch file `i`.
    pub fn file_name(i: usize) -> String {
        format!("sweep-{i}.nc")
    }

    /// The variable every job reads (same shape in every file).
    pub fn variable(&self) -> Variable {
        Variable::new(
            Self::VAR,
            Shape::new(vec![self.file_rows(), self.cols]),
            DType::F64,
            0,
        )
    }

    /// Builds the shared file system: one file per batch job, identically
    /// shaped and striped but with the stripe start rotated per file, so
    /// concurrent sweeps spread their first requests over distinct OSTs
    /// while still sharing plan-cache keys (the key holds stripe geometry,
    /// not placement).
    pub fn build_fs(&self, disk: DiskModel) -> Arc<Pfs> {
        assert!(self.stripe_count <= self.total_osts);
        let fs = Pfs::new(self.total_osts, disk);
        let elems = self.file_rows() * self.cols;
        for i in 0..self.batch_jobs.max(1) {
            fs.create(
                &Self::file_name(i),
                StripeLayout::round_robin(
                    self.stripe_size,
                    self.stripe_count,
                    i % self.total_osts,
                    self.total_osts,
                ),
                Box::new(SyntheticBackend::new(elems, ElemKind::F64, default_climate_value)),
            );
        }
        Arc::new(fs)
    }

    /// The job population, batch sweeps first (ids follow submit order).
    /// Every batch job sweeps its own file with identical step shapes;
    /// interactive job `i` queries batch file `i % batch_jobs` with a
    /// small ROI starting at a per-job row offset, arriving at
    /// `(i + 1) * interactive_spacing`.
    pub fn jobs(&self) -> Vec<JobSpec> {
        let var = self.variable();
        let mut jobs = Vec::with_capacity(self.batch_jobs + self.interactive_jobs);
        for i in 0..self.batch_jobs {
            let mut spec = JobSpec::new(
                format!("sweep-{i}"),
                Self::file_name(i),
                var.clone(),
                self.batch_nprocs,
                Arc::new(SumKernel),
            );
            for s in 0..self.sweep_steps {
                spec = spec.step(
                    vec![s * self.rows_per_step, 0],
                    vec![self.rows_per_step, self.cols],
                );
            }
            jobs.push(spec);
        }
        for i in 0..self.interactive_jobs {
            let target = i % self.batch_jobs.max(1);
            // Distinct per-job row offsets keep the queries honest (no
            // two interactive jobs read the same bytes) while the shared
            // shape keeps them translation-compatible with each other.
            let offset = (i as u64 * self.roi_rows) % (self.file_rows() - self.roi_rows + 1);
            let arrival = SimTime::from_secs(
                self.interactive_spacing.secs() * (i + 1) as f64,
            );
            jobs.push(
                JobSpec::new(
                    format!("roi-{i}"),
                    Self::file_name(target),
                    var.clone(),
                    self.interactive_nprocs,
                    Arc::new(SumKernel),
                )
                .step(vec![offset, 0], vec![self.roi_rows, self.cols])
                .class(QosClass::Interactive)
                .arrival(arrival),
            );
        }
        jobs
    }

    /// Brute-force sum of one batch sweep's whole variable (every batch
    /// file serves the same synthetic values) — test oracle, only
    /// sensible at quick scales.
    pub fn oracle_sweep_sum(&self) -> f64 {
        (0..self.file_rows() * self.cols)
            .map(default_climate_value)
            .sum()
    }

    /// Brute-force sum of interactive job `i`'s ROI.
    pub fn oracle_roi_sum(&self, i: usize) -> f64 {
        let offset = (i as u64 * self.roi_rows) % (self.file_rows() - self.roi_rows + 1);
        let lo = offset * self.cols;
        let hi = lo + self.roi_rows * self.cols;
        (lo..hi).map(default_climate_value).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_model::{ClusterModel, Topology};
    use cc_service::Service;

    fn model(nodes: usize, cores: usize) -> ClusterModel {
        let mut m = ClusterModel::test_tiny(cores);
        m.topology = Topology::new(nodes, cores);
        m
    }

    #[test]
    fn population_shapes_and_arrivals() {
        let t = MixedTraffic::quick(3, 2);
        let jobs = t.jobs();
        assert_eq!(jobs.len(), 5);
        assert!(jobs[..3].iter().all(|j| j.class == QosClass::Batch));
        assert!(jobs[3..].iter().all(|j| j.class == QosClass::Interactive));
        // Batch sweeps share step shapes across jobs but not files.
        assert_eq!(jobs[0].steps, jobs[1].steps);
        assert_ne!(jobs[0].file, jobs[1].file);
        // Interactive arrivals are staggered and strictly positive.
        assert!(jobs[3].arrival > SimTime::ZERO);
        assert!(jobs[4].arrival > jobs[3].arrival);
    }

    #[test]
    fn traffic_runs_and_matches_oracles() {
        let t = MixedTraffic::quick(2, 2);
        let fs = t.build_fs(DiskModel::lustre_like());
        let mut svc = Service::new(model(6, 4), fs);
        for spec in t.jobs() {
            svc.submit(spec).expect("traffic specs admit cleanly");
        }
        let out = svc.run();
        let sweep_expect = t.oracle_sweep_sum();
        for j in &out.jobs[..2] {
            let got = j.global.as_ref().expect("root sum")[0];
            assert!(
                (got - sweep_expect).abs() < 1e-9 * sweep_expect.abs().max(1.0),
                "sweep {} got {got}, want {sweep_expect}",
                j.name
            );
        }
        for (i, j) in out.jobs[2..].iter().enumerate() {
            let expect = t.oracle_roi_sum(i);
            let got = j.global.as_ref().expect("root sum")[0];
            assert!(
                (got - expect).abs() < 1e-9 * expect.abs().max(1.0),
                "roi {} got {got}, want {expect}",
                j.name
            );
        }
        // Identical sweep shapes on identically-striped files: the second
        // sweep rides the first one's compiled plans.
        assert!(out.cache.cross_job_hits + out.cache.cross_job_translations > 0);
    }
}
