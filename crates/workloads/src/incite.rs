//! The INCITE application data requirements of the paper's Table I.

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InciteProject {
    /// Project name.
    pub project: &'static str,
    /// On-line data in terabytes.
    pub online_tb: f64,
    /// Off-line data in terabytes.
    pub offline_tb: f64,
}

/// Table I: data requirements of representative INCITE applications at
/// ALCF (Ross et al., "Parallel I/O in practice", SC'08 tutorial).
pub const INCITE_PROJECTS: &[InciteProject] = &[
    InciteProject {
        project: "FLASH: Buoyancy-Driven Turbulent Nuclear Burning",
        online_tb: 75.0,
        offline_tb: 300.0,
    },
    InciteProject {
        project: "Reactor Core Hydrodynamics",
        online_tb: 2.0,
        offline_tb: 5.0,
    },
    InciteProject {
        project: "Computational Nuclear Structure",
        online_tb: 4.0,
        offline_tb: 40.0,
    },
    InciteProject {
        project: "Computational Protein Structure",
        online_tb: 1.0,
        offline_tb: 2.0,
    },
    InciteProject {
        project: "Performance Evaluation and Analysis",
        online_tb: 1.0,
        offline_tb: 1.0,
    },
    InciteProject {
        project: "Climate Science",
        online_tb: 10.0,
        offline_tb: 345.0,
    },
    InciteProject {
        project: "Parkinson's Disease",
        online_tb: 2.5,
        offline_tb: 50.0,
    },
    InciteProject {
        project: "Plasma Microturbulence",
        online_tb: 2.0,
        offline_tb: 10.0,
    },
    InciteProject {
        project: "Lattice QCD",
        online_tb: 1.0,
        offline_tb: 44.0,
    },
    InciteProject {
        project: "Thermal Striping in Sodium Cooled Reactors",
        online_tb: 4.0,
        offline_tb: 8.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_ten_projects() {
        assert_eq!(INCITE_PROJECTS.len(), 10);
    }

    #[test]
    fn offline_never_smaller_than_online() {
        for p in INCITE_PROJECTS {
            assert!(
                p.offline_tb >= p.online_tb,
                "{}: offline {} < online {}",
                p.project,
                p.offline_tb,
                p.online_tb
            );
        }
    }

    #[test]
    fn flash_matches_the_paper() {
        let flash = &INCITE_PROJECTS[0];
        assert_eq!(flash.online_tb, 75.0);
        assert_eq!(flash.offline_tb, 300.0);
    }
}
