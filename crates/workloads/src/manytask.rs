//! A many-task analysis population for the request-fusion batch runner.
//!
//! The loosely-coupled regime the paper's Sec. II motivates: thousands of
//! tiny independent analysis tasks, each wanting a few kilobytes of a big
//! shared file. [`ManyTask`] generates a deterministic population with
//! the traits the fusion layer exploits:
//!
//! * **Partial-width regions** — each task reads `task_rows` rows of a
//!   `task_cols`-column window, so its byte request is `task_rows`
//!   *separate* extents; the independent baseline pays one positioning
//!   operation per extent per task.
//! * **Heavy overlap and exact duplicates** — within a wave, rows stride
//!   by one, column windows cycle through `cols / task_cols` slots that
//!   tile the full row width, and every `duplicate_every`-th task repeats
//!   its predecessor exactly. With half-width windows and four-row tasks,
//!   every byte is requested about `task_rows / (cols / task_cols)` times
//!   but read once, and neighbouring tasks cover whole rows between them:
//!   the fused union collapses into a few large contiguous runs — tens of
//!   positioning operations where the independent baseline pays tens of
//!   thousands.
//! * **Arrival waves** — tasks arrive in `waves` bursts spaced
//!   `wave_spacing` apart (incremental staging); with a fuse window
//!   smaller than the spacing, each wave becomes its own bin.
//! * **Stencil translation** — wave `w`'s pattern is wave 0's shifted by
//!   `w * stencil_shift` rows, so later bins hit the shared plan cache's
//!   translation path instead of recompiling.
//! * **Mixed kernel classes** — the first three quarters of each wave
//!   fold a [`SumKernel`] (bounded-error class), the rest a [`MaxKernel`]
//!   (exact class), so each wave splits into one bin per class and both
//!   bins stay densely overlapped.
//!
//! Values are closed-form in the element index, so every task has a
//! brute-force oracle ([`ManyTask::oracle_task`]) even at bench scales.

use std::sync::Arc;

use cc_array::{DType, Shape, Variable};
use cc_core::{MapKernel, MaxKernel, SumKernel};
use cc_model::{DiskModel, SimTime};
use cc_pfs::backend::{default_climate_value, ElemKind, SyntheticBackend};
use cc_pfs::{Pfs, StripeLayout};
use cc_service::{BatchPolicy, TaskSpec};
use cc_mpiio::Hints;

/// Generator for a many-task population over one shared striped file.
#[derive(Debug, Clone)]
pub struct ManyTask {
    /// Total tasks in the population.
    pub tasks: usize,
    /// Arrival waves the tasks split into (near-evenly).
    pub waves: usize,
    /// Ranks the batch runner should use.
    pub nprocs: usize,
    /// Rows of the shared variable.
    pub rows: u64,
    /// Columns of the shared variable.
    pub cols: u64,
    /// Rows per task region.
    pub task_rows: u64,
    /// Columns per task region (partial width: must divide `cols`, so the
    /// cycling windows tile the full row).
    pub task_cols: u64,
    /// Row stride between consecutive tasks of a class (overlap when
    /// smaller than `task_rows`).
    pub row_stride: u64,
    /// Rows wave `w`'s pattern is shifted relative to wave 0 — the
    /// plan-cache translation opportunity.
    pub stencil_shift: u64,
    /// Every `duplicate_every`-th task of a wave repeats its predecessor
    /// exactly (region and kernel). Zero disables duplicates.
    pub duplicate_every: usize,
    /// Gap between wave arrivals.
    pub wave_spacing: SimTime,
    /// Fuse window for the batch policy (smaller than `wave_spacing`, so
    /// waves bin separately).
    pub fuse_window: SimTime,
    /// Stripe size of the shared file.
    pub stripe_size: u64,
    /// Stripes of the shared file.
    pub stripe_count: usize,
    /// OSTs in the file system.
    pub total_osts: usize,
}

impl ManyTask {
    /// Variable name in the shared file.
    pub const VAR: &'static str = "field";
    /// Name of the shared file.
    pub const FILE: &'static str = "manytask.nc";

    /// A small, fast population for tests and `--quick` benches: a
    /// 512 x 256 f64 variable over 8 OSTs, 4 x 64 task regions, 16 ranks.
    pub fn quick(tasks: usize) -> Self {
        Self {
            tasks,
            waves: 4,
            nprocs: 16,
            rows: 512,
            cols: 256,
            task_rows: 4,
            task_cols: 128,
            row_stride: 1,
            stencil_shift: 1,
            duplicate_every: 5,
            wave_spacing: SimTime::from_secs(0.25),
            fuse_window: SimTime::from_secs(0.05),
            stripe_size: 64 << 10,
            stripe_count: 4,
            total_osts: 8,
        }
    }

    /// The headline scale: a 4096 x 1024 f64 variable (32 MiB) striped
    /// over 64 OSTs, 4 x 128 task regions, 256 ranks (64 nodes x 4 cores).
    pub fn full(tasks: usize) -> Self {
        Self {
            tasks,
            waves: 4,
            nprocs: 256,
            rows: 4096,
            cols: 1024,
            task_rows: 4,
            task_cols: 512,
            row_stride: 1,
            stencil_shift: 1,
            duplicate_every: 5,
            wave_spacing: SimTime::from_secs(0.25),
            fuse_window: SimTime::from_secs(0.05),
            stripe_size: 1 << 20,
            stripe_count: 16,
            total_osts: 64,
        }
    }

    /// Tasks in every wave but possibly the last.
    pub fn tasks_per_wave(&self) -> usize {
        self.tasks.div_ceil(self.waves.max(1))
    }

    /// The shared variable.
    pub fn variable(&self) -> Variable {
        Variable::new(Self::VAR, Shape::new(vec![self.rows, self.cols]), DType::F64, 0)
    }

    /// Builds a fresh file system holding the shared file. Comparative
    /// runs (fused vs independent vs solo) must each build their own:
    /// OST booking state persists inside a [`Pfs`].
    pub fn build_fs(&self, disk: DiskModel) -> Arc<Pfs> {
        assert!(self.stripe_count <= self.total_osts);
        let fs = Pfs::new(self.total_osts, disk);
        fs.create(
            Self::FILE,
            StripeLayout::round_robin(self.stripe_size, self.stripe_count, 0, self.total_osts),
            Box::new(SyntheticBackend::new(
                self.rows * self.cols,
                ElemKind::F64,
                default_climate_value,
            )),
        );
        Arc::new(fs)
    }

    /// The batch policy matching this population (waves bin separately,
    /// bins are unbounded).
    pub fn policy(&self) -> BatchPolicy {
        BatchPolicy {
            nprocs: self.nprocs,
            max_bin_tasks: usize::MAX >> 1,
            fuse_window: self.fuse_window,
            hints: Hints::default(),
        }
    }

    /// Row span a wave's base pattern cycles over — sized so the last
    /// wave's shifted pattern still fits the variable.
    fn span(&self) -> u64 {
        let shifted = (self.waves.max(1) as u64 - 1) * self.stencil_shift;
        let span = self.rows + 1 - self.task_rows - shifted;
        assert!(
            span >= 1,
            "many-task geometry overflows: {} rows cannot hold {}-row tasks \
             shifted {shifted} rows",
            self.rows,
            self.task_rows
        );
        span
    }

    /// Sum-class tasks per wave (the leading three quarters).
    fn sum_count(&self) -> usize {
        self.tasks_per_wave() * 3 / 4
    }

    /// Wave, kernel class (`true` = exact/max), and within-class index of
    /// task `i`, with duplicates resolved to their predecessor.
    fn locate(&self, i: usize) -> (usize, bool, usize) {
        let per = self.tasks_per_wave();
        let (w, j) = (i / per, i % per);
        let (exact, mut k) = if j < self.sum_count() {
            (false, j)
        } else {
            (true, j - self.sum_count())
        };
        if self.duplicate_every > 0 && k > 0 && k % self.duplicate_every == self.duplicate_every - 1
        {
            k -= 1;
        }
        (w, exact, k)
    }

    /// The `(start, count)` region of task `i`. Within a class, task `k`
    /// starts `row_stride` rows below task `k - 1` with the next of the
    /// `cols / task_cols` column windows, so neighbours tile whole rows;
    /// wave `w`'s pattern is wave 0's shifted down `w * stencil_shift`
    /// rows.
    pub fn region(&self, i: usize) -> (Vec<u64>, Vec<u64>) {
        let (w, _, k) = self.locate(i);
        let windows = (self.cols / self.task_cols).max(1);
        let row = w as u64 * self.stencil_shift + (k as u64 * self.row_stride) % self.span();
        let col = (k as u64 % windows) * self.task_cols;
        debug_assert!(col + self.task_cols <= self.cols);
        (vec![row, col], vec![self.task_rows, self.task_cols])
    }

    /// The kernel of task `i`: the first three quarters of each wave sum
    /// (bounded-error class), the rest take a max (exact class).
    pub fn kernel(&self, i: usize) -> Arc<dyn MapKernel> {
        let (_, exact, _) = self.locate(i);
        if exact {
            Arc::new(MaxKernel)
        } else {
            Arc::new(SumKernel)
        }
    }

    /// Arrival time of task `i` (its wave's burst instant).
    pub fn arrival(&self, i: usize) -> SimTime {
        let (w, _, _) = self.locate(i);
        SimTime::from_secs(self.wave_spacing.secs() * w as f64)
    }

    /// The full task population, in submission order.
    pub fn specs(&self) -> Vec<TaskSpec> {
        (0..self.tasks)
            .map(|i| {
                let (start, count) = self.region(i);
                TaskSpec::new(
                    format!("task-{i}"),
                    Self::FILE,
                    self.variable(),
                    start,
                    count,
                    self.kernel(i),
                )
                .arrival(self.arrival(i))
            })
            .collect()
    }

    /// Brute-force oracle for task `i`'s finalized result.
    pub fn oracle_task(&self, i: usize) -> Vec<f64> {
        let (start, count) = self.region(i);
        let (_, exact, _) = self.locate(i);
        let mut sum = 0.0;
        let mut max = f64::NEG_INFINITY;
        for r in start[0]..start[0] + count[0] {
            for c in start[1]..start[1] + count[1] {
                let v = default_climate_value(r * self.cols + c);
                sum += v;
                max = max.max(v);
            }
        }
        if exact {
            vec![max]
        } else {
            vec![sum]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_model::{ClusterModel, Topology};
    use cc_service::TaskBatch;

    fn model(nodes: usize, cores: usize) -> ClusterModel {
        let mut m = ClusterModel::test_tiny(cores);
        m.topology = Topology::new(nodes, cores);
        m
    }

    fn batch(t: &ManyTask) -> TaskBatch {
        let mut b =
            TaskBatch::new(model(4, 4), t.build_fs(DiskModel::lustre_like())).with_policy(t.policy());
        for spec in t.specs() {
            b.submit(spec).expect("many-task specs admit cleanly");
        }
        b
    }

    #[test]
    fn population_shape() {
        let t = ManyTask::quick(96);
        let specs = t.specs();
        assert_eq!(specs.len(), 96);
        // Waves arrive in bursts, strictly ordered.
        assert_eq!(specs[0].arrival, SimTime::ZERO);
        assert!(specs[95].arrival > specs[0].arrival);
        // Duplicates repeat their predecessor's region exactly.
        assert_eq!(t.region(4), t.region(3));
        assert_eq!(t.kernel(4).name(), t.kernel(3).name());
        // Waves are translated copies: same within-wave deltas.
        let per = t.tasks_per_wave();
        let (r0, _) = t.region(0);
        let (r1, _) = t.region(per);
        assert_eq!(r1[0] - r0[0], t.stencil_shift);
        assert_eq!(r1[1], r0[1]);
    }

    #[test]
    fn fused_population_matches_oracles_and_solo() {
        let t = ManyTask::quick(96);
        let fused = batch(&t).run_fused();
        let solo = batch(&t).run_solo();
        assert_eq!(fused.tasks.len(), 96);
        for (i, task) in fused.tasks.iter().enumerate() {
            let want = t.oracle_task(i);
            assert_eq!(task.value.len(), want.len(), "task {i} arity");
            for (got, want) in task.value.iter().zip(&want) {
                assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "task {i}: got {got}, want {want}"
                );
            }
        }
        assert_eq!(fused.checksum(), solo.checksum(), "fused != solo bitwise");
        // One bin per (wave, kernel class).
        assert_eq!(fused.bins.len(), t.waves * 2);
        // Every task rode a fused sweep.
        assert_eq!(fused.plan_cache.fused_tasks, 96);
        // Translated waves reuse compiled schedules across bins.
        assert!(
            fused.plan_cache.cross_job_hits + fused.plan_cache.cross_job_translations > 0,
            "stencil waves should hit the plan cache: {:?}",
            fused.plan_cache
        );
    }
}
