//! Synthetic climate datasets (the paper's benchmark workloads).

use std::sync::Arc;

use cc_array::{DType, Dataset, Hyperslab, Shape, Variable};
use cc_pfs::backend::{default_climate_value, ElemKind, SyntheticBackend};
use cc_pfs::{Pfs, StripeLayout};

/// A climate benchmark: one variable, a striped file, and a per-rank
/// hyperslab assignment.
#[derive(Debug, Clone)]
pub struct ClimateWorkload {
    dataset: Dataset,
    nprocs: usize,
    /// Slabs indexed by rank.
    slabs: Vec<Hyperslab>,
    /// Stripe size of the file.
    pub stripe_size: u64,
    /// Stripe count (OSTs used).
    pub stripe_count: usize,
}

impl ClimateWorkload {
    /// The name of the single variable.
    pub const VAR: &'static str = "temperature";

    /// The file name in the PFS namespace.
    pub const FILE: &'static str = "climate.nc";

    /// The Fig. 1 workload, scaled: the paper's 4-D dataset is
    /// 1024 x 1024 x 100 x 1024 (fast -> slowest) f32 on 40 OSTs with 4 MB
    /// stripes; the subset is 100 x 100 x 10 x 720 with
    /// 100 x 100 x 10 x 10 per process over 72 processes. `shrink` divides
    /// the two fast dimensions (1 = paper scale; the virtual file stays
    /// paper-sized regardless because the backend is synthetic).
    ///
    /// # Panics
    /// Panics if `shrink` does not divide 100 or `nprocs` does not divide
    /// the slowest subset extent (720 at paper scale).
    pub fn fig1(nprocs: usize, shrink: u64) -> Self {
        assert!(shrink >= 1 && 100 % shrink == 0, "shrink must divide 100");
        // Shape slowest-first: [1024, 100, 1024, 1024].
        let shape = Shape::new(vec![1024, 100, 1024, 1024]);
        let mut dataset = Dataset::new();
        dataset.add_var(Self::VAR, shape, DType::F32);
        // Subset slowest-first: [720, 10, 100, 100], shrunk on fast dims.
        let sub = [720u64, 10, 100 / shrink, 100 / shrink];
        assert!(
            sub[0].is_multiple_of(nprocs as u64),
            "{nprocs} ranks must divide the slowest subset extent {}",
            sub[0]
        );
        let per = sub[0] / nprocs as u64;
        let slabs = (0..nprocs as u64)
            .map(|r| {
                Hyperslab::new(
                    vec![r * per, 0, 0, 0],
                    vec![per, sub[1], sub[2], sub[3]],
                )
            })
            .collect();
        Self {
            dataset,
            nprocs,
            slabs,
            stripe_size: 4 << 20,
            stripe_count: 40,
        }
    }

    /// A 3-D workload (the paper's Figs. 9-11 benchmark): shape
    /// `[nprocs * rows, lat, lon]` f64; rank `r` reads the sub-box
    /// `[r*rows .. (r+1)*rows) x [0..sub_lat) x [0..sub_lon)`. When
    /// `sub_lat < lat` the per-rank request is non-contiguous, the access
    /// pattern collective I/O exists for.
    #[allow(clippy::too_many_arguments)]
    pub fn synthetic_3d(
        nprocs: usize,
        rows: u64,
        lat: u64,
        lon: u64,
        sub_lat: u64,
        sub_lon: u64,
        stripe_size: u64,
        stripe_count: usize,
    ) -> Self {
        assert!(sub_lat <= lat && sub_lon <= lon, "sub-box exceeds grid");
        let shape = Shape::new(vec![nprocs as u64 * rows, lat, lon]);
        let mut dataset = Dataset::new();
        dataset.add_var(Self::VAR, shape, DType::F64);
        let slabs = (0..nprocs as u64)
            .map(|r| Hyperslab::new(vec![r * rows, 0, 0], vec![rows, sub_lat, sub_lon]))
            .collect();
        Self {
            dataset,
            nprocs,
            slabs,
            stripe_size,
            stripe_count,
        }
    }

    /// A finely interleaved 3-D workload (the paper's Figs. 9-10
    /// benchmark): shape `[rows, nprocs * lat_per_rank, lon]` f64; rank `r`
    /// reads `[0..rows) x [r*lat_per_rank .. (r+1)*lat_per_rank) x
    /// [0..lon)`. Every rank's data recurs once per row, so every
    /// collective-buffer chunk holds small pieces of (nearly) every rank —
    /// the access pattern whose shuffle cost approaches the read cost
    /// (paper Fig. 1), and the pattern collective I/O exists for.
    pub fn interleaved_3d(
        nprocs: usize,
        rows: u64,
        lat_per_rank: u64,
        lon: u64,
        stripe_size: u64,
        stripe_count: usize,
    ) -> Self {
        let shape = Shape::new(vec![rows, nprocs as u64 * lat_per_rank, lon]);
        let mut dataset = Dataset::new();
        dataset.add_var(Self::VAR, shape, DType::F64);
        let slabs = (0..nprocs as u64)
            .map(|r| {
                Hyperslab::new(
                    vec![0, r * lat_per_rank, 0],
                    vec![rows, lat_per_rank, lon],
                )
            })
            .collect();
        Self {
            dataset,
            nprocs,
            slabs,
            stripe_size,
            stripe_count,
        }
    }

    /// The variable all ranks access.
    pub fn var(&self) -> &Variable {
        self.dataset.var(Self::VAR).expect("variable exists")
    }

    /// Number of ranks the slab assignment was built for.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Rank `r`'s selection.
    pub fn slab(&self, rank: usize) -> &Hyperslab {
        &self.slabs[rank]
    }

    /// Total bytes all ranks request.
    pub fn requested_bytes(&self) -> u64 {
        let esize = self.var().dtype().size();
        self.slabs.iter().map(|s| s.num_elements() * esize).sum()
    }

    /// The deterministic element value (for oracles).
    pub fn value(&self, elem: u64) -> f64 {
        match self.var().dtype() {
            DType::F32 => default_climate_value(elem) as f32 as f64,
            DType::F64 => default_climate_value(elem),
        }
    }

    /// Sums `value` over rank `r`'s selection by brute force — test oracle,
    /// only sensible at test scales.
    pub fn oracle_sum(&self, rank: usize) -> f64 {
        let shape = self.var().shape();
        self.slab(rank)
            .runs(shape)
            .flat_map(|(start, len)| start..start + len)
            .map(|i| self.value(i))
            .sum()
    }

    /// Creates the file system and the climate file on it.
    pub fn build_fs(&self, total_osts: usize, disk: cc_model::DiskModel) -> Arc<Pfs> {
        assert!(self.stripe_count <= total_osts);
        let fs = Pfs::new(total_osts, disk);
        let kind = match self.var().dtype() {
            DType::F32 => ElemKind::F32,
            DType::F64 => ElemKind::F64,
        };
        fs.create(
            Self::FILE,
            StripeLayout::round_robin(self.stripe_size, self.stripe_count, 0, total_osts),
            Box::new(SyntheticBackend::new(
                self.dataset.total_bytes() / self.var().dtype().size(),
                kind,
                default_climate_value,
            )),
        );
        Arc::new(fs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_matches_paper_dimensions() {
        let w = ClimateWorkload::fig1(72, 1);
        assert_eq!(w.var().shape().dims(), &[1024, 100, 1024, 1024]);
        assert_eq!(w.var().dtype(), DType::F32);
        // 429 TB virtual file.
        assert_eq!(
            w.var().size_bytes(),
            1024 * 100 * 1024 * 1024 * 4
        );
        // Each process: 10 x 10 x 100 x 100 elements (slowest-first).
        assert_eq!(w.slab(0).count(), &[10, 10, 100, 100]);
        assert_eq!(w.slab(71).start(), &[710, 0, 0, 0]);
        assert_eq!(w.stripe_count, 40);
        assert_eq!(w.stripe_size, 4 << 20);
    }

    #[test]
    fn fig1_shrink_scales_fast_dims() {
        let w = ClimateWorkload::fig1(8, 10);
        assert_eq!(w.slab(0).count(), &[90, 10, 10, 10]);
        assert_eq!(w.nprocs(), 8);
    }

    #[test]
    fn synthetic_3d_is_noncontiguous_when_subsetting() {
        let w = ClimateWorkload::synthetic_3d(4, 2, 8, 16, 4, 8, 256, 2);
        let runs: Vec<_> = w.slab(1).runs(w.var().shape()).collect();
        // 2 rows x 4 sub-lat rows, each a 8-element run along lon.
        assert_eq!(runs.len(), 2 * 4);
        assert!(runs.iter().all(|r| r.1 == 8));
    }

    #[test]
    fn interleaved_3d_interleaves_every_rank() {
        let w = ClimateWorkload::interleaved_3d(4, 3, 2, 8, 64, 2);
        // Shape [3, 8, 8]; rank 1 reads lat rows 2..4 of every row.
        assert_eq!(w.var().shape().dims(), &[3, 8, 8]);
        let runs: Vec<_> = w.slab(1).runs(w.var().shape()).collect();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0], (2 * 8, 16));
        assert_eq!(runs[1], (64 + 16, 16));
        // All four ranks together tile the file exactly.
        let total: u64 = (0..4).map(|r| w.slab(r).num_elements()).sum();
        assert_eq!(total, w.var().shape().num_elements());
    }

    #[test]
    fn requested_bytes_counts_all_ranks() {
        let w = ClimateWorkload::synthetic_3d(4, 2, 8, 16, 4, 8, 256, 2);
        assert_eq!(w.requested_bytes(), 4 * (2 * 4 * 8) * 8);
    }

    #[test]
    fn build_fs_serves_oracle_values() {
        let w = ClimateWorkload::synthetic_3d(2, 1, 4, 8, 4, 8, 64, 2);
        let fs = w.build_fs(2, cc_model::DiskModel::lustre_like());
        let file = fs.open(ClimateWorkload::FILE).expect("created");
        let (bytes, _) = fs.read_at(&file, 0, 32, cc_model::SimTime::ZERO);
        let v0 = f64::from_le_bytes(bytes[0..8].try_into().unwrap());
        assert_eq!(v0, w.value(0));
    }

    #[test]
    fn oracle_sum_covers_selection() {
        let w = ClimateWorkload::synthetic_3d(2, 1, 2, 4, 1, 2, 64, 1);
        // Rank 0 selects row 0, lat 0, lon 0..2 => elements 0 and 1.
        assert_eq!(w.oracle_sum(0), w.value(0) + w.value(1));
    }

    #[test]
    #[should_panic]
    fn fig1_rejects_nondividing_nprocs() {
        let _ = ClimateWorkload::fig1(7, 1);
    }
}
