//! Workload generators for the paper's experiments.
//!
//! - [`climate`]: the synthetic climate datasets behind Figs. 1 and 9-12 —
//!   a 4-D variable accessed as interleaved 4-D subsets (Fig. 1's I/O
//!   profile) and a 3-D variable swept over computation:I/O ratios,
//!   process counts, and buffer sizes (Figs. 9-12).
//! - [`wrf`]: a Weather Research & Forecasting-style hurricane simulation
//!   output with analytically-known extrema, driving the paper's two
//!   application tasks ("Min Sea-Level Pressure", "Max 10 m wind speed",
//!   Fig. 13).
//! - [`incite`]: the INCITE application data requirements of Table I.
//! - [`traffic`]: mixed multi-job populations (background batch sweeps +
//!   interactive ROI queries) for the shared-cluster collective service.
//! - [`manytask`]: thousands of tiny overlapping analysis tasks in
//!   arrival waves for the request-fusion batch runner.
//!
//! Every generator is a closed-form function of the element index, so any
//! reduction computed through the full stack can be verified against an
//! independently computed oracle, even for virtually TB-sized files.

#![warn(missing_docs)]

pub mod climate;
pub mod incite;
pub mod manytask;
pub mod traffic;
pub mod wrf;

pub use climate::ClimateWorkload;
pub use manytask::ManyTask;
pub use traffic::MixedTraffic;
pub use wrf::{WrfGrid, WrfWorkload};
