//! A WRF-style hurricane simulation output.
//!
//! The paper's application evaluation (Fig. 13) extracts two analysis tasks
//! from a hurricane simulation: *Min Sea-Level Pressure (hPa)* and *Max
//! 10 m wind speed (knots)*. This module generates the corresponding
//! fields on a WRF-like `(time, south_north, west_east)` grid with closed
//! forms chosen so the answers are known:
//!
//! - the storm center moves diagonally with time and deepens linearly, so
//!   the global SLP minimum is at the storm center of the *last* time step;
//! - the 10 m wind peaks on the eyewall ring around the center, strongest
//!   at the last time step.

use std::sync::Arc;

use cc_array::{DType, Dataset, Hyperslab, Shape, Variable};
use cc_pfs::backend::{ElemKind, SyntheticBackend};
use cc_pfs::{Pfs, StripeLayout};

/// The WRF grid: `times x south_north x west_east`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrfGrid {
    /// Output time steps.
    pub times: u64,
    /// South-north grid points.
    pub sn: u64,
    /// West-east grid points.
    pub we: u64,
}

impl WrfGrid {
    /// Elements per variable.
    pub fn elements(&self) -> u64 {
        self.times * self.sn * self.we
    }

    /// Storm-center coordinates at time `t`: enters at (sn/4, we/4) and
    /// drifts one cell per step diagonally, clamped inside the grid.
    pub fn center(&self, t: u64) -> (u64, u64) {
        ((self.sn / 4 + t).min(self.sn - 1), (self.we / 4 + t).min(self.we - 1))
    }

    /// Squared distance from the storm center at time `t`.
    fn d2(&self, t: u64, y: u64, x: u64) -> f64 {
        let (cy, cx) = self.center(t);
        let dy = y as f64 - cy as f64;
        let dx = x as f64 - cx as f64;
        dy * dy + dx * dx
    }

    /// Decomposes a flat element index into `(t, y, x)`.
    pub fn coords(&self, i: u64) -> (u64, u64, u64) {
        let x = i % self.we;
        let y = (i / self.we) % self.sn;
        let t = i / (self.we * self.sn);
        (t, y, x)
    }

    /// Storm depth (hPa below ambient) at time `t`: deepens by 1 hPa per
    /// step from 40, saturating at 75 (a category-5-like 935 hPa center).
    pub fn depth(&self, t: u64) -> f64 {
        40.0 + (t as f64).min(35.0)
    }

    /// Sea-level pressure (hPa) at flat element index `i`: ambient 1010
    /// minus a Gaussian depression around the storm center.
    pub fn slp(&self, i: u64) -> f64 {
        let (t, y, x) = self.coords(i);
        1010.0 - self.depth(t) * (-self.d2(t, y, x) / 50.0).exp()
    }

    /// 10 m wind speed (knots) at flat element index `i`: calm background
    /// plus an eyewall ring of radius 4 cells around the center.
    pub fn wind10(&self, i: u64) -> f64 {
        let (t, y, x) = self.coords(i);
        let d = self.d2(t, y, x).sqrt();
        let ring = d - 4.0;
        15.0 + (1.2 * self.depth(t)) * (-(ring * ring) / 8.0).exp()
    }

    /// The analytically known global SLP minimum: the storm center at the
    /// first time step of maximum depth (ties resolve to the lowest
    /// element index, matching `MinLocKernel`).
    pub fn slp_min(&self) -> (f64, u64) {
        let t = (self.times - 1).min(35);
        let (cy, cx) = self.center(t);
        let idx = (t * self.sn + cy) * self.we + cx;
        (1010.0 - self.depth(t), idx)
    }
}

/// The WRF workload: a dataset with `slp` and `wind10` variables and a
/// per-rank decomposition over time steps.
#[derive(Debug, Clone)]
pub struct WrfWorkload {
    /// The grid.
    pub grid: WrfGrid,
    dataset: Dataset,
    nprocs: usize,
    /// Stripe size of the output file.
    pub stripe_size: u64,
    /// Stripe count.
    pub stripe_count: usize,
}

impl WrfWorkload {
    /// File name in the PFS namespace.
    pub const FILE: &'static str = "wrfout.nc";

    /// Builds the workload. Rank decompositions are chosen per call site:
    /// [`slab`](Self::slab) (time blocks, requires `nprocs | times`) or
    /// [`band_slab`](Self::band_slab) (south-north bands, requires
    /// `nprocs | sn`).
    pub fn new(grid: WrfGrid, nprocs: usize, stripe_size: u64, stripe_count: usize) -> Self {
        let shape = Shape::new(vec![grid.times, grid.sn, grid.we]);
        let mut dataset = Dataset::new();
        dataset.add_var("slp", shape.clone(), DType::F64);
        dataset.add_var("wind10", shape, DType::F64);
        Self {
            grid,
            dataset,
            nprocs,
            stripe_size,
            stripe_count,
        }
    }

    /// The sea-level-pressure variable.
    pub fn slp_var(&self) -> &Variable {
        self.dataset.var("slp").expect("slp exists")
    }

    /// The 10 m wind variable.
    pub fn wind_var(&self) -> &Variable {
        self.dataset.var("wind10").expect("wind10 exists")
    }

    /// Number of ranks.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Rank `r`'s time-block selection over a variable, optionally
    /// restricted to an inner `(sn, we)` sub-box (making the request
    /// non-contiguous, as in the paper's tasks).
    pub fn slab(&self, rank: usize, sub_sn: u64, sub_we: u64) -> Hyperslab {
        assert!(sub_sn <= self.grid.sn && sub_we <= self.grid.we);
        assert!(
            self.grid.times.is_multiple_of(self.nprocs as u64),
            "{} ranks must divide {} time steps",
            self.nprocs,
            self.grid.times
        );
        let per = self.grid.times / self.nprocs as u64;
        Hyperslab::new(
            vec![rank as u64 * per, 0, 0],
            vec![per, sub_sn, sub_we],
        )
    }

    /// Rank `r`'s south-north band across *all* time steps — the spatial
    /// decomposition WRF itself uses. Every rank's band recurs once per
    /// time step, so the request is non-contiguous and finely interleaved
    /// with every other rank's (the paper's access pattern for the
    /// application tasks).
    ///
    /// # Panics
    /// Panics unless the rank count divides `sn`.
    pub fn band_slab(&self, rank: usize) -> Hyperslab {
        assert!(
            self.grid.sn.is_multiple_of(self.nprocs as u64),
            "{} ranks must divide sn={}",
            self.nprocs,
            self.grid.sn
        );
        let band = self.grid.sn / self.nprocs as u64;
        Hyperslab::new(
            vec![0, rank as u64 * band, 0],
            vec![self.grid.times, band, self.grid.we],
        )
    }

    /// Creates the file system holding the WRF output. Both variables are
    /// generated by one value function switching on the file offset.
    pub fn build_fs(&self, total_osts: usize, disk: cc_model::DiskModel) -> Arc<Pfs> {
        assert!(self.stripe_count <= total_osts);
        let fs = Pfs::new(total_osts, disk);
        let grid = self.grid;
        let per_var = grid.elements();
        let value = move |i: u64| {
            if i < per_var {
                grid.slp(i)
            } else {
                grid.wind10(i - per_var)
            }
        };
        fs.create(
            Self::FILE,
            StripeLayout::round_robin(self.stripe_size, self.stripe_count, 0, total_osts),
            Box::new(SyntheticBackend::new(per_var * 2, ElemKind::F64, value)),
        );
        Arc::new(fs)
    }

    /// Brute-force oracle: `(min, argmin)` of SLP over the whole grid.
    /// Test-scale only.
    pub fn oracle_slp_min(&self) -> (f64, u64) {
        let mut best = (f64::INFINITY, 0u64);
        for i in 0..self.grid.elements() {
            let v = self.grid.slp(i);
            if v < best.0 {
                best = (v, i);
            }
        }
        best
    }

    /// Brute-force oracle: `(max, argmax)` of 10 m wind over the grid.
    pub fn oracle_wind_max(&self) -> (f64, u64) {
        let mut best = (f64::NEG_INFINITY, 0u64);
        for i in 0..self.grid.elements() {
            let v = self.grid.wind10(i);
            if v > best.0 {
                best = (v, i);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> WrfGrid {
        WrfGrid {
            times: 4,
            sn: 32,
            we: 32,
        }
    }

    #[test]
    fn slp_minimum_is_at_final_storm_center() {
        let w = WrfWorkload::new(grid(), 2, 1 << 16, 2);
        let (min_v, min_i) = w.oracle_slp_min();
        let (expect_v, expect_i) = grid().slp_min();
        assert_eq!(min_i, expect_i);
        assert!((min_v - expect_v).abs() < 1e-9);
    }

    #[test]
    fn wind_peaks_on_the_eyewall() {
        let g = grid();
        let w = WrfWorkload::new(g, 2, 1 << 16, 2);
        let (max_v, max_i) = w.oracle_wind_max();
        let (t, y, x) = g.coords(max_i);
        assert_eq!(t, g.times - 1, "strongest wind at the last step");
        // The peak sits within a cell of the 4-cell eyewall ring.
        let d = g.d2(t, y, x).sqrt();
        assert!((d - 4.0).abs() < 1.0, "distance {d} not on eyewall");
        assert!(max_v > 60.0, "eyewall wind {max_v} too weak");
    }

    #[test]
    fn center_is_clamped_to_grid() {
        let g = WrfGrid {
            times: 100,
            sn: 16,
            we: 16,
        };
        let (cy, cx) = g.center(99);
        assert_eq!((cy, cx), (15, 15));
    }

    #[test]
    fn variables_do_not_overlap() {
        let w = WrfWorkload::new(grid(), 2, 1 << 16, 2);
        assert_eq!(
            w.slp_var().end_offset(),
            w.wind_var().base_offset()
        );
    }

    #[test]
    fn fs_serves_both_variables() {
        let w = WrfWorkload::new(grid(), 2, 4096, 2);
        let fs = w.build_fs(2, cc_model::DiskModel::lustre_like());
        let file = fs.open(WrfWorkload::FILE).expect("created");
        let (b, _) = fs.read_at(&file, w.slp_var().byte_of_elem(5), 8, cc_model::SimTime::ZERO);
        assert_eq!(
            f64::from_le_bytes(b[..8].try_into().unwrap()),
            grid().slp(5)
        );
        let (b, _) = fs.read_at(
            &file,
            w.wind_var().byte_of_elem(5),
            8,
            cc_model::SimTime::ZERO,
        );
        assert_eq!(
            f64::from_le_bytes(b[..8].try_into().unwrap()),
            grid().wind10(5)
        );
    }

    #[test]
    fn band_slabs_partition_space() {
        let w = WrfWorkload::new(grid(), 4, 4096, 2);
        let total: u64 = (0..4).map(|r| w.band_slab(r).num_elements()).sum();
        assert_eq!(total, grid().elements());
        let s = w.band_slab(2);
        assert_eq!(s.start(), &[0, 16, 0]);
        assert_eq!(s.count(), &[4, 8, 32]);
    }

    #[test]
    fn slabs_partition_time() {
        let w = WrfWorkload::new(grid(), 4, 4096, 2);
        for r in 0..4 {
            let s = w.slab(r, 32, 32);
            assert_eq!(s.start()[0], r as u64);
            assert_eq!(s.count()[0], 1);
        }
    }

    #[test]
    #[should_panic]
    fn nondividing_time_blocks_panic() {
        let w = WrfWorkload::new(grid(), 3, 4096, 2);
        let _ = w.slab(0, 32, 32);
    }
}
