//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// Generates values of an associated type from a [`TestRng`].
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Generates arbitrary values of `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a full-domain generator.
pub trait Arbitrary {
    /// One uniform value over the whole domain (floats: uniform over bit
    /// patterns, so NaNs and infinities do occur — roundtrip tests want
    /// exactly that).
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_strategy_int!(i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

range_strategy_float!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let u = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&u));
            let i = (-10i64..-3).generate(&mut rng);
            assert!((-10..-3).contains(&i));
            let f = (-2.5f64..1.5).generate(&mut rng);
            assert!((-2.5..1.5).contains(&f));
        }
    }

    #[test]
    fn map_applies_function() {
        let mut rng = TestRng::new(2);
        let s = (0u64..10).prop_map(|v| v * 100);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 100 == 0 && v < 1000);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::new(3);
        let (a, b, c) = (0u64..4, -1i32..1, 0.0f64..1.0).generate(&mut rng);
        assert!(a < 4);
        assert!((-1..1).contains(&b));
        assert!((0.0..1.0).contains(&c));
    }

    #[test]
    fn just_is_constant() {
        let mut rng = TestRng::new(4);
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }
}
