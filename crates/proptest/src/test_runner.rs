//! Deterministic case generation.

/// Runner configuration; only the case count is modeled.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the simulator-heavy
        // properties fast on CI while still sweeping a wide input space.
        Self { cases: 64 }
    }
}

/// A splitmix64 stream: small, fast, and statistically fine for test-input
/// generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded directly.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// An RNG for one case of one named property: deterministic in the
    /// test's fully-qualified name and the case index.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::new(h.wrapping_add(case.wrapping_mul(0x2545_F491_4F6C_DD1D)))
    }

    /// The next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 * bound,
        // irrelevant for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other = TestRng::for_case("x::y", 4);
        assert_ne!(a[0], other.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn unit_is_in_range() {
        let mut r = TestRng::new(9);
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
