//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this workspace ships
//! a minimal, dependency-free implementation of the slice of proptest's API
//! that our property tests actually use: the [`proptest!`] /
//! [`prop_compose!`] macros, numeric-range and tuple strategies,
//! `any::<T>()`, `collection::vec`, `prop_map`, and the `prop_assert*`
//! macros. Generation is a deterministic splitmix64 stream seeded from the
//! test's fully-qualified name and case index, so failures are exactly
//! reproducible across runs and machines (there is no shrinking — a failing
//! case panics with its inputs via the normal assert message).

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discards the current case when the assumption does not hold.
///
/// Expands to an early `return` from the per-case closure the
/// [`proptest!`] macro wraps each body in.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the same shape as the real macro for the patterns used in this
/// repository: an optional `#![proptest_config(...)]` header followed by
/// one or more `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    // The closure gives `prop_assume!` an early-exit scope.
                    let mut case_body = move || $body;
                    case_body();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Defines a function returning a derived strategy, proptest-style.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])*
     $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
        ($($arg:ident in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `None` about a quarter of the time, `Some(inner)` otherwise
    /// (the real proptest defaults to a 75% `Some` probability too).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}
