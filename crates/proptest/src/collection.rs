//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_elements_in_range() {
        let mut rng = TestRng::new(5);
        let s = vec(10u64..20, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| (10..20).contains(&x)));
        }
    }
}
