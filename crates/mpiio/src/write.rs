//! The two-phase collective write engine.
//!
//! The mirror image of [`twophase`](crate::twophase): ranks scatter the
//! pieces of their write buffers to the aggregators owning the target file
//! domains (phase 1, the shuffle), and each aggregator assembles the
//! pieces of each collective-buffer chunk and issues large writes
//! (phase 2, the I/O). Only requested byte ranges are written — holes in a
//! chunk are skipped rather than read-modify-written, which is sufficient
//! because requests never overlap within one offset list and overlapping
//! writes *across* ranks are application bugs MPI-IO leaves undefined.

use cc_model::{BufferRing, Lane, SimTime};
use cc_mpi::comm::{TagValue, SEQ_MASK};
use cc_mpi::{Comm, NodeView};
use cc_pfs::{FileHandle, Pfs};
use cc_profile::{Activity, Segment};

use crate::exchange::exchange_requests;
use crate::extent::{Extent, OffsetList};
use crate::hints::{Hints, Striping};
use crate::schedule::{PlanCache, PlanSchedule, PlanSource};
use crate::twophase::{decode_from_wire, encode_for_wire};

/// Tag base for write-shuffle messages; each collective stamps its
/// sequence number into the low bits (see `Comm::next_engine_tag`).
pub(crate) const TAG_WRITE_SHUFFLE: TagValue = 0x6000_0000;

/// Tag base for member -> node-leader up-messages: when hierarchical
/// paths are active, pieces bound for a *remote-node* aggregator are
/// handed to the local node leader instead of crossing the interconnect
/// individually.
pub(crate) const TAG_WRITE_UP: TagValue = 0x3000_0000;

/// Tag base for coalesced write-shuffle frames: the node leader
/// concatenates its members' up-messages for one chunk into a single
/// frame and sends it to the owning aggregator — one inter-node message
/// per (chunk, source node) pair.
pub(crate) const TAG_WRITE_FRAME: TagValue = 0x7000_0000;

/// What one rank observed during a collective write.
#[derive(Debug, Clone, Default)]
pub struct WriteReport {
    /// Bytes this rank wrote to the file system (aggregator role).
    pub bytes_written: u64,
    /// Bytes this rank sent during the shuffle.
    pub bytes_shuffled: u64,
    /// File-system write calls issued by this rank.
    pub writes_issued: u64,
    /// Virtual time entering the collective.
    pub start: SimTime,
    /// Virtual time when this rank's role completed.
    pub end: SimTime,
    /// Activity segments for CPU profiling.
    pub segments: Vec<Segment>,
}

impl WriteReport {
    /// Elapsed virtual time.
    pub fn elapsed(&self) -> SimTime {
        self.end.saturating_since(self.start)
    }
}

/// Collectively writes `data` (the bytes of `my_request`, in request-buffer
/// order) to `file`. Must be called by all ranks.
///
/// # Panics
/// Panics if `data.len()` does not match the request size.
pub fn collective_write(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    my_request: &OffsetList,
    data: &[u8],
    hints: &Hints,
) -> WriteReport {
    collective_write_cached(comm, pfs, file, my_request, data, hints, None)
}

/// [`collective_write`] with an optional plan cache (see
/// [`collective_read_cached`](crate::twophase::collective_read_cached) for
/// the symmetry requirement on `cache`).
pub fn collective_write_cached(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    my_request: &OffsetList,
    data: &[u8],
    hints: &Hints,
    cache: Option<&mut PlanCache>,
) -> WriteReport {
    collective_write_planned(
        comm,
        pfs,
        file,
        my_request,
        data,
        hints,
        &mut PlanSource::from_option(cache),
    )
}

/// [`collective_write`] drawing its compiled schedule from an explicit
/// [`PlanSource`] (see
/// [`collective_read_planned`](crate::twophase::collective_read_planned)
/// for the symmetry requirement).
pub fn collective_write_planned(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    my_request: &OffsetList,
    data: &[u8],
    hints: &Hints,
    plans: &mut PlanSource<'_>,
) -> WriteReport {
    assert_eq!(
        data.len() as u64,
        my_request.total_bytes(),
        "rank {}: write buffer does not match the request size",
        comm.rank(),
    );
    // Inject striping from the shared file handle (symmetric across
    // ranks), mirroring the read engine: stripe-aware strategies and the
    // plan-cache key see the layout as ordinary hints.
    let mut hints = hints.clone();
    hints.striping = Some(Striping::from(file.layout()));
    let hints = &hints;
    let requests = exchange_requests(comm, my_request);
    let topology = comm.model().topology.clone();
    let schedule = plans.get(requests, &topology, comm.nprocs(), hints);
    // All ranks passed through the request exchange, so the counter is
    // symmetric and this collective's shuffle tag is unique to it.
    let tag = comm.next_engine_tag(TAG_WRITE_SHUFFLE);
    let mut report = WriteReport {
        start: comm.clock(),
        ..WriteReport::default()
    };

    // --- Sender role: scatter my pieces to the owning aggregators. -----
    // With hierarchical paths active, pieces bound for a remote-node
    // aggregator go to the local node leader (one cheap intra-node hop)
    // instead of crossing the interconnect one message per rank; the
    // leader coalesces them below.
    let hier = comm.hier_view();
    let up_tag = TAG_WRITE_UP | (tag & SEQ_MASK);
    let cpu = comm.model().cpu.clone();
    let mut send_lane = Lane::free_from(comm.clock());
    for (a, _, pieces) in schedule.sources_with_pieces(comm.rank()) {
        let agg_rank = schedule.aggregator_rank(a);
        if agg_rank == comm.rank() {
            // Own pieces are handed over locally in the aggregator loop.
            continue;
        }
        let piece_bytes: usize = pieces.iter().map(|p| p.extent.len as usize).sum();
        let mut payload = comm.take_buf();
        payload.reserve(piece_bytes);
        for p in pieces {
            let lo = p.buf_offset as usize;
            payload.extend_from_slice(&data[lo..lo + p.extent.len as usize]);
        }
        if let Some(view) = hier.as_ref().filter(|v| v.node_of(agg_rank) != v.node) {
            // The leader's own contribution rides the self-send short
            // circuit: no wire or posting cost, just the pack.
            let mut cost = cpu.memcpy_time(payload.len())
                + comm.model().net.scatter_cost().scale(pieces.len() as f64);
            if comm.rank() != view.leader {
                cost = cost
                    + comm.model().net.wire_time(payload.len(), true)
                    + comm.model().net.msg_cost(true);
            }
            let depart = send_lane.acquire(comm.clock(), cost);
            report.bytes_shuffled += payload.len() as u64;
            comm.post_bytes_at(view.leader, up_tag, payload, depart);
            continue;
        }
        // Direct sends that cross the interconnect may travel compressed;
        // intra-node sends always stay raw (cheap lane, nothing to save).
        let same_node = comm.model().topology.same_node(comm.rank(), agg_rank);
        let (wire, logical_len, compressed) =
            encode_for_wire(comm, &hints.compression, same_node, payload);
        let codec = if compressed {
            cpu.compress_time(logical_len)
        } else {
            SimTime::ZERO
        };
        let cost = cpu.memcpy_time(logical_len)
            + codec
            + comm.model().net.scatter_cost().scale(pieces.len() as f64)
            + comm.model().net.wire_time(wire.len(), same_node)
            + comm.model().net.msg_cost(same_node);
        let depart = send_lane.acquire(comm.clock(), cost);
        report.bytes_shuffled += logical_len as u64;
        comm.post_framed_bytes_at(agg_rank, tag, wire, depart, logical_len);
    }
    let sends_done = send_lane.free_at().max(comm.clock());
    if sends_done > report.start {
        report
            .segments
            .push(Segment::new(report.start, sends_done, Activity::Sys));
    }

    // --- Leader role: coalesce members' up-messages into frames. --------
    let mut done = sends_done;
    if let Some(view) = hier.as_ref().filter(|v| v.is_leader(comm.rank())) {
        done = done.max(coalesce_write_frames(
            comm,
            &schedule,
            view,
            tag,
            hints,
            &mut report,
        ));
    }

    // --- Aggregator role: assemble chunks and write. --------------------
    if let Some(agg_idx) = schedule.aggregator_index(comm.rank()) {
        done = done.max(run_write_aggregator(
            comm,
            pfs,
            file,
            &schedule,
            agg_idx,
            tag,
            hints,
            hier.as_ref(),
            data,
            my_request,
            &mut report,
        ));
    }
    comm.advance_to(done);
    report.end = comm.clock();
    report
}

/// The node leader's coalescing loop, the mirror of the read engine's
/// relay: for every chunk owned by a *remote-node* aggregator that this
/// node contributes to, receives each member's up-message (its own rides
/// the self-send short circuit), concatenates them in ascending member
/// order into one header-less frame, and sends it to the aggregator —
/// paying the inter-node posting overhead once per (chunk, node) pair.
/// Returns the time the last frame departed.
fn coalesce_write_frames(
    comm: &mut Comm,
    schedule: &PlanSchedule,
    view: &NodeView,
    tag: TagValue,
    hints: &Hints,
    report: &mut WriteReport,
) -> SimTime {
    let cpu = comm.model().cpu.clone();
    let up_tag = TAG_WRITE_UP | (tag & SEQ_MASK);
    let frame_tag = TAG_WRITE_FRAME | (tag & SEQ_MASK);
    let start = comm.clock();
    let mut frame_lane = Lane::free_from(start);
    let mut last = start;
    // Slots are walked in global (aggregator, iteration) order — the same
    // order in which every member posts its up-messages and in which each
    // aggregator drains its frame stream, so FIFO matching pairs them up.
    for a in 0..schedule.plan().aggregators.len() {
        let agg_rank = schedule.aggregator_rank(a);
        if view.node_of(agg_rank) == view.node {
            continue; // same-node chunks are shuffled directly
        }
        for &iter in schedule.active_iterations(a) {
            // Pre-size the frame from the schedule's piece tables so
            // coalescing never reallocates mid-concatenation.
            let frame_bytes: usize = schedule
                .dests_with_pieces_in(a, iter, view.node_lo, view.node_hi)
                .map(|(_, ps)| ps.iter().map(|p| p.extent.len as usize).sum::<usize>())
                .sum();
            if frame_bytes == 0 {
                continue; // this node contributes nothing to the chunk
            }
            let mut frame = comm.take_buf();
            frame.reserve(frame_bytes);
            let mut arrival = start;
            for (src, pieces) in
                schedule.dests_with_pieces_in(a, iter, view.node_lo, view.node_hi)
            {
                let len: usize = pieces.iter().map(|p| p.extent.len as usize).sum();
                let (payload, info) = comm.recv_bytes_no_clock(src, up_tag);
                assert_eq!(
                    payload.len(),
                    len,
                    "rank {}: write up-message length mismatch from rank {src} \
                     (aggregator {a}, iteration {iter}, tag {up_tag:#x})",
                    comm.rank(),
                );
                arrival = arrival.max(info.arrival);
                frame.extend_from_slice(&payload);
                comm.recycle_buf(payload);
            }
            // Concatenating contiguous payloads is a plain copy — the
            // per-piece scatter cost was already paid by the members.
            // The coalesced frame always crosses the interconnect, so it
            // is compressed whenever the hints ask for it.
            let (wire, logical_len, compressed) =
                encode_for_wire(comm, &hints.compression, false, frame);
            let codec = if compressed {
                cpu.compress_time(logical_len)
            } else {
                SimTime::ZERO
            };
            let cost = cpu.memcpy_time(logical_len)
                + codec
                + comm.model().net.wire_time(wire.len(), false)
                + comm.model().net.msg_cost(false);
            let depart = frame_lane.acquire(arrival, cost);
            report.bytes_shuffled += logical_len as u64;
            comm.post_framed_bytes_at(agg_rank, frame_tag, wire, depart, logical_len);
            last = last.max(depart);
        }
    }
    if last > start {
        report
            .segments
            .push(Segment::new(start, last, Activity::Sys));
    }
    last
}

/// Assembles and writes every chunk of one aggregator's file domain;
/// returns the time the last write completed.
#[allow(clippy::too_many_arguments)]
fn run_write_aggregator(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    schedule: &PlanSchedule,
    agg_idx: usize,
    tag: TagValue,
    hints: &Hints,
    hier: Option<&NodeView>,
    my_data: &[u8],
    my_request: &OffsetList,
    report: &mut WriteReport,
) -> SimTime {
    let cpu = comm.model().cpu.clone();
    let mut recv_done = comm.clock();
    let mut io_lane = Lane::free_from(comm.clock());
    // Mirror of the read engine's staging discipline: bounded
    // `PipelineDepth` rotates through that many assembly slots, so
    // iteration `i`'s receives are floored at the write that frees slot
    // `i - depth`; unbounded depth lets receives overlap writes freely
    // (the engine's historical non-blocking behavior); blocking mode is
    // depth 1 — the next chunk's receives cannot overlap the write.
    let depth = if hints.nonblocking {
        hints.pipeline_depth.bound()
    } else {
        Some(1)
    };
    let mut ring = depth.map(BufferRing::new);
    let iters = schedule.active_iterations(agg_idx);
    let nslots = depth.unwrap_or(1).min(iters.len()).max(1);
    // Assembly slots reused (re-zeroed) round-robin across iterations.
    let mut slots: Vec<Vec<u8>> = (0..nslots).map(|_| Vec::new()).collect();
    let mut last = comm.clock();

    let frame_tag = TAG_WRITE_FRAME | (tag & SEQ_MASK);
    for (pos, &iter) in iters.iter().enumerate() {
        let (clo, chi) = schedule.chunk(agg_idx, iter);
        let chunk = &mut slots[pos % nslots];
        chunk.clear();
        chunk.resize((chi - clo) as usize, 0);
        let mut extents: Vec<Extent> = Vec::new();
        let floor = ring.as_ref().map_or(SimTime::ZERO, |r| r.available(pos));
        let mut arrival = recv_done.max(floor);
        // Pending coalesced frame from one remote node's leader: sources
        // ascend, so each node's contributors form one contiguous run and
        // the frame is drained exactly once, then flushed on the node
        // boundary.
        let mut frame: Option<(usize, usize, Vec<u8>)> = None; // (node, cursor, bytes)
        for (src, pieces) in schedule.dests_with_pieces(agg_idx, iter) {
            if let Some(view) = hier.filter(|v| v.node_of(src) != v.node) {
                let src_node = view.node_of(src);
                if frame.as_ref().map(|f| f.0) != Some(src_node) {
                    if let Some((node, cursor, bytes)) = frame.take() {
                        assert_eq!(
                            cursor,
                            bytes.len(),
                            "rank {}: write frame length mismatch from node {node} \
                             (aggregator {agg_idx}, iteration {iter}, tag {frame_tag:#x})",
                            comm.rank(),
                        );
                        comm.recycle_buf(bytes);
                    }
                    let (bytes, info) =
                        comm.recv_bytes_no_clock(view.leader_of_node(src_node), frame_tag);
                    // Leader frames always cross the interconnect, so they
                    // arrive compressed exactly when the hints ask for it.
                    let (bytes, decode) = if hints.compression.is_on() {
                        let (logical, n) = decode_from_wire(comm, bytes);
                        (logical, cpu.decompress_time(n))
                    } else {
                        (bytes, SimTime::ZERO)
                    };
                    arrival = arrival.max(info.arrival + decode);
                    frame = Some((src_node, 0, bytes));
                }
                let (_, cursor, bytes) = frame.as_mut().expect("frame just installed");
                for p in pieces {
                    let off = (p.extent.offset - clo) as usize;
                    let len = p.extent.len as usize;
                    chunk[off..off + len].copy_from_slice(&bytes[*cursor..*cursor + len]);
                    *cursor += len;
                    extents.push(p.extent);
                }
                continue;
            }
            let payload: Vec<u8>;
            if src == comm.rank() {
                let mut own = comm.take_buf();
                for p in pieces {
                    let lo = p.buf_offset as usize;
                    own.extend_from_slice(&my_data[lo..lo + p.extent.len as usize]);
                }
                // Offsets of my own pieces come from my own request.
                debug_assert_eq!(
                    my_request.bytes_in(clo, chi),
                    own.len() as u64,
                    "own piece extraction mismatch"
                );
                payload = own;
            } else {
                let (bytes, info) = comm.recv_bytes_no_clock(src, tag);
                let compressed = hints.compression.is_on()
                    && !comm.model().topology.same_node(src, comm.rank());
                if compressed {
                    let (logical, n) = decode_from_wire(comm, bytes);
                    arrival = arrival.max(info.arrival + cpu.decompress_time(n));
                    payload = logical;
                } else {
                    arrival = arrival.max(info.arrival);
                    payload = bytes;
                }
            }
            let mut cursor = 0usize;
            for p in pieces {
                let off = (p.extent.offset - clo) as usize;
                let len = p.extent.len as usize;
                chunk[off..off + len].copy_from_slice(&payload[cursor..cursor + len]);
                cursor += len;
                extents.push(p.extent);
            }
            assert_eq!(
                cursor,
                payload.len(),
                "rank {}: write payload length mismatch from rank {src} \
                 (aggregator {agg_idx}, iteration {iter}, tag {tag:#x})",
                comm.rank(),
            );
            comm.recycle_buf(payload);
        }
        if let Some((node, cursor, bytes)) = frame.take() {
            assert_eq!(
                cursor,
                bytes.len(),
                "rank {}: write frame length mismatch from node {node} \
                 (aggregator {agg_idx}, iteration {iter}, tag {frame_tag:#x})",
                comm.rank(),
            );
            comm.recycle_buf(bytes);
        }
        recv_done = arrival;
        // Merge the received extents and write the whole chunk as one
        // vectorized call: the file system groups the runs per OST, merges
        // object-contiguous pieces, and books each OST once — one seek per
        // merged run instead of one write call per file-contiguous run.
        let merged = OffsetList::new(extents);
        let assemble = cpu.memcpy_time(merged.total_bytes() as usize);
        let ready = arrival.max(io_lane.free_at()) + assemble;
        let mut write_done = ready;
        if merged.total_bytes() > 0 {
            let ranges: Vec<(u64, u64)> =
                merged.extents().iter().map(|e| (e.offset, e.len)).collect();
            write_done = if hints.compression.is_on() {
                // The write-back travels to the file system compressed:
                // the stored bytes are the codec's reconstruction
                // (bit-exact under `Lossless`, within the error bound
                // otherwise) and the disk charge scales with the
                // compressed size while offsets stay logical.
                let mut logical = comm.take_buf();
                for &(off, len) in &ranges {
                    let lo = (off - clo) as usize;
                    logical.extend_from_slice(&chunk[lo..lo + len as usize]);
                }
                let mut wire = comm.take_buf();
                cc_compress::encode_into(&hints.compression, &logical, &mut wire);
                let mut recon = comm.take_buf();
                let n = cc_compress::decode_into(&wire, &mut recon);
                debug_assert_eq!(n, logical.len());
                let mut cursor = 0usize;
                for &(off, len) in &ranges {
                    let lo = (off - clo) as usize;
                    chunk[lo..lo + len as usize]
                        .copy_from_slice(&recon[cursor..cursor + len as usize]);
                    cursor += len as usize;
                }
                let codec_ready = ready + cpu.compress_time(logical.len());
                let wire_len = wire.len() as u64;
                comm.recycle_buf(logical);
                comm.recycle_buf(recon);
                comm.recycle_buf(wire);
                pfs.write_multi_scaled(file, clo, chunk, &ranges, codec_ready, wire_len)
            } else {
                pfs.write_multi(file, clo, chunk, &ranges, ready)
            };
            report.bytes_written += merged.total_bytes();
            report.writes_issued += 1;
        }
        io_lane.advance_to(write_done);
        // The slot is free for iteration pos + depth once its write lands.
        if let Some(r) = ring.as_mut() {
            r.drain(pos, write_done);
        }
        report
            .segments
            .push(Segment::new(ready, write_done, Activity::Wait));
        last = last.max(write_done);
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_model::{ClusterModel, Topology};
    use cc_mpi::World;
    use cc_pfs::{MemBackend, StripeLayout};
    use std::sync::Arc;

    fn empty_fs(size: usize) -> Arc<Pfs> {
        let fs = Pfs::new(
            2,
            cc_model::DiskModel {
                seek: 1e-3,
                ost_bandwidth: 1e8,
            },
        );
        fs.create(
            "out",
            StripeLayout::round_robin(256, 2, 0, 2),
            Box::new(MemBackend::zeroed(size)),
        );
        Arc::new(fs)
    }

    fn run_write(
        nprocs: usize,
        requests: &[OffsetList],
        fs: Arc<Pfs>,
        hints: Hints,
    ) -> Vec<WriteReport> {
        let mut model = ClusterModel::test_tiny(nprocs);
        model.topology = Topology::new(1, nprocs);
        let world = World::new(nprocs, model);
        let fs = &fs;
        let hints = &hints;
        world.run(move |comm| {
            let file = fs.open("out").expect("exists");
            let req = &requests[comm.rank()];
            // Rank r writes bytes valued (file_offset % 251), so the
            // expected file contents are position-determined.
            let mut data = Vec::new();
            for e in req.extents() {
                data.extend((e.offset..e.end()).map(|i| (i % 251) as u8));
            }
            collective_write(comm, fs, &file, req, &data, hints)
        })
    }

    fn check_file(fs: &Pfs, requests: &[OffsetList], size: u64) {
        let file = fs.open("out").expect("exists");
        let (bytes, _) = fs.read_at(&file, 0, size, SimTime::ZERO);
        let mut expect = vec![0u8; size as usize];
        for req in requests {
            for e in req.extents() {
                for i in e.offset..e.end() {
                    expect[i as usize] = (i % 251) as u8;
                }
            }
        }
        assert_eq!(bytes, expect);
    }

    #[test]
    fn contiguous_blocks_roundtrip() {
        let n = 4;
        let requests: Vec<OffsetList> = (0..n as u64)
            .map(|r| OffsetList::contiguous(r * 500, 500))
            .collect();
        let fs = empty_fs(2000);
        let reports = run_write(n, &requests, Arc::clone(&fs), Hints::default());
        check_file(&fs, &requests, 2000);
        let written: u64 = reports.iter().map(|r| r.bytes_written).sum();
        assert_eq!(written, 2000);
    }

    #[test]
    fn interleaved_writes_with_holes() {
        // Rank r writes 10-byte pieces at r*10 + k*60: holes at 40..60 of
        // each 60-byte group must stay zero.
        let n = 4;
        let requests: Vec<OffsetList> = (0..n as u64)
            .map(|r| {
                OffsetList::new(
                    (0..8)
                        .map(|k| Extent {
                            offset: r * 10 + k * 60,
                            len: 10,
                        })
                        .collect(),
                )
            })
            .collect();
        let fs = empty_fs(600);
        run_write(
            n,
            &requests,
            Arc::clone(&fs),
            Hints {
                cb_buffer_size: 128,
                ..Hints::default()
            },
        );
        check_file(&fs, &requests, 600);
    }

    #[test]
    fn writes_coalesce_per_chunk() {
        // Adjacent pieces from different ranks merge into few writes.
        let n = 4;
        let requests: Vec<OffsetList> = (0..n as u64)
            .map(|r| OffsetList::contiguous(r * 100, 100))
            .collect();
        let fs = empty_fs(400);
        let reports = run_write(
            n,
            &requests,
            Arc::clone(&fs),
            Hints {
                cb_buffer_size: 1 << 20,
                aggregators_per_node: 1,
                ..Hints::default()
            },
        );
        // One aggregator, one chunk, fully contiguous: exactly one write.
        let writes: u64 = reports.iter().map(|r| r.writes_issued).sum();
        assert_eq!(writes, 1);
    }

    #[test]
    fn empty_writers_are_fine() {
        let n = 3;
        let mut requests = vec![OffsetList::empty(); n];
        requests[1] = OffsetList::contiguous(64, 64);
        let fs = empty_fs(256);
        run_write(n, &requests, Arc::clone(&fs), Hints::default());
        check_file(&fs, &requests, 256);
    }

    #[test]
    fn hierarchical_write_matches_flat_bitwise() {
        use cc_model::CollectiveMode;
        // 2 nodes x 3 cores, interleaved pieces: every chunk receives
        // contributions from both nodes, so up-messages and coalesced
        // frames carry the whole shuffle. File contents must be
        // byte-identical to the flat path's.
        let n = 6;
        let requests: Vec<OffsetList> = (0..n as u64)
            .map(|r| {
                OffsetList::new(
                    (0..15)
                        .map(|k| Extent {
                            offset: r * 10 + k * 10 * n as u64,
                            len: 10,
                        })
                        .collect(),
                )
            })
            .collect();
        let run_mode = |mode: CollectiveMode| {
            let fs = empty_fs(900);
            let mut model = ClusterModel::test_tiny(n).with_collectives(mode);
            model.topology = Topology::new(2, 3);
            let world = World::new(n, model);
            let stats = {
                let fs = &fs;
                let requests = &requests;
                world.run(move |comm| {
                    let file = fs.open("out").expect("exists");
                    let req = &requests[comm.rank()];
                    let mut data = Vec::new();
                    for e in req.extents() {
                        data.extend((e.offset..e.end()).map(|i| (i % 251) as u8));
                    }
                    collective_write(
                        comm,
                        fs,
                        &file,
                        req,
                        &data,
                        &Hints {
                            cb_buffer_size: 256,
                            ..Hints::default()
                        },
                    );
                    comm.stats()
                })
            };
            let file = fs.open("out").expect("exists");
            let (bytes, _) = fs.read_at(&file, 0, 900, SimTime::ZERO);
            (bytes, stats)
        };
        let (flat_file, flat_stats) = run_mode(CollectiveMode::Flat);
        let (hier_file, hier_stats) = run_mode(CollectiveMode::Hierarchical);
        assert_eq!(flat_file, hier_file, "file contents differ between modes");
        let mut expect = vec![0u8; 900];
        for req in &requests {
            for e in req.extents() {
                for i in e.offset..e.end() {
                    expect[i as usize] = (i % 251) as u8;
                }
            }
        }
        assert_eq!(hier_file, expect, "written contents are wrong");
        let inter = |ss: &[cc_mpi::CommStats]| -> usize { ss.iter().map(|s| s.msgs_inter).sum() };
        assert!(
            inter(&hier_stats) * 2 <= inter(&flat_stats),
            "hierarchical write shuffle must cut inter-node messages: flat {} hier {}",
            inter(&flat_stats),
            inter(&hier_stats)
        );
    }

    #[test]
    fn write_then_collective_read_roundtrip() {
        let n = 2;
        let requests: Vec<OffsetList> = (0..n as u64)
            .map(|r| {
                OffsetList::new(
                    (0..5)
                        .map(|k| Extent {
                            offset: r * 20 + k * 40,
                            len: 20,
                        })
                        .collect(),
                )
            })
            .collect();
        let fs = empty_fs(220);
        let mut model = ClusterModel::test_tiny(n);
        model.topology = Topology::new(1, n);
        let world = World::new(n, model);
        let fs = &fs;
        let requests = &requests;
        let ok = world.run(move |comm| {
            let file = fs.open("out").expect("exists");
            let req = &requests[comm.rank()];
            let mut data = Vec::new();
            for e in req.extents() {
                data.extend((e.offset..e.end()).map(|i| (i % 251) as u8));
            }
            collective_write(comm, fs, &file, req, &data, &Hints::default());
            comm.barrier();
            let (back, _) =
                crate::twophase::collective_read(comm, fs, &file, req, &Hints::default());
            back == data
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn lossless_compressed_write_is_bit_identical_to_off() {
        use crate::hints::Compression;
        use cc_model::CollectiveMode;
        // Interleaved pieces across a 2x3 topology so both the direct
        // inter-node sends (flat) and the coalesced leader frames (hier)
        // travel compressed. File contents must match the uncompressed
        // run byte for byte in both modes.
        let n = 6;
        let requests: Vec<OffsetList> = (0..n as u64)
            .map(|r| {
                OffsetList::new(
                    (0..15)
                        .map(|k| Extent {
                            offset: r * 10 + k * 10 * n as u64,
                            len: 10,
                        })
                        .collect(),
                )
            })
            .collect();
        let run_one = |mode: CollectiveMode, compression: Compression| {
            let fs = empty_fs(900);
            let mut model = ClusterModel::test_tiny(n).with_collectives(mode);
            model.topology = Topology::new(2, 3);
            let world = World::new(n, model);
            {
                let fs = &fs;
                let requests = &requests;
                world.run(move |comm| {
                    let file = fs.open("out").expect("exists");
                    let req = &requests[comm.rank()];
                    let mut data = Vec::new();
                    for e in req.extents() {
                        data.extend((e.offset..e.end()).map(|i| (i % 251) as u8));
                    }
                    let hints = Hints {
                        cb_buffer_size: 256,
                        compression,
                        ..Hints::default()
                    };
                    collective_write(comm, fs, &file, req, &data, &hints);
                });
            }
            let file = fs.open("out").expect("exists");
            let (bytes, _) = fs.read_at(&file, 0, 900, SimTime::ZERO);
            bytes
        };
        for mode in [CollectiveMode::Flat, CollectiveMode::Hierarchical] {
            let off = run_one(mode, Compression::Off);
            let lossless = run_one(mode, Compression::Lossless);
            assert_eq!(off, lossless, "lossless write changed bytes ({mode:?})");
        }
    }

    #[test]
    fn error_bounded_write_respects_bound_and_cuts_wire_bytes() {
        use crate::hints::{Compression, ErrorBound};
        use cc_model::CollectiveMode;
        // A smooth f64 field written across 2 nodes with an absolute
        // error bound: the shuffle leg and the write-back leg each stay
        // within the bound (errors compound additively across the two
        // lossy hops), and the inter-node wire bytes shrink well below
        // the logical bytes.
        let n = 6;
        let piece = 1024usize; // 128 f64 values per piece
        let pieces_per_rank = 16usize;
        let per_rank = (piece * pieces_per_rank) as u64;
        let abs = 1e-3;
        let field = |i: usize| 300.0 + 40.0 * (i as f64 * 1e-3).sin();
        // Rank r owns 1 KiB pieces at stride n KiB — every chunk draws
        // from both nodes, so the shuffle genuinely crosses the
        // interconnect, while the offset-list metadata stays small next
        // to the data.
        let requests: Vec<OffsetList> = (0..n)
            .map(|r| {
                OffsetList::new(
                    (0..pieces_per_rank)
                        .map(|k| Extent {
                            offset: ((r + k * n) * piece) as u64,
                            len: piece as u64,
                        })
                        .collect(),
                )
            })
            .collect();
        let fs = empty_fs((n as u64 * per_rank) as usize);
        let mut model = ClusterModel::test_tiny(n).with_collectives(CollectiveMode::Hierarchical);
        model.topology = Topology::new(2, 3);
        let world = World::new(n, model);
        let stats = {
            let fs = &fs;
            let requests = &requests;
            world.run(move |comm| {
                let file = fs.open("out").expect("exists");
                let req = &requests[comm.rank()];
                let mut data = Vec::new();
                for e in req.extents() {
                    for i in (e.offset / 8)..(e.end() / 8) {
                        data.extend_from_slice(&field(i as usize).to_le_bytes());
                    }
                }
                let hints = Hints {
                    cb_buffer_size: 4096,
                    compression: Compression::ErrorBounded(ErrorBound::absolute(abs)),
                    ..Hints::default()
                };
                collective_write(comm, fs, &file, req, &data, &hints);
                comm.stats()
            })
        };
        let file = fs.open("out").expect("exists");
        let (bytes, _) = fs.read_at(&file, 0, n as u64 * per_rank, SimTime::ZERO);
        let mut max_err = 0.0f64;
        for (i, w) in bytes.chunks_exact(8).enumerate() {
            let got = f64::from_le_bytes(w.try_into().unwrap());
            max_err = max_err.max((got - field(i)).abs());
        }
        assert!(
            max_err <= 2.0 * abs + 1e-12,
            "stored field error {max_err:e} exceeds two-hop bound {:e}",
            2.0 * abs
        );
        let wire: usize = stats.iter().map(|s| s.bytes_inter).sum();
        let logical: usize = stats.iter().map(|s| s.logical_inter).sum();
        assert!(
            logical >= 3 * wire,
            "expected >=3x inter-node wire reduction: logical {logical} wire {wire}"
        );
    }

    #[test]
    #[should_panic]
    fn wrong_buffer_size_panics() {
        let fs = empty_fs(128);
        let mut model = ClusterModel::test_tiny(1);
        model.topology = Topology::new(1, 1);
        let world = World::new(1, model);
        let fs = &fs;
        world.run(move |comm| {
            let file = fs.open("out").expect("exists");
            let req = OffsetList::contiguous(0, 64);
            collective_write(comm, fs, &file, &req, &[0u8; 10], &Hints::default());
        });
    }
}
