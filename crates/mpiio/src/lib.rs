//! A ROMIO-like MPI-IO layer: two-phase collective I/O over the simulated
//! parallel file system.
//!
//! This is the substrate the paper modifies. The pipeline is the classic
//! ROMIO two-phase protocol (Thakur, Gropp, Lusk: "Data sieving and
//! collective I/O in ROMIO"):
//!
//! 1. every rank flattens its request into an offset-length list and the
//!    lists are exchanged ([`exchange`]);
//! 2. the covered file range is partitioned into *file domains*, one per
//!    aggregator ([`plan`]);
//! 3. each aggregator iterates over its domain in collective-buffer-sized
//!    chunks, reading large contiguous extents (phase 1) and scattering the
//!    pieces to the requesting ranks (phase 2, the shuffle);
//! 4. in non-blocking mode the shuffle of iteration *i* overlaps the read
//!    of iteration *i+1* using double buffering, as profiled in the paper's
//!    Fig. 1.
//!
//! [`independent`] implements the non-collective baseline (per-rank reads,
//! optionally with data sieving) used for the paper's Fig. 3 comparison.

#![warn(missing_docs)]

pub mod auto;
pub mod exchange;
pub mod extent;
pub mod fuse;
pub mod hints;
pub mod independent;
pub mod plan;
pub mod schedule;
pub mod twophase;
pub mod write;

pub use auto::{collective_read_auto, ranges_interleave, AutoReport};
pub use extent::{Extent, OffsetList, Piece};
pub use fuse::{fuse_extents, project_extent, project_task, FuseStats};
pub use hints::{Compression, DomainPartition, ErrorBound, Hints, PipelineDepth, Striping};
pub use independent::{
    independent_read, independent_write, sieving_read, sieving_write, IndependentReport,
};
pub use plan::{CollectivePlan, FileDomain};
pub use schedule::{
    CacheOutcome, PlanCache, PlanCacheStats, PlanSchedule, PlanSource, SharedPlanCache,
};
pub use twophase::{
    collective_read, collective_read_cached, collective_read_planned, IterationTiming,
    TwoPhaseReport,
};
pub use write::{collective_write, collective_write_cached, collective_write_planned, WriteReport};
