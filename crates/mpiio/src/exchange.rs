//! Offset-list exchange.
//!
//! Before the two-phase protocol can partition file domains, every process
//! must know every other process's request — ROMIO does this with an
//! allgather of flattened offset/length lists, and so do we. The exchange
//! is a real (timed) collective, so its cost shows up in the totals.

use cc_mpi::Comm;

use crate::extent::OffsetList;

/// Exchanges offset lists among all ranks; returns every rank's request,
/// indexed by rank. Must be called collectively.
pub fn exchange_requests(comm: &mut Comm, mine: &OffsetList) -> Vec<OffsetList> {
    let words = mine.to_words();
    let gathered = comm.allgatherv(&words);
    let mut out = Vec::with_capacity(gathered.len());
    for (rank, w) in gathered.iter().enumerate() {
        if rank == comm.rank() {
            // The local slot round-tripped through our own encoding; clone
            // the already-validated list instead of re-sorting/coalescing.
            out.push(mine.clone());
        } else {
            out.push(OffsetList::from_words(w));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::Extent;
    use cc_model::ClusterModel;
    use cc_mpi::World;

    #[test]
    fn every_rank_sees_every_request() {
        let n = 4;
        let world = World::new(n, ClusterModel::test_tiny(n));
        let results = world.run(|comm| {
            let mine = OffsetList::new(vec![Extent {
                offset: comm.rank() as u64 * 100,
                len: 10 + comm.rank() as u64,
            }]);
            exchange_requests(comm, &mine)
        });
        for lists in &results {
            assert_eq!(lists.len(), n);
            for (r, l) in lists.iter().enumerate() {
                assert_eq!(l.min_offset(), Some(r as u64 * 100));
                assert_eq!(l.total_bytes(), 10 + r as u64);
            }
        }
    }

    #[test]
    fn empty_requests_survive_exchange() {
        let world = World::new(3, ClusterModel::test_tiny(3));
        let results = world.run(|comm| {
            let mine = if comm.rank() == 1 {
                OffsetList::contiguous(50, 5)
            } else {
                OffsetList::empty()
            };
            exchange_requests(comm, &mine)
        });
        for lists in &results {
            assert!(lists[0].is_empty());
            assert_eq!(lists[1].total_bytes(), 5);
            assert!(lists[2].is_empty());
        }
    }
}
