//! Many-task request fusion: merge thousands of tiny per-task requests
//! into one deduplicated collective access pattern.
//!
//! The loosely-coupled many-task regime (thousands of small independent
//! analysis tasks) thrashes the OSTs when each task issues its own reads:
//! every extent is a separate positioning operation, and overlapping or
//! duplicate regions are fetched once *per task*. Fusion flips that
//! around: the union of all task extents is computed once
//! ([`fuse_extents`]), served by a single collective sweep, and each
//! task's bytes are projected back out of the fused buffer
//! ([`project_task`]) — every byte read from storage at most once.
//!
//! The projection is exact by construction: a fused list holds maximal
//! disjoint non-adjacent runs, so any single task extent (contiguous and
//! fully contained in the union) lands inside exactly one fused run.
//! [`project_task`] enforces that single-piece guarantee with a
//! diagnostic panic — if it ever split, a consumer folding the piece
//! bytes could see different run boundaries than a solo execution.

use crate::extent::{Extent, OffsetList, Piece};

/// What fusion saved: the raw task-request volume next to the fused
/// (deduplicated) access pattern that actually goes to storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// Tasks folded into the fused pattern.
    pub tasks: u64,
    /// Extents across all task requests (what independent I/O would issue).
    pub task_extents: u64,
    /// Bytes across all task requests, duplicates counted per task.
    pub task_bytes: u64,
    /// Extents in the fused pattern after merge/dedup/coalesce.
    pub fused_extents: u64,
    /// Unique bytes in the fused pattern.
    pub fused_bytes: u64,
}

impl FuseStats {
    /// Requested-to-unique byte ratio (1.0 = no overlap anywhere, ≥ 1.0
    /// always; 0.0 for an empty batch).
    pub fn dedup_factor(&self) -> f64 {
        if self.fused_bytes == 0 {
            0.0
        } else {
            self.task_bytes as f64 / self.fused_bytes as f64
        }
    }

    /// Task-extent-to-fused-extent ratio: how many independent requests
    /// each fused run replaces (0.0 for an empty batch).
    pub fn extent_factor(&self) -> f64 {
        if self.fused_extents == 0 {
            0.0
        } else {
            self.task_extents as f64 / self.fused_extents as f64
        }
    }
}

/// Merges many per-task requests into one deduplicated [`OffsetList`]:
/// the union of all task extents, overlaps and exact duplicates collapsed,
/// adjacent runs coalesced. The returned list covers every byte of every
/// task request exactly once.
pub fn fuse_extents<'a, I>(requests: I) -> (OffsetList, FuseStats)
where
    I: IntoIterator<Item = &'a OffsetList>,
{
    let mut stats = FuseStats::default();
    let mut raw: Vec<Extent> = Vec::new();
    for req in requests {
        stats.tasks += 1;
        stats.task_extents += req.extents().len() as u64;
        stats.task_bytes += req.total_bytes();
        raw.extend_from_slice(req.extents());
    }
    // Union-merge: `OffsetList::new` rejects overlaps (a *request* never
    // asks for a byte twice), so collapse them here first — fusion is
    // exactly the place where the same byte is wanted many times.
    raw.retain(|e| e.len > 0);
    raw.sort_unstable_by_key(|e| e.offset);
    let mut merged: Vec<Extent> = Vec::with_capacity(raw.len());
    for e in raw {
        match merged.last_mut() {
            Some(last) if e.offset <= last.end() => {
                last.len = last.len.max(e.end() - last.offset);
            }
            _ => merged.push(e),
        }
    }
    let fused = OffsetList::new(merged);
    stats.fused_extents = fused.extents().len() as u64;
    stats.fused_bytes = fused.total_bytes();
    (fused, stats)
}

/// Projects one task extent out of a fused request: returns the piece of
/// the fused buffer holding exactly that extent's bytes.
///
/// # Panics
/// Panics (diagnostically, with the task context) if the fused list does
/// not cover the extent in one contiguous piece — impossible for a list
/// built by [`fuse_extents`] over a set containing this extent, so a trip
/// means the caller projected against the wrong bin's pattern.
pub fn project_extent(task_id: u64, extent: Extent, fused: &OffsetList) -> Piece {
    let pieces = fused.locate(extent.offset, extent.end());
    let covered: u64 = pieces.iter().map(|p| p.extent.len).sum();
    assert!(
        pieces.len() == 1 && covered == extent.len,
        "task {task_id}: extent [{}, {}) maps to {} fused piece(s) covering {} of {} bytes — \
         task projected against a fused pattern that does not contain it",
        extent.offset,
        extent.end(),
        pieces.len(),
        covered,
        extent.len,
    );
    pieces[0]
}

/// Projects a whole task request out of the fused buffer: one
/// [`Piece`] per task extent, in task-buffer order. Slicing the fused
/// buffer at each piece's `buf_offset` reproduces the bytes an
/// independent read of `task` would have returned, byte for byte.
///
/// # Panics
/// See [`project_extent`].
pub fn project_task(task_id: u64, task: &OffsetList, fused: &OffsetList) -> Vec<Piece> {
    task.extents()
        .iter()
        .map(|&e| project_extent(task_id, e, fused))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ext(offset: u64, len: u64) -> Extent {
        Extent { offset, len }
    }

    fn list(pairs: &[(u64, u64)]) -> OffsetList {
        OffsetList::new(pairs.iter().map(|&(o, l)| ext(o, l)).collect())
    }

    #[test]
    fn fuse_merges_overlaps_duplicates_and_adjacency() {
        let a = list(&[(0, 10), (20, 5)]);
        let b = list(&[(5, 10), (25, 5)]); // overlaps a's first, extends a's second
        let c = list(&[(0, 10)]); // exact duplicate of a's first
        let (fused, stats) = fuse_extents([&a, &b, &c]);
        assert_eq!(fused.extents(), &[ext(0, 15), ext(20, 10)]);
        assert_eq!(stats.tasks, 3);
        assert_eq!(stats.task_extents, 5);
        assert_eq!(stats.task_bytes, 40);
        assert_eq!(stats.fused_extents, 2);
        assert_eq!(stats.fused_bytes, 25);
        assert!((stats.dedup_factor() - 1.6).abs() < 1e-12);
        assert!((stats.extent_factor() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn fuse_contained_extent_is_absorbed() {
        let a = list(&[(0, 100)]);
        let b = list(&[(10, 5)]); // strictly inside a
        let (fused, stats) = fuse_extents([&a, &b]);
        assert_eq!(fused.extents(), &[ext(0, 100)]);
        assert_eq!(stats.fused_bytes, 100);
    }

    #[test]
    fn fuse_empty_batch_is_empty() {
        let (fused, stats) = fuse_extents(std::iter::empty::<&OffsetList>());
        assert!(fused.is_empty());
        assert_eq!(stats, FuseStats::default());
        assert_eq!(stats.dedup_factor(), 0.0);
        assert_eq!(stats.extent_factor(), 0.0);
    }

    #[test]
    fn project_returns_single_exact_pieces() {
        let a = list(&[(0, 10), (30, 10)]);
        let b = list(&[(5, 10)]); // bridges past a's first run
        let (fused, _) = fuse_extents([&a, &b]);
        assert_eq!(fused.extents(), &[ext(0, 15), ext(30, 10)]);
        let pa = project_task(0, &a, &fused);
        assert_eq!(pa.len(), 2);
        assert_eq!(pa[0], Piece { extent: ext(0, 10), buf_offset: 0 });
        assert_eq!(pa[1], Piece { extent: ext(30, 10), buf_offset: 15 });
        let pb = project_task(1, &b, &fused);
        assert_eq!(pb, vec![Piece { extent: ext(5, 10), buf_offset: 5 }]);
    }

    #[test]
    #[should_panic(expected = "does not contain it")]
    fn project_outside_fused_pattern_panics_with_context() {
        let (fused, _) = fuse_extents([&list(&[(0, 10)])]);
        let _ = project_extent(42, ext(100, 4), &fused);
    }

    /// Random task mixes (overlapping, disjoint, duplicated): the fused
    /// union covers every task byte exactly once, and every task extent
    /// projects to one exact piece.
    fn arb_tasks() -> impl Strategy<Value = Vec<OffsetList>> {
        proptest::collection::vec(
            proptest::collection::vec((0u64..300, 1u64..40), 1..6),
            1..12,
        )
        .prop_map(|tasks| {
            tasks
                .into_iter()
                .map(|pairs| {
                    // Per-task extents must not self-overlap (a request never
                    // asks for a byte twice): lay them out cumulatively.
                    let mut pos = 0;
                    let mut extents = Vec::new();
                    for (gap, len) in pairs {
                        pos += gap % 50 + 1;
                        extents.push(ext(pos, len));
                        pos += len;
                    }
                    OffsetList::new(extents)
                })
                .collect()
        })
    }

    proptest! {
        #[test]
        fn prop_fusion_never_drops_a_byte(tasks in arb_tasks()) {
            let (fused, stats) = fuse_extents(tasks.iter());
            // Oracle union, byte by byte.
            let hi = tasks
                .iter()
                .filter_map(|t| t.max_end())
                .max()
                .unwrap_or(0);
            let mut wanted = vec![false; hi as usize];
            for t in &tasks {
                for e in t.extents() {
                    for o in e.offset..e.end() {
                        wanted[o as usize] = true;
                    }
                }
            }
            let unique = wanted.iter().filter(|&&w| w).count() as u64;
            prop_assert_eq!(stats.fused_bytes, unique, "fused bytes != union size");
            for (o, &w) in wanted.iter().enumerate() {
                let covered = fused.bytes_in(o as u64, o as u64 + 1) > 0;
                prop_assert_eq!(covered, w, "byte {} miscovered", o);
            }
            // Every task extent projects to exactly one piece of the
            // fused buffer, holding exactly its bytes.
            for (id, t) in tasks.iter().enumerate() {
                let pieces = project_task(id as u64, t, &fused);
                prop_assert_eq!(pieces.len(), t.extents().len());
                for (p, e) in pieces.iter().zip(t.extents()) {
                    prop_assert_eq!(p.extent, *e);
                }
            }
        }
    }
}
