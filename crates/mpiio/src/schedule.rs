//! Compiled collective plans: one-sweep shuffle schedules and plan caching.
//!
//! [`CollectivePlan`] answers every schedule question by re-scanning all
//! ranks' offset lists (`locate`/`bytes_in` per aggregator per iteration
//! per call site), so planning cost is O(iterations × ranks × log extents)
//! *per query* — and the engines query it from every hot loop.
//! [`PlanSchedule`] compiles the complete schedule once, with a single
//! linear co-sweep over all ranks' extents, into CSR-style flat tables:
//! per (aggregator, iteration) slot the covering read range, the
//! destination ranks, and each destination's piece slice; per rank the
//! ordered `(agg, iter)` source list. Every query the engines make becomes
//! an O(1) or slice lookup, and the per-call `Vec<Piece>` allocations of
//! the query API disappear.
//!
//! [`PlanCache`] layers reuse on top for iterative sweeps
//! (`cc-core::iterative`): schedules are keyed by a request-shape
//! fingerprint plus hints, rank count, and topology. When a later step's
//! requests are a constant-offset translation of a cached step's (the
//! canonical timestep sweep), the compiled schedule is *translated*
//! instead of recompiled: the shape-invariant index tables are shared by
//! `Arc` and only the offset-bearing geometry columns are copied and
//! shifted; identical requests are reused outright, sharing everything.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use cc_model::Topology;

use crate::extent::{Extent, OffsetList, Piece};
use crate::hints::Hints;
use crate::plan::CollectivePlan;

/// The index tables of one compiled schedule: everything that depends only
/// on the *shape* of the request set. Invariant under offset translation,
/// so translated schedules share them by `Arc` instead of copying.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ScheduleIndex {
    /// Slot base per aggregator: slot `(a, it)` is `iter_base[a] + it`.
    /// Length `naggs + 1`; the last entry is the total slot count.
    iter_base: Vec<usize>,
    /// CSR of active (non-empty) iterations per aggregator.
    active_base: Vec<usize>,
    active_iters: Vec<usize>,
    /// CSR of destination ranks per slot, ascending within a slot.
    dest_base: Vec<usize>,
    dest_rank: Vec<usize>,
    /// Piece slice per destination entry (parallel to `dest_rank`, with a
    /// final end sentinel): destination `d` owns `pieces[piece_base[d]..
    /// piece_base[d + 1]]`, in file (and buffer) order.
    piece_base: Vec<usize>,
    /// CSR of `(agg_idx, iter)` sources per rank, in deterministic
    /// (aggregator, iteration) order.
    src_base: Vec<usize>,
    sources: Vec<(usize, usize)>,
    /// Destination-table index of each source entry (parallel to
    /// `sources`): rank `r`'s `k`-th source chunk delivers exactly
    /// `pieces[piece_base[d]..piece_base[d + 1]]` where
    /// `d = src_dest[src_base[r] + k]` — receivers look their pieces up
    /// without re-searching the destination lists.
    src_dest: Vec<usize>,
    /// CSR bounds of each slot's covering read ranges (one range per
    /// covered block holding requested bytes). Range *counts* are shape
    /// properties, so this lives with the shareable index; the offsets
    /// themselves are in [`ScheduleGeom::ranges`].
    range_base: Vec<usize>,
}

/// The offset-bearing tables of one compiled schedule — the only columns a
/// translation has to rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ScheduleGeom {
    /// Per-slot covering read range; `u64::MAX`/`0` sentinel when the slot
    /// holds no requested bytes.
    read_lo: Vec<u64>,
    read_hi: Vec<u64>,
    pieces: Vec<Piece>,
    /// Per-block covering `(offset, len)` read extents, CSR-indexed by
    /// [`ScheduleIndex::range_base`] — the range list one vectorized
    /// file-system call services per iteration.
    ranges: Vec<(u64, u64)>,
}

/// A [`CollectivePlan`] compiled into flat lookup tables.
///
/// Answers are bit-identical to the query methods of the plan it was built
/// from (property-tested in `tests/`), but cost O(1) or a slice borrow
/// instead of a rescan, and cloning shares the tables.
#[derive(Debug, Clone)]
pub struct PlanSchedule {
    plan: CollectivePlan,
    index: Arc<ScheduleIndex>,
    geom: Arc<ScheduleGeom>,
}

impl PlanSchedule {
    /// Compiles `plan` with one linear co-sweep over all ranks' offset
    /// lists. Cost is O(total extents + slots + pieces + ranks), after
    /// which every query is allocation-free.
    ///
    /// The sweep is domain-major: one aggregator's file domain at a time,
    /// walking each rank's extents from a persistent cursor (domains and
    /// extents both ascend, so every extent is visited once, plus once per
    /// domain boundary it spans). That keeps the counting-sort that groups
    /// a slot's pieces by destination inside a per-domain scratch small
    /// enough to stay cache-resident, and makes every global table a
    /// sequential append — slots are emitted in `(agg, iter)` order.
    ///
    /// Strided (group-cyclic) domains interleave across aggregators, so
    /// the persistent-cursor sweep does not apply; those plans use a
    /// per-domain `locate` walk instead, feeding the identical per-domain
    /// record stream (rank-major, iteration-ascending within rank) into
    /// the same counting-sort scatter.
    pub fn compile(plan: CollectivePlan) -> Self {
        let naggs = plan.aggregators.len();
        let nprocs = plan.requests.len();
        let cb = plan.cb;
        // The persistent cursor requires ascending contiguous domains —
        // true for even/stripe-aligned partitions, not for group-cyclic.
        let contiguous_sweep = plan.domains.iter().all(|d| d.is_contiguous());

        // Slot layout: one slot per (aggregator, iteration).
        let mut iter_base = Vec::with_capacity(naggs + 1);
        iter_base.push(0usize);
        for a in 0..naggs {
            iter_base.push(iter_base[a] + plan.n_iterations(a));
        }
        let slots = iter_base[naggs];

        let mut read_lo = vec![u64::MAX; slots];
        let mut read_hi = vec![0u64; slots];
        let mut range_base = Vec::with_capacity(slots + 1);
        range_base.push(0usize);
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        // Per-slot scratch for the block-covering post-pass:
        // (block, cover_lo, cover_hi).
        let mut blk_cov: Vec<(u64, u64, u64)> = Vec::new();
        let mut active_base = Vec::with_capacity(naggs + 1);
        let mut active_iters = Vec::new();
        active_base.push(0usize);
        let mut dest_base = Vec::with_capacity(slots + 1);
        dest_base.push(0usize);
        let mut dest_rank = Vec::new();
        let mut piece_base = Vec::new();
        let mut pieces: Vec<Piece> = Vec::new();
        // Source lists are per-rank but emitted domain-major; collect them
        // per rank (aggregator order is preserved) with the destination
        // entry each source corresponds to, and concatenate below. A rank
        // rarely has more sources than extents, so reserving that much
        // avoids growth reallocations in the common case.
        let mut rank_sources: Vec<Vec<(usize, usize, usize)>> = plan
            .requests
            .iter()
            .map(|r| Vec::with_capacity(r.extents().len()))
            .collect();

        // Per-rank sweep cursor: index of the first extent not fully behind
        // the domains processed so far, and its request-buffer offset.
        let mut cursor = vec![0usize; nprocs];
        let mut bufpos = vec![0u64; nprocs];

        // Per-domain scratch, reused across aggregators. Records are
        // rank-major and iteration-sorted within a rank (extents ascend).
        let mut recs: Vec<(u32, u32, Piece)> = Vec::new(); // (it, rank, piece)
        let mut piece_count: Vec<usize> = Vec::new();
        let mut dest_count: Vec<usize> = Vec::new();
        let mut last_rank: Vec<usize> = Vec::new();
        let mut next_piece: Vec<usize> = Vec::new();
        let mut next_dest: Vec<usize> = Vec::new();
        let mut local_pieces: Vec<Piece> = Vec::new();
        let mut local_dest_rank: Vec<usize> = Vec::new();
        let mut local_piece_base: Vec<usize> = Vec::new();

        // Every extent yields at least one piece; reserving the common case
        // up front keeps the append-only growth of the largest table from
        // re-copying it.
        pieces.reserve(plan.requests.iter().map(|r| r.extents().len()).sum());

        for a in 0..naggs {
            let dom = plan.domains[a];
            let (dlo, dhi) = dom.bounds();
            let n_it = iter_base[a + 1] - iter_base[a];
            if dlo >= dhi || n_it == 0 {
                active_base.push(active_iters.len());
                continue;
            }
            recs.clear();
            // Piece and destination counts per iteration, gathered during
            // the sweep: every record is one piece, and a destination opens
            // exactly when a rank first touches an iteration — the same
            // transition that emits the rank's source entry (one rank's
            // records for an iteration are contiguous, ranks ascend).
            piece_count.clear();
            piece_count.resize(n_it, 0);
            dest_count.clear();
            dest_count.resize(n_it, 0);
            if contiguous_sweep {
                for r in 0..nprocs {
                    let exts = plan.requests[r].extents();
                    let mut i = cursor[r];
                    let mut buf = bufpos[r];
                    while i < exts.len() && exts[i].end() <= dlo {
                        buf += exts[i].len;
                        i += 1;
                    }
                    let mut prev_it = usize::MAX;
                    // Rolling chunk cursor: extents ascend, so the first
                    // overlapped iteration only moves forward. The division is
                    // needed only when an extent spans several chunks.
                    let mut cur_it = 0usize;
                    let mut cur_end = dlo + cb;
                    while i < exts.len() {
                        let e = exts[i];
                        if e.offset >= dhi {
                            break;
                        }
                        let clip_lo = e.offset.max(dlo);
                        let clip_hi = e.end().min(dhi);
                        if clip_lo < clip_hi {
                            while clip_lo >= cur_end {
                                cur_it += 1;
                                cur_end += cb;
                            }
                            let first = cur_it;
                            let last = if clip_hi <= cur_end {
                                cur_it
                            } else {
                                ((clip_hi - 1 - dlo) / cb) as usize
                            };
                            for it in first..=last {
                                let c_lo = dlo + cb * it as u64;
                                let c_hi = (c_lo + cb).min(dhi);
                                let p_lo = clip_lo.max(c_lo);
                                let p_hi = clip_hi.min(c_hi);
                                debug_assert!(p_lo < p_hi);
                                let slot = iter_base[a] + it;
                                read_lo[slot] = read_lo[slot].min(p_lo);
                                read_hi[slot] = read_hi[slot].max(p_hi);
                                piece_count[it] += 1;
                                recs.push((
                                    it as u32,
                                    r as u32,
                                    Piece {
                                        extent: Extent {
                                            offset: p_lo,
                                            len: p_hi - p_lo,
                                        },
                                        buf_offset: buf + (p_lo - e.offset),
                                    },
                                ));
                                if it != prev_it {
                                    prev_it = it;
                                    dest_count[it] += 1;
                                }
                            }
                        }
                        if e.end() <= dhi {
                            buf += e.len;
                            i += 1;
                        } else {
                            // Spans into the next domain: leave the cursor on it.
                            break;
                        }
                    }
                    cursor[r] = i;
                    bufpos[r] = buf;
                }
            } else {
                // Strided domain: locate each rank's pieces in the bounding
                // box, then clip them to the domain's blocks and chunks. The
                // in-domain offset→iteration map is monotone in file offset,
                // so the record stream keeps the invariants the scatter
                // relies on (rank-major, iterations ascending within a rank,
                // per-(it, rank) records contiguous).
                let cpb = dom.chunks_per_block(cb);
                let bpc = dom.blocks_per_chunk(cb);
                for r in 0..nprocs {
                    let mut prev_it = usize::MAX;
                    for piece in plan.requests[r].locate(dlo, dhi) {
                        let (plo, phi) = (piece.extent.offset, piece.extent.end());
                        let first_b = (plo.max(dom.start) - dom.start) / dom.stride;
                        let last_b = ((phi - 1 - dom.start) / dom.stride).min(dom.nblocks - 1);
                        for b in first_b..=last_b {
                            let bstart = dom.start + b * dom.stride;
                            let bend = bstart + dom.block;
                            let s = plo.max(bstart);
                            let e = phi.min(bend);
                            if s >= e {
                                continue;
                            }
                            let first_c = ((s - bstart) / cb) as usize;
                            let last_c = ((e - 1 - bstart) / cb) as usize;
                            for c in first_c..=last_c {
                                let c_lo = bstart + cb * c as u64;
                                let c_hi = (c_lo + cb).min(bend);
                                let p_lo = s.max(c_lo);
                                let p_hi = e.min(c_hi);
                                debug_assert!(p_lo < p_hi);
                                // Merged multi-block iterations (cpb == 1,
                                // bpc > 1) map consecutive blocks onto one
                                // slot; block order keeps the stream's
                                // iteration-ascending invariant.
                                let it = if cpb > 1 {
                                    b as usize * cpb + c
                                } else {
                                    (b / bpc) as usize
                                };
                                let slot = iter_base[a] + it;
                                read_lo[slot] = read_lo[slot].min(p_lo);
                                read_hi[slot] = read_hi[slot].max(p_hi);
                                piece_count[it] += 1;
                                recs.push((
                                    it as u32,
                                    r as u32,
                                    Piece {
                                        extent: Extent {
                                            offset: p_lo,
                                            len: p_hi - p_lo,
                                        },
                                        buf_offset: piece.buf_offset + (p_lo - plo),
                                    },
                                ));
                                if it != prev_it {
                                    prev_it = it;
                                    dest_count[it] += 1;
                                }
                            }
                        }
                    }
                }
            }

            // Relative write cursors for this domain's slots, and the CSR
            // boundaries they imply.
            next_piece.clear();
            next_dest.clear();
            let piece_off0 = pieces.len();
            let dest_off0 = dest_rank.len();
            let mut p = 0usize;
            let mut d = 0usize;
            for it in 0..n_it {
                next_piece.push(p);
                next_dest.push(d);
                p += piece_count[it];
                d += dest_count[it];
                dest_base.push(dest_off0 + d);
            }

            // Stable scatter within this domain's slots: pieces land in
            // rank order (record order) and file order, so each
            // destination's pieces are contiguous and `piece_base[d]` is the
            // piece cursor at the moment destination `d` opens. The scatter
            // goes through small reused staging buffers (cache-resident),
            // and the global tables grow by one sequential append per
            // domain.
            // Grow-only staging: the scatter writes every one of the `p`
            // piece and `d` destination entries, so stale tails never leak
            // and re-zeroing the buffers each domain would be a wasted
            // second write pass.
            if local_pieces.len() < p {
                local_pieces.resize(
                    p,
                    Piece {
                        extent: Extent { offset: 0, len: 0 },
                        buf_offset: 0,
                    },
                );
            }
            if local_dest_rank.len() < d {
                local_dest_rank.resize(d, 0);
                local_piece_base.resize(d, 0);
            }
            last_rank.clear();
            last_rank.resize(n_it, usize::MAX);
            for &(it, r, piece) in &recs {
                let (it, r) = (it as usize, r as usize);
                if last_rank[it] != r {
                    last_rank[it] = r;
                    let d = next_dest[it];
                    next_dest[it] += 1;
                    local_dest_rank[d] = r;
                    local_piece_base[d] = piece_off0 + next_piece[it];
                }
                local_pieces[next_piece[it]] = piece;
                next_piece[it] += 1;
            }
            pieces.extend_from_slice(&local_pieces[..p]);
            dest_rank.extend_from_slice(&local_dest_rank[..d]);
            piece_base.extend_from_slice(&local_piece_base[..d]);

            // Per-slot covering read ranges, one per covered block: the
            // extents the vectorized read of this iteration services. For
            // single-block slots this is exactly `(read_lo, read_hi)`; a
            // merged multi-block slot gets one range per block so the
            // stride gaps (other aggregators' bytes) are never read.
            let mut p0 = 0usize;
            for &cnt in piece_count.iter().take(n_it) {
                blk_cov.clear();
                for piece in &local_pieces[p0..p0 + cnt] {
                    let b = (piece.extent.offset - dom.start) / dom.stride;
                    let (plo, phi) = (piece.extent.offset, piece.extent.end());
                    match blk_cov.iter_mut().find(|(bb, _, _)| *bb == b) {
                        Some((_, lo, hi)) => {
                            *lo = (*lo).min(plo);
                            *hi = (*hi).max(phi);
                        }
                        None => blk_cov.push((b, plo, phi)),
                    }
                }
                blk_cov.sort_unstable();
                ranges.extend(blk_cov.iter().map(|&(_, lo, hi)| (lo, hi - lo)));
                range_base.push(ranges.len());
                p0 += cnt;
            }

            // Source lists: walking this domain's destinations slot-major
            // visits each rank's chunks in (aggregator, iteration) order, so
            // appending per rank preserves the deterministic source order —
            // and records which destination entry the source's pieces live
            // under.
            let mut dd = 0usize;
            for (it, &c) in dest_count.iter().enumerate() {
                for _ in 0..c {
                    rank_sources[local_dest_rank[dd]].push((a, it, dest_off0 + dd));
                    dd += 1;
                }
            }

            for (it, &c) in piece_count.iter().enumerate() {
                if c > 0 {
                    active_iters.push(it);
                }
            }
            active_base.push(active_iters.len());
        }
        piece_base.push(pieces.len());

        let mut src_base = Vec::with_capacity(nprocs + 1);
        src_base.push(0usize);
        let total_sources = rank_sources.iter().map(Vec::len).sum();
        let mut sources = Vec::with_capacity(total_sources);
        let mut src_dest = Vec::with_capacity(total_sources);
        for per_rank in &rank_sources {
            for &(a, it, d) in per_rank {
                sources.push((a, it));
                src_dest.push(d);
            }
            src_base.push(sources.len());
        }

        Self {
            plan,
            index: Arc::new(ScheduleIndex {
                iter_base,
                active_base,
                active_iters,
                dest_base,
                dest_rank,
                piece_base,
                src_base,
                sources,
                src_dest,
                range_base,
            }),
            geom: Arc::new(ScheduleGeom {
                read_lo,
                read_hi,
                pieces,
                ranges,
            }),
        }
    }

    /// The plan this schedule was compiled from (or translated to).
    pub fn plan(&self) -> &CollectivePlan {
        &self.plan
    }

    /// Whether two schedules share the same compiled index tables (the
    /// shape-invariant half of the schedule) by `Arc` — true for cache
    /// hits and translations of one entry, false for independent compiles.
    /// Lets tests assert that cache sharing actually shared memory.
    pub fn shares_index_with(&self, other: &PlanSchedule) -> bool {
        Arc::ptr_eq(&self.index, &other.index)
    }

    /// The index in the aggregator list of rank `r`, if it aggregates.
    pub fn aggregator_index(&self, rank: usize) -> Option<usize> {
        self.plan.aggregator_index(rank)
    }

    /// The rank of aggregator `agg_idx`.
    pub fn aggregator_rank(&self, agg_idx: usize) -> usize {
        self.plan.aggregators[agg_idx]
    }

    /// Number of collective-buffer iterations of aggregator `agg_idx`.
    pub fn n_iterations(&self, agg_idx: usize) -> usize {
        self.index.iter_base[agg_idx + 1] - self.index.iter_base[agg_idx]
    }

    /// The file range `[lo, hi)` of iteration `iter` of `agg_idx`.
    pub fn chunk(&self, agg_idx: usize, iter: usize) -> (u64, u64) {
        self.plan.chunk(agg_idx, iter)
    }

    /// The iterations of `agg_idx` that contain requested bytes, ascending.
    pub fn active_iterations(&self, agg_idx: usize) -> &[usize] {
        let t = &self.index;
        &t.active_iters[t.active_base[agg_idx]..t.active_base[agg_idx + 1]]
    }

    /// Whether aggregator `agg_idx` has any work at all.
    pub fn is_active(&self, agg_idx: usize) -> bool {
        !self.active_iterations(agg_idx).is_empty()
    }

    /// The covering extent read in chunk `(agg_idx, iter)`, `None` if the
    /// chunk holds no requested bytes.
    pub fn read_range(&self, agg_idx: usize, iter: usize) -> Option<(u64, u64)> {
        let slot = self.index.iter_base[agg_idx] + iter;
        let (lo, hi) = (self.geom.read_lo[slot], self.geom.read_hi[slot]);
        (lo < hi).then_some((lo, hi))
    }

    /// The `(offset, len)` extents the vectorized read of chunk
    /// `(agg_idx, iter)` services — the covering range of each covered
    /// block holding requested bytes, ascending and disjoint. Empty when
    /// the chunk holds no requested bytes. Handing the whole list to one
    /// `read_multi`/`write_multi` call lets the file system merge
    /// object-contiguous stripes across consecutive blocks into single
    /// seek-charged runs.
    pub fn read_ranges(&self, agg_idx: usize, iter: usize) -> &[(u64, u64)] {
        let slot = self.index.iter_base[agg_idx] + iter;
        &self.geom.ranges[self.index.range_base[slot]..self.index.range_base[slot + 1]]
    }

    /// Calls `f` with the in-domain sub-ranges of iteration `iter` of
    /// `agg_idx`, one per covered block, ascending.
    pub fn chunk_blocks(&self, agg_idx: usize, iter: usize, f: impl FnMut(u64, u64)) {
        self.plan.chunk_blocks(agg_idx, iter, f)
    }

    /// The ranks receiving bytes from chunk `(agg_idx, iter)`, ascending.
    pub fn destinations(&self, agg_idx: usize, iter: usize) -> &[usize] {
        let t = &self.index;
        let slot = t.iter_base[agg_idx] + iter;
        &t.dest_rank[t.dest_base[slot]..t.dest_base[slot + 1]]
    }

    /// The pieces of chunk `(agg_idx, iter)` destined for `rank`, in file
    /// order. Empty if the rank takes nothing from the chunk.
    pub fn pieces_for(&self, agg_idx: usize, iter: usize, rank: usize) -> &[Piece] {
        let t = &self.index;
        let slot = t.iter_base[agg_idx] + iter;
        let dests = &t.dest_rank[t.dest_base[slot]..t.dest_base[slot + 1]];
        match dests.binary_search(&rank) {
            Ok(i) => {
                let d = t.dest_base[slot] + i;
                &self.geom.pieces[t.piece_base[d]..t.piece_base[d + 1]]
            }
            Err(_) => &[],
        }
    }

    /// Every destination of chunk `(agg_idx, iter)` with its piece slice,
    /// in ascending rank order — the aggregator hot loop, with no lookup
    /// at all.
    pub fn dests_with_pieces(
        &self,
        agg_idx: usize,
        iter: usize,
    ) -> impl Iterator<Item = (usize, &[Piece])> {
        let t = &*self.index;
        let g = &*self.geom;
        let slot = t.iter_base[agg_idx] + iter;
        (t.dest_base[slot]..t.dest_base[slot + 1]).map(move |d| {
            (
                t.dest_rank[d],
                &g.pieces[t.piece_base[d]..t.piece_base[d + 1]],
            )
        })
    }

    /// [`Self::dests_with_pieces`] restricted to destination ranks in
    /// `[lo, hi)` — the hierarchical engines' per-node view of a slot.
    /// Destination ranks ascend within a slot, so the restriction is a
    /// binary-searched sub-slice, not a filter: node leaders pre-size
    /// coalescing frames and enumerate their members' sections without
    /// touching the destinations outside their node.
    pub fn dests_with_pieces_in(
        &self,
        agg_idx: usize,
        iter: usize,
        lo: usize,
        hi: usize,
    ) -> impl Iterator<Item = (usize, &[Piece])> {
        let t = &*self.index;
        let g = &*self.geom;
        let slot = t.iter_base[agg_idx] + iter;
        let (d0, d1) = (t.dest_base[slot], t.dest_base[slot + 1]);
        let dests = &t.dest_rank[d0..d1];
        let start = d0 + dests.partition_point(|&r| r < lo);
        let end = d0 + dests.partition_point(|&r| r < hi);
        (start..end).map(move |d| {
            (
                t.dest_rank[d],
                &g.pieces[t.piece_base[d]..t.piece_base[d + 1]],
            )
        })
    }

    /// All `(agg_idx, iter)` chunks holding bytes for `rank`, in
    /// deterministic (aggregator, iteration) order.
    pub fn sources_for(&self, rank: usize) -> &[(usize, usize)] {
        let t = &self.index;
        &t.sources[t.src_base[rank]..t.src_base[rank + 1]]
    }

    /// [`Self::sources_for`] with each source's piece slice attached — the
    /// receiver hot loop. Equivalent to calling [`Self::pieces_for`] per
    /// source, but reads the destination index recorded at compile time
    /// instead of re-searching the destination list.
    pub fn sources_with_pieces(
        &self,
        rank: usize,
    ) -> impl Iterator<Item = (usize, usize, &[Piece])> {
        let t = &*self.index;
        let g = &*self.geom;
        (t.src_base[rank]..t.src_base[rank + 1]).map(move |k| {
            let (a, it) = t.sources[k];
            let d = t.src_dest[k];
            (a, it, &g.pieces[t.piece_base[d]..t.piece_base[d + 1]])
        })
    }

    /// Translates this schedule to `new_requests`, which must be the
    /// compiled requests shifted so that the global minimum offset moves
    /// from `old_lo` to `new_lo` (same shape, same hints, same topology —
    /// the cache verifies all of this). The index tables are shared by
    /// `Arc` unchanged; only the offset-bearing geometry columns are
    /// rewritten. Much cheaper than a recompile: a flat copy-and-add with
    /// no scanning or branching.
    fn translate(&self, new_requests: Arc<Vec<OffsetList>>, old_lo: u64, new_lo: u64) -> Self {
        let shift = |x: u64| new_lo + (x - old_lo);
        let t = &*self.geom;
        let read_lo = t
            .read_lo
            .iter()
            .map(|&lo| if lo == u64::MAX { u64::MAX } else { shift(lo) })
            .collect();
        let read_hi = t
            .read_hi
            .iter()
            .map(|&hi| if hi == 0 { 0 } else { shift(hi) })
            .collect();
        let pieces = t
            .pieces
            .iter()
            .map(|p| Piece {
                extent: Extent {
                    offset: shift(p.extent.offset),
                    len: p.extent.len,
                },
                buf_offset: p.buf_offset,
            })
            .collect();
        let ranges = t.ranges.iter().map(|&(lo, len)| (shift(lo), len)).collect();
        // Domains may start before the global minimum offset (group-cyclic
        // domains anchor at period boundaries), so they shift by the signed
        // delta rather than through `shift`.
        let delta = new_lo as i64 - old_lo as i64;
        let plan = CollectivePlan {
            aggregators: self.plan.aggregators.clone(),
            domains: self.plan.domains.iter().map(|d| d.shifted(delta)).collect(),
            cb: self.plan.cb,
            requests: new_requests,
        };
        Self {
            plan,
            index: Arc::clone(&self.index),
            geom: Arc::new(ScheduleGeom {
                read_lo,
                read_hi,
                pieces,
                ranges,
            }),
        }
    }
}

/// How a [`PlanCache`] lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Requests were bitwise identical to a cached step: tables shared.
    Hit,
    /// Requests were a constant-offset shift of a cached step: tables
    /// translated.
    Translated,
    /// No reusable entry: compiled from scratch.
    Miss,
}

/// Counters of one cache's lifetime (or, when read through a
/// [`PlanSource`], of one holder's share of a shared cache's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Exact reuses (identical requests).
    pub hits: u64,
    /// Offset-translation reuses.
    pub translations: u64,
    /// Full compiles.
    pub misses: u64,
    /// Exact reuses of an entry *another job* compiled — the subset of
    /// `hits` a job could never have gotten from a private cache.
    pub cross_job_hits: u64,
    /// Offset-translation reuses of another job's entry — the subset of
    /// `translations` owed to cache sharing.
    pub cross_job_translations: u64,
    /// Tasks whose I/O was served through a fused (batched) schedule —
    /// the numerator of the batch-amortization ratio. Bumped by the
    /// task-fusion layer, once per task folded into a shared sweep.
    pub fused_tasks: u64,
}

impl PlanCacheStats {
    /// Total lookups (hits + translations + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.translations + self.misses
    }

    /// Fraction of lookups satisfied without a fresh compile (0.0 when no
    /// lookups have happened).
    pub fn reuse_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.hits + self.translations) as f64 / lookups as f64
        }
    }

    /// Fraction of lookups satisfied by *another job's* entry (0.0 when no
    /// lookups have happened) — the benefit attributable purely to sharing
    /// the cache across jobs.
    pub fn cross_job_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            (self.cross_job_hits + self.cross_job_translations) as f64 / lookups as f64
        }
    }

    /// Tasks served per compiled schedule: how far each full compile was
    /// amortized by request fusion (0.0 before any task was fused). A
    /// batch of 10k tasks that needed one compile reports 10000.0.
    pub fn amortization(&self) -> f64 {
        if self.fused_tasks == 0 {
            0.0
        } else {
            self.fused_tasks as f64 / self.misses.max(1) as f64
        }
    }

    /// Element-wise sum, for folding per-rank or per-job stats.
    pub fn merge(&self, other: &PlanCacheStats) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits + other.hits,
            translations: self.translations + other.translations,
            misses: self.misses + other.misses,
            cross_job_hits: self.cross_job_hits + other.cross_job_hits,
            cross_job_translations: self.cross_job_translations + other.cross_job_translations,
            fused_tasks: self.fused_tasks + other.fused_tasks,
        }
    }
}

/// The key a compiled schedule is filed under: the *shape* of the request
/// set — every rank's extents normalized to the global minimum offset —
/// plus everything else the plan depends on. Two steps of a timestep sweep
/// share a key exactly when one is a constant shift of the other.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    shape_hash: u64,
    nprocs: usize,
    topology: Topology,
    hints: Hints,
}

struct CacheEntry {
    /// The requests the schedule was compiled from, for verification.
    requests: Arc<Vec<OffsetList>>,
    /// Their global minimum offset (0 for an all-empty set).
    lo: u64,
    /// The job that paid for the compile (0 for untagged lookups); a later
    /// lookup from a different job counts as a cross-job reuse.
    origin: u64,
    schedule: PlanSchedule,
}

/// A cache of compiled schedules for iterative sweeps.
///
/// Keys combine a request-shape fingerprint with the hints, rank count,
/// and topology (anything that changes the partition or chunking). On a
/// key match the requests are verified extent-by-extent against the cached
/// step, so a fingerprint collision degrades to a recompile, never to a
/// wrong schedule. The translation fast path additionally requires the
/// offset delta to be a multiple of [`Hints::translation_period`] — domain
/// partitioning rounds *absolute* offsets (alignment multiples, stripe
/// boundaries, round-robin periods), so only such shifts move the
/// partition rigidly.
#[derive(Default)]
pub struct PlanCache {
    entries: HashMap<CacheKey, CacheEntry>,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Returns the compiled schedule for `requests`, reusing or
    /// translating a cached one when the request shape matches a previous
    /// step. Deterministic across ranks: every rank makes the identical
    /// decision from the identical inputs.
    pub fn get_or_compile(
        &mut self,
        requests: impl Into<Arc<Vec<OffsetList>>>,
        topology: &Topology,
        nprocs: usize,
        hints: &Hints,
    ) -> PlanSchedule {
        let (schedule, _) = self.get_or_compile_traced(requests, topology, nprocs, hints);
        schedule
    }

    /// [`get_or_compile`](Self::get_or_compile), also reporting how the
    /// lookup was satisfied.
    pub fn get_or_compile_traced(
        &mut self,
        requests: impl Into<Arc<Vec<OffsetList>>>,
        topology: &Topology,
        nprocs: usize,
        hints: &Hints,
    ) -> (PlanSchedule, CacheOutcome) {
        let (schedule, outcome, _) = self.get_or_compile_tagged(requests, topology, nprocs, hints, 0);
        (schedule, outcome)
    }

    /// [`get_or_compile_traced`](Self::get_or_compile_traced) on behalf of
    /// job `job`: a reuse of an entry compiled by a *different* job
    /// additionally bumps the cross-job counters. The third return is true
    /// exactly for such cross-job reuses. Untagged lookups use job 0.
    pub fn get_or_compile_tagged(
        &mut self,
        requests: impl Into<Arc<Vec<OffsetList>>>,
        topology: &Topology,
        nprocs: usize,
        hints: &Hints,
        job: u64,
    ) -> (PlanSchedule, CacheOutcome, bool) {
        let requests: Arc<Vec<OffsetList>> = requests.into();
        let lo = global_lo(&requests);
        let key = CacheKey {
            shape_hash: shape_fingerprint(&requests, lo),
            nprocs,
            topology: topology.clone(),
            hints: hints.clone(),
        };
        if let Some(entry) = self.entries.get(&key) {
            if same_shape(&entry.requests, entry.lo, &requests, lo) {
                let cross = entry.origin != job;
                if lo == entry.lo {
                    // Same shape at the same offset: bitwise-equal requests.
                    self.stats.hits += 1;
                    if cross {
                        self.stats.cross_job_hits += 1;
                    }
                    let mut schedule = entry.schedule.clone();
                    schedule.plan.requests = requests;
                    return (schedule, CacheOutcome::Hit, cross);
                }
                // The partition is translation-equivariant only for shifts
                // that are multiples of its period: the alignment for even
                // domains, lcm(alignment, stripe) for stripe-aligned, the
                // full round-robin period for group-cyclic.
                let period = hints.translation_period();
                let delta_aligned =
                    (lo as i128 - entry.lo as i128).rem_euclid(period as i128) == 0;
                if delta_aligned {
                    self.stats.translations += 1;
                    if cross {
                        self.stats.cross_job_translations += 1;
                    }
                    let schedule = entry.schedule.translate(requests, entry.lo, lo);
                    return (schedule, CacheOutcome::Translated, cross);
                }
            }
        }
        self.stats.misses += 1;
        let plan = CollectivePlan::build(Arc::clone(&requests), topology, nprocs, hints);
        let schedule = PlanSchedule::compile(plan);
        self.entries.insert(
            key,
            CacheEntry {
                requests,
                lo,
                origin: job,
                schedule: schedule.clone(),
            },
        );
        (schedule, CacheOutcome::Miss, false)
    }

    /// Credits `tasks` fused tasks to this cache's amortization counter
    /// (see [`PlanCacheStats::fused_tasks`]).
    pub fn note_fused_tasks(&mut self, tasks: u64) {
        self.stats.fused_tasks += tasks;
    }
}

/// A process-wide, thread-safe [`PlanCache`] shared by concurrent jobs.
///
/// Jobs issuing the same hyperslab shapes (same rank count, topology, and
/// hints) hit one compiled [`PlanSchedule`] no matter which job compiled
/// it — the cache key deliberately excludes file identity, so two jobs
/// sweeping different files with the same striping hit exactly. Lookups
/// are tagged with a job id; reuses of another job's entry are counted
/// separately (see [`PlanCacheStats::cross_job_hits`]).
#[derive(Default)]
pub struct SharedPlanCache {
    inner: Mutex<PlanCache>,
}

impl SharedPlanCache {
    /// An empty shared cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tagged lookup on behalf of `job` (see
    /// [`PlanCache::get_or_compile_tagged`]). One lock acquisition per
    /// lookup; the returned schedule shares its compiled tables with the
    /// cache via `Arc`, so no copying happens under the lock on a hit.
    pub fn get_or_compile_tagged(
        &self,
        requests: impl Into<Arc<Vec<OffsetList>>>,
        topology: &Topology,
        nprocs: usize,
        hints: &Hints,
        job: u64,
    ) -> (PlanSchedule, CacheOutcome, bool) {
        self.inner
            .lock()
            .unwrap()
            .get_or_compile_tagged(requests, topology, nprocs, hints, job)
    }

    /// Lifetime counters over all jobs.
    pub fn stats(&self) -> PlanCacheStats {
        self.inner.lock().unwrap().stats()
    }

    /// Credits `tasks` fused tasks to the shared amortization counter.
    pub fn note_fused_tasks(&self, tasks: u64) {
        self.inner.lock().unwrap().note_fused_tasks(tasks);
    }
}

/// Where an engine run gets its compiled schedules from.
///
/// Threading this through the engines lets one code path serve all three
/// caching regimes: no cache (one-shot runs), a per-run local cache (an
/// iterative sweep), or the process-wide [`SharedPlanCache`] of the
/// multi-job service. The `Shared` variant carries per-holder `seen`
/// counters so each job can report its own cache experience even though
/// the cache itself is shared.
pub enum PlanSource<'a> {
    /// Compile fresh on every lookup; nothing is cached.
    Fresh,
    /// A caller-owned cache spanning one run or sweep.
    Local(&'a mut PlanCache),
    /// A process-wide cache shared across jobs.
    Shared {
        /// The shared cache.
        cache: &'a SharedPlanCache,
        /// The id lookups are tagged with.
        job: u64,
        /// What this holder observed: its own hits/translations/misses,
        /// with the cross-job subsets filled in.
        seen: PlanCacheStats,
    },
}

impl<'a> PlanSource<'a> {
    /// A source for a job tagged `job` drawing on `cache`, with zeroed
    /// per-holder counters.
    pub fn shared(cache: &'a SharedPlanCache, job: u64) -> Self {
        PlanSource::Shared {
            cache,
            job,
            seen: PlanCacheStats::default(),
        }
    }

    /// Adapts the engines' older optional-local-cache parameter.
    pub fn from_option(cache: Option<&'a mut PlanCache>) -> Self {
        match cache {
            Some(c) => PlanSource::Local(c),
            None => PlanSource::Fresh,
        }
    }

    /// Returns the compiled schedule for `requests` from this source.
    /// Deterministic across ranks for `Fresh` and `Local`; for `Shared`
    /// the *schedule* is still rank-deterministic (all ranks compute the
    /// same tables or share the same entry) though which rank's lookup
    /// populates the cache first is not.
    pub fn get(
        &mut self,
        requests: impl Into<Arc<Vec<OffsetList>>>,
        topology: &Topology,
        nprocs: usize,
        hints: &Hints,
    ) -> PlanSchedule {
        match self {
            PlanSource::Fresh => {
                let plan =
                    CollectivePlan::build(requests.into(), topology, nprocs, hints);
                PlanSchedule::compile(plan)
            }
            PlanSource::Local(cache) => cache.get_or_compile(requests, topology, nprocs, hints),
            PlanSource::Shared { cache, job, seen } => {
                let (schedule, outcome, cross) =
                    cache.get_or_compile_tagged(requests, topology, nprocs, hints, *job);
                match outcome {
                    CacheOutcome::Hit => {
                        seen.hits += 1;
                        if cross {
                            seen.cross_job_hits += 1;
                        }
                    }
                    CacheOutcome::Translated => {
                        seen.translations += 1;
                        if cross {
                            seen.cross_job_translations += 1;
                        }
                    }
                    CacheOutcome::Miss => seen.misses += 1,
                }
                schedule
            }
        }
    }

    /// Credits `tasks` fused tasks served through this source's schedules:
    /// `Local` bumps the cache's lifetime counter, `Shared` bumps both the
    /// holder's `seen` counters and the shared cache's totals (so folded
    /// per-holder stats still partition the shared totals), `Fresh` is a
    /// no-op (nothing was amortized).
    pub fn note_fused_tasks(&mut self, tasks: u64) {
        match self {
            PlanSource::Fresh => {}
            PlanSource::Local(cache) => cache.note_fused_tasks(tasks),
            PlanSource::Shared { cache, seen, .. } => {
                seen.fused_tasks += tasks;
                cache.note_fused_tasks(tasks);
            }
        }
    }

    /// The counters this holder observed: the local cache's lifetime stats
    /// for `Local`, the per-holder `seen` counters for `Shared`, zeros for
    /// `Fresh`.
    pub fn seen(&self) -> PlanCacheStats {
        match self {
            PlanSource::Fresh => PlanCacheStats::default(),
            PlanSource::Local(cache) => cache.stats(),
            PlanSource::Shared { seen, .. } => *seen,
        }
    }
}

/// The global minimum requested offset (0 when every rank is empty),
/// matching the plan's file-range origin.
fn global_lo(requests: &[OffsetList]) -> u64 {
    requests
        .iter()
        .filter_map(|r| r.min_offset())
        .min()
        .unwrap_or(0)
}

/// Hashes every rank's extents relative to `lo`, so two translated steps
/// fingerprint identically.
fn shape_fingerprint(requests: &[OffsetList], lo: u64) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    requests.len().hash(&mut h);
    for r in requests {
        0xD1Du64.hash(&mut h); // rank separator
        for e in r.extents() {
            (e.offset - lo).hash(&mut h);
            e.len.hash(&mut h);
        }
    }
    h.finish()
}

/// Exact shape comparison (fingerprints can collide): every rank must have
/// the same extents relative to the respective global minima.
fn same_shape(a: &[OffsetList], a_lo: u64, b: &[OffsetList], b_lo: u64) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.extents().len() == rb.extents().len()
                && ra.extents().iter().zip(rb.extents()).all(|(ea, eb)| {
                    ea.offset - a_lo == eb.offset - b_lo && ea.len == eb.len
                })
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    use crate::hints::{DomainPartition, Striping};

    fn hints(cb: u64) -> Hints {
        Hints {
            cb_buffer_size: cb,
            aggregators_per_node: 1,
            nonblocking: true,
            align_domains_to: None,
            ..Hints::default()
        }
    }

    fn partition_from(idx: usize) -> DomainPartition {
        [
            DomainPartition::Even,
            DomainPartition::StripeAligned,
            DomainPartition::GroupCyclic,
        ][idx]
    }

    fn group_cyclic_hints(cb: u64, unit: u64, factor: usize) -> Hints {
        Hints {
            domain_partition: DomainPartition::GroupCyclic,
            striping: Some(Striping { unit, factor }),
            ..hints(cb)
        }
    }

    /// Compares every answer of `sched` against the query-based oracle.
    fn assert_matches_oracle(plan: &CollectivePlan, sched: &PlanSchedule) {
        let naggs = plan.aggregators.len();
        for a in 0..naggs {
            assert_eq!(sched.n_iterations(a), plan.n_iterations(a), "n_iterations({a})");
            assert_eq!(
                sched.active_iterations(a),
                plan.active_iterations(a).as_slice(),
                "active_iterations({a})"
            );
            for it in 0..plan.n_iterations(a) {
                assert_eq!(sched.read_range(a, it), plan.read_range(a, it), "read_range({a},{it})");
                assert_eq!(
                    sched.read_ranges(a, it),
                    plan.read_ranges(a, it).as_slice(),
                    "read_ranges({a},{it})"
                );
                assert_eq!(
                    sched.destinations(a, it),
                    plan.destinations(a, it).as_slice(),
                    "destinations({a},{it})"
                );
                for rank in 0..plan.requests.len() {
                    assert_eq!(
                        sched.pieces_for(a, it, rank),
                        plan.pieces_for(a, it, rank).as_slice(),
                        "pieces_for({a},{it},{rank})"
                    );
                }
                let from_iter: Vec<(usize, &[Piece])> = sched.dests_with_pieces(a, it).collect();
                let dests = sched.destinations(a, it);
                assert_eq!(from_iter.len(), dests.len());
                for ((r, ps), &d) in from_iter.iter().zip(dests) {
                    assert_eq!(*r, d);
                    assert_eq!(*ps, sched.pieces_for(a, it, d));
                }
                // Every [lo, hi) window of the rank space must slice the
                // full destination list exactly.
                let nprocs = plan.requests.len();
                for lo in 0..=nprocs {
                    for hi in lo..=nprocs {
                        let windowed: Vec<(usize, &[Piece])> =
                            sched.dests_with_pieces_in(a, it, lo, hi).collect();
                        let expected: Vec<(usize, &[Piece])> = from_iter
                            .iter()
                            .filter(|(r, _)| (lo..hi).contains(r))
                            .cloned()
                            .collect();
                        assert_eq!(windowed, expected, "dests_with_pieces_in({a},{it},{lo},{hi})");
                    }
                }
            }
        }
        for rank in 0..plan.requests.len() {
            assert_eq!(
                sched.sources_for(rank),
                plan.sources_for(rank).as_slice(),
                "sources_for({rank})"
            );
            let with_pieces: Vec<(usize, usize, &[Piece])> =
                sched.sources_with_pieces(rank).collect();
            assert_eq!(with_pieces.len(), sched.sources_for(rank).len());
            for ((a, it, ps), &(oa, oit)) in
                with_pieces.iter().zip(sched.sources_for(rank))
            {
                assert_eq!((*a, *it), (oa, oit));
                assert_eq!(
                    *ps,
                    plan.pieces_for(*a, *it, rank).as_slice(),
                    "sources_with_pieces({rank}) at ({a},{it})"
                );
            }
        }
    }

    fn interleaved(nprocs: usize, pieces: u64, len: u64) -> Vec<OffsetList> {
        (0..nprocs as u64)
            .map(|r| {
                OffsetList::new(
                    (0..pieces)
                        .map(|k| Extent {
                            offset: r * len + k * len * nprocs as u64,
                            len,
                        })
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn compiled_matches_oracle_on_interleaved_pattern() {
        let topo = Topology::new(2, 2);
        let reqs = interleaved(4, 20, 10);
        let plan = CollectivePlan::build(reqs, &topo, 4, &hints(64));
        let sched = PlanSchedule::compile(plan.clone());
        assert_matches_oracle(&plan, &sched);
    }

    #[test]
    fn compiled_matches_oracle_with_empty_ranks_and_holes() {
        let topo = Topology::new(1, 4);
        let reqs = vec![
            OffsetList::empty(),
            OffsetList::new(vec![
                Extent { offset: 10, len: 5 },
                Extent { offset: 900, len: 30 },
            ]),
            OffsetList::empty(),
            OffsetList::new(vec![Extent { offset: 500, len: 1 }]),
        ];
        let plan = CollectivePlan::build(reqs, &topo, 4, &hints(100));
        let sched = PlanSchedule::compile(plan.clone());
        assert_matches_oracle(&plan, &sched);
    }

    #[test]
    fn compiled_matches_oracle_on_empty_request_set() {
        let topo = Topology::new(1, 2);
        let plan = CollectivePlan::build(
            vec![OffsetList::empty(), OffsetList::empty()],
            &topo,
            2,
            &hints(64),
        );
        let sched = PlanSchedule::compile(plan.clone());
        assert_matches_oracle(&plan, &sched);
        assert!(sched.sources_for(0).is_empty());
    }

    #[test]
    fn compiled_matches_oracle_group_cyclic() {
        let topo = Topology::new(2, 2);
        let reqs = interleaved(4, 20, 10);
        let plan = CollectivePlan::build(reqs, &topo, 4, &group_cyclic_hints(16, 16, 4));
        assert!(plan.domains.iter().any(|d| !d.is_contiguous()));
        let sched = PlanSchedule::compile(plan.clone());
        assert_matches_oracle(&plan, &sched);
    }

    #[test]
    fn compiled_matches_oracle_group_cyclic_sparse() {
        let topo = Topology::new(1, 4);
        let reqs = vec![
            OffsetList::empty(),
            OffsetList::new(vec![
                Extent { offset: 13, len: 5 },
                Extent { offset: 900, len: 130 },
            ]),
            OffsetList::empty(),
            OffsetList::new(vec![Extent { offset: 500, len: 1 }]),
        ];
        let plan = CollectivePlan::build(reqs, &topo, 4, &group_cyclic_hints(32, 64, 3));
        let sched = PlanSchedule::compile(plan.clone());
        assert_matches_oracle(&plan, &sched);
    }

    #[test]
    fn cache_hits_on_identical_requests() {
        let topo = Topology::new(1, 2);
        let reqs = interleaved(2, 8, 16);
        let mut cache = PlanCache::new();
        let (s1, o1) = cache.get_or_compile_traced(reqs.clone(), &topo, 2, &hints(64));
        let (s2, o2) = cache.get_or_compile_traced(reqs, &topo, 2, &hints(64));
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&s1.index, &s2.index), "hit must share index tables");
        assert!(Arc::ptr_eq(&s1.geom, &s2.geom), "hit must share geometry tables");
        assert_eq!(
            cache.stats(),
            PlanCacheStats {
                hits: 1,
                translations: 0,
                misses: 1,
                ..Default::default()
            }
        );
    }

    #[test]
    fn shared_cache_counts_cross_job_reuse() {
        let topo = Topology::new(1, 2);
        let reqs = interleaved(2, 8, 16);
        let shared = SharedPlanCache::new();
        // Job 1 compiles; its own re-lookup is a plain (same-job) hit.
        let (s1, o1, c1) = shared.get_or_compile_tagged(reqs.clone(), &topo, 2, &hints(64), 1);
        let (_, o2, c2) = shared.get_or_compile_tagged(reqs.clone(), &topo, 2, &hints(64), 1);
        assert_eq!((o1, c1), (CacheOutcome::Miss, false));
        assert_eq!((o2, c2), (CacheOutcome::Hit, false));
        // Job 2 issuing the same shape reuses job 1's entry: a cross-job hit.
        let (s3, o3, c3) = shared.get_or_compile_tagged(reqs.clone(), &topo, 2, &hints(64), 2);
        assert_eq!((o3, c3), (CacheOutcome::Hit, true));
        assert!(s1.shares_index_with(&s3), "cross-job hit must share one index");
        // Job 3 issuing a period-aligned shift of the shape translates it.
        let shifted: Vec<OffsetList> = reqs
            .iter()
            .map(|r| {
                OffsetList::new(
                    r.extents()
                        .iter()
                        .map(|e| Extent {
                            offset: e.offset + 4096,
                            len: e.len,
                        })
                        .collect(),
                )
            })
            .collect();
        let (s4, o4, c4) = shared.get_or_compile_tagged(shifted, &topo, 2, &hints(64), 3);
        assert_eq!((o4, c4), (CacheOutcome::Translated, true));
        assert!(s1.shares_index_with(&s4), "translation must share one index");
        let stats = shared.stats();
        assert_eq!(
            stats,
            PlanCacheStats {
                hits: 2,
                translations: 1,
                misses: 1,
                cross_job_hits: 1,
                cross_job_translations: 1,
                fused_tasks: 0,
            }
        );
        assert!((stats.reuse_rate() - 0.75).abs() < 1e-12);
        assert!((stats.cross_job_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn plan_source_tracks_per_holder_stats() {
        let topo = Topology::new(1, 2);
        let reqs = interleaved(2, 8, 16);
        let shared = SharedPlanCache::new();
        let mut job_a = PlanSource::shared(&shared, 7);
        let mut job_b = PlanSource::shared(&shared, 8);
        let sa = job_a.get(reqs.clone(), &topo, 2, &hints(64));
        let sb = job_b.get(reqs.clone(), &topo, 2, &hints(64));
        assert!(sa.shares_index_with(&sb));
        // Each holder saw its own half of the story.
        assert_eq!(job_a.seen().misses, 1);
        assert_eq!(job_a.seen().hits, 0);
        assert_eq!(job_b.seen().hits, 1);
        assert_eq!(job_b.seen().cross_job_hits, 1);
        assert_eq!(job_b.seen().misses, 0);
        // The cache's global stats are the union.
        assert_eq!(shared.stats(), job_a.seen().merge(&job_b.seen()));
        // Fresh sources cache nothing and see nothing.
        let mut fresh = PlanSource::Fresh;
        let sf = fresh.get(reqs, &topo, 2, &hints(64));
        assert!(!sf.shares_index_with(&sa), "fresh compile shares nothing");
        assert_eq!(fresh.seen(), PlanCacheStats::default());
    }

    #[test]
    fn fused_task_credits_partition_and_amortize() {
        let topo = Topology::new(1, 2);
        let reqs = interleaved(2, 8, 16);
        let shared = SharedPlanCache::new();
        let mut job_a = PlanSource::shared(&shared, 1);
        let mut job_b = PlanSource::shared(&shared, 2);
        let _ = job_a.get(reqs.clone(), &topo, 2, &hints(64));
        job_a.note_fused_tasks(600);
        let _ = job_b.get(reqs, &topo, 2, &hints(64));
        job_b.note_fused_tasks(400);
        // Per-holder credits partition the shared totals (Eq over stats).
        assert_eq!(shared.stats(), job_a.seen().merge(&job_b.seen()));
        assert_eq!(shared.stats().fused_tasks, 1000);
        // One compile served every task: amortization is tasks/compile.
        assert!((shared.stats().amortization() - 1000.0).abs() < 1e-12);
        // Fresh sources amortize nothing.
        assert_eq!(PlanCacheStats::default().amortization(), 0.0);
    }

    #[test]
    fn shared_cache_concurrent_lookups_converge() {
        // Many threads race the same shape into the shared cache: every
        // lookup after the first few misses must reuse, totals must add
        // up, and all returned schedules answer identically.
        use std::sync::Arc as StdArc;
        let topo = Topology::new(1, 2);
        let reqs = interleaved(2, 8, 16);
        let shared = StdArc::new(SharedPlanCache::new());
        let mut handles = Vec::new();
        for job in 0..8u64 {
            let shared = StdArc::clone(&shared);
            let reqs = reqs.clone();
            let topo = topo.clone();
            handles.push(std::thread::spawn(move || {
                let mut src = PlanSource::shared(&shared, job);
                let s = src.get(reqs, &topo, 2, &hints(64));
                let shape = (s.sources_for(0).len(), s.sources_for(1).len());
                (shape, src.seen())
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let shape0 = results[0].0;
        assert!(results.iter().all(|(s, _)| *s == shape0));
        let folded = results
            .iter()
            .fold(PlanCacheStats::default(), |acc, (_, s)| acc.merge(s));
        assert_eq!(folded, shared.stats());
        assert_eq!(folded.lookups(), 8);
        // Exactly one job's compile survives in the cache; with unlucky
        // interleaving several may *run*, but at least one lookup later
        // than the first must have reused (8 threads, 1 entry).
        assert!(folded.misses >= 1);
        assert!(folded.hits + folded.misses == 8);
        assert!(folded.cross_job_hits <= folded.hits);
    }

    #[test]
    fn cache_translates_shifted_requests() {
        let topo = Topology::new(2, 2);
        let base = interleaved(4, 12, 8);
        let delta = 4096u64;
        let shifted: Vec<OffsetList> = base
            .iter()
            .map(|r| {
                OffsetList::new(
                    r.extents()
                        .iter()
                        .map(|e| Extent {
                            offset: e.offset + delta,
                            len: e.len,
                        })
                        .collect(),
                )
            })
            .collect();
        let mut cache = PlanCache::new();
        let (compiled, o1) = cache.get_or_compile_traced(base, &topo, 4, &hints(64));
        let (translated, o2) = cache.get_or_compile_traced(shifted.clone(), &topo, 4, &hints(64));
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Translated);
        // Translation shares the shape-invariant index tables outright...
        assert!(
            Arc::ptr_eq(&compiled.index, &translated.index),
            "translation must share index tables"
        );
        // ...and the whole schedule must be bit-identical to a fresh compile.
        let fresh_plan = CollectivePlan::build(shifted, &topo, 4, &hints(64));
        let fresh = PlanSchedule::compile(fresh_plan.clone());
        assert_eq!(translated.plan.domains, fresh.plan.domains);
        assert_eq!(*translated.index, *fresh.index);
        assert_eq!(*translated.geom, *fresh.geom);
        assert_matches_oracle(&fresh_plan, &translated);
    }

    #[test]
    fn cache_refuses_unaligned_translation() {
        // With domain alignment, a shift that is not an alignment multiple
        // changes the partition — the cache must recompile.
        let topo = Topology::new(1, 2);
        let h = Hints {
            align_domains_to: Some(64),
            ..hints(64)
        };
        let base = interleaved(2, 6, 16);
        let shifted: Vec<OffsetList> = base
            .iter()
            .map(|r| {
                OffsetList::new(
                    r.extents()
                        .iter()
                        .map(|e| Extent {
                            offset: e.offset + 33, // not a multiple of 64
                            len: e.len,
                        })
                        .collect(),
                )
            })
            .collect();
        let mut cache = PlanCache::new();
        let (_, o1) = cache.get_or_compile_traced(base, &topo, 2, &h);
        let (sched, o2) = cache.get_or_compile_traced(shifted.clone(), &topo, 2, &h);
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Miss);
        let fresh_plan = CollectivePlan::build(shifted, &topo, 2, &h);
        assert_matches_oracle(&fresh_plan, &sched);
    }

    #[test]
    fn cache_distinguishes_hints() {
        let topo = Topology::new(1, 2);
        let reqs = interleaved(2, 4, 8);
        let mut cache = PlanCache::new();
        let _ = cache.get_or_compile(reqs.clone(), &topo, 2, &hints(64));
        let (_, o) = cache.get_or_compile_traced(reqs, &topo, 2, &hints(128));
        assert_eq!(o, CacheOutcome::Miss);
    }

    #[test]
    fn cache_distinguishes_partition_strategies() {
        // Same requests under a different domain strategy must miss: the
        // strategy (and striping) are part of the hints, hence the key.
        let topo = Topology::new(1, 2);
        let reqs = interleaved(2, 4, 8);
        let mut cache = PlanCache::new();
        let _ = cache.get_or_compile(reqs.clone(), &topo, 2, &hints(64));
        let (_, o) = cache.get_or_compile_traced(reqs.clone(), &topo, 2, &group_cyclic_hints(64, 16, 2));
        assert_eq!(o, CacheOutcome::Miss);
        let (_, o) = cache.get_or_compile_traced(reqs, &topo, 2, &group_cyclic_hints(64, 16, 2));
        assert_eq!(o, CacheOutcome::Hit);
    }

    #[test]
    fn cache_translates_group_cyclic_by_full_periods() {
        let topo = Topology::new(2, 2);
        let h = group_cyclic_hints(16, 16, 4); // period 64
        let base = interleaved(4, 12, 8);
        let shift_by = |reqs: &[OffsetList], delta: u64| -> Vec<OffsetList> {
            reqs.iter()
                .map(|r| {
                    OffsetList::new(
                        r.extents()
                            .iter()
                            .map(|e| Extent {
                                offset: e.offset + delta,
                                len: e.len,
                            })
                            .collect(),
                    )
                })
                .collect()
        };
        let mut cache = PlanCache::new();
        let (compiled, o1) = cache.get_or_compile_traced(base.clone(), &topo, 4, &h);
        assert_eq!(o1, CacheOutcome::Miss);
        // A shift of 3 periods translates...
        let shifted = shift_by(&base, 3 * 64);
        let (translated, o2) = cache.get_or_compile_traced(shifted.clone(), &topo, 4, &h);
        assert_eq!(o2, CacheOutcome::Translated);
        assert!(Arc::ptr_eq(&compiled.index, &translated.index));
        let fresh = PlanSchedule::compile(CollectivePlan::build(shifted, &topo, 4, &h));
        assert_eq!(translated.plan.domains, fresh.plan.domains);
        assert_eq!(*translated.geom, *fresh.geom);
        // ...a mid-period shift does not (the slot assignment changes).
        let (_, o3) = cache.get_or_compile_traced(shift_by(&base, 24), &topo, 4, &h);
        assert_eq!(o3, CacheOutcome::Miss);
    }

    fn shift_by(reqs: &[OffsetList], delta: u64) -> Vec<OffsetList> {
        reqs.iter()
            .map(|r| {
                OffsetList::new(
                    r.extents()
                        .iter()
                        .map(|e| Extent {
                            offset: e.offset + delta,
                            len: e.len,
                        })
                        .collect(),
                )
            })
            .collect()
    }

    /// Shifts `reqs` by `delta` against a warmed cache and checks both the
    /// expected outcome and that whatever came back — translated or
    /// recompiled — matches a fresh compile exactly.
    fn check_shift(h: &Hints, delta: u64, expect: CacheOutcome) {
        let topo = Topology::new(1, 4);
        let base = interleaved(4, 10, 8);
        let mut cache = PlanCache::new();
        let (_, o1) = cache.get_or_compile_traced(base.clone(), &topo, 4, h);
        assert_eq!(o1, CacheOutcome::Miss);
        let shifted = shift_by(&base, delta);
        let (sched, o2) = cache.get_or_compile_traced(shifted.clone(), &topo, 4, h);
        assert_eq!(o2, expect, "shift {delta} under {:?}", h.effective_partition());
        let fresh_plan = CollectivePlan::build(shifted, &topo, 4, h);
        let fresh = PlanSchedule::compile(fresh_plan.clone());
        assert_eq!(sched.plan.domains, fresh.plan.domains);
        assert_eq!(*sched.index, *fresh.index);
        assert_eq!(*sched.geom, *fresh.geom);
        assert_matches_oracle(&fresh_plan, &sched);
    }

    #[test]
    fn cache_misses_on_non_period_shifts_for_every_strategy() {
        // Regression: a shift that is not a multiple of the strategy's
        // translation period must MISS — translating it would silently
        // move domain boundaries off their stripe/alignment grid. One
        // case per partition strategy, plus the translating counterpart
        // to show the gate is exactly the period.
        let aligned_even = Hints {
            align_domains_to: Some(64),
            ..hints(48)
        };
        check_shift(&aligned_even, 33, CacheOutcome::Miss);
        check_shift(&aligned_even, 128, CacheOutcome::Translated);

        let stripe_aligned = Hints {
            domain_partition: DomainPartition::StripeAligned,
            striping: Some(Striping { unit: 10, factor: 4 }),
            align_domains_to: Some(4),
            ..hints(48)
        };
        // Period lcm(4, 10) = 20: neither the stripe alone nor the
        // alignment alone preserves the partition.
        check_shift(&stripe_aligned, 10, CacheOutcome::Miss);
        check_shift(&stripe_aligned, 4, CacheOutcome::Miss);
        check_shift(&stripe_aligned, 20, CacheOutcome::Translated);

        let cyclic = Hints {
            align_domains_to: Some(4),
            ..group_cyclic_hints(48, 8, 3) // genuine group-cyclic, period lcm(4, 24) = 24
        };
        check_shift(&cyclic, 12, CacheOutcome::Miss);
        check_shift(&cyclic, 24, CacheOutcome::Translated);
    }

    #[test]
    fn cache_gate_follows_planner_fallback_to_stripe_aligned() {
        // The ISSUE's stripe-10/alignment-4 case: GroupCyclic is declared,
        // but unit 10 is not a multiple of alignment 4, so the planner
        // falls back to stripe-aligned-even partitioning. The gate must
        // use the *effective* strategy's period — lcm(4, 10) = 20, not the
        // group-cyclic lcm(4, unit * factor) — and must still miss on
        // shifts that are no multiple of it.
        let h = Hints {
            align_domains_to: Some(4),
            ..group_cyclic_hints(48, 10, 4)
        };
        assert_eq!(h.translation_period(), 20);
        check_shift(&h, 10, CacheOutcome::Miss);
        check_shift(&h, 14, CacheOutcome::Miss);
        check_shift(&h, 20, CacheOutcome::Translated);
        check_shift(&h, 60, CacheOutcome::Translated);
    }

    prop_compose! {
        /// Random per-rank requests: some ranks empty, sparse holes.
        fn arb_requests(max_ranks: usize)(
            per_rank in proptest::collection::vec(
                proptest::collection::vec((0u64..200, 0u64..40), 0..10),
                1..max_ranks + 1,
            ),
        ) -> Vec<OffsetList> {
            per_rank
                .into_iter()
                .map(|pairs| {
                    let mut pos = 0u64;
                    let mut extents = Vec::new();
                    for (gap, len) in pairs {
                        pos += gap + 1;
                        extents.push(Extent { offset: pos, len });
                        pos += len;
                    }
                    OffsetList::new(extents)
                })
                .collect()
        }
    }

    proptest! {
        #[test]
        fn prop_schedule_equals_oracle(
            reqs in arb_requests(5),
            cb in 1u64..300,
            nodes in 1usize..3,
            align in proptest::option::of(1u64..96),
            partition_idx in 0usize..3,
            striping in proptest::option::of((1u64..48, 1usize..6)),
        ) {
            let nprocs = reqs.len();
            let cores = nprocs.div_ceil(nodes);
            let topo = Topology::new(nodes, cores.max(1));
            let h = Hints {
                align_domains_to: align,
                domain_partition: partition_from(partition_idx),
                striping: striping.map(|(unit, factor)| Striping { unit, factor }),
                ..hints(cb)
            };
            let plan = CollectivePlan::build(reqs, &topo, nprocs, &h);
            let sched = PlanSchedule::compile(plan.clone());
            assert_matches_oracle(&plan, &sched);
        }

        #[test]
        fn prop_translated_equals_fresh(
            reqs in arb_requests(4),
            cb in 1u64..200,
            delta_steps in 1u64..50,
            align in proptest::option::of(1u64..64),
            partition_idx in 0usize..3,
            striping in proptest::option::of((1u64..32, 1usize..5)),
        ) {
            let nprocs = reqs.len();
            let topo = Topology::new(1, nprocs);
            let h = Hints {
                align_domains_to: align,
                domain_partition: partition_from(partition_idx),
                striping: striping.map(|(unit, factor)| Striping { unit, factor }),
                ..hints(cb)
            };
            // Keep the shift partition-safe: a multiple of the strategy's
            // translation period.
            let delta = delta_steps * h.translation_period();
            let shifted: Vec<OffsetList> = reqs
                .iter()
                .map(|r| OffsetList::new(
                    r.extents()
                        .iter()
                        .map(|e| Extent { offset: e.offset + delta, len: e.len })
                        .collect(),
                ))
                .collect();
            let mut cache = PlanCache::new();
            let _ = cache.get_or_compile(reqs, &topo, nprocs, &h);
            let (cached, outcome) =
                cache.get_or_compile_traced(shifted.clone(), &topo, nprocs, &h);
            let fresh_plan = CollectivePlan::build(shifted, &topo, nprocs, &h);
            let fresh = PlanSchedule::compile(fresh_plan.clone());
            prop_assert_eq!(cached.plan.domains.clone(), fresh.plan.domains.clone());
            prop_assert_eq!(&*cached.index, &*fresh.index);
            prop_assert_eq!(&*cached.geom, &*fresh.geom);
            assert_matches_oracle(&fresh_plan, &cached);
            // All-empty request sets shift to themselves (delta has nothing
            // to move), so they come back as exact hits.
            let all_empty = fresh_plan.requests.iter().all(|r| r.is_empty());
            if all_empty || delta == 0 {
                prop_assert_eq!(outcome, CacheOutcome::Hit);
            } else {
                prop_assert_eq!(outcome, CacheOutcome::Translated);
            }
        }
    }
}
