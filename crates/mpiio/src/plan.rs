//! The deterministic collective plan.
//!
//! Once offset lists are exchanged, *every* rank can compute the entire
//! schedule of the two-phase protocol symmetrically: the file-domain
//! partition, each aggregator's iteration chunks, the covering extent each
//! chunk reads, and exactly which pieces of which chunk go to which rank.
//! ROMIO computes the same information on the fly; we reify it as a value
//! so that both the raw two-phase engine and the collective-computing
//! engine (which inserts the map between the phases) can share it — and so
//! it can be property-tested in isolation.
//!
//! File domains come in two shapes. The classic even / stripe-aligned
//! strategies give each aggregator one contiguous byte range. The
//! group-cyclic strategy (Liao/Choudhary, as in Lustre-aware ROMIO) gives
//! each aggregator a *periodic strided* domain: the stripes of a disjoint
//! subset of OSTs in every round-robin period, so each OST is served by
//! (ideally) one aggregator. [`FileDomain`] represents both: collective-
//! buffer chunks never straddle a block boundary, so a chunk is always a
//! contiguous byte range and everything downstream of `chunk()` is
//! strategy-agnostic.

use std::sync::Arc;

use cc_model::Topology;

use crate::extent::{OffsetList, Piece};
use crate::hints::{lcm, DomainPartition, Hints, Striping};

/// One aggregator's file domain: `nblocks` blocks of `block` bytes, the
/// i-th starting at `start + i × stride`. A contiguous domain is the
/// special case `nblocks == 1` (stride irrelevant); an empty domain has
/// `block == 0` or `nblocks == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileDomain {
    /// First byte of the first block.
    pub start: u64,
    /// Bytes per block.
    pub block: u64,
    /// Distance between consecutive block starts (`>= block`).
    pub stride: u64,
    /// Number of blocks.
    pub nblocks: u64,
}

impl FileDomain {
    /// A contiguous domain `[lo, hi)`.
    pub fn contiguous(lo: u64, hi: u64) -> Self {
        Self {
            start: lo,
            block: hi.saturating_sub(lo),
            stride: hi.saturating_sub(lo).max(1),
            nblocks: 1,
        }
    }

    /// An empty domain anchored at `at`.
    pub fn empty_at(at: u64) -> Self {
        Self {
            start: at,
            block: 0,
            stride: 1,
            nblocks: 0,
        }
    }

    /// True if the domain owns no bytes.
    pub fn is_empty(&self) -> bool {
        self.block == 0 || self.nblocks == 0
    }

    /// True if the domain is a single contiguous range.
    pub fn is_contiguous(&self) -> bool {
        self.nblocks <= 1
    }

    /// Total bytes owned.
    pub fn len(&self) -> u64 {
        self.block * self.nblocks
    }

    /// Bounding byte range `[lo, hi)` (equal bounds when empty).
    pub fn bounds(&self) -> (u64, u64) {
        if self.is_empty() {
            (self.start, self.start)
        } else {
            (self.start, self.start + (self.nblocks - 1) * self.stride + self.block)
        }
    }

    /// Collective-buffer chunks per block (chunks never straddle blocks).
    pub fn chunks_per_block(&self, cb: u64) -> usize {
        self.block.div_ceil(cb) as usize
    }

    /// Whole blocks per collective-buffer iteration: more than one only
    /// when an entire block fits in the buffer (the group-cyclic stripe-set
    /// merge — one iteration serves the aggregator's OST slice across
    /// several consecutive periods), so the active bytes of an iteration
    /// never exceed `cb`. Exactly one of `chunks_per_block` and
    /// `blocks_per_chunk` exceeds 1.
    pub fn blocks_per_chunk(&self, cb: u64) -> u64 {
        if self.block == 0 || self.block > cb {
            1
        } else {
            cb / self.block
        }
    }

    /// Total iteration count at collective buffer size `cb`.
    pub fn n_iterations(&self, cb: u64) -> usize {
        if self.is_empty() {
            0
        } else if self.block > cb {
            self.nblocks as usize * self.chunks_per_block(cb)
        } else {
            self.nblocks.div_ceil(self.blocks_per_chunk(cb)) as usize
        }
    }

    /// The bounding byte range of iteration `iter` (empty range at the
    /// domain's upper bound when `iter` is past the end). A multi-block
    /// iteration's range spans the stride gaps between its blocks; the
    /// bytes in those gaps belong to other aggregators — block-precise
    /// consumers use [`chunk_blocks`](Self::chunk_blocks).
    pub fn chunk(&self, iter: usize, cb: u64) -> (u64, u64) {
        if iter >= self.n_iterations(cb) {
            let (_, hi) = self.bounds();
            return (hi, hi);
        }
        let cpb = self.chunks_per_block(cb);
        if cpb > 1 {
            let b = (iter / cpb) as u64;
            let c = (iter % cpb) as u64;
            let bstart = self.start + b * self.stride;
            let s = bstart + c * cb;
            (s, (s + cb).min(bstart + self.block))
        } else {
            let bpc = self.blocks_per_chunk(cb);
            let b0 = iter as u64 * bpc;
            let b1 = (b0 + bpc).min(self.nblocks);
            (
                self.start + b0 * self.stride,
                self.start + (b1 - 1) * self.stride + self.block,
            )
        }
    }

    /// Calls `f` with each in-domain sub-range of iteration `iter` (one per
    /// covered block, ascending). For split iterations this is the single
    /// [`chunk`](Self::chunk) range; for merged multi-block iterations it
    /// enumerates the whole blocks, skipping the stride gaps.
    pub fn chunk_blocks(&self, iter: usize, cb: u64, mut f: impl FnMut(u64, u64)) {
        if iter >= self.n_iterations(cb) {
            return;
        }
        if self.chunks_per_block(cb) > 1 {
            let (s, e) = self.chunk(iter, cb);
            f(s, e);
        } else {
            let bpc = self.blocks_per_chunk(cb);
            let b0 = iter as u64 * bpc;
            let b1 = (b0 + bpc).min(self.nblocks);
            for b in b0..b1 {
                let bstart = self.start + b * self.stride;
                f(bstart, bstart + self.block);
            }
        }
    }

    /// Calls `f` with every iteration index whose chunk overlaps in-domain
    /// bytes of `[lo, hi)`, ascending. Bytes falling in the gaps of a
    /// strided domain belong to other aggregators and are skipped.
    pub fn iterations_overlapping(&self, lo: u64, hi: u64, cb: u64, mut f: impl FnMut(usize)) {
        if self.is_empty() {
            return;
        }
        let cpb = self.chunks_per_block(cb);
        let bpc = self.blocks_per_chunk(cb);
        let lo = lo.max(self.start);
        if hi <= lo {
            return;
        }
        let first_b = (lo - self.start) / self.stride;
        let last_b = ((hi - 1 - self.start) / self.stride).min(self.nblocks - 1);
        let mut last_emitted = usize::MAX;
        for b in first_b..=last_b {
            let bstart = self.start + b * self.stride;
            let bend = bstart + self.block;
            let s = lo.max(bstart);
            let e = hi.min(bend);
            if s >= e {
                continue;
            }
            if cpb > 1 {
                let first_c = ((s - bstart) / cb) as usize;
                let last_c = ((e - 1 - bstart) / cb) as usize;
                for c in first_c..=last_c {
                    f(b as usize * cpb + c);
                }
            } else {
                // Merged multi-block iterations: consecutive blocks share
                // an iteration index; emit it once.
                let it = (b / bpc) as usize;
                if it != last_emitted {
                    last_emitted = it;
                    f(it);
                }
            }
        }
    }

    /// Shifts the whole domain by `delta` bytes (for plan translation).
    pub fn shifted(&self, delta: i64) -> Self {
        Self {
            start: (self.start as i64 + delta) as u64,
            ..*self
        }
    }
}

/// The shared schedule of one collective operation.
#[derive(Debug, Clone)]
pub struct CollectivePlan {
    /// Aggregator rank ids, ascending.
    pub aggregators: Vec<usize>,
    /// File domain per aggregator (parallel to `aggregators`).
    pub domains: Vec<FileDomain>,
    /// Collective buffer size (bytes per iteration).
    pub cb: u64,
    /// Every rank's request, indexed by rank. Shared rather than owned so
    /// plans (and the engines layered on them) never deep-copy the offset
    /// lists — cloning a plan is O(1) in request bytes.
    pub requests: Arc<Vec<OffsetList>>,
}

impl CollectivePlan {
    /// Builds the plan from exchanged requests. Deterministic: all ranks
    /// compute the identical plan from the identical inputs. Accepts either
    /// an owned `Vec` or an existing `Arc` — callers holding the lists for
    /// later verification can share them instead of cloning.
    pub fn build(
        requests: impl Into<Arc<Vec<OffsetList>>>,
        topology: &Topology,
        nprocs: usize,
        hints: &Hints,
    ) -> Self {
        let requests = requests.into();
        hints.validate();
        assert_eq!(requests.len(), nprocs, "one request per rank");
        let aggregators = topology.aggregators(nprocs, hints.aggregators_per_node);
        let lo = requests.iter().filter_map(|r| r.min_offset()).min();
        let hi = requests.iter().filter_map(|r| r.max_end()).max();
        let (lo, hi) = match (lo, hi) {
            (Some(lo), Some(hi)) => (lo, hi),
            _ => (0, 0), // nobody asked for anything
        };
        let domains = Self::domains_for(lo, hi, aggregators.len(), hints);
        Self {
            aggregators,
            domains,
            cb: hints.cb_buffer_size,
            requests,
        }
    }

    /// Partitions `[lo, hi)` among `n` aggregators per the hinted strategy.
    /// Stripe-aware strategies degrade gracefully: without striping both
    /// fall back to even; group-cyclic falls back to stripe-aligned when
    /// the stripe size is not a multiple of the requested alignment (a
    /// group-cyclic chunk would split an alignment unit mid-element).
    fn domains_for(lo: u64, hi: u64, n: usize, hints: &Hints) -> Vec<FileDomain> {
        let align = hints.align_domains_to;
        let even = |a: Option<u64>| {
            Self::partition(lo, hi, n, a)
                .into_iter()
                .map(|(s, e)| FileDomain::contiguous(s, e))
                .collect()
        };
        match (hints.domain_partition, hints.striping) {
            (DomainPartition::Even, _) | (_, None) => even(align),
            (DomainPartition::StripeAligned, Some(s)) => {
                even(Some(lcm(align.unwrap_or(1), s.unit)))
            }
            (DomainPartition::GroupCyclic, Some(s)) => {
                if s.unit % align.unwrap_or(1) == 0 {
                    Self::partition_group_cyclic(lo, hi, n, s)
                } else {
                    even(Some(lcm(align.unwrap_or(1), s.unit)))
                }
            }
        }
    }

    /// Splits `[lo, hi)` into `n` nearly-even domains, optionally aligning
    /// interior boundaries up to a multiple of `align`.
    fn partition(lo: u64, hi: u64, n: usize, align: Option<u64>) -> Vec<(u64, u64)> {
        assert!(n > 0, "need at least one aggregator");
        let range = hi - lo;
        let base = range.div_ceil(n as u64).max(1);
        let mut domains = Vec::with_capacity(n);
        let mut cursor = lo;
        for i in 0..n {
            let mut end = if i + 1 == n {
                hi
            } else {
                (lo + base * (i as u64 + 1)).min(hi)
            };
            if i + 1 < n {
                if let Some(a) = align {
                    // Round interior boundaries up to the next alignment
                    // multiple (in absolute file offsets), like ROMIO's
                    // striping-aware partitioning.
                    end = end.div_ceil(a) * a;
                    end = end.min(hi);
                }
            }
            let start = cursor.min(end);
            domains.push((start, end.max(start)));
            cursor = end.max(start);
        }
        domains
    }

    /// Group-cyclic partition: the file is periods of `factor × unit`
    /// bytes anchored at absolute offset 0; aggregator `a` owns OST stripe
    /// slots `[a·k/n, (a+1)·k/n)` of every period overlapping `[lo, hi)`.
    /// Domains are not clipped to `[lo, hi)` — out-of-range chunks contain
    /// no requested bytes and are never active. With more aggregators than
    /// OSTs the excess get empty domains (ROMIO caps cb nodes at the
    /// stripe count for the same reason).
    fn partition_group_cyclic(lo: u64, hi: u64, n: usize, s: Striping) -> Vec<FileDomain> {
        assert!(n > 0, "need at least one aggregator");
        let unit = s.unit;
        let k = s.factor as u64;
        let period = unit * k;
        if hi <= lo {
            return vec![FileDomain::empty_at(lo); n];
        }
        let p0 = lo / period;
        let p1 = (hi - 1) / period;
        let nperiods = p1 - p0 + 1;
        let n_u = n as u64;
        (0..n_u)
            .map(|a| {
                let slot_lo = a * k / n_u;
                let slot_hi = (a + 1) * k / n_u;
                if slot_hi == slot_lo {
                    FileDomain::empty_at(lo)
                } else {
                    FileDomain {
                        start: p0 * period + slot_lo * unit,
                        block: (slot_hi - slot_lo) * unit,
                        stride: period,
                        nblocks: nperiods,
                    }
                }
            })
            .collect()
    }

    /// The index in `aggregators` of rank `r`, if it is an aggregator.
    pub fn aggregator_index(&self, rank: usize) -> Option<usize> {
        self.aggregators.binary_search(&rank).ok()
    }

    /// Number of collective-buffer iterations aggregator `agg_idx` performs.
    pub fn n_iterations(&self, agg_idx: usize) -> usize {
        self.domains[agg_idx].n_iterations(self.cb)
    }

    /// The maximum iteration count over all aggregators (the collective
    /// completes when the busiest aggregator finishes).
    pub fn max_iterations(&self) -> usize {
        (0..self.aggregators.len())
            .map(|a| self.n_iterations(a))
            .max()
            .unwrap_or(0)
    }

    /// The iterations of `agg_idx` whose chunks contain requested bytes,
    /// ascending. Computed by scanning request extents rather than chunks,
    /// so sparse requests over a huge file domain stay cheap (the paper's
    /// Fig. 1 workload covers ~300 GB of file range with ~0.3 GB of
    /// requests).
    pub fn active_iterations(&self, agg_idx: usize) -> Vec<usize> {
        let d = &self.domains[agg_idx];
        let (dlo, dhi) = d.bounds();
        if dlo >= dhi {
            return Vec::new();
        }
        let n = self.n_iterations(agg_idx);
        let mut active = vec![false; n];
        for req in self.requests.iter() {
            for p in req.locate(dlo, dhi) {
                d.iterations_overlapping(p.extent.offset, p.extent.end(), self.cb, |it| {
                    active[it] = true;
                });
            }
        }
        active
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
            .collect()
    }

    /// The bounding file range `[lo, hi)` of iteration `iter` of aggregator
    /// `agg_idx` (spans the stride gaps of a merged multi-block iteration).
    pub fn chunk(&self, agg_idx: usize, iter: usize) -> (u64, u64) {
        self.domains[agg_idx].chunk(iter, self.cb)
    }

    /// Calls `f` with the in-domain sub-ranges of iteration `iter` of
    /// `agg_idx`, one per covered block, ascending.
    pub fn chunk_blocks(&self, agg_idx: usize, iter: usize, f: impl FnMut(u64, u64)) {
        self.domains[agg_idx].chunk_blocks(iter, self.cb, f)
    }

    /// The covering extent the aggregator actually reads in this chunk:
    /// from the first to the last byte any rank requested inside its
    /// blocks. `None` if the chunk contains no requested bytes.
    pub fn read_range(&self, agg_idx: usize, iter: usize) -> Option<(u64, u64)> {
        let ranges = self.read_ranges(agg_idx, iter);
        let &(lo, _) = ranges.first()?;
        let &(last_lo, last_len) = ranges.last()?;
        Some((lo, last_lo + last_len))
    }

    /// The `(offset, len)` extents the aggregator reads in iteration
    /// `iter`: per covered block, the covering range of the bytes any rank
    /// requested inside it, ascending. These are the ranges handed to the
    /// vectorized file-system path in one call, so object-contiguous
    /// stripes across consecutive blocks coalesce into single service runs.
    pub fn read_ranges(&self, agg_idx: usize, iter: usize) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        self.domains[agg_idx].chunk_blocks(iter, self.cb, |blo, bhi| {
            let mut first = u64::MAX;
            let mut last = 0u64;
            for req in self.requests.iter() {
                for p in req.locate(blo, bhi) {
                    first = first.min(p.extent.offset);
                    last = last.max(p.extent.end());
                }
            }
            if first < last {
                out.push((first, last - first));
            }
        });
        out
    }

    /// The pieces of chunk `(agg_idx, iter)` destined for `rank`, in file
    /// order, with their positions in `rank`'s request buffer. Clipped to
    /// the chunk's blocks: bytes in the stride gaps of a merged iteration
    /// belong to other aggregators.
    pub fn pieces_for(&self, agg_idx: usize, iter: usize, rank: usize) -> Vec<Piece> {
        let mut out = Vec::new();
        self.domains[agg_idx].chunk_blocks(iter, self.cb, |blo, bhi| {
            out.extend(self.requests[rank].locate(blo, bhi));
        });
        out
    }

    /// All `(agg_idx, iter)` chunks that contain bytes for `rank`, in
    /// deterministic (aggregator, iteration) order. Receivers use this to
    /// know exactly which messages to expect.
    pub fn sources_for(&self, rank: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for agg_idx in 0..self.aggregators.len() {
            let d = &self.domains[agg_idx];
            let (dlo, dhi) = d.bounds();
            if dlo >= dhi {
                continue;
            }
            let n = self.n_iterations(agg_idx);
            let mut seen = vec![false; n];
            for p in self.requests[rank].locate(dlo, dhi) {
                d.iterations_overlapping(p.extent.offset, p.extent.end(), self.cb, |it| {
                    seen[it] = true;
                });
            }
            out.extend(
                seen.iter()
                    .enumerate()
                    .filter_map(|(i, &s)| s.then_some((agg_idx, i))),
            );
        }
        out
    }

    /// The ranks receiving bytes from chunk `(agg_idx, iter)`, ascending.
    pub fn destinations(&self, agg_idx: usize, iter: usize) -> Vec<usize> {
        (0..self.requests.len())
            .filter(|&r| {
                let mut any = false;
                self.domains[agg_idx].chunk_blocks(iter, self.cb, |blo, bhi| {
                    any = any || self.requests[r].bytes_in(blo, bhi) > 0;
                });
                any
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::Extent;
    use proptest::prelude::*;

    fn hints(cb: u64) -> Hints {
        Hints {
            cb_buffer_size: cb,
            aggregators_per_node: 1,
            nonblocking: true,
            align_domains_to: None,
            ..Hints::default()
        }
    }

    fn striped_hints(cb: u64, partition: DomainPartition, unit: u64, factor: usize) -> Hints {
        Hints {
            domain_partition: partition,
            striping: Some(Striping { unit, factor }),
            ..hints(cb)
        }
    }

    fn contiguous_per_rank(n: usize, each: u64) -> Vec<OffsetList> {
        (0..n as u64)
            .map(|r| OffsetList::contiguous(r * each, each))
            .collect()
    }

    #[test]
    fn domains_tile_the_range() {
        let topo = Topology::new(2, 2);
        let plan = CollectivePlan::build(contiguous_per_rank(4, 100), &topo, 4, &hints(64));
        assert_eq!(plan.aggregators, vec![0, 2]);
        assert_eq!(
            plan.domains,
            vec![FileDomain::contiguous(0, 200), FileDomain::contiguous(200, 400)]
        );
    }

    #[test]
    fn aligned_domains_round_up() {
        let topo = Topology::new(2, 1);
        let h = Hints {
            align_domains_to: Some(64),
            ..hints(64)
        };
        let plan = CollectivePlan::build(contiguous_per_rank(2, 100), &topo, 2, &h);
        // Range [0, 200), even split at 100, aligned up to 128.
        assert_eq!(
            plan.domains,
            vec![FileDomain::contiguous(0, 128), FileDomain::contiguous(128, 200)]
        );
    }

    #[test]
    fn stripe_aligned_uses_lcm_of_hint_and_stripe() {
        // Alignment hint 48 with stripe 64: neither divides the other, so
        // boundaries must land on lcm(48, 64) = 192 — never mid-stripe,
        // never mid-element.
        let topo = Topology::new(2, 1);
        let h = Hints {
            align_domains_to: Some(48),
            ..striped_hints(64, DomainPartition::StripeAligned, 64, 4)
        };
        let plan = CollectivePlan::build(contiguous_per_rank(2, 150), &topo, 2, &h);
        assert_eq!(
            plan.domains,
            vec![FileDomain::contiguous(0, 192), FileDomain::contiguous(192, 300)]
        );
    }

    #[test]
    fn stripe_aligned_without_striping_falls_back_to_even() {
        let topo = Topology::new(2, 1);
        let h = Hints {
            domain_partition: DomainPartition::StripeAligned,
            ..hints(64)
        };
        let plan = CollectivePlan::build(contiguous_per_rank(2, 100), &topo, 2, &h);
        assert_eq!(
            plan.domains,
            vec![FileDomain::contiguous(0, 100), FileDomain::contiguous(100, 200)]
        );
    }

    #[test]
    fn group_cyclic_assigns_disjoint_ost_slots() {
        // 4 OSTs × stripe 10 = period 40, two aggregators: agg 0 owns OST
        // slots {0,1}, agg 1 owns {2,3}, repeated every period.
        let topo = Topology::new(2, 2);
        let h = striped_hints(10, DomainPartition::GroupCyclic, 10, 4);
        let plan = CollectivePlan::build(contiguous_per_rank(4, 30), &topo, 4, &h);
        assert_eq!(
            plan.domains,
            vec![
                FileDomain { start: 0, block: 20, stride: 40, nblocks: 3 },
                FileDomain { start: 20, block: 20, stride: 40, nblocks: 3 },
            ]
        );
        // Chunks never straddle a block: iteration ranges are contiguous
        // sub-ranges of one block each.
        assert_eq!(plan.n_iterations(0), 6);
        assert_eq!(plan.chunk(0, 0), (0, 10));
        assert_eq!(plan.chunk(0, 1), (10, 20));
        assert_eq!(plan.chunk(0, 2), (40, 50));
        assert_eq!(plan.chunk(1, 0), (20, 30));
    }

    #[test]
    fn group_cyclic_each_aggregator_touches_few_osts() {
        // Acceptance: every aggregator touches ≤ ceil(OSTs/aggs)+1 OSTs.
        for (k, naggs) in [(64usize, 32usize), (64, 7), (16, 5), (8, 16), (156, 13)] {
            let s = Striping { unit: 64, factor: k };
            let domains =
                CollectivePlan::partition_group_cyclic(0, (k as u64) * 64 * 5 + 17, naggs, s);
            let cap = k.div_ceil(naggs) + 1;
            let mut owned = vec![false; k];
            for d in &domains {
                if d.is_empty() {
                    continue;
                }
                // Slots (→ OSTs) covered by this domain's blocks.
                let slot_lo = ((d.start % d.stride) / s.unit) as usize;
                let slot_hi = slot_lo + (d.block / s.unit) as usize;
                assert!(
                    slot_hi - slot_lo <= cap,
                    "aggregator spans {} OSTs, cap {cap}",
                    slot_hi - slot_lo
                );
                for (slot, owner) in owned.iter_mut().enumerate().take(slot_hi).skip(slot_lo) {
                    assert!(!*owner, "OST slot {slot} owned twice");
                    *owner = true;
                }
            }
            // Every OST slot is owned by exactly one aggregator (when
            // aggregators outnumber OSTs some get empty domains).
            assert!(owned.iter().all(|&o| o));
        }
    }

    #[test]
    fn group_cyclic_merges_whole_blocks_per_iteration() {
        // 4 OSTs × stripe 10 = period 40, two aggregators: agg 0's block is
        // 20 bytes. With cb = 40 a whole block fits twice over, so one
        // iteration covers two consecutive periods' blocks — the stripe-set
        // merge that lets the OSTs serve object-contiguous runs.
        let topo = Topology::new(2, 2);
        let h = striped_hints(40, DomainPartition::GroupCyclic, 10, 4);
        let plan = CollectivePlan::build(contiguous_per_rank(4, 40), &topo, 4, &h);
        let d = plan.domains[0];
        assert_eq!(d, FileDomain { start: 0, block: 20, stride: 40, nblocks: 4 });
        assert_eq!(d.blocks_per_chunk(40), 2);
        assert_eq!(plan.n_iterations(0), 2);
        // Bounding range spans the gap; the block list skips it.
        assert_eq!(plan.chunk(0, 0), (0, 60));
        let mut blocks = Vec::new();
        plan.chunk_blocks(0, 0, |lo, hi| blocks.push((lo, hi)));
        assert_eq!(blocks, vec![(0, 20), (40, 60)]);
        // Covering reads are per block: gap bytes belong to aggregator 1.
        assert_eq!(plan.read_ranges(0, 0), vec![(0, 20), (40, 20)]);
        assert_eq!(plan.read_range(0, 0), Some((0, 60)));
        // Pieces never leak into the gap, and every byte still lands with
        // exactly one aggregator.
        for rank in 0..4 {
            for (a, i) in plan.sources_for(rank) {
                assert!(plan.destinations(a, i).contains(&rank));
            }
        }
        assert_pieces_reassemble(&plan, 4);
    }

    #[test]
    fn group_cyclic_with_unaligned_stripe_falls_back() {
        // Stripe 10 is not a multiple of alignment 4: group-cyclic chunks
        // would split elements, so the plan falls back to stripe-aligned
        // (contiguous domains at lcm(4, 10) = 20).
        let topo = Topology::new(2, 1);
        let h = Hints {
            align_domains_to: Some(4),
            ..striped_hints(10, DomainPartition::GroupCyclic, 10, 4)
        };
        let plan = CollectivePlan::build(contiguous_per_rank(2, 35), &topo, 2, &h);
        assert!(plan.domains.iter().all(|d| d.is_contiguous()));
        assert_eq!(plan.domains[0].bounds(), (0, 40));
        assert_eq!(plan.domains[1].bounds(), (40, 70));
    }

    #[test]
    fn iteration_chunks_cover_domain() {
        let topo = Topology::new(1, 1);
        let plan = CollectivePlan::build(contiguous_per_rank(1, 250), &topo, 1, &hints(100));
        assert_eq!(plan.n_iterations(0), 3);
        assert_eq!(plan.chunk(0, 0), (0, 100));
        assert_eq!(plan.chunk(0, 1), (100, 200));
        assert_eq!(plan.chunk(0, 2), (200, 250));
    }

    #[test]
    fn read_range_skips_holes() {
        let topo = Topology::new(1, 2);
        let reqs = vec![
            OffsetList::new(vec![Extent { offset: 10, len: 5 }]),
            OffsetList::new(vec![Extent { offset: 80, len: 5 }]),
        ];
        let plan = CollectivePlan::build(reqs, &topo, 2, &hints(1000));
        // One chunk [10, 85): covering range is 10..85.
        assert_eq!(plan.read_range(0, 0), Some((10, 85)));
    }

    #[test]
    fn empty_request_set_yields_empty_plan() {
        let topo = Topology::new(1, 2);
        let plan = CollectivePlan::build(
            vec![OffsetList::empty(), OffsetList::empty()],
            &topo,
            2,
            &hints(100),
        );
        assert_eq!(plan.max_iterations(), 0);
        assert!(plan.sources_for(0).is_empty());
    }

    #[test]
    fn sources_match_destinations() {
        let topo = Topology::new(2, 2);
        // Interleaved requests: rank r takes bytes r*10 + k*40 for k=0..5.
        let reqs: Vec<OffsetList> = (0..4u64)
            .map(|r| {
                OffsetList::new(
                    (0..5)
                        .map(|k| Extent {
                            offset: r * 10 + k * 40,
                            len: 10,
                        })
                        .collect(),
                )
            })
            .collect();
        let plan = CollectivePlan::build(reqs, &topo, 4, &hints(32));
        for rank in 0..4 {
            for (a, i) in plan.sources_for(rank) {
                assert!(
                    plan.destinations(a, i).contains(&rank),
                    "sources/destinations disagree for rank {rank} at ({a},{i})"
                );
            }
        }
        for a in 0..plan.aggregators.len() {
            for i in 0..plan.n_iterations(a) {
                for rank in plan.destinations(a, i) {
                    assert!(plan.sources_for(rank).contains(&(a, i)));
                }
            }
        }
    }

    #[test]
    fn sources_match_destinations_group_cyclic() {
        let topo = Topology::new(2, 2);
        let reqs: Vec<OffsetList> = (0..4u64)
            .map(|r| {
                OffsetList::new(
                    (0..5)
                        .map(|k| Extent {
                            offset: 7 + r * 10 + k * 40,
                            len: 10,
                        })
                        .collect(),
                )
            })
            .collect();
        let h = striped_hints(16, DomainPartition::GroupCyclic, 16, 4);
        let plan = CollectivePlan::build(reqs, &topo, 4, &h);
        for rank in 0..4 {
            for (a, i) in plan.sources_for(rank) {
                assert!(plan.destinations(a, i).contains(&rank));
            }
        }
        for a in 0..plan.aggregators.len() {
            for i in plan.active_iterations(a) {
                for rank in plan.destinations(a, i) {
                    assert!(plan.sources_for(rank).contains(&(a, i)));
                }
            }
        }
    }

    fn partition_from(idx: usize) -> DomainPartition {
        [
            DomainPartition::Even,
            DomainPartition::StripeAligned,
            DomainPartition::GroupCyclic,
        ][idx]
    }

    fn strided_requests(seed_lens: &[(u64, u64)], nprocs: usize) -> Vec<OffsetList> {
        let mut reqs: Vec<Vec<Extent>> = vec![Vec::new(); nprocs];
        let mut pos = 0u64;
        for (i, (gap, len)) in seed_lens.iter().enumerate() {
            pos += gap;
            reqs[i % nprocs].push(Extent { offset: pos, len: *len });
            pos += len;
        }
        reqs.into_iter().map(OffsetList::new).collect()
    }

    fn assert_pieces_reassemble(plan: &CollectivePlan, nprocs: usize) {
        // Every rank's pieces, collected over all chunks, must tile its
        // request buffer exactly.
        for rank in 0..nprocs {
            let mut pieces = Vec::new();
            for a in 0..plan.aggregators.len() {
                for i in 0..plan.n_iterations(a) {
                    pieces.extend(plan.pieces_for(a, i, rank));
                }
            }
            pieces.sort_by_key(|p| p.buf_offset);
            let mut cursor = 0u64;
            for p in &pieces {
                assert_eq!(p.buf_offset, cursor, "rank {rank} pieces overlap or gap");
                cursor += p.extent.len;
            }
            assert_eq!(cursor, plan.requests[rank].total_bytes());
        }
    }

    proptest! {
        #[test]
        fn prop_pieces_reassemble_requests(
            seed_lens in proptest::collection::vec((1u64..30, 1u64..30), 1..12),
            nprocs in 1usize..6,
            cb in 1u64..200,
        ) {
            let requests = strided_requests(&seed_lens, nprocs);
            let topo = Topology::new(1, nprocs);
            // The plan shares the request lists; read them back through it.
            let plan = CollectivePlan::build(requests, &topo, nprocs, &hints(cb));
            assert_pieces_reassemble(&plan, nprocs);
        }

        #[test]
        fn prop_pieces_reassemble_under_any_strategy(
            seed_lens in proptest::collection::vec((1u64..30, 1u64..30), 1..12),
            nprocs in 1usize..6,
            cb in 1u64..64,
            unit in 1u64..32,
            factor in 1usize..6,
            partition_idx in 0usize..3,
        ) {
            let requests = strided_requests(&seed_lens, nprocs);
            let topo = Topology::new(1, nprocs);
            let h = Hints {
                domain_partition: partition_from(partition_idx),
                striping: Some(Striping { unit, factor }),
                ..hints(cb)
            };
            let plan = CollectivePlan::build(requests, &topo, nprocs, &h);
            assert_pieces_reassemble(&plan, nprocs);

            // Domains must not overlap: total located bytes across
            // aggregators equal each rank's request exactly (checked by
            // reassembly above), and active iterations are consistent
            // with sources.
            for rank in 0..nprocs {
                for (a, i) in plan.sources_for(rank) {
                    prop_assert!(plan.destinations(a, i).contains(&rank));
                }
            }
        }

        #[test]
        fn prop_domains_are_disjoint_and_ordered(
            n in 1usize..8,
            lo in 0u64..1000,
            span in 0u64..10_000,
            align in proptest::option::of(1u64..128),
        ) {
            let domains = CollectivePlan::partition(lo, lo + span, n, align);
            prop_assert_eq!(domains.len(), n);
            prop_assert_eq!(domains[0].0, lo);
            prop_assert_eq!(domains[n - 1].1, lo + span);
            for w in domains.windows(2) {
                prop_assert!(w[0].1 == w[1].0, "domains must be contiguous");
                prop_assert!(w[0].0 <= w[0].1);
            }
        }

        #[test]
        fn prop_group_cyclic_domains_partition_every_period(
            n in 1usize..8,
            unit in 1u64..32,
            factor in 1usize..8,
            lo in 0u64..500,
            span in 1u64..2000,
        ) {
            let s = Striping { unit, factor };
            let domains = CollectivePlan::partition_group_cyclic(lo, lo + span, n, s);
            prop_assert_eq!(domains.len(), n);
            // Every byte of every overlapped period is owned exactly once.
            let period = s.period();
            let p0 = lo / period;
            let p1 = (lo + span - 1) / period;
            for b in (p0 * period)..((p1 + 1) * period) {
                let owners = domains
                    .iter()
                    .filter(|d| {
                        if d.is_empty() || b < d.start {
                            return false;
                        }
                        let rel = b - d.start;
                        let blk = rel / d.stride;
                        blk < d.nblocks && rel % d.stride < d.block
                    })
                    .count();
                prop_assert_eq!(owners, 1, "byte {} owned {} times", b, owners);
            }
        }
    }
}
