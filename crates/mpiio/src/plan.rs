//! The deterministic collective plan.
//!
//! Once offset lists are exchanged, *every* rank can compute the entire
//! schedule of the two-phase protocol symmetrically: the file-domain
//! partition, each aggregator's iteration chunks, the covering extent each
//! chunk reads, and exactly which pieces of which chunk go to which rank.
//! ROMIO computes the same information on the fly; we reify it as a value
//! so that both the raw two-phase engine and the collective-computing
//! engine (which inserts the map between the phases) can share it — and so
//! it can be property-tested in isolation.

use std::sync::Arc;

use cc_model::Topology;

use crate::extent::{OffsetList, Piece};
use crate::hints::Hints;

/// The shared schedule of one collective operation.
#[derive(Debug, Clone)]
pub struct CollectivePlan {
    /// Aggregator rank ids, ascending.
    pub aggregators: Vec<usize>,
    /// File domain `[lo, hi)` per aggregator (parallel to `aggregators`).
    /// Empty domains are `(x, x)`.
    pub domains: Vec<(u64, u64)>,
    /// Collective buffer size (bytes per iteration).
    pub cb: u64,
    /// Every rank's request, indexed by rank. Shared rather than owned so
    /// plans (and the engines layered on them) never deep-copy the offset
    /// lists — cloning a plan is O(1) in request bytes.
    pub requests: Arc<Vec<OffsetList>>,
}

impl CollectivePlan {
    /// Builds the plan from exchanged requests. Deterministic: all ranks
    /// compute the identical plan from the identical inputs. Accepts either
    /// an owned `Vec` or an existing `Arc` — callers holding the lists for
    /// later verification can share them instead of cloning.
    pub fn build(
        requests: impl Into<Arc<Vec<OffsetList>>>,
        topology: &Topology,
        nprocs: usize,
        hints: &Hints,
    ) -> Self {
        let requests = requests.into();
        hints.validate();
        assert_eq!(requests.len(), nprocs, "one request per rank");
        let aggregators = topology.aggregators(nprocs, hints.aggregators_per_node);
        let lo = requests.iter().filter_map(|r| r.min_offset()).min();
        let hi = requests.iter().filter_map(|r| r.max_end()).max();
        let (lo, hi) = match (lo, hi) {
            (Some(lo), Some(hi)) => (lo, hi),
            _ => (0, 0), // nobody asked for anything
        };
        let domains = Self::partition(lo, hi, aggregators.len(), hints.align_domains_to);
        Self {
            aggregators,
            domains,
            cb: hints.cb_buffer_size,
            requests,
        }
    }

    /// Splits `[lo, hi)` into `n` nearly-even domains, optionally aligning
    /// interior boundaries up to a multiple of `align`.
    fn partition(lo: u64, hi: u64, n: usize, align: Option<u64>) -> Vec<(u64, u64)> {
        assert!(n > 0, "need at least one aggregator");
        let range = hi - lo;
        let base = range.div_ceil(n as u64).max(1);
        let mut domains = Vec::with_capacity(n);
        let mut cursor = lo;
        for i in 0..n {
            let mut end = if i + 1 == n {
                hi
            } else {
                (lo + base * (i as u64 + 1)).min(hi)
            };
            if i + 1 < n {
                if let Some(a) = align {
                    // Round interior boundaries up to the next alignment
                    // multiple (in absolute file offsets), like ROMIO's
                    // striping-aware partitioning.
                    end = end.div_ceil(a) * a;
                    end = end.min(hi);
                }
            }
            let start = cursor.min(end);
            domains.push((start, end.max(start)));
            cursor = end.max(start);
        }
        domains
    }

    /// The index in `aggregators` of rank `r`, if it is an aggregator.
    pub fn aggregator_index(&self, rank: usize) -> Option<usize> {
        self.aggregators.binary_search(&rank).ok()
    }

    /// Number of collective-buffer iterations aggregator `agg_idx` performs.
    pub fn n_iterations(&self, agg_idx: usize) -> usize {
        let (lo, hi) = self.domains[agg_idx];
        ((hi - lo).div_ceil(self.cb)) as usize
    }

    /// The maximum iteration count over all aggregators (the collective
    /// completes when the busiest aggregator finishes).
    pub fn max_iterations(&self) -> usize {
        (0..self.aggregators.len())
            .map(|a| self.n_iterations(a))
            .max()
            .unwrap_or(0)
    }

    /// The iterations of `agg_idx` whose chunks contain requested bytes,
    /// ascending. Computed by scanning request extents rather than chunks,
    /// so sparse requests over a huge file domain stay cheap (the paper's
    /// Fig. 1 workload covers ~300 GB of file range with ~0.3 GB of
    /// requests).
    pub fn active_iterations(&self, agg_idx: usize) -> Vec<usize> {
        let (dlo, dhi) = self.domains[agg_idx];
        if dlo >= dhi {
            return Vec::new();
        }
        let n = self.n_iterations(agg_idx);
        let mut active = vec![false; n];
        for req in self.requests.iter() {
            for p in req.locate(dlo, dhi) {
                let first = ((p.extent.offset - dlo) / self.cb) as usize;
                let last = ((p.extent.end() - 1 - dlo) / self.cb) as usize;
                for slot in active.iter_mut().take(last.min(n - 1) + 1).skip(first) {
                    *slot = true;
                }
            }
        }
        active
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
            .collect()
    }

    /// The file range `[lo, hi)` of iteration `iter` of aggregator `agg_idx`.
    pub fn chunk(&self, agg_idx: usize, iter: usize) -> (u64, u64) {
        let (lo, hi) = self.domains[agg_idx];
        let start = lo + self.cb * iter as u64;
        (start.min(hi), (start + self.cb).min(hi))
    }

    /// The covering extent the aggregator actually reads in this chunk:
    /// from the first to the last byte any rank requested inside it.
    /// `None` if the chunk contains no requested bytes.
    pub fn read_range(&self, agg_idx: usize, iter: usize) -> Option<(u64, u64)> {
        let (lo, hi) = self.chunk(agg_idx, iter);
        let mut first = u64::MAX;
        let mut last = 0u64;
        for req in self.requests.iter() {
            for p in req.locate(lo, hi) {
                first = first.min(p.extent.offset);
                last = last.max(p.extent.end());
            }
        }
        (first < last).then_some((first, last))
    }

    /// The pieces of chunk `(agg_idx, iter)` destined for `rank`, in file
    /// order, with their positions in `rank`'s request buffer.
    pub fn pieces_for(&self, agg_idx: usize, iter: usize, rank: usize) -> Vec<Piece> {
        let (lo, hi) = self.chunk(agg_idx, iter);
        self.requests[rank].locate(lo, hi)
    }

    /// All `(agg_idx, iter)` chunks that contain bytes for `rank`, in
    /// deterministic (aggregator, iteration) order. Receivers use this to
    /// know exactly which messages to expect.
    pub fn sources_for(&self, rank: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for agg_idx in 0..self.aggregators.len() {
            let (dlo, dhi) = self.domains[agg_idx];
            if dlo >= dhi {
                continue;
            }
            let n = self.n_iterations(agg_idx);
            let mut seen = vec![false; n];
            for p in self.requests[rank].locate(dlo, dhi) {
                let first = ((p.extent.offset - dlo) / self.cb) as usize;
                let last = (((p.extent.end() - 1 - dlo) / self.cb) as usize).min(n - 1);
                for slot in seen.iter_mut().take(last + 1).skip(first) {
                    *slot = true;
                }
            }
            out.extend(
                seen.iter()
                    .enumerate()
                    .filter_map(|(i, &s)| s.then_some((agg_idx, i))),
            );
        }
        out
    }

    /// The ranks receiving bytes from chunk `(agg_idx, iter)`, ascending.
    pub fn destinations(&self, agg_idx: usize, iter: usize) -> Vec<usize> {
        let (lo, hi) = self.chunk(agg_idx, iter);
        (0..self.requests.len())
            .filter(|&r| self.requests[r].bytes_in(lo, hi) > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::Extent;
    use proptest::prelude::*;

    fn hints(cb: u64) -> Hints {
        Hints {
            cb_buffer_size: cb,
            aggregators_per_node: 1,
            nonblocking: true,
            align_domains_to: None,
        }
    }

    fn contiguous_per_rank(n: usize, each: u64) -> Vec<OffsetList> {
        (0..n as u64)
            .map(|r| OffsetList::contiguous(r * each, each))
            .collect()
    }

    #[test]
    fn domains_tile_the_range() {
        let topo = Topology::new(2, 2);
        let plan = CollectivePlan::build(contiguous_per_rank(4, 100), &topo, 4, &hints(64));
        assert_eq!(plan.aggregators, vec![0, 2]);
        assert_eq!(plan.domains, vec![(0, 200), (200, 400)]);
    }

    #[test]
    fn aligned_domains_round_up() {
        let topo = Topology::new(2, 1);
        let h = Hints {
            align_domains_to: Some(64),
            ..hints(64)
        };
        let plan = CollectivePlan::build(contiguous_per_rank(2, 100), &topo, 2, &h);
        // Range [0, 200), even split at 100, aligned up to 128.
        assert_eq!(plan.domains, vec![(0, 128), (128, 200)]);
    }

    #[test]
    fn iteration_chunks_cover_domain() {
        let topo = Topology::new(1, 1);
        let plan = CollectivePlan::build(contiguous_per_rank(1, 250), &topo, 1, &hints(100));
        assert_eq!(plan.n_iterations(0), 3);
        assert_eq!(plan.chunk(0, 0), (0, 100));
        assert_eq!(plan.chunk(0, 1), (100, 200));
        assert_eq!(plan.chunk(0, 2), (200, 250));
    }

    #[test]
    fn read_range_skips_holes() {
        let topo = Topology::new(1, 2);
        let reqs = vec![
            OffsetList::new(vec![Extent { offset: 10, len: 5 }]),
            OffsetList::new(vec![Extent { offset: 80, len: 5 }]),
        ];
        let plan = CollectivePlan::build(reqs, &topo, 2, &hints(1000));
        // One chunk [10, 85): covering range is 10..85.
        assert_eq!(plan.read_range(0, 0), Some((10, 85)));
    }

    #[test]
    fn empty_request_set_yields_empty_plan() {
        let topo = Topology::new(1, 2);
        let plan = CollectivePlan::build(
            vec![OffsetList::empty(), OffsetList::empty()],
            &topo,
            2,
            &hints(100),
        );
        assert_eq!(plan.max_iterations(), 0);
        assert!(plan.sources_for(0).is_empty());
    }

    #[test]
    fn sources_match_destinations() {
        let topo = Topology::new(2, 2);
        // Interleaved requests: rank r takes bytes r*10 + k*40 for k=0..5.
        let reqs: Vec<OffsetList> = (0..4u64)
            .map(|r| {
                OffsetList::new(
                    (0..5)
                        .map(|k| Extent {
                            offset: r * 10 + k * 40,
                            len: 10,
                        })
                        .collect(),
                )
            })
            .collect();
        let plan = CollectivePlan::build(reqs, &topo, 4, &hints(32));
        for rank in 0..4 {
            for (a, i) in plan.sources_for(rank) {
                assert!(
                    plan.destinations(a, i).contains(&rank),
                    "sources/destinations disagree for rank {rank} at ({a},{i})"
                );
            }
        }
        for a in 0..plan.aggregators.len() {
            for i in 0..plan.n_iterations(a) {
                for rank in plan.destinations(a, i) {
                    assert!(plan.sources_for(rank).contains(&(a, i)));
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_pieces_reassemble_requests(
            seed_lens in proptest::collection::vec((1u64..30, 1u64..30), 1..12),
            nprocs in 1usize..6,
            cb in 1u64..200,
        ) {
            // Build nprocs requests by striding the generated extents.
            let mut reqs: Vec<Vec<Extent>> = vec![Vec::new(); nprocs];
            let mut pos = 0u64;
            for (i, (gap, len)) in seed_lens.iter().enumerate() {
                pos += gap;
                reqs[i % nprocs].push(Extent { offset: pos, len: *len });
                pos += len;
            }
            let requests: Vec<OffsetList> = reqs.into_iter().map(OffsetList::new).collect();
            let topo = Topology::new(1, nprocs);
            // The plan shares the request lists; read them back through it.
            let plan = CollectivePlan::build(requests, &topo, nprocs, &hints(cb));

            // Every rank's pieces, collected over all chunks, must tile its
            // request buffer exactly.
            #[allow(clippy::needless_range_loop)]
            for rank in 0..nprocs {
                let mut pieces = Vec::new();
                for a in 0..plan.aggregators.len() {
                    for i in 0..plan.n_iterations(a) {
                        pieces.extend(plan.pieces_for(a, i, rank));
                    }
                }
                pieces.sort_by_key(|p| p.buf_offset);
                let mut cursor = 0u64;
                for p in &pieces {
                    prop_assert_eq!(p.buf_offset, cursor);
                    cursor += p.extent.len;
                }
                prop_assert_eq!(cursor, plan.requests[rank].total_bytes());
            }
        }

        #[test]
        fn prop_domains_are_disjoint_and_ordered(
            n in 1usize..8,
            lo in 0u64..1000,
            span in 0u64..10_000,
            align in proptest::option::of(1u64..128),
        ) {
            let domains = CollectivePlan::partition(lo, lo + span, n, align);
            prop_assert_eq!(domains.len(), n);
            prop_assert_eq!(domains[0].0, lo);
            prop_assert_eq!(domains[n - 1].1, lo + span);
            for w in domains.windows(2) {
                prop_assert!(w[0].1 == w[1].0, "domains must be contiguous");
                prop_assert!(w[0].0 <= w[0].1);
            }
        }
    }
}
