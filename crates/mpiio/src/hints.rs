//! MPI-IO hints, mirroring the ROMIO `cb_*` info keys the paper tunes.

/// Tuning knobs of the two-phase engine.
///
/// `Eq`/`Hash` let hints participate in plan-cache keys
/// (`cc_mpiio::schedule::PlanCache`): any hint change must miss the cache,
/// since every field affects the compiled schedule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Hints {
    /// Collective buffer size per aggregator per iteration
    /// (`cb_buffer_size`; ROMIO default 4 MiB — the value profiled in the
    /// paper's Fig. 1 and swept in Fig. 12).
    pub cb_buffer_size: u64,
    /// Aggregators per node (`cb_config_list`-style placement).
    pub aggregators_per_node: usize,
    /// Overlap the shuffle of iteration `i` with the read of `i+1`
    /// (double-buffered, the paper's default "non-blocking" collective I/O).
    pub nonblocking: bool,
    /// Align file-domain boundaries to stripe boundaries (ROMIO's
    /// `striping_unit`-aware partitioning).
    pub align_domains_to: Option<u64>,
}

impl Default for Hints {
    fn default() -> Self {
        Self {
            cb_buffer_size: 4 << 20,
            aggregators_per_node: 1,
            nonblocking: true,
            align_domains_to: None,
        }
    }
}

impl Hints {
    /// Validates invariants (positive buffer, positive aggregator count).
    ///
    /// # Panics
    /// Panics on a zero buffer size or zero aggregators per node.
    pub fn validate(&self) {
        assert!(self.cb_buffer_size > 0, "cb_buffer_size must be positive");
        assert!(
            self.aggregators_per_node > 0,
            "need at least one aggregator per node"
        );
        if let Some(a) = self.align_domains_to {
            assert!(a > 0, "alignment must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_romio() {
        let h = Hints::default();
        assert_eq!(h.cb_buffer_size, 4 << 20);
        assert!(h.nonblocking);
        h.validate();
    }

    #[test]
    #[should_panic]
    fn zero_buffer_rejected() {
        Hints {
            cb_buffer_size: 0,
            ..Hints::default()
        }
        .validate();
    }
}
