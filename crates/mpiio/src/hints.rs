//! MPI-IO hints, mirroring the ROMIO `cb_*` info keys the paper tunes.

pub use cc_compress::{Compression, ErrorBound};

/// How the covered file range is partitioned into aggregator file domains.
///
/// Mirrors ROMIO's Lustre driver: plain even splitting, stripe-aligned
/// even splitting, and Liao/Choudhary group-cyclic partitioning where each
/// aggregator owns whole stripe-sets from a disjoint subset of OSTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DomainPartition {
    /// Even contiguous split of the covered range (generic ROMIO).
    #[default]
    Even,
    /// Even contiguous split with domain boundaries aligned to
    /// `lcm(align_domains_to, stripe_size)`, so no domain splits a stripe.
    /// Falls back to [`Even`](Self::Even) when striping is unknown.
    StripeAligned,
    /// Group-cyclic (Liao/Choudhary-style, Lustre-aware ROMIO): the file is
    /// viewed as periods of `stripe_count × stripe_size` bytes anchored at
    /// offset 0, and each aggregator owns the stripes of a disjoint subset
    /// of OSTs in every period — so each OST is served by (ideally) one
    /// aggregator. Requires known striping with the stripe size a multiple
    /// of the planner's alignment; otherwise falls back to
    /// [`StripeAligned`](Self::StripeAligned).
    GroupCyclic,
}

/// How many collective-buffer slots each aggregator cycles through — the
/// depth of the software pipeline across collective-buffer iterations.
///
/// The engines stage every iteration through a buffer slot; with `d`
/// slots, iteration `i`'s read may not begin until iteration `i - d` has
/// fully drained its slot (shuffled, mapped, or written it out). Depth 1
/// is therefore strictly sequential — read, drain, repeat, exactly the
/// blocking two-phase protocol — and depth 2 is the classic double
/// buffer: the read of `i + 1` overlaps the drain of `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PipelineDepth {
    /// One buffer: each iteration's read waits for the previous iteration
    /// to drain. Bit-identical in timing to blocking mode.
    Sequential,
    /// A bounded ring of `n >= 2` buffers (2 = double buffering).
    Depth(usize),
    /// Unlimited staging buffers: reads are gated only by the I/O lane.
    /// The historical engine behavior, and the default.
    #[default]
    Unbounded,
}

impl PipelineDepth {
    /// The classic double buffer.
    pub fn double() -> Self {
        Self::Depth(2)
    }

    /// The ring size this depth imposes, or `None` for unbounded staging.
    pub fn bound(&self) -> Option<usize> {
        match self {
            Self::Sequential => Some(1),
            Self::Depth(n) => Some(*n),
            Self::Unbounded => None,
        }
    }

    /// Validates the invariant that a bounded ring holds at least two
    /// buffers (one buffer *is* [`Sequential`](Self::Sequential)).
    ///
    /// # Panics
    /// Panics on `Depth(0)` or `Depth(1)`.
    pub fn validate(&self) {
        if let Self::Depth(n) = self {
            assert!(
                *n >= 2,
                "PipelineDepth::Depth needs at least two buffers (got {n}); \
                 use PipelineDepth::Sequential for a single buffer"
            );
        }
    }
}

/// File striping as carried by MPI-IO hints (ROMIO's `striping_unit` /
/// `striping_factor` info keys). Engines inject this from the open file's
/// layout before planning, so stripe-aware partition strategies — and the
/// plan-cache key — see the striping without new plumbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Striping {
    /// Stripe size in bytes (`striping_unit`).
    pub unit: u64,
    /// Number of OSTs the file round-robins over (`striping_factor`).
    pub factor: usize,
}

impl Striping {
    /// One full round-robin period: `factor × unit` bytes.
    pub fn period(&self) -> u64 {
        self.unit * self.factor as u64
    }
}

impl From<&cc_pfs::StripeLayout> for Striping {
    fn from(layout: &cc_pfs::StripeLayout) -> Self {
        Self {
            unit: layout.stripe_size,
            factor: layout.stripe_count(),
        }
    }
}

/// Tuning knobs of the two-phase engine.
///
/// `Eq`/`Hash` let hints participate in plan-cache keys
/// (`cc_mpiio::schedule::PlanCache`): any hint change must miss the cache,
/// since every field affects the compiled schedule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Hints {
    /// Collective buffer size per aggregator per iteration
    /// (`cb_buffer_size`; ROMIO default 4 MiB — the value profiled in the
    /// paper's Fig. 1 and swept in Fig. 12).
    pub cb_buffer_size: u64,
    /// Aggregators per node (`cb_config_list`-style placement).
    pub aggregators_per_node: usize,
    /// Overlap the shuffle of iteration `i` with the read of `i+1`
    /// (double-buffered, the paper's default "non-blocking" collective I/O).
    pub nonblocking: bool,
    /// Align file-domain boundaries to stripe boundaries (ROMIO's
    /// `striping_unit`-aware partitioning).
    pub align_domains_to: Option<u64>,
    /// File-domain partition strategy (see [`DomainPartition`]).
    pub domain_partition: DomainPartition,
    /// File striping, when known (`striping_unit`/`striping_factor`).
    /// Engines inject this from the open file's layout; stripe-aware
    /// strategies degrade gracefully when it is `None`.
    pub striping: Option<Striping>,
    /// Software-pipeline depth across collective-buffer iterations (see
    /// [`PipelineDepth`]). Only meaningful in non-blocking mode — blocking
    /// mode is sequential by definition, whatever this says.
    pub pipeline_depth: PipelineDepth,
    /// How shuffle payloads and coalesced frames that cross a node
    /// boundary are compressed (see [`Compression`]). Intra-node traffic
    /// always stays raw — the inter-node links and the PFS are where the
    /// bytes are expensive. `Off` (the default) keeps every engine on its
    /// original unframed path, bit- and clock-identical to the seed.
    pub compression: Compression,
}

impl Default for Hints {
    fn default() -> Self {
        Self {
            cb_buffer_size: 4 << 20,
            aggregators_per_node: 1,
            nonblocking: true,
            align_domains_to: None,
            domain_partition: DomainPartition::Even,
            striping: None,
            pipeline_depth: PipelineDepth::Unbounded,
            compression: Compression::Off,
        }
    }
}

impl Hints {
    /// Validates invariants (positive buffer, positive aggregator count).
    ///
    /// # Panics
    /// Panics on a zero buffer size or zero aggregators per node.
    pub fn validate(&self) {
        assert!(self.cb_buffer_size > 0, "cb_buffer_size must be positive");
        assert!(
            self.aggregators_per_node > 0,
            "need at least one aggregator per node"
        );
        if let Some(a) = self.align_domains_to {
            assert!(a > 0, "alignment must be positive");
        }
        if let Some(s) = self.striping {
            assert!(s.unit > 0, "striping unit must be positive");
            assert!(s.factor > 0, "striping factor must be positive");
        }
        self.pipeline_depth.validate();
        if let Compression::ErrorBounded(b) = self.compression {
            assert!(
                b.abs > 0.0 || b.rel > 0.0,
                "error-bounded compression needs a positive bound"
            );
        }
    }

    /// The partition strategy the planner *actually* applies after its
    /// fallback chain: stripe-aware strategies degrade to even splitting
    /// without striping, and group-cyclic degrades to stripe-aligned-even
    /// when the stripe size is not a multiple of the alignment (a
    /// group-cyclic chunk would split an alignment unit). Mirrors
    /// `CollectivePlan::domains_for` and must stay in lockstep with it —
    /// the plan cache's translation gate keys off the effective strategy.
    pub fn effective_partition(&self) -> DomainPartition {
        let align = self.align_domains_to.unwrap_or(1);
        match (self.domain_partition, self.striping) {
            (_, None) => DomainPartition::Even,
            (DomainPartition::GroupCyclic, Some(s)) if s.unit % align != 0 => {
                DomainPartition::StripeAligned
            }
            (p, Some(_)) => p,
        }
    }

    /// The period under which the partition is translation-equivariant:
    /// shifting every request by a multiple of this value shifts the
    /// compiled schedule rigidly, which is what lets the plan cache reuse
    /// a schedule for a translated request set. Even domains repeat at the
    /// alignment; stripe-aligned at `lcm(align, stripe)`; group-cyclic at
    /// `lcm(align, stripe_count × stripe)` (the full round-robin period).
    /// Computed from the [*effective*](Self::effective_partition) strategy:
    /// when group-cyclic falls back to stripe-aligned-even (stripe not a
    /// multiple of the alignment, e.g. stripe 10 with alignment 4), the
    /// partition repeats at `lcm(align, stripe)` already — gating on the
    /// full round-robin period would reject translatable shifts, and
    /// gating on a period the fallback does not honor would corrupt
    /// translated schedules.
    pub fn translation_period(&self) -> u64 {
        let align = self.align_domains_to.unwrap_or(1);
        match (self.effective_partition(), self.striping) {
            (DomainPartition::Even, _) | (_, None) => align,
            (DomainPartition::StripeAligned, Some(s)) => lcm(align, s.unit),
            (DomainPartition::GroupCyclic, Some(s)) => lcm(align, s.period()),
        }
    }
}

/// Greatest common divisor.
pub(crate) fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple (panics on zero operands via division).
pub(crate) fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_romio() {
        let h = Hints::default();
        assert_eq!(h.cb_buffer_size, 4 << 20);
        assert!(h.nonblocking);
        h.validate();
    }

    #[test]
    #[should_panic]
    fn zero_buffer_rejected() {
        Hints {
            cb_buffer_size: 0,
            ..Hints::default()
        }
        .validate();
    }

    #[test]
    fn translation_period_per_strategy() {
        let striped = Some(Striping { unit: 64, factor: 4 });
        let h = |p, s, a| Hints {
            domain_partition: p,
            striping: s,
            align_domains_to: a,
            ..Hints::default()
        };
        assert_eq!(h(DomainPartition::Even, striped, Some(48)).translation_period(), 48);
        assert_eq!(h(DomainPartition::StripeAligned, None, Some(48)).translation_period(), 48);
        // lcm(48, 64) = 192.
        assert_eq!(
            h(DomainPartition::StripeAligned, striped, Some(48)).translation_period(),
            192
        );
        // Stripe 64 is not a multiple of alignment 48, so group-cyclic
        // falls back to stripe-aligned-even: the effective period is
        // lcm(48, 64) = 192, not the full round-robin lcm(48, 256) = 768.
        assert_eq!(
            h(DomainPartition::GroupCyclic, striped, Some(48)).translation_period(),
            192
        );
        // Aligned stripe (64 % 16 == 0): genuine group-cyclic, full period.
        assert_eq!(
            h(DomainPartition::GroupCyclic, striped, Some(16)).translation_period(),
            256
        );
        assert_eq!(h(DomainPartition::GroupCyclic, striped, None).translation_period(), 256);
    }

    #[test]
    fn effective_partition_tracks_planner_fallbacks() {
        let striped = Some(Striping { unit: 10, factor: 4 });
        let h = |p, s, a| Hints {
            domain_partition: p,
            striping: s,
            align_domains_to: a,
            ..Hints::default()
        };
        // No striping: everything degrades to even.
        for p in [
            DomainPartition::Even,
            DomainPartition::StripeAligned,
            DomainPartition::GroupCyclic,
        ] {
            assert_eq!(h(p, None, Some(4)).effective_partition(), DomainPartition::Even);
        }
        // Stripe 10 with alignment 4 (the plan.rs fallback case): the
        // planner degrades group-cyclic to stripe-aligned-even, and the
        // translation period follows — lcm(4, 10) = 20, not lcm(4, 40).
        let fallback = h(DomainPartition::GroupCyclic, striped, Some(4));
        assert_eq!(fallback.effective_partition(), DomainPartition::StripeAligned);
        assert_eq!(fallback.translation_period(), 20);
        // Aligned stripe: group-cyclic stands, full round-robin period.
        let aligned = h(DomainPartition::GroupCyclic, striped, Some(2));
        assert_eq!(aligned.effective_partition(), DomainPartition::GroupCyclic);
        assert_eq!(aligned.translation_period(), 40);
    }

    #[test]
    fn pipeline_depth_bounds_and_validation() {
        assert_eq!(PipelineDepth::Sequential.bound(), Some(1));
        assert_eq!(PipelineDepth::double(), PipelineDepth::Depth(2));
        assert_eq!(PipelineDepth::Depth(3).bound(), Some(3));
        assert_eq!(PipelineDepth::Unbounded.bound(), None);
        assert_eq!(PipelineDepth::default(), PipelineDepth::Unbounded);
        Hints {
            pipeline_depth: PipelineDepth::Depth(2),
            ..Hints::default()
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn single_buffer_depth_rejected() {
        PipelineDepth::Depth(1).validate();
    }

    #[test]
    fn striping_from_layout() {
        let layout = cc_pfs::StripeLayout::round_robin(128, 3, 0, 8);
        let s = Striping::from(&layout);
        assert_eq!((s.unit, s.factor, s.period()), (128, 3, 384));
    }
}
