//! Byte extents and offset lists — the flattened form of an I/O request.
//!
//! An [`OffsetList`] is the MPI-IO-level description of a (generally
//! non-contiguous) request: sorted, non-overlapping `(offset, len)` pairs.
//! The list also defines the *request buffer order*: the bytes of extent
//! `i` land in the buffer immediately after the bytes of extent `i-1`.
//! [`OffsetList::locate`] intersects the list with a file range and reports
//! where each intersected piece sits in the buffer — the core primitive of
//! both the shuffle phase and the paper's "logical map" reconstruction.

/// One contiguous byte range of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Byte offset in the file.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Extent {
    /// End offset (exclusive).
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// A piece of a request as placed in the requester's buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Piece {
    /// The file byte range of the piece.
    pub extent: Extent,
    /// Where the piece starts within the requester's flattened buffer.
    pub buf_offset: u64,
}

/// A sorted, non-overlapping, coalesced list of extents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OffsetList {
    extents: Vec<Extent>,
    /// `prefix[i]` = bytes in extents `0..i`; `prefix[n]` = total bytes.
    prefix: Vec<u64>,
}

impl OffsetList {
    /// Builds a list from raw pairs: sorts, validates non-overlap, coalesces
    /// adjacent extents, and drops empty ones.
    ///
    /// # Panics
    /// Panics if two extents overlap — a request never asks for the same
    /// byte twice.
    pub fn new(mut raw: Vec<Extent>) -> Self {
        raw.retain(|e| e.len > 0);
        raw.sort_unstable_by_key(|e| e.offset);
        let mut extents: Vec<Extent> = Vec::with_capacity(raw.len());
        for e in raw {
            match extents.last_mut() {
                Some(last) if e.offset < last.end() => {
                    panic!(
                        "overlapping extents: [{}, {}) and [{}, {})",
                        last.offset,
                        last.end(),
                        e.offset,
                        e.end()
                    );
                }
                Some(last) if e.offset == last.end() => last.len += e.len,
                _ => extents.push(e),
            }
        }
        let mut prefix = Vec::with_capacity(extents.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for e in &extents {
            acc += e.len;
            prefix.push(acc);
        }
        Self { extents, prefix }
    }

    /// An empty request.
    pub fn empty() -> Self {
        Self::new(Vec::new())
    }

    /// A single contiguous request.
    pub fn contiguous(offset: u64, len: u64) -> Self {
        Self::new(vec![Extent { offset, len }])
    }

    /// The extents, sorted and coalesced.
    pub fn extents(&self) -> &[Extent] {
        &self.extents
    }

    /// Total requested bytes.
    pub fn total_bytes(&self) -> u64 {
        *self.prefix.last().expect("prefix always has a 0 entry")
    }

    /// Whether the request is empty.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// First requested byte, if any.
    pub fn min_offset(&self) -> Option<u64> {
        self.extents.first().map(|e| e.offset)
    }

    /// One-past the last requested byte, if any.
    pub fn max_end(&self) -> Option<u64> {
        self.extents.last().map(|e| e.end())
    }

    /// Intersects the request with the file range `[lo, hi)` and returns
    /// the pieces that fall inside, each with its position in the request
    /// buffer. Pieces come back in file (and therefore buffer) order.
    pub fn locate(&self, lo: u64, hi: u64) -> Vec<Piece> {
        if lo >= hi || self.extents.is_empty() {
            return Vec::new();
        }
        // First extent that ends after lo.
        let start = self.extents.partition_point(|e| e.end() <= lo);
        let mut pieces = Vec::new();
        for (i, e) in self.extents.iter().enumerate().skip(start) {
            if e.offset >= hi {
                break;
            }
            let clip_lo = e.offset.max(lo);
            let clip_hi = e.end().min(hi);
            if clip_lo < clip_hi {
                pieces.push(Piece {
                    extent: Extent {
                        offset: clip_lo,
                        len: clip_hi - clip_lo,
                    },
                    buf_offset: self.prefix[i] + (clip_lo - e.offset),
                });
            }
        }
        pieces
    }

    /// Bytes of the request inside `[lo, hi)`.
    pub fn bytes_in(&self, lo: u64, hi: u64) -> u64 {
        self.locate(lo, hi).iter().map(|p| p.extent.len).sum()
    }

    /// Serializes to a flat `u64` vector (for offset-list exchange).
    pub fn to_words(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.extents.len() * 2);
        for e in &self.extents {
            out.push(e.offset);
            out.push(e.len);
        }
        out
    }

    /// Deserializes from [`to_words`](Self::to_words) output.
    ///
    /// # Panics
    /// Panics on an odd-length word vector.
    pub fn from_words(words: &[u64]) -> Self {
        assert!(words.len().is_multiple_of(2), "offset list words must come in pairs");
        Self::new(
            words
                .chunks_exact(2)
                .map(|p| Extent {
                    offset: p[0],
                    len: p[1],
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ext(offset: u64, len: u64) -> Extent {
        Extent { offset, len }
    }

    #[test]
    fn new_sorts_and_coalesces() {
        let l = OffsetList::new(vec![ext(10, 5), ext(0, 4), ext(15, 5), ext(4, 2)]);
        assert_eq!(l.extents(), &[ext(0, 6), ext(10, 10)]);
        assert_eq!(l.total_bytes(), 16);
        assert_eq!(l.min_offset(), Some(0));
        assert_eq!(l.max_end(), Some(20));
    }

    #[test]
    fn empty_extents_are_dropped() {
        let l = OffsetList::new(vec![ext(5, 0), ext(10, 1)]);
        assert_eq!(l.extents(), &[ext(10, 1)]);
    }

    #[test]
    #[should_panic]
    fn overlap_panics() {
        let _ = OffsetList::new(vec![ext(0, 10), ext(5, 10)]);
    }

    #[test]
    fn locate_clips_and_positions() {
        // Buffer order: extent [0,6) at buf 0..6, extent [10,20) at buf 6..16.
        let l = OffsetList::new(vec![ext(0, 6), ext(10, 10)]);
        let pieces = l.locate(4, 13);
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].extent, ext(4, 2));
        assert_eq!(pieces[0].buf_offset, 4);
        assert_eq!(pieces[1].extent, ext(10, 3));
        assert_eq!(pieces[1].buf_offset, 6);
    }

    #[test]
    fn locate_outside_is_empty() {
        let l = OffsetList::new(vec![ext(10, 10)]);
        assert!(l.locate(0, 10).is_empty());
        assert!(l.locate(20, 30).is_empty());
        assert!(l.locate(15, 15).is_empty());
    }

    #[test]
    fn bytes_in_sums_pieces() {
        let l = OffsetList::new(vec![ext(0, 4), ext(8, 4)]);
        assert_eq!(l.bytes_in(2, 10), 4); // [2,4) + [8,10)
        assert_eq!(l.bytes_in(0, 100), 8);
    }

    #[test]
    fn word_roundtrip() {
        let l = OffsetList::new(vec![ext(3, 4), ext(100, 50)]);
        let back = OffsetList::from_words(&l.to_words());
        assert_eq!(back, l);
    }

    #[test]
    fn contiguous_constructor() {
        let l = OffsetList::contiguous(7, 9);
        assert_eq!(l.extents(), &[ext(7, 9)]);
    }

    prop_compose! {
        /// Generates guaranteed-disjoint extents from gap/len pairs.
        fn arb_list()(pairs in proptest::collection::vec((1u64..50, 1u64..50), 0..20))
            -> OffsetList {
            let mut pos = 0;
            let mut extents = Vec::new();
            for (gap, len) in pairs {
                pos += gap;
                extents.push(Extent { offset: pos, len });
                pos += len;
            }
            OffsetList::new(extents)
        }
    }

    proptest! {
        #[test]
        fn prop_locate_partitions_buffer(l in arb_list(), split in 0u64..2000) {
            // locate(0, split) and locate(split, inf) partition the buffer.
            let left = l.locate(0, split);
            let right = l.locate(split, u64::MAX);
            let total: u64 = left.iter().chain(&right).map(|p| p.extent.len).sum();
            prop_assert_eq!(total, l.total_bytes());
            // Buffer offsets tile [0, total) without gaps.
            let mut pieces: Vec<_> = left.into_iter().chain(right).collect();
            pieces.sort_by_key(|p| p.buf_offset);
            let mut expect = 0;
            for p in pieces {
                prop_assert_eq!(p.buf_offset, expect);
                expect += p.extent.len;
            }
        }

        #[test]
        fn prop_bytes_in_is_monotone(l in arb_list(), lo in 0u64..1000, w1 in 0u64..500, w2 in 0u64..500) {
            let (a, b) = (w1.min(w2), w1.max(w2));
            prop_assert!(l.bytes_in(lo, lo + a) <= l.bytes_in(lo, lo + b));
        }
    }
}
