//! Independent (non-collective) I/O, with optional data sieving.
//!
//! The baseline the paper profiles in Fig. 3: every process serves its own
//! (non-contiguous) request directly. Without sieving each extent is a
//! separate file-system request — one positioning cost each, and heavy OST
//! contention when many ranks interleave. With data sieving (Thakur et
//! al.), the process reads the covering range of its request in large
//! buffer-sized chunks and extracts the useful bytes, trading wasted
//! bandwidth for fewer requests.

use cc_model::SimTime;
use cc_mpi::Comm;
use cc_pfs::{FileHandle, Pfs};
use cc_profile::{Activity, Segment};

use crate::extent::OffsetList;

/// What one rank observed during an independent read.
#[derive(Debug, Clone, Default)]
pub struct IndependentReport {
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual completion time.
    pub end: SimTime,
    /// Bytes transferred from the file system (≥ requested when sieving).
    pub bytes_read: u64,
    /// File-system requests issued.
    pub requests_issued: u64,
    /// Activity segments for CPU profiling (Fig. 3): reads are `Wait`,
    /// sieve extraction is `Sys`.
    pub segments: Vec<Segment>,
}

impl IndependentReport {
    /// Elapsed virtual time.
    pub fn elapsed(&self) -> SimTime {
        self.end.saturating_since(self.start)
    }
}

/// Reads `my_request` directly, one file-system request per extent.
pub fn independent_read(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    my_request: &OffsetList,
) -> (Vec<u8>, IndependentReport) {
    let mut report = IndependentReport {
        start: comm.clock(),
        ..IndependentReport::default()
    };
    let mut buf = Vec::with_capacity(my_request.total_bytes() as usize);
    for e in my_request.extents() {
        let before = comm.clock();
        let (data, done) = pfs.read_at(file, e.offset, e.len, comm.clock());
        comm.advance_to(done);
        report
            .segments
            .push(Segment::new(before, comm.clock(), Activity::Wait));
        buf.extend_from_slice(&data);
        report.bytes_read += e.len;
        report.requests_issued += 1;
    }
    report.end = comm.clock();
    (buf, report)
}

/// Reads `my_request` with data sieving: covering ranges are read in
/// `sieve_buffer`-sized chunks and the requested pieces extracted.
pub fn sieving_read(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    my_request: &OffsetList,
    sieve_buffer: u64,
) -> (Vec<u8>, IndependentReport) {
    assert!(sieve_buffer > 0, "sieve buffer must be positive");
    let mut report = IndependentReport {
        start: comm.clock(),
        ..IndependentReport::default()
    };
    let mut buf = vec![0u8; my_request.total_bytes() as usize];
    let (Some(lo), Some(hi)) = (my_request.min_offset(), my_request.max_end()) else {
        report.end = comm.clock();
        return (buf, report);
    };
    let cpu = comm.model().cpu.clone();
    let mut pos = lo;
    while pos < hi {
        let chunk_hi = (pos + sieve_buffer).min(hi);
        let pieces = my_request.locate(pos, chunk_hi);
        if !pieces.is_empty() {
            // Read the covering range of the needed bytes in this chunk.
            let rlo = pieces.first().expect("nonempty").extent.offset;
            let rhi = pieces.last().expect("nonempty").extent.end();
            let before = comm.clock();
            let (data, done) = pfs.read_at(file, rlo, rhi - rlo, comm.clock());
            comm.advance_to(done);
            report
                .segments
                .push(Segment::new(before, comm.clock(), Activity::Wait));
            let mut copied = 0usize;
            for p in &pieces {
                let src = (p.extent.offset - rlo) as usize;
                let len = p.extent.len as usize;
                buf[p.buf_offset as usize..p.buf_offset as usize + len]
                    .copy_from_slice(&data[src..src + len]);
                copied += len;
            }
            let copy_start = comm.clock();
            comm.advance(cpu.memcpy_time(copied));
            report
                .segments
                .push(Segment::new(copy_start, comm.clock(), Activity::Sys));
            report.bytes_read += rhi - rlo;
            report.requests_issued += 1;
        }
        pos = chunk_hi;
    }
    report.end = comm.clock();
    (buf, report)
}

/// Writes `data` (the bytes of `my_request` in buffer order) directly,
/// one file-system request per extent.
///
/// # Panics
/// Panics if `data.len()` does not match the request size.
pub fn independent_write(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    my_request: &OffsetList,
    data: &[u8],
) -> IndependentReport {
    assert_eq!(
        data.len() as u64,
        my_request.total_bytes(),
        "write buffer does not match the request size"
    );
    let mut report = IndependentReport {
        start: comm.clock(),
        ..IndependentReport::default()
    };
    let mut cursor = 0usize;
    for e in my_request.extents() {
        let before = comm.clock();
        let done = pfs.write_at(
            file,
            e.offset,
            &data[cursor..cursor + e.len as usize],
            comm.clock(),
        );
        comm.advance_to(done);
        report
            .segments
            .push(Segment::new(before, comm.clock(), Activity::Wait));
        cursor += e.len as usize;
        report.bytes_read += e.len; // bytes moved to the fs
        report.requests_issued += 1;
    }
    report.end = comm.clock();
    report
}

/// Writes `data` with data sieving: each `sieve_buffer`-sized region is
/// read, the requested pieces are patched in, and the covering range is
/// written back — ROMIO's read-modify-write strategy, which trades extra
/// transfer for far fewer (and contiguous) requests.
///
/// Sieved writes are only safe when no other process writes the same
/// covering ranges concurrently; like ROMIO, we leave that to the caller.
pub fn sieving_write(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    my_request: &OffsetList,
    data: &[u8],
    sieve_buffer: u64,
) -> IndependentReport {
    assert!(sieve_buffer > 0, "sieve buffer must be positive");
    assert_eq!(
        data.len() as u64,
        my_request.total_bytes(),
        "write buffer does not match the request size"
    );
    let mut report = IndependentReport {
        start: comm.clock(),
        ..IndependentReport::default()
    };
    let (Some(lo), Some(hi)) = (my_request.min_offset(), my_request.max_end()) else {
        report.end = comm.clock();
        return report;
    };
    let cpu = comm.model().cpu.clone();
    let mut pos = lo;
    while pos < hi {
        let chunk_hi = (pos + sieve_buffer).min(hi);
        let pieces = my_request.locate(pos, chunk_hi);
        if !pieces.is_empty() {
            let rlo = pieces.first().expect("nonempty").extent.offset;
            let rhi = pieces.last().expect("nonempty").extent.end();
            let before = comm.clock();
            // Read-modify-write the covering range.
            let (mut region, done) = pfs.read_at(file, rlo, rhi - rlo, comm.clock());
            comm.advance_to(done);
            let mut patched = 0usize;
            for p in &pieces {
                let at = (p.extent.offset - rlo) as usize;
                let len = p.extent.len as usize;
                region[at..at + len]
                    .copy_from_slice(&data[p.buf_offset as usize..p.buf_offset as usize + len]);
                patched += len;
            }
            comm.advance(cpu.memcpy_time(patched));
            let done = pfs.write_at(file, rlo, &region, comm.clock());
            comm.advance_to(done);
            report
                .segments
                .push(Segment::new(before, comm.clock(), Activity::Wait));
            report.bytes_read += 2 * (rhi - rlo); // read + write traffic
            report.requests_issued += 2;
        }
        pos = chunk_hi;
    }
    report.end = comm.clock();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::Extent;
    use cc_model::ClusterModel;
    use cc_mpi::World;
    use cc_pfs::{MemBackend, StripeLayout};
    use std::sync::Arc;

    fn make_fs(size: usize) -> Arc<Pfs> {
        let fs = Pfs::new(
            2,
            cc_model::DiskModel {
                seek: 1e-2,
                ost_bandwidth: 1e6,
            },
        );
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        fs.create(
            "data",
            StripeLayout::round_robin(256, 2, 0, 2),
            Box::new(MemBackend::from_bytes(data)),
        );
        Arc::new(fs)
    }

    fn expected(request: &OffsetList) -> Vec<u8> {
        let mut out = Vec::new();
        for e in request.extents() {
            out.extend((e.offset..e.end()).map(|i| (i % 251) as u8));
        }
        out
    }

    fn scattered_request() -> OffsetList {
        OffsetList::new(
            (0..20)
                .map(|k| Extent {
                    offset: k * 100,
                    len: 10,
                })
                .collect(),
        )
    }

    #[test]
    fn independent_read_returns_request_bytes() {
        let fs = make_fs(4000);
        let world = World::new(1, ClusterModel::test_tiny(1));
        let fs = &fs;
        let results = world.run(move |comm| {
            let file = fs.open("data").expect("exists");
            independent_read(comm, fs, &file, &scattered_request())
        });
        assert_eq!(results[0].0, expected(&scattered_request()));
        assert_eq!(results[0].1.requests_issued, 20);
        assert_eq!(results[0].1.bytes_read, 200);
    }

    #[test]
    fn sieving_read_matches_independent_data() {
        let fs = make_fs(4000);
        let world = World::new(1, ClusterModel::test_tiny(1));
        let fs = &fs;
        let results = world.run(move |comm| {
            let file = fs.open("data").expect("exists");
            sieving_read(comm, fs, &file, &scattered_request(), 500)
        });
        assert_eq!(results[0].0, expected(&scattered_request()));
        // Sieving issues far fewer requests but reads more bytes.
        assert!(results[0].1.requests_issued <= 4);
        assert!(results[0].1.bytes_read > 200);
    }

    #[test]
    fn sieving_is_faster_for_scattered_access() {
        // Seek-dominated workload: sieving wins by amortizing positioning.
        let run = |sieve: bool| {
            let fs = make_fs(4000);
            let world = World::new(1, ClusterModel::test_tiny(1));
            let fs = &fs;
            world.run(move |comm| {
                let file = fs.open("data").expect("exists");
                let rep = if sieve {
                    sieving_read(comm, fs, &file, &scattered_request(), 2000).1
                } else {
                    independent_read(comm, fs, &file, &scattered_request()).1
                };
                rep.elapsed()
            })[0]
        };
        assert!(run(true) < run(false));
    }

    #[test]
    fn empty_request_is_trivial() {
        let fs = make_fs(100);
        let world = World::new(1, ClusterModel::test_tiny(1));
        let fs = &fs;
        let results = world.run(move |comm| {
            let file = fs.open("data").expect("exists");
            let (d1, r1) = independent_read(comm, fs, &file, &OffsetList::empty());
            let (d2, r2) = sieving_read(comm, fs, &file, &OffsetList::empty(), 64);
            (d1, r1, d2, r2)
        });
        assert!(results[0].0.is_empty());
        assert_eq!(results[0].1.requests_issued, 0);
        assert!(results[0].2.is_empty());
        assert_eq!(results[0].3.requests_issued, 0);
    }

    fn write_data_for(request: &OffsetList) -> Vec<u8> {
        let mut data = Vec::new();
        for e in request.extents() {
            data.extend((e.offset..e.end()).map(|i| (i % 13) as u8 + 100));
        }
        data
    }

    fn check_written(fs: &Pfs, request: &OffsetList, size: u64) {
        let file = fs.open("data").expect("exists");
        let (bytes, _) = fs.read_at(&file, 0, size, SimTime::ZERO);
        for (i, &b) in bytes.iter().enumerate() {
            let expected = if request.bytes_in(i as u64, i as u64 + 1) > 0 {
                (i as u64 % 13) as u8 + 100
            } else {
                (i % 251) as u8 // untouched base contents
            };
            assert_eq!(b, expected, "byte {i}");
        }
    }

    #[test]
    fn independent_write_patches_exact_extents() {
        let fs = make_fs(4000);
        let world = World::new(1, ClusterModel::test_tiny(1));
        let fs = &fs;
        let results = world.run(move |comm| {
            let file = fs.open("data").expect("exists");
            let req = scattered_request();
            independent_write(comm, fs, &file, &req, &write_data_for(&req))
        });
        assert_eq!(results[0].requests_issued, 20);
        check_written(fs, &scattered_request(), 4000);
    }

    #[test]
    fn sieving_write_rmw_preserves_holes() {
        let fs = make_fs(4000);
        let world = World::new(1, ClusterModel::test_tiny(1));
        let fs = &fs;
        let results = world.run(move |comm| {
            let file = fs.open("data").expect("exists");
            let req = scattered_request();
            sieving_write(comm, fs, &file, &req, &write_data_for(&req), 1000)
        });
        // Far fewer requests (read+write per sieve region).
        assert!(results[0].requests_issued <= 8);
        check_written(fs, &scattered_request(), 4000);
    }

    #[test]
    fn sieving_write_beats_independent_for_scattered_access() {
        let run = |sieve: bool| {
            let fs = make_fs(4000);
            let world = World::new(1, ClusterModel::test_tiny(1));
            let fs = &fs;
            world.run(move |comm| {
                let file = fs.open("data").expect("exists");
                let req = scattered_request();
                let data = write_data_for(&req);
                let rep = if sieve {
                    sieving_write(comm, fs, &file, &req, &data, 2000)
                } else {
                    independent_write(comm, fs, &file, &req, &data)
                };
                rep.elapsed()
            })[0]
        };
        assert!(run(true) < run(false));
    }

    #[test]
    fn empty_write_requests_are_trivial() {
        let fs = make_fs(100);
        let world = World::new(1, ClusterModel::test_tiny(1));
        let fs = &fs;
        let results = world.run(move |comm| {
            let file = fs.open("data").expect("exists");
            let r1 = independent_write(comm, fs, &file, &OffsetList::empty(), &[]);
            let r2 = sieving_write(comm, fs, &file, &OffsetList::empty(), &[], 64);
            (r1.requests_issued, r2.requests_issued)
        });
        assert_eq!(results[0], (0, 0));
    }

    #[test]
    fn contention_slows_concurrent_independent_readers() {
        // 4 ranks hammering the same 2 OSTs: completion must exceed the
        // single-rank time for the same per-rank request.
        let solo = {
            let fs = make_fs(8000);
            let world = World::new(1, ClusterModel::test_tiny(1));
            let fs = &fs;
            world.run(move |comm| {
                let file = fs.open("data").expect("exists");
                independent_read(comm, fs, &file, &scattered_request())
                    .1
                    .elapsed()
            })[0]
        };
        let contended = {
            let fs = make_fs(8000);
            let world = World::new(4, ClusterModel::test_tiny(4));
            let fs = &fs;
            world
                .run(move |comm| {
                    let file = fs.open("data").expect("exists");
                    let req = OffsetList::new(
                        (0..20)
                            .map(|k| Extent {
                                offset: comm.rank() as u64 * 10 + k * 100,
                                len: 10,
                            })
                            .collect(),
                    );
                    independent_read(comm, fs, &file, &req).1.elapsed()
                })
                .into_iter()
                .max()
                .expect("nonempty")
        };
        assert!(
            contended > solo,
            "contended {contended} should exceed solo {solo}"
        );
    }
}
