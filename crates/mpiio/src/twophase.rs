//! The two-phase collective read engine.
//!
//! Phase 1 (I/O): each aggregator reads the covering extent of each
//! collective-buffer chunk of its file domain — large, contiguous,
//! stripe-friendly reads. Phase 2 (shuffle): the aggregator scatters the
//! pieces of the chunk to the ranks that requested them. In non-blocking
//! mode (the default, and the configuration profiled in the paper's Fig. 1)
//! the shuffle of iteration `i` overlaps the read of iteration `i+1`, with
//! the [`crate::hints::PipelineDepth`] hint bounding how many staging
//! buffers the software pipeline may keep in flight (depth 2 is the
//! classic double buffer); in blocking mode the two phases strictly
//! alternate.
//!
//! Real bytes flow: the returned buffer contains exactly the requested
//! bytes in request order. Virtual time flows through two [`Lane`]s per
//! aggregator (the paper's "I/O thread" and "shuffle thread" of Fig. 7)
//! plus the OST queues inside [`Pfs`].

use cc_model::{BufferRing, Lane, SimTime};
use cc_mpi::comm::{TagValue, SEQ_MASK};
use cc_mpi::{Comm, NodeView};
use cc_pfs::{FileHandle, Pfs};
use cc_profile::{Activity, Segment};

use crate::exchange::exchange_requests;
use crate::extent::OffsetList;
use crate::hints::{Compression, Hints, Striping};
use crate::schedule::{PlanCache, PlanSchedule, PlanSource};

/// Encodes `payload` for the wire when `mode` compresses this lane
/// (inter-node only — intra-node and self traffic always travels raw).
/// Returns the bytes to post plus the logical length to record; the
/// original buffer is recycled when a frame replaces it. The frame is
/// self-describing, so the receiver needs only the same `(mode,
/// same_node)` pair — both deterministic on both ends — to know to decode.
pub(crate) fn encode_for_wire(
    comm: &mut Comm,
    mode: &Compression,
    same_node: bool,
    payload: Vec<u8>,
) -> (Vec<u8>, usize, bool) {
    let logical_len = payload.len();
    if !mode.is_on() || same_node {
        return (payload, logical_len, false);
    }
    let mut wire = comm.take_buf();
    cc_compress::encode_into(mode, &payload, &mut wire);
    comm.recycle_buf(payload);
    (wire, logical_len, true)
}

/// Decodes a received wire frame back into logical bytes (recycling the
/// wire buffer); returns the logical payload and its length.
pub(crate) fn decode_from_wire(comm: &mut Comm, wire: Vec<u8>) -> (Vec<u8>, usize) {
    let mut logical = comm.take_buf();
    let n = cc_compress::decode_into(&wire, &mut logical);
    comm.recycle_buf(wire);
    (logical, n)
}

/// Tag base for read-shuffle messages (outside the user and collective
/// spaces). Each collective stamps its sequence number into the low bits
/// via [`Comm::next_engine_tag`], so back-to-back collectives never
/// cross-match even when a fast rank races ahead into the next call.
pub(crate) const TAG_SHUFFLE: TagValue = 0x4000_0000;

/// Tag base for coalesced read-shuffle frames: when hierarchical paths are
/// active, an aggregator sends the pieces of one chunk bound for one
/// *remote node* as a single frame to that node's leader instead of one
/// message per destination rank.
pub(crate) const TAG_SHUFFLE_FRAME: TagValue = 0x1000_0000;

/// Tag base for the intra-node relay leg: the node leader splits a
/// received frame into its members' sections and forwards each as one
/// cheap intra-node message (its own section rides the self-send short
/// circuit).
pub(crate) const TAG_SHUFFLE_RELAY: TagValue = 0x2000_0000;

/// Durations of one aggregator iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationTiming {
    /// Time the read phase of this iteration took (including OST queueing).
    pub read: SimTime,
    /// The part of `read` spent queueing: actual read duration minus the
    /// fault-free, contention-free service time of the same extent. Under
    /// an injected OST fault this is where the degradation shows up.
    pub queue: SimTime,
    /// Time the shuffle phase of this iteration took (packing + posting).
    pub shuffle: SimTime,
}

/// What one rank observed during a collective read.
#[derive(Debug, Clone, Default)]
pub struct TwoPhaseReport {
    /// Per-iteration timings — non-empty only on aggregators.
    pub iterations: Vec<IterationTiming>,
    /// Bytes this rank read from the file system (aggregator role).
    pub bytes_read: u64,
    /// Bytes this rank sent during the shuffle (aggregator role).
    pub bytes_shuffled: u64,
    /// Virtual time when this rank entered the collective.
    pub start: SimTime,
    /// Virtual time when this rank's buffer was complete.
    pub end: SimTime,
    /// Activity segments for CPU profiling (Fig. 2): reads are `Wait`,
    /// shuffle packing/posting is `Sys`.
    pub segments: Vec<Segment>,
}

impl TwoPhaseReport {
    /// Total time this rank spent in the collective.
    pub fn elapsed(&self) -> SimTime {
        self.end.saturating_since(self.start)
    }

    /// Sum of per-iteration read durations (aggregators only).
    pub fn read_total(&self) -> SimTime {
        self.iterations.iter().map(|i| i.read).sum()
    }

    /// Sum of per-iteration shuffle durations (aggregators only).
    pub fn shuffle_total(&self) -> SimTime {
        self.iterations.iter().map(|i| i.shuffle).sum()
    }

    /// Sum of per-iteration queueing time (aggregators only) — the share
    /// of the read phase attributable to OST contention or degradation.
    pub fn queue_total(&self) -> SimTime {
        self.iterations.iter().map(|i| i.queue).sum()
    }

    /// Ranks that entered the collective more than `factor` times later
    /// than the median entry time, given every rank's report in rank
    /// order. Late entry — not long residence — is the straggler signal:
    /// a slow rank arrives at a later virtual clock, while its *peers*
    /// are the ones whose residence inflates waiting for its pieces.
    /// Returns an empty list for an empty slice.
    pub fn stragglers(reports: &[TwoPhaseReport], factor: f64) -> Vec<usize> {
        if reports.is_empty() {
            return Vec::new();
        }
        let mut starts: Vec<SimTime> = reports.iter().map(|r| r.start).collect();
        starts.sort();
        let median = starts[starts.len() / 2];
        reports
            .iter()
            .enumerate()
            .filter(|(_, r)| r.start > median.scale(factor))
            .map(|(rank, _)| rank)
            .collect()
    }
}

/// Collectively reads every rank's `my_request` from `file`. Returns the
/// requested bytes (in request-buffer order) and this rank's report.
/// Must be called by all ranks of the communicator.
pub fn collective_read(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    my_request: &OffsetList,
    hints: &Hints,
) -> (Vec<u8>, TwoPhaseReport) {
    collective_read_cached(comm, pfs, file, my_request, hints, None)
}

/// [`collective_read`] with an optional plan cache: when `cache` is given,
/// the compiled schedule of a previous step with the same (or
/// offset-shifted) request shape is reused instead of recompiled. Every
/// rank must pass a cache with identical contents (or none) — the schedule
/// decision must stay symmetric.
pub fn collective_read_cached(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    my_request: &OffsetList,
    hints: &Hints,
    cache: Option<&mut PlanCache>,
) -> (Vec<u8>, TwoPhaseReport) {
    collective_read_planned(comm, pfs, file, my_request, hints, &mut PlanSource::from_option(cache))
}

/// [`collective_read`] drawing its compiled schedule from an explicit
/// [`PlanSource`] — fresh compile, per-run cache, or the multi-job
/// service's process-wide shared cache. Every rank must pass an equivalent
/// source (the schedule decision must stay symmetric).
pub fn collective_read_planned(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    my_request: &OffsetList,
    hints: &Hints,
    plans: &mut PlanSource<'_>,
) -> (Vec<u8>, TwoPhaseReport) {
    // Entry time is captured before the request exchange: the exchange is
    // itself a collective that synchronizes clocks, so capturing it later
    // would erase the late arrival of a straggler rank.
    let mut report = TwoPhaseReport {
        start: comm.clock(),
        ..TwoPhaseReport::default()
    };
    // Striping travels as a hint (ROMIO's striping_unit/striping_factor):
    // every rank injects it from the shared file handle, so the value is
    // symmetric and stripe-aware partition strategies — and the plan-cache
    // key — see it without separate plumbing.
    let mut hints = hints.clone();
    hints.striping = Some(Striping::from(file.layout()));
    let hints = &hints;
    let requests = exchange_requests(comm, my_request);
    let topology = comm.model().topology.clone();
    let schedule = plans.get(requests, &topology, comm.nprocs(), hints);
    // Every rank passed through the request exchange above, so the engine
    // tag counter is identical on all ranks: this collective's shuffle
    // traffic gets a unique tag, distinct from the previous and next calls.
    let tag = comm.next_engine_tag(TAG_SHUFFLE);
    let hier = comm.hier_view();
    let mut buf = vec![0u8; my_request.total_bytes() as usize];

    // --- Aggregator role: read chunks and scatter pieces. --------------
    let mut agg_done = comm.clock();
    if let Some(agg_idx) = schedule.aggregator_index(comm.rank()) {
        agg_done = run_aggregator(
            comm,
            pfs,
            file,
            &schedule,
            agg_idx,
            tag,
            hints,
            hier.as_ref(),
            &mut report,
            &mut buf,
        );
    }

    // --- Leader role: relay coalesced frames to the node's members. ----
    if let Some(view) = hier.as_ref().filter(|v| v.is_leader(comm.rank())) {
        agg_done = agg_done.max(relay_read_frames(comm, &schedule, view, tag, hints, &mut report));
    }

    // --- Receiver role: collect pieces from every sending chunk. -------
    let mut done = agg_done;
    let cpu = comm.model().cpu.clone();
    let relay_tag = TAG_SHUFFLE_RELAY | (tag & SEQ_MASK);
    for (a, iter, pieces) in schedule.sources_with_pieces(comm.rank()) {
        let agg_rank = schedule.aggregator_rank(a);
        if agg_rank == comm.rank() {
            continue; // own pieces were placed locally by the aggregator loop
        }
        // Remote-node chunks arrive re-shuffled through the node leader;
        // same-node chunks come straight from the aggregator.
        let (src, src_tag) = match hier.as_ref() {
            Some(view) if view.node_of(agg_rank) != view.node => (view.leader, relay_tag),
            _ => (agg_rank, tag),
        };
        let (payload, info) = comm.recv_bytes_no_clock(src, src_tag);
        // Direct sends from a remote-node aggregator arrive as compressed
        // frames when the hints say so (relays and same-node sends are
        // always raw) — the same deterministic test the sender applied.
        let compressed =
            hints.compression.is_on() && !comm.model().topology.same_node(src, comm.rank());
        let (payload, decode) = if compressed {
            let (logical, n) = decode_from_wire(comm, payload);
            (logical, cpu.decompress_time(n))
        } else {
            (payload, SimTime::ZERO)
        };
        let mut cursor = 0usize;
        for p in pieces {
            let len = p.extent.len as usize;
            buf[p.buf_offset as usize..p.buf_offset as usize + len]
                .copy_from_slice(&payload[cursor..cursor + len]);
            cursor += len;
        }
        assert_eq!(
            cursor,
            payload.len(),
            "rank {}: shuffle payload length mismatch from rank {src} \
             (aggregator {a}, iteration {iter}, tag {src_tag:#x})",
            comm.rank(),
        );
        let unpacked = info.arrival + decode + cpu.memcpy_time(payload.len());
        comm.recycle_buf(payload);
        done = done.max(unpacked);
    }
    if done > agg_done {
        report
            .segments
            .push(Segment::new(agg_done, done, Activity::Wait));
    }
    comm.advance_to(done);
    report.end = comm.clock();
    (buf, report)
}

/// Runs the aggregator loop for `agg_idx`; returns the time the last
/// shuffle completed. Fills `report` and places this rank's own pieces
/// directly into `buf`.
#[allow(clippy::too_many_arguments)]
fn run_aggregator(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    schedule: &PlanSchedule,
    agg_idx: usize,
    tag: TagValue,
    hints: &Hints,
    hier: Option<&NodeView>,
    report: &mut TwoPhaseReport,
    buf: &mut [u8],
) -> SimTime {
    let cpu = comm.model().cpu.clone();
    let start = comm.clock();
    // Non-blocking mode: independent read and shuffle lanes overlap the
    // phases, and the `PipelineDepth` hint bounds how many iterations'
    // staging buffers may be in flight at once. Unbounded depth gates
    // reads only by the I/O lane (the engine is assumed to have enough
    // staging buffers to keep the disk streaming, which also keeps all
    // ranks' file-system requests causally close in virtual time);
    // bounded depth stages through a [`BufferRing`], so the read of
    // iteration `i` waits for iteration `i - depth` to finish draining
    // its slot. Blocking mode is depth 1: one slot, strictly alternating
    // phases — the ring recurrence degenerates to the single-lane
    // schedule (the next read starts at the previous shuffle's end).
    let mut io_lane = Lane::free_from(start);
    let mut shuffle_lane = Lane::free_from(start);
    let depth = if hints.nonblocking {
        hints.pipeline_depth.bound()
    } else {
        Some(1)
    };
    let mut ring = depth.map(BufferRing::new);
    let iters = schedule.active_iterations(agg_idx);
    // One staging slot per in-flight iteration — reads land in place, and
    // a slot is reissued only after its previous occupant drained.
    let nslots = depth.unwrap_or(1).min(iters.len()).max(1);
    let mut slots: Vec<Vec<u8>> = (0..nslots).map(|_| Vec::new()).collect();
    // Per-iteration read bookkeeping (`(rlo, ready, read_done, queue)`),
    // filled at issue time and consumed at drain time — the two walk the
    // iteration list `depth` apart.
    let mut reads: Vec<Option<(u64, SimTime, SimTime, SimTime)>> = vec![None; iters.len()];
    let mut issued = 0usize;
    let mut last = start;

    for (pos, &iter) in iters.iter().enumerate() {
        // Issue stage: read ahead up to `depth` iterations before draining
        // iteration `pos`, so the OST extents of iteration pos+1 are booked
        // (and its receives effectively pre-posted — destinations are known
        // from the compiled schedule) while pos is still packing.
        let horizon = match depth {
            Some(d) => iters.len().min(pos + d),
            None => pos + 1,
        };
        while issued < horizon {
            let j = issued;
            issued += 1;
            let ranges = schedule.read_ranges(agg_idx, iters[j]);
            let Some(&(rlo, _)) = ranges.first() else {
                continue;
            };
            // Phase 1: read all of the iteration's covering extents (one
            // per covered block) in a single vectorized call — one booking
            // lock per OST, object-contiguous runs across blocks charged
            // one seek. A single covering range times identically to
            // `read_at`.
            let floor = ring.as_ref().map_or(SimTime::ZERO, |r| r.available(j));
            let ready = io_lane.free_at().max(floor);
            let read_done = pfs.read_multi(file, rlo, ranges, ready, &mut slots[j % nslots]);
            io_lane.advance_to(read_done);
            report.bytes_read += ranges.iter().map(|&(_, len)| len).sum::<u64>();
            let read_dur = read_done.saturating_since(ready);
            let ideal: SimTime = ranges
                .iter()
                .map(|&(lo, len)| pfs.ideal_read_time(file, lo, len))
                .sum();
            report
                .segments
                .push(Segment::new(ready, read_done, Activity::Wait));
            reads[j] = Some((rlo, ready, read_done, read_dur.saturating_since(ideal)));
        }
        let Some((rlo, ready, read_done, queue_dur)) = reads[pos] else {
            // Nothing was read for this iteration, so nothing occupies its
            // slot: carry the previous occupant's drain time forward.
            if let Some(r) = ring.as_mut() {
                let t = r.available(pos);
                r.drain(pos, t);
            }
            continue;
        };
        let chunk = &slots[pos % nslots];
        let read_dur = read_done.saturating_since(ready);

        // Phase 2: pack and post pieces per destination. With hierarchical
        // paths active, only same-node destinations are served directly;
        // every remote node gets one coalesced frame (below).
        let shuffle_start = read_done.max(shuffle_lane.free_at());
        let mut shuffle_end = shuffle_start;
        let (direct_lo, direct_hi) = match hier {
            Some(view) => (view.node_lo, view.node_hi),
            None => (0, comm.nprocs()),
        };
        for (dst, pieces) in schedule.dests_with_pieces_in(agg_idx, iter, direct_lo, direct_hi) {
            let piece_bytes: usize = pieces.iter().map(|p| p.extent.len as usize).sum();
            if dst == comm.rank() {
                // Local placement: just a copy, no message.
                let t = shuffle_lane.acquire(read_done, cpu.memcpy_time(piece_bytes));
                for p in pieces {
                    let src = (p.extent.offset - rlo) as usize;
                    buf[p.buf_offset as usize..p.buf_offset as usize + p.extent.len as usize]
                        .copy_from_slice(&chunk[src..src + p.extent.len as usize]);
                }
                shuffle_end = shuffle_end.max(t);
                continue;
            }
            let mut payload = comm.take_buf();
            payload.reserve(piece_bytes);
            for p in pieces {
                let src = (p.extent.offset - rlo) as usize;
                payload.extend_from_slice(&chunk[src..src + p.extent.len as usize]);
            }
            // The shuffle lane is held for the memcpy, the per-piece
            // pack/post cost (non-contiguous runs are packed one by one,
            // like a derived-datatype scatter), the NIC serialization
            // of the payload (a node's egress is a serially-reused
            // resource), and the per-message posting overhead. Per-piece
            // cost is what makes the shuffle of a finely-fragmented
            // request approach the read cost (Fig. 1). Inter-node
            // payloads may be compressed: the codec CPU joins the lane
            // hold and the NIC serializes only the wire bytes.
            let same_node = comm.model().topology.same_node(comm.rank(), dst);
            let (wire, logical_len, compressed) =
                encode_for_wire(comm, &hints.compression, same_node, payload);
            let codec = if compressed {
                cpu.compress_time(logical_len)
            } else {
                SimTime::ZERO
            };
            let pack_and_post = cpu.memcpy_time(logical_len)
                + codec
                + comm.model().net.scatter_cost().scale(pieces.len() as f64)
                + comm.model().net.wire_time(wire.len(), same_node)
                + comm.model().net.msg_cost(same_node);
            let depart = shuffle_lane.acquire(read_done, pack_and_post);
            report.bytes_shuffled += logical_len as u64;
            comm.post_framed_bytes_at(dst, tag, wire, depart, logical_len);
            shuffle_end = shuffle_end.max(depart);
        }
        if let Some(view) = hier {
            // One header-less frame per remote node holding pieces of this
            // chunk: sections are the per-destination payloads in ascending
            // rank order, and both ends derive section sizes from the
            // shared schedule, so no framing metadata crosses the wire.
            // Coalescing pays the inter-node posting overhead once per
            // node instead of once per destination rank.
            let frame_tag = TAG_SHUFFLE_FRAME | (tag & SEQ_MASK);
            for node in 0..view.nodes_used {
                if node == view.node {
                    continue;
                }
                let (lo, hi) = view.node_range(node);
                // Pre-size the frame from the schedule's piece tables so
                // coalescing never reallocates mid-pack.
                let frame_bytes: usize = schedule
                    .dests_with_pieces_in(agg_idx, iter, lo, hi)
                    .map(|(_, ps)| ps.iter().map(|p| p.extent.len as usize).sum::<usize>())
                    .sum();
                if frame_bytes == 0 {
                    continue;
                }
                let mut frame = comm.take_buf();
                frame.reserve(frame_bytes);
                let mut frame_pieces = 0usize;
                for (_, pieces) in schedule.dests_with_pieces_in(agg_idx, iter, lo, hi) {
                    for p in pieces {
                        let src = (p.extent.offset - rlo) as usize;
                        frame.extend_from_slice(&chunk[src..src + p.extent.len as usize]);
                    }
                    frame_pieces += pieces.len();
                }
                // Node-pair frames always cross the interconnect, so they
                // are the prime compression target: one codec pass per
                // frame, wire time on the compressed bytes.
                let (wire, logical_len, compressed) =
                    encode_for_wire(comm, &hints.compression, false, frame);
                let codec = if compressed {
                    cpu.compress_time(logical_len)
                } else {
                    SimTime::ZERO
                };
                let pack_and_post = cpu.memcpy_time(logical_len)
                    + codec
                    + comm.model().net.scatter_cost().scale(frame_pieces as f64)
                    + comm.model().net.wire_time(wire.len(), false)
                    + comm.model().net.msg_cost(false);
                let depart = shuffle_lane.acquire(read_done, pack_and_post);
                report.bytes_shuffled += logical_len as u64;
                comm.post_framed_bytes_at(
                    view.leader_of_node(node),
                    frame_tag,
                    wire,
                    depart,
                    logical_len,
                );
                shuffle_end = shuffle_end.max(depart);
            }
        }
        // The slot is reusable once the last piece was packed out of it.
        if let Some(r) = ring.as_mut() {
            r.drain(pos, shuffle_end);
        }
        report
            .segments
            .push(Segment::new(shuffle_start, shuffle_end, Activity::Sys));
        report.iterations.push(IterationTiming {
            read: read_dur,
            queue: queue_dur,
            shuffle: shuffle_end.saturating_since(shuffle_start),
        });
        last = last.max(shuffle_end);
    }
    last
}

/// The node leader's relay loop: for every chunk whose aggregator lives on
/// a *remote* node and that holds pieces for this node, receives the
/// aggregator's coalesced frame and forwards each member's sections as one
/// intra-node message. The leader's own sections travel through the
/// self-send short circuit, so the receiver loop stays uniform. Frames are
/// header-less — section boundaries are recomputed from the shared
/// schedule. Returns the time the last relay departed.
fn relay_read_frames(
    comm: &mut Comm,
    schedule: &PlanSchedule,
    view: &NodeView,
    tag: TagValue,
    hints: &Hints,
    report: &mut TwoPhaseReport,
) -> SimTime {
    let cpu = comm.model().cpu.clone();
    let frame_tag = TAG_SHUFFLE_FRAME | (tag & SEQ_MASK);
    let relay_tag = TAG_SHUFFLE_RELAY | (tag & SEQ_MASK);
    let start = comm.clock();
    let mut relay_lane = Lane::free_from(start);
    let mut last = start;
    // Slots are walked in global (aggregator, iteration) order — the same
    // order in which every member drains its relay stream, and in which
    // each aggregator posts its frames, so FIFO matching pairs them up.
    for a in 0..schedule.plan().aggregators.len() {
        let agg_rank = schedule.aggregator_rank(a);
        if view.node_of(agg_rank) == view.node {
            continue; // same-node chunks are shuffled directly
        }
        for &iter in schedule.active_iterations(a) {
            if schedule
                .dests_with_pieces_in(a, iter, view.node_lo, view.node_hi)
                .next()
                .is_none()
            {
                continue; // no frame was sent for this chunk
            }
            let (frame, info) = comm.recv_bytes_no_clock(agg_rank, frame_tag);
            // Frames from remote aggregators arrive compressed when the
            // hints say so; the leader decodes once (occupying the relay
            // lane) and relays raw sections intra-node.
            let frame = if hints.compression.is_on() {
                let (logical, n) = decode_from_wire(comm, frame);
                relay_lane.acquire(info.arrival, cpu.decompress_time(n));
                logical
            } else {
                frame
            };
            let mut pos = 0usize;
            for (dst, pieces) in
                schedule.dests_with_pieces_in(a, iter, view.node_lo, view.node_hi)
            {
                let len: usize = pieces.iter().map(|p| p.extent.len as usize).sum();
                let mut payload = comm.take_buf();
                payload.extend_from_slice(&frame[pos..pos + len]);
                pos += len;
                // Splitting a contiguous section is a plain copy — the
                // per-piece scatter cost was already paid by the
                // aggregator when it packed the frame.
                let cost = if dst == comm.rank() {
                    cpu.memcpy_time(len)
                } else {
                    cpu.memcpy_time(len)
                        + comm.model().net.wire_time(len, true)
                        + comm.model().net.msg_cost(true)
                };
                let depart = relay_lane.acquire(info.arrival, cost);
                if dst != comm.rank() {
                    report.bytes_shuffled += len as u64;
                }
                comm.post_bytes_at(dst, relay_tag, payload, depart);
                last = last.max(depart);
            }
            assert_eq!(
                pos,
                frame.len(),
                "rank {}: shuffle frame length mismatch from rank {agg_rank} \
                 (aggregator {a}, iteration {iter}, tag {frame_tag:#x})",
                comm.rank(),
            );
            comm.recycle_buf(frame);
        }
    }
    if last > start {
        report
            .segments
            .push(Segment::new(start, last, Activity::Sys));
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::Extent;
    use cc_model::{ClusterModel, Topology};
    use cc_mpi::World;
    use cc_pfs::{MemBackend, StripeLayout};
    use std::sync::Arc;

    /// A file whose byte at offset i is (i % 251), striped over `osts`.
    fn make_fs(osts: usize, size: usize, stripe: u64, count: usize) -> Arc<Pfs> {
        let fs = Pfs::new(osts, cc_model::DiskModel {
            seek: 1e-3,
            ost_bandwidth: 1e8,
        });
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        fs.create(
            "data",
            StripeLayout::round_robin(stripe, count, 0, osts),
            Box::new(MemBackend::from_bytes(data)),
        );
        Arc::new(fs)
    }

    fn expected_bytes(request: &OffsetList) -> Vec<u8> {
        let mut out = Vec::new();
        for e in request.extents() {
            out.extend((e.offset..e.end()).map(|i| (i % 251) as u8));
        }
        out
    }

    fn run_collective(
        nprocs: usize,
        topo: Topology,
        requests: &[OffsetList],
        hints: Hints,
        fs: Arc<Pfs>,
    ) -> Vec<(Vec<u8>, TwoPhaseReport)> {
        let mut model = ClusterModel::test_tiny(1);
        model.topology = topo;
        let world = World::new(nprocs, model);
        let hints = &hints;
        let fs = &fs;
        world.run(move |comm| {
            let file = fs.open("data").expect("file exists");
            collective_read(comm, fs, &file, &requests[comm.rank()], hints)
        })
    }

    #[test]
    fn contiguous_blocks_reach_all_ranks() {
        let n = 4;
        let fs = make_fs(4, 4000, 256, 4);
        let requests: Vec<OffsetList> = (0..n as u64)
            .map(|r| OffsetList::contiguous(r * 1000, 1000))
            .collect();
        let results = run_collective(
            n,
            Topology::new(2, 2),
            &requests,
            Hints::default(),
            fs,
        );
        for (r, (data, report)) in results.iter().enumerate() {
            assert_eq!(data, &expected_bytes(&requests[r]), "rank {r} data");
            assert!(report.end >= report.start);
        }
    }

    #[test]
    fn interleaved_noncontiguous_requests() {
        // Rank r takes every 4th 10-byte block starting at r*10 — the
        // classic pattern collective I/O exists for.
        let n = 4;
        let fs = make_fs(2, 4000, 128, 2);
        let requests: Vec<OffsetList> = (0..n as u64)
            .map(|r| {
                OffsetList::new(
                    (0..25)
                        .map(|k| Extent {
                            offset: r * 10 + k * 40,
                            len: 10,
                        })
                        .collect(),
                )
            })
            .collect();
        let results = run_collective(
            n,
            Topology::new(1, 4),
            &requests,
            Hints {
                cb_buffer_size: 300,
                ..Hints::default()
            },
            fs,
        );
        for (r, (data, _)) in results.iter().enumerate() {
            assert_eq!(data, &expected_bytes(&requests[r]), "rank {r} data");
        }
    }

    #[test]
    fn empty_request_returns_empty_buffer() {
        let n = 3;
        let fs = make_fs(1, 1000, 512, 1);
        let mut requests = vec![OffsetList::empty(); n];
        requests[1] = OffsetList::contiguous(100, 50);
        let results = run_collective(
            n,
            Topology::new(1, 3),
            &requests,
            Hints::default(),
            fs,
        );
        assert!(results[0].0.is_empty());
        assert_eq!(results[1].0, expected_bytes(&requests[1]));
        assert!(results[2].0.is_empty());
    }

    #[test]
    fn multiple_iterations_per_aggregator() {
        let n = 2;
        let fs = make_fs(2, 10_000, 1024, 2);
        let requests: Vec<OffsetList> = (0..n as u64)
            .map(|r| OffsetList::contiguous(r * 5000, 5000))
            .collect();
        let results = run_collective(
            n,
            Topology::new(1, 2),
            &requests,
            Hints {
                cb_buffer_size: 600, // forces ~9 iterations per aggregator
                aggregators_per_node: 2,
                ..Hints::default()
            },
            fs,
        );
        for (r, (data, report)) in results.iter().enumerate() {
            assert_eq!(data, &expected_bytes(&requests[r]));
            assert!(
                report.iterations.len() >= 8,
                "expected many iterations, got {}",
                report.iterations.len()
            );
        }
    }

    #[test]
    fn nonblocking_is_no_slower_than_blocking() {
        let n = 4;
        let mk_req = || -> Vec<OffsetList> {
            (0..n as u64)
                .map(|r| {
                    OffsetList::new(
                        (0..50)
                            .map(|k| Extent {
                                offset: r * 100 + k * 400,
                                len: 100,
                            })
                            .collect(),
                    )
                })
                .collect()
        };
        let run = |nonblocking: bool| {
            let fs = make_fs(2, 20_000, 4096, 2);
            let results = run_collective(
                n,
                Topology::new(2, 2),
                &mk_req(),
                Hints {
                    cb_buffer_size: 2000,
                    nonblocking,
                    ..Hints::default()
                },
                fs,
            );
            results
                .iter()
                .map(|(_, rep)| rep.end)
                .max()
                .expect("nonempty")
        };
        let t_nb = run(true);
        let t_b = run(false);
        assert!(
            t_nb <= t_b,
            "non-blocking {t_nb} should not exceed blocking {t_b}"
        );
    }

    #[test]
    fn aggregator_reports_read_and_shuffle() {
        let n = 2;
        let fs = make_fs(1, 8000, 4096, 1);
        let requests: Vec<OffsetList> = (0..n as u64)
            .map(|r| OffsetList::contiguous(r * 4000, 4000))
            .collect();
        let results = run_collective(
            n,
            Topology::new(1, 2),
            &requests,
            Hints {
                cb_buffer_size: 1000,
                ..Hints::default()
            },
            fs,
        );
        let agg = &results[0].1;
        assert!(!agg.iterations.is_empty());
        assert!(agg.read_total() > SimTime::ZERO);
        assert!(agg.shuffle_total() > SimTime::ZERO);
        assert_eq!(agg.bytes_read, 8000);
        // Rank 0 shuffles rank 1's half (4000 bytes) to it.
        assert_eq!(agg.bytes_shuffled, 4000);
        // The non-aggregator has no iterations.
        assert!(results[1].1.iterations.is_empty());
    }

    #[test]
    fn consecutive_collectives_with_different_plans_do_not_cross_match() {
        // Two back-to-back collectives whose plans differ (different
        // aggregator counts and chunking), so the shuffle traffic of the
        // two calls flows between overlapping rank pairs. Sequence-stamped
        // tags must keep the matches separate even though a fast rank can
        // race into the second call while a peer still drains the first.
        let n = 4;
        let fs = make_fs(2, 8000, 512, 2);
        let requests_a: Vec<OffsetList> = (0..n as u64)
            .map(|r| OffsetList::contiguous(r * 2000, 2000))
            .collect();
        // Second call: shifted, interleaved fine-grained requests.
        let requests_b: Vec<OffsetList> = (0..n as u64)
            .map(|r| {
                OffsetList::new(
                    (0..20)
                        .map(|k| Extent {
                            offset: r * 100 + k * 400,
                            len: 100,
                        })
                        .collect(),
                )
            })
            .collect();
        let mut model = ClusterModel::test_tiny(n);
        model.topology = Topology::new(2, 2);
        let world = World::new(n, model);
        let fs = &fs;
        let (ra, rb) = (&requests_a, &requests_b);
        let results = world.run(move |comm| {
            let file = fs.open("data").expect("file exists");
            let h1 = Hints {
                aggregators_per_node: 2,
                cb_buffer_size: 1000,
                ..Hints::default()
            };
            let h2 = Hints {
                aggregators_per_node: 1,
                cb_buffer_size: 700,
                ..Hints::default()
            };
            // No barrier between the calls: ranks may overlap them.
            let (d1, _) = collective_read(comm, fs, &file, &ra[comm.rank()], &h1);
            let (d2, _) = collective_read(comm, fs, &file, &rb[comm.rank()], &h2);
            (d1, d2)
        });
        for (r, (d1, d2)) in results.iter().enumerate() {
            assert_eq!(d1, &expected_bytes(&requests_a[r]), "rank {r} call 1");
            assert_eq!(d2, &expected_bytes(&requests_b[r]), "rank {r} call 2");
        }
    }

    #[test]
    fn slow_ost_fault_shifts_timings_but_not_data() {
        let n = 2;
        let requests: Vec<OffsetList> = (0..n as u64)
            .map(|r| OffsetList::contiguous(r * 4000, 4000))
            .collect();
        let run = |plan: Option<cc_model::FaultPlan>| {
            let mut fs = Pfs::new(
                2,
                cc_model::DiskModel {
                    seek: 1e-3,
                    ost_bandwidth: 1e8,
                },
            );
            if let Some(p) = &plan {
                fs = fs.with_fault_plan(p);
            }
            let data: Vec<u8> = (0..8000).map(|i| (i % 251) as u8).collect();
            fs.create(
                "data",
                StripeLayout::round_robin(512, 2, 0, 2),
                Box::new(MemBackend::from_bytes(data)),
            );
            run_collective(
                n,
                Topology::new(1, 2),
                &requests,
                Hints {
                    cb_buffer_size: 2000,
                    ..Hints::default()
                },
                Arc::new(fs),
            )
        };
        let healthy = run(None);
        let degraded = run(Some(cc_model::FaultPlan::new().slow_ost(0, 10.0)));
        for (r, (h, d)) in healthy.iter().zip(&degraded).enumerate() {
            // Data stays bit-exact under the fault.
            assert_eq!(h.0, d.0, "rank {r} data changed under fault");
            assert_eq!(d.0, expected_bytes(&requests[r]), "rank {r} data");
        }
        // The degraded run is measurably slower, and the slowdown is
        // attributed to queueing, not to a changed ideal service time.
        let end = |rs: &[(Vec<u8>, TwoPhaseReport)]| {
            rs.iter().map(|(_, r)| r.end).max().unwrap()
        };
        assert!(
            end(&degraded) > end(&healthy).scale(2.0),
            "10x slow OST must visibly stretch the collective: healthy {} degraded {}",
            end(&healthy),
            end(&degraded)
        );
        let queue = |rs: &[(Vec<u8>, TwoPhaseReport)]| -> SimTime {
            rs.iter().map(|(_, r)| r.queue_total()).sum()
        };
        assert!(
            queue(&degraded) > queue(&healthy),
            "degradation must surface as queueing time"
        );
    }

    #[test]
    fn straggler_rank_is_detected_from_reports() {
        let n = 4;
        let fs = make_fs(2, 4000, 256, 2);
        let requests: Vec<OffsetList> = (0..n as u64)
            .map(|r| OffsetList::contiguous(r * 1000, 1000))
            .collect();
        let mut model = ClusterModel::test_tiny(n);
        model.topology = Topology::new(1, 4);
        model = model.with_fault(cc_model::FaultPlan::new().straggle_rank(2, 6.0));
        let world = World::new(n, model);
        let fs = &fs;
        let requests = &requests;
        let reports: Vec<TwoPhaseReport> = world
            .run(move |comm| {
                // One second of pre-collective compute; the straggler's is
                // scaled by the fault plan, so it enters late.
                comm.advance(SimTime::from_secs(1.0));
                let file = fs.open("data").expect("file exists");
                collective_read(comm, fs, &file, &requests[comm.rank()], &Hints::default()).1
            })
            .into_iter()
            .collect();
        assert_eq!(TwoPhaseReport::stragglers(&reports, 2.0), vec![2]);
        // Without a fault plan nobody straggles.
        let clean = World::new(n, {
            let mut m = ClusterModel::test_tiny(n);
            m.topology = Topology::new(1, 4);
            m
        });
        let reports: Vec<TwoPhaseReport> = clean
            .run(move |comm| {
                comm.advance(SimTime::from_secs(1.0));
                let file = fs.open("data").expect("file exists");
                collective_read(comm, fs, &file, &requests[comm.rank()], &Hints::default()).1
            })
            .into_iter()
            .collect();
        assert!(TwoPhaseReport::stragglers(&reports, 2.0).is_empty());
    }

    #[test]
    fn hierarchical_shuffle_matches_flat_bitwise() {
        use cc_model::CollectiveMode;
        // 3 nodes x 4 cores, finely interleaved requests: every chunk has
        // destinations on every node, so the hierarchical path coalesces
        // aggressively. The returned buffers must be byte-identical to the
        // flat path's, and the interconnect must carry far fewer messages.
        let n = 12;
        let requests: Vec<OffsetList> = (0..n as u64)
            .map(|r| {
                OffsetList::new(
                    (0..20)
                        .map(|k| Extent {
                            offset: r * 10 + k * 10 * n as u64,
                            len: 10,
                        })
                        .collect(),
                )
            })
            .collect();
        let run_mode = |mode: CollectiveMode| {
            let fs = make_fs(2, 2400, 256, 2);
            let mut model = ClusterModel::test_tiny(n).with_collectives(mode);
            model.topology = Topology::new(3, 4);
            let world = World::new(n, model);
            let fs = &fs;
            let requests = &requests;
            world.run(move |comm| {
                let file = fs.open("data").expect("file exists");
                let (data, _) = collective_read(
                    comm,
                    fs,
                    &file,
                    &requests[comm.rank()],
                    &Hints {
                        cb_buffer_size: 512,
                        ..Hints::default()
                    },
                );
                (data, comm.stats())
            })
        };
        let flat = run_mode(CollectiveMode::Flat);
        let hier = run_mode(CollectiveMode::Hierarchical);
        for (r, (f, h)) in flat.iter().zip(&hier).enumerate() {
            assert_eq!(f.0, h.0, "rank {r} data differs between modes");
            assert_eq!(h.0, expected_bytes(&requests[r]), "rank {r} data");
        }
        let inter = |rs: &[(Vec<u8>, cc_mpi::CommStats)]| -> usize {
            rs.iter().map(|(_, s)| s.msgs_inter).sum()
        };
        assert!(
            inter(&hier) * 2 <= inter(&flat),
            "hierarchical shuffle must cut inter-node messages: flat {} hier {}",
            inter(&flat),
            inter(&hier)
        );
    }

    #[test]
    fn repeated_collectives_in_one_run() {
        let n = 3;
        let fs = make_fs(2, 3000, 256, 2);
        let requests: Vec<OffsetList> = (0..n as u64)
            .map(|r| OffsetList::contiguous(r * 1000, 1000))
            .collect();
        let mut model = ClusterModel::test_tiny(3);
        model.topology = Topology::new(1, 3);
        let world = World::new(n, model);
        let fs = &fs;
        let requests = &requests;
        let results = world.run(move |comm| {
            let file = fs.open("data").expect("file exists");
            let h = Hints::default();
            let (d1, r1) = collective_read(comm, fs, &file, &requests[comm.rank()], &h);
            let (d2, r2) = collective_read(comm, fs, &file, &requests[comm.rank()], &h);
            assert_eq!(d1, d2);
            // Virtual time strictly advances between collectives.
            assert!(r2.end > r1.end);
            d1
        });
        for (r, data) in results.iter().enumerate() {
            assert_eq!(data, &expected_bytes(&requests[r]));
        }
    }
}
