//! Automatic strategy selection, ROMIO style.
//!
//! ROMIO only pays for two-phase collective buffering when the aggregate
//! access pattern warrants it: if every process's request occupies its own
//! disjoint region of the file (non-interleaved), each process can read
//! directly (with data sieving) and skip the shuffle entirely.
//! [`collective_read_auto`] makes that call from a cheap allgather of
//! per-rank bounding ranges — the same heuristic as ROMIO's
//! `romio_cb_read = automatic`.

use cc_mpi::Comm;
use cc_pfs::{FileHandle, Pfs};

use crate::extent::OffsetList;
use crate::hints::Hints;
use crate::independent::{sieving_read, IndependentReport};
use crate::twophase::{collective_read, TwoPhaseReport};

/// Which strategy the automatic mode picked.
#[derive(Debug, Clone)]
pub enum AutoReport {
    /// The pattern interleaved: the two-phase engine ran.
    Collective(TwoPhaseReport),
    /// The pattern was disjoint: per-rank sieving reads ran.
    Independent(IndependentReport),
}

/// Whether any two ranks' bounding ranges overlap — the interleaving test
/// on `(min_offset, max_end)` pairs, `u64::MAX` marking empty requests.
pub fn ranges_interleave(bounds: &[(u64, u64)]) -> bool {
    let mut spans: Vec<(u64, u64)> = bounds
        .iter()
        .copied()
        .filter(|&(lo, hi)| lo < hi)
        .collect();
    spans.sort_unstable();
    spans.windows(2).any(|w| w[1].0 < w[0].1)
}

/// Collectively reads `my_request`, choosing two-phase collective
/// buffering for interleaved patterns and per-rank sieving reads for
/// disjoint ones. Must be called by all ranks; all ranks make the same
/// decision.
pub fn collective_read_auto(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    my_request: &OffsetList,
    hints: &Hints,
) -> (Vec<u8>, AutoReport) {
    let mine = [
        my_request.min_offset().unwrap_or(u64::MAX),
        my_request.max_end().unwrap_or(0),
    ];
    let all = comm.allgatherv(&mine);
    let bounds: Vec<(u64, u64)> = all
        .iter()
        .map(|b| (b[0], if b[1] == 0 { 0 } else { b[1] }))
        .filter(|&(lo, hi)| lo != u64::MAX && hi > 0)
        .collect();
    if ranges_interleave(&bounds) {
        let (bytes, rep) = collective_read(comm, pfs, file, my_request, hints);
        (bytes, AutoReport::Collective(rep))
    } else {
        let (bytes, rep) = sieving_read(comm, pfs, file, my_request, hints.cb_buffer_size);
        (bytes, AutoReport::Independent(rep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::Extent;
    use cc_model::ClusterModel;
    use cc_mpi::World;
    use cc_pfs::{MemBackend, StripeLayout};
    use std::sync::Arc;

    #[test]
    fn interleave_detection() {
        // Disjoint blocks.
        assert!(!ranges_interleave(&[(0, 10), (10, 20), (25, 30)]));
        // Overlapping spans.
        assert!(ranges_interleave(&[(0, 15), (10, 20)]));
        // One range inside another.
        assert!(ranges_interleave(&[(0, 100), (40, 60)]));
        // Empty and single.
        assert!(!ranges_interleave(&[]));
        assert!(!ranges_interleave(&[(5, 9)]));
    }

    fn run_auto(requests: &[OffsetList]) -> Vec<(Vec<u8>, AutoReport)> {
        let n = requests.len();
        let fs = Pfs::new(2, cc_model::DiskModel::lustre_like());
        let data: Vec<u8> = (0..4000).map(|i| (i % 251) as u8).collect();
        fs.create(
            "data",
            StripeLayout::round_robin(256, 2, 0, 2),
            Box::new(MemBackend::from_bytes(data)),
        );
        let fs = Arc::new(fs);
        let world = World::new(n, ClusterModel::test_tiny(n));
        let fs = &fs;
        world.run(move |comm| {
            let file = fs.open("data").expect("exists");
            collective_read_auto(
                comm,
                fs,
                &file,
                &requests[comm.rank()],
                &Hints::default(),
            )
        })
    }

    fn expected(request: &OffsetList) -> Vec<u8> {
        let mut out = Vec::new();
        for e in request.extents() {
            out.extend((e.offset..e.end()).map(|i| (i % 251) as u8));
        }
        out
    }

    #[test]
    fn disjoint_blocks_choose_independent() {
        let requests: Vec<OffsetList> = (0..4u64)
            .map(|r| OffsetList::contiguous(r * 1000, 1000))
            .collect();
        let results = run_auto(&requests);
        for (r, (bytes, rep)) in results.iter().enumerate() {
            assert_eq!(bytes, &expected(&requests[r]));
            assert!(
                matches!(rep, AutoReport::Independent(_)),
                "disjoint pattern should skip collective buffering"
            );
        }
    }

    #[test]
    fn interleaved_extents_choose_collective() {
        let requests: Vec<OffsetList> = (0..4u64)
            .map(|r| {
                OffsetList::new(
                    (0..10)
                        .map(|k| Extent {
                            offset: r * 100 + k * 400,
                            len: 100,
                        })
                        .collect(),
                )
            })
            .collect();
        let results = run_auto(&requests);
        for (r, (bytes, rep)) in results.iter().enumerate() {
            assert_eq!(bytes, &expected(&requests[r]));
            assert!(
                matches!(rep, AutoReport::Collective(_)),
                "interleaved pattern should use two-phase"
            );
        }
    }

    #[test]
    fn empty_requests_do_not_confuse_the_heuristic() {
        let mut requests = vec![OffsetList::empty(); 3];
        requests[0] = OffsetList::contiguous(0, 500);
        requests[2] = OffsetList::contiguous(500, 500);
        let results = run_auto(&requests);
        assert!(matches!(results[0].1, AutoReport::Independent(_)));
        assert_eq!(results[0].0, expected(&requests[0]));
        assert!(results[1].0.is_empty());
    }
}
