//! The benchmark harness: one runner per table/figure of the paper.
//!
//! Each `figNN_*` function reproduces the corresponding experiment at a
//! configurable scale and returns a [`Table`] with the same rows/series the
//! paper reports. The binaries in `src/bin/` print the table and write a
//! CSV under `results/`. Absolute numbers come from the virtual-time model
//! (calibrated to the paper's testbed where possible); the claims under
//! test are the *shapes*: who wins, by what factor, where the crossovers
//! and knees sit. See `EXPERIMENTS.md` for paper-vs-measured notes.

#![warn(missing_docs)]

pub mod ablations;
pub mod comm;
pub mod compress;
pub mod figs;
pub mod hotpath;
pub mod layout;
pub mod manytask;
pub mod pipeline;
pub mod plan;
pub mod runner;
pub mod service;

pub use ablations::*;
pub use figs::*;
pub use runner::{calibrate_ratio, run_comparison, scaled_model, Comparison};

use std::path::Path;

use cc_profile::Table;

/// Prints a table and writes its CSV under `results/`.
pub fn emit(table: &Table, name: &str) {
    println!("{table}");
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("(csv written to {})\n", path.display());
        }
    }
}

/// Scale of an experiment run: `quick` shrinks sizes for smoke tests and
/// CI; `full` is the EXPERIMENTS.md configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced ranks/bytes: seconds of wall time, same qualitative shapes.
    Quick,
    /// The documented reproduction configuration.
    Full,
}

impl Scale {
    /// Parses from a CLI argument (`--quick` selects [`Scale::Quick`]).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }
}
