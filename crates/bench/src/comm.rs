//! Flat vs hierarchical communication: the scenario behind
//! `BENCH_comm.json`.
//!
//! Runs the identical two-phase read shuffle twice — once with
//! [`CollectiveMode::Flat`], once with [`CollectiveMode::Hierarchical`] —
//! on a Hopper-like cluster with a rank-interleaved request pattern, the
//! worst case for per-destination messaging: every collective-buffer chunk
//! holds pieces for every rank, so a flat aggregator posts one inter-node
//! message per remote rank while the hierarchical one posts one coalesced
//! frame per remote *node*. The binary compares checksums (must be
//! bit-identical), inter-node message counts (coalescing must cut them by
//! the fan-in), and the latest virtual completion time (paying the
//! inter-node posting overhead once per node pair must win wall-clock).
//!
//! A noncommutative-but-associative allreduce rides along as the
//! rank-order gate: 2x2 wrapping-u64 matrix products agree bitwise between
//! the flat and hierarchical reduce trees only if both fold ranks in
//! ascending rank order.

use std::sync::Arc;
use std::time::Instant;

use cc_model::{ClusterModel, CollectiveMode, SimTime};
use cc_mpi::ops::FnOp;
use cc_mpi::{CommStats, World};
use cc_mpiio::{collective_read, Extent, Hints, OffsetList};
use cc_pfs::{MemBackend, Pfs, StripeLayout};

use crate::Scale;

/// Shape of one comm-bench scenario.
#[derive(Debug, Clone, Copy)]
pub struct CommBenchConfig {
    /// Nodes in the virtual cluster.
    pub nodes: usize,
    /// Cores (ranks) per node.
    pub cores: usize,
    /// Interleaved extents per rank.
    pub extents_per_rank: usize,
    /// Bytes per extent.
    pub extent_len: u64,
    /// Collective buffer size in bytes.
    pub cb: u64,
}

impl CommBenchConfig {
    /// The documented configuration for `scale`: the full run is the
    /// EXPERIMENTS.md 512-rank cluster (32 nodes x 16 cores), quick is a
    /// 32-rank smoke version with the same qualitative shape.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => Self {
                nodes: 4,
                cores: 8,
                extents_per_rank: 16,
                extent_len: 64,
                cb: 16 << 10,
            },
            Scale::Full => Self {
                nodes: 32,
                cores: 16,
                extents_per_rank: 32,
                extent_len: 64,
                cb: 256 << 10,
            },
        }
    }

    /// Total ranks.
    pub fn nprocs(&self) -> usize {
        self.nodes * self.cores
    }

    /// Total file bytes touched by the request set.
    pub fn file_bytes(&self) -> u64 {
        self.nprocs() as u64 * self.extents_per_rank as u64 * self.extent_len
    }

    /// Rank-interleaved requests: rank `r` takes the `r`-th
    /// `extent_len`-sized slice of every `nprocs`-wide group, so every
    /// chunk of every aggregator holds pieces for every rank.
    pub fn requests(&self) -> Vec<OffsetList> {
        let p = self.nprocs() as u64;
        (0..p)
            .map(|r| {
                OffsetList::new(
                    (0..self.extents_per_rank as u64)
                        .map(|k| Extent {
                            offset: (r + k * p) * self.extent_len,
                            len: self.extent_len,
                        })
                        .collect(),
                )
            })
            .collect()
    }
}

/// What one mode's run produced.
#[derive(Debug, Clone)]
pub struct CommRun {
    /// FNV-1a checksum over every rank's returned bytes, in rank order.
    pub checksum: u64,
    /// The noncommutative allreduce result (identical on all ranks) —
    /// the rank-order gate.
    pub reduce_bits: Vec<u64>,
    /// Latest virtual completion time across ranks.
    pub virt_end: SimTime,
    /// Communication counters merged over all ranks.
    pub stats: CommStats,
    /// Host seconds the simulation took (throughput, not a claim).
    pub host_secs: f64,
}

/// 2x2 wrapping-u64 matrix product, block-wise over the slice:
/// associative but *not* commutative, so flat and hierarchical reduce
/// trees agree bitwise only when both fold ranks in ascending order.
fn matmul2(acc: &mut [u64], inc: &[u64]) {
    for (a, b) in acc.chunks_exact_mut(4).zip(inc.chunks_exact(4)) {
        let m = [
            a[0].wrapping_mul(b[0]).wrapping_add(a[1].wrapping_mul(b[2])),
            a[0].wrapping_mul(b[1]).wrapping_add(a[1].wrapping_mul(b[3])),
            a[2].wrapping_mul(b[0]).wrapping_add(a[3].wrapping_mul(b[2])),
            a[2].wrapping_mul(b[1]).wrapping_add(a[3].wrapping_mul(b[3])),
        ];
        a.copy_from_slice(&m);
    }
}

/// Runs the two-phase shuffle plus the rank-order allreduce under `mode`.
pub fn run_comm(cfg: &CommBenchConfig, mode: CollectiveMode) -> CommRun {
    let nprocs = cfg.nprocs();
    let size = cfg.file_bytes() as usize;
    let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    let osts = 8;
    let fs = Pfs::new(
        osts,
        cc_model::DiskModel {
            seek: 1e-3,
            ost_bandwidth: 1e9,
        },
    );
    fs.create(
        "data",
        StripeLayout::round_robin(1 << 20, osts, 0, osts),
        Box::new(MemBackend::from_bytes(data)),
    );
    let fs = Arc::new(fs);
    let requests = Arc::new(cfg.requests());
    let model = ClusterModel::hopper_like(cfg.nodes, cfg.cores).with_collectives(mode);
    let world = World::new(nprocs, model);
    let started = Instant::now();
    let per_rank = {
        let fs = &fs;
        let requests = &requests;
        let cb = cfg.cb;
        world.run(move |comm| {
            let file = fs.open("data").expect("file exists");
            let (bytes, report) = collective_read(
                comm,
                fs,
                &file,
                &requests[comm.rank()],
                &Hints {
                    cb_buffer_size: cb,
                    ..Hints::default()
                },
            );
            let r = comm.rank() as u64;
            let mine = [
                r.wrapping_mul(3).wrapping_add(1),
                r.wrapping_add(7),
                r ^ 0x9e37_79b9,
                r.wrapping_mul(13).wrapping_add(5),
            ];
            let reduced = comm.allreduce(&mine, &FnOp(matmul2));
            (bytes, reduced, report.end, comm.stats())
        })
    };
    let host_secs = started.elapsed().as_secs_f64();

    let mut checksum = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mut virt_end = SimTime::ZERO;
    let mut stats = CommStats::default();
    let reduce_bits = per_rank[0].1.clone();
    for (rank, (bytes, reduced, end, s)) in per_rank.iter().enumerate() {
        assert_eq!(
            reduced, &reduce_bits,
            "allreduce result diverged on rank {rank}"
        );
        for &b in bytes {
            checksum = (checksum ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        virt_end = virt_end.max(*end);
        stats.merge(s);
    }
    CommRun {
        checksum,
        reduce_bits,
        virt_end,
        stats,
        host_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenario_modes_agree_and_hier_cuts_inter_traffic() {
        let cfg = CommBenchConfig::for_scale(Scale::Quick);
        let flat = run_comm(&cfg, CollectiveMode::Flat);
        let hier = run_comm(&cfg, CollectiveMode::Hierarchical);
        assert_eq!(flat.checksum, hier.checksum, "shuffle data diverged");
        assert_eq!(flat.reduce_bits, hier.reduce_bits, "reduce order diverged");
        assert!(
            hier.stats.msgs_inter * 4 <= flat.stats.msgs_inter,
            "expected >=4x inter-node message cut: flat {} hier {}",
            flat.stats.msgs_inter,
            hier.stats.msgs_inter
        );
        assert!(
            hier.virt_end < flat.virt_end,
            "hierarchical shuffle should win virtual wall-clock: flat {} hier {}",
            flat.virt_end,
            hier.virt_end
        );
    }
}
