//! Software-pipelining benchmark: staging-ring depth vs collective time.
//!
//! The scenario is the read-dominated iterative collective the pipelined
//! engines exist to accelerate. Every rank reads an interleaved set of
//! stripe-sized blocks, so each aggregator's collective-buffer iteration
//! scatters to many ranks and the per-iteration clock has two comparable
//! legs: the covering read from the OSTs and the shuffle pack/post work
//! (the model calibrates scatter costs so the shuffle leg approaches the
//! read leg, as the paper measures on Hopper). A one-buffer ring must
//! serialize the legs — iteration `i+1`'s read cannot start until `i`'s
//! shuffle has drained the staging buffer — so its iteration clock is
//! `read + shuffle`. A deeper ring overlaps them and the clock drops
//! toward `max(read, shuffle)`.
//!
//! Unlike the layout replay, this harness runs the *real* two-phase read
//! engine — `collective_read` inside a full `World` — so the measured
//! makespan includes shuffle delivery, aggregator/compute rank skew, and
//! OST queueing. The binary asserts the per-rank FNV checksums are
//! bit-identical across every depth before reporting: pipelining reorders
//! *when* buffers are filled, never *what* they carry.

use std::sync::Arc;

use cc_model::{ClusterModel, SimTime};
use cc_mpi::World;
use cc_mpiio::{collective_read, DomainPartition, Extent, Hints, OffsetList, PipelineDepth, Striping};
use cc_pfs::{MemBackend, Pfs, StripeLayout};

use crate::Scale;

/// Shape of one pipeline-benchmark scenario.
#[derive(Debug, Clone, Copy)]
pub struct PipelineBenchConfig {
    /// Ranks in the job.
    pub nprocs: usize,
    /// Nodes (one aggregator per node).
    pub nodes: usize,
    /// OSTs in the file system; the file stripes over all of them.
    pub osts: usize,
    /// Stripe size in bytes.
    pub stripe_unit: u64,
    /// Size of one interleaved piece. Small pieces make the shuffle leg
    /// scatter-overhead-bound, the regime the paper measures (Fig. 1).
    pub piece_bytes: u64,
    /// Pieces each rank reads, interleaved round-robin across ranks.
    pub pieces_per_rank: u64,
    /// Collective buffer size, in stripes.
    pub cb_stripes: u64,
}

impl PipelineBenchConfig {
    /// `Full` is the acceptance configuration (≥256 ranks); `Quick`
    /// shrinks it for CI smoke runs while keeping enough collective-buffer
    /// iterations per aggregator for the pipeline to fill.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Full => Self {
                nprocs: 256,
                nodes: 32,
                osts: 64,
                stripe_unit: 64 << 10,
                piece_bytes: 2048,
                pieces_per_rank: 256,
                cb_stripes: 8,
            },
            Scale::Quick => Self {
                nprocs: 32,
                nodes: 8,
                osts: 16,
                stripe_unit: 8 << 10,
                piece_bytes: 160,
                pieces_per_rank: 512,
                cb_stripes: 4,
            },
        }
    }

    /// Total file size: every rank's pieces, no holes.
    pub fn file_size(&self) -> u64 {
        self.nprocs as u64 * self.pieces_per_rank * self.piece_bytes
    }

    /// Collective-buffer iterations each aggregator pipelines.
    pub fn iterations_per_aggregator(&self) -> u64 {
        self.file_size() / self.nodes as u64 / (self.cb_stripes * self.stripe_unit)
    }

    /// The planner hints at `depth`.
    pub fn hints(&self, nonblocking: bool, depth: PipelineDepth) -> Hints {
        Hints {
            cb_buffer_size: self.cb_stripes * self.stripe_unit,
            aggregators_per_node: 1,
            nonblocking,
            pipeline_depth: depth,
            // Group-cyclic domains give each aggregator a private OST
            // subset, so the read leg is seek-bound rather than
            // congestion-bound and overlapping it with the shuffle pays
            // in full (cross-aggregator queueing would otherwise cap the
            // pipeline's win).
            domain_partition: DomainPartition::GroupCyclic,
            striping: Some(Striping {
                unit: self.stripe_unit,
                factor: self.osts,
            }),
            ..Hints::default()
        }
    }

    /// Rank `r`'s request: `pieces_per_rank` pieces at positions
    /// `r, r + nprocs, r + 2*nprocs, ...` — finely interleaved so every
    /// collective-buffer iteration scatters hundreds of pieces to many
    /// destinations and the shuffle leg is comparable to the read leg.
    pub fn request(&self, r: usize) -> OffsetList {
        OffsetList::new(
            (0..self.pieces_per_rank)
                .map(|k| Extent {
                    offset: (k * self.nprocs as u64 + r as u64) * self.piece_bytes,
                    len: self.piece_bytes,
                })
                .collect(),
        )
    }
}

/// The deterministic byte at file offset `o`.
pub fn value_at(o: u64) -> u8 {
    (o.wrapping_mul(179) ^ (o >> 9)) as u8
}

/// What one staging depth measured.
#[derive(Debug, Clone)]
pub struct DepthOutcome {
    /// Human label for the depth (`"sequential"`, `"depth-2"`, ...).
    pub label: &'static str,
    /// Collective makespan in virtual seconds (max over ranks of the
    /// report end).
    pub elapsed_secs: f64,
    /// Summed per-iteration read durations over all aggregators.
    pub read_secs: f64,
    /// Summed per-iteration shuffle durations over all aggregators.
    pub shuffle_secs: f64,
    /// FNV-1a checksum over every rank's returned request bytes, in rank
    /// order — must be bit-identical across depths.
    pub checksum: u64,
}

/// Runs the full two-phase read engine at one staging depth.
pub fn run_depth(
    cfg: &PipelineBenchConfig,
    label: &'static str,
    nonblocking: bool,
    depth: PipelineDepth,
) -> DepthOutcome {
    let size = cfg.file_size();
    let fs = Pfs::new(cfg.osts, cc_model::DiskModel::lustre_like());
    fs.create(
        "pipe",
        StripeLayout::round_robin(cfg.stripe_unit, cfg.osts, 0, cfg.osts),
        Box::new(MemBackend::from_bytes((0..size).map(value_at).collect())),
    );
    let fs = Arc::new(fs);
    let cores = cfg.nprocs.div_ceil(cfg.nodes);
    let world = World::new(cfg.nprocs, ClusterModel::hopper_like(cfg.nodes, cores));
    let hints = cfg.hints(nonblocking, depth);
    let per_rank = {
        let fs = &fs;
        let hints = &hints;
        let cfg = *cfg;
        world.run(move |comm| {
            let file = fs.open("pipe").expect("exists");
            let req = cfg.request(comm.rank());
            let (bytes, report) = collective_read(comm, fs, &file, &req, hints);
            (
                bytes,
                report.end,
                report.read_total(),
                report.shuffle_total(),
            )
        })
    };
    let mut checksum = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    let mut end = SimTime::ZERO;
    let mut read = SimTime::ZERO;
    let mut shuffle = SimTime::ZERO;
    for (bytes, e, r, s) in &per_rank {
        for &b in bytes {
            checksum ^= b as u64;
            checksum = checksum.wrapping_mul(0x1000_0000_01b3);
        }
        end = end.max(*e);
        read += *r;
        shuffle += *s;
    }
    DepthOutcome {
        label,
        elapsed_secs: end.secs(),
        read_secs: read.secs(),
        shuffle_secs: shuffle.secs(),
        checksum,
    }
}

/// Runs the depth ladder on one scenario, in the order
/// `[sequential, depth-2, depth-3, unbounded]`.
pub fn run_all(cfg: &PipelineBenchConfig) -> Vec<DepthOutcome> {
    vec![
        run_depth(cfg, "sequential", true, PipelineDepth::Sequential),
        run_depth(cfg, "depth-2", true, PipelineDepth::double()),
        run_depth(cfg, "depth-3", true, PipelineDepth::Depth(3)),
        run_depth(cfg, "unbounded", true, PipelineDepth::Unbounded),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_ladder_agrees_and_double_buffering_wins() {
        let cfg = PipelineBenchConfig {
            nprocs: 8,
            nodes: 2,
            osts: 4,
            stripe_unit: 4 << 10,
            piece_bytes: 160,
            pieces_per_rank: 512,
            cb_stripes: 4,
        };
        assert!(cfg.iterations_per_aggregator() >= 4);
        let out = run_all(&cfg);
        for o in &out[1..] {
            assert_eq!(out[0].checksum, o.checksum, "{} bytes diverged", o.label);
        }
        // Double buffering overlaps the read and shuffle legs; on a
        // workload with comparable legs that must show as a speedup.
        assert!(
            out[1].elapsed_secs < out[0].elapsed_secs,
            "depth-2 {} >= sequential {}",
            out[1].elapsed_secs,
            out[0].elapsed_secs
        );
    }
}
