//! One runner per table/figure of the paper (see DESIGN.md §3).

use cc_core::{object_get_vara, MinLocKernel, ObjectIo, ReduceMode, SumKernel};
use cc_model::{ClusterModel, SimTime};
use cc_mpi::World;
use cc_mpiio::{collective_read, independent_read, Hints};
use cc_profile::{CpuProfile, Segment, Table};
use cc_workloads::incite::INCITE_PROJECTS;
use cc_workloads::{ClimateWorkload, WrfGrid, WrfWorkload};

use crate::runner::{calibrate_ratio, run_comparison, run_comparison_trials, scaled_model};
use crate::Scale;

fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

fn fmt_t(t: SimTime) -> String {
    format!("{:.4}", t.secs())
}

// ---------------------------------------------------------------- Table I

/// Table I: INCITE application data requirements.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table I: Data requirements of representative INCITE applications at ALCF",
        &["project", "online_tb", "offline_tb"],
    );
    for p in INCITE_PROJECTS {
        t.row(&[
            p.project.to_string(),
            format!("{}", p.online_tb),
            format!("{}", p.offline_tb),
        ]);
    }
    t
}

// ----------------------------------------------------------------- Fig. 1

/// The Fig. 1 configuration (scaled): 72 ranks on 6 nodes x 12 cores with
/// 6 aggregators per node reading an interleaved 4-D subset of the 429 TB
/// (virtual) climate variable; the per-iteration read and shuffle times of
/// the two-phase protocol are profiled.
pub fn fig01_workload(scale: Scale) -> (ClimateWorkload, ClusterModel, Hints) {
    let (nprocs, shrink) = match scale {
        Scale::Quick => (24, 10),
        Scale::Full => (72, 2),
    };
    let workload = ClimateWorkload::fig1(nprocs, shrink);
    let mut model = ClusterModel::hopper_like(nprocs.div_ceil(12), 12);
    // Paper magnitudes: per-iteration times of a 40-OST Lustre volume.
    model = scaled_model(&model, 64.0);
    let hints = Hints {
        cb_buffer_size: 1 << 20,
        aggregators_per_node: 6,
        nonblocking: true,
        align_domains_to: Some(workload.stripe_size),
        ..Hints::default()
    };
    (workload, model, hints)
}

/// Fig. 1: per-iteration read vs shuffle time of two-phase collective I/O.
pub fn fig01(scale: Scale) -> Table {
    let (workload, model, hints) = fig01_workload(scale);
    let fs = workload.build_fs(156, model.disk.clone());
    let world = World::new(workload.nprocs(), model);
    let fs = &fs;
    let workload_ref = &workload;
    let hints_ref = &hints;
    let reports = world.run(move |comm| {
        let file = fs.open(ClimateWorkload::FILE).expect("created");
        let request = workload_ref.var().byte_extents(workload_ref.slab(comm.rank()));
        collective_read(comm, fs, &file, &request, hints_ref).1
    });

    let mut t = Table::new(
        "Fig. 1: I/O profiling of two-phase collective read (aggregator 0, then summary)",
        &["iteration", "read_s", "shuffle_s"],
    );
    // Show the aggregator with the most shuffle traffic (aggregators
    // whose domain mostly serves their own rank barely shuffle).
    let agg0 = reports
        .iter()
        .filter(|r| !r.iterations.is_empty())
        .max_by(|a, b| a.shuffle_total().cmp(&b.shuffle_total()))
        .expect("at least one aggregator");
    for (i, it) in agg0.iterations.iter().enumerate().take(40) {
        t.row(&[i.to_string(), fmt_t(it.read), fmt_t(it.shuffle)]);
    }
    let (mut read_total, mut shuffle_total, mut iters) = (SimTime::ZERO, SimTime::ZERO, 0usize);
    for r in &reports {
        read_total += r.read_total();
        shuffle_total += r.shuffle_total();
        iters += r.iterations.len();
    }
    t.row(&[
        format!("ALL({iters} iters)"),
        fmt_t(read_total),
        fmt_t(shuffle_total),
    ]);
    let overhead = 100.0 * shuffle_total.secs() / (read_total + shuffle_total).secs().max(1e-12);
    t.row(&[
        "shuffle_overhead_%".into(),
        String::new(),
        fmt(overhead),
    ]);
    t
}

// ------------------------------------------------------------- Figs. 2-3

fn cpu_profile_table(title: &str, segments: Vec<Segment>, horizon: SimTime) -> Table {
    let bins = 16usize;
    let width = SimTime::from_secs((horizon.secs() / bins as f64).max(1e-9));
    let profile = CpuProfile::from_segments(segments, width, horizon);
    let mut t = Table::new(title, &["t_bin_s", "user_%", "sys_%", "wait_%"]);
    for (i, (u, s, w)) in profile.percentages().iter().enumerate() {
        t.row(&[
            fmt(width.secs() * i as f64),
            fmt(*u),
            fmt(*s),
            fmt(*w),
        ]);
    }
    let (u, s, w) = profile.overall();
    t.row(&["OVERALL".into(), fmt(u), fmt(s), fmt(w)]);
    t
}

/// Fig. 2: CPU profile (user/sys/wait) during two-phase collective I/O.
pub fn fig02(scale: Scale) -> Table {
    let (workload, model, hints) = fig01_workload(scale);
    let fs = workload.build_fs(156, model.disk.clone());
    let world = World::new(workload.nprocs(), model);
    let fs = &fs;
    let workload_ref = &workload;
    let hints_ref = &hints;
    let reports = world.run(move |comm| {
        let file = fs.open(ClimateWorkload::FILE).expect("created");
        let request = workload_ref.var().byte_extents(workload_ref.slab(comm.rank()));
        collective_read(comm, fs, &file, &request, hints_ref).1
    });
    let horizon = reports.iter().map(|r| r.end).max().expect("nonempty");
    let segments = reports.into_iter().flat_map(|r| r.segments).collect();
    cpu_profile_table(
        "Fig. 2: CPU profiling of two-phase collective I/O",
        segments,
        horizon,
    )
}

/// Fig. 3: CPU profile during independent I/O on the same request set.
pub fn fig03(scale: Scale) -> Table {
    let (workload, model, _) = fig01_workload(scale);
    let fs = workload.build_fs(156, model.disk.clone());
    let world = World::new(workload.nprocs(), model);
    let fs = &fs;
    let workload_ref = &workload;
    let reports = world.run(move |comm| {
        let file = fs.open(ClimateWorkload::FILE).expect("created");
        let request = workload_ref.var().byte_extents(workload_ref.slab(comm.rank()));
        independent_read(comm, fs, &file, &request).1
    });
    let horizon = reports.iter().map(|r| r.end).max().expect("nonempty");
    let segments = reports.into_iter().flat_map(|r| r.segments).collect();
    cpu_profile_table(
        "Fig. 3: CPU profiling of independent I/O",
        segments,
        horizon,
    )
}

// ----------------------------------------------------------------- Fig. 9

/// The Figs. 9/11/12 benchmark cluster: 5 nodes x 24 cores, one aggregator
/// per node (the paper's default), 800 GB virtual / scaled-real 3-D
/// climate variable.
fn fig09_workload(scale: Scale) -> (ClimateWorkload, ClusterModel, Hints) {
    let nprocs = match scale {
        Scale::Quick => 24,
        Scale::Full => 120,
    };
    // Finely interleaved: every ~1 MB chunk of the file carries an 8 KB
    // piece of (nearly) every rank, so the shuffle phase scatters wide —
    // the paper's access pattern. Per rank: 128 x 2 x 512 f64 = 1 MB.
    // 256 KB stripes spread every chunk over 4 OSTs, keeping per-OST load
    // even at this (scaled-down) file size.
    let workload = ClimateWorkload::interleaved_3d(nprocs, 128, 2, 512, 256 << 10, 156);
    let model = ClusterModel::hopper_like(nprocs.div_ceil(24), 24);
    let hints = Hints {
        cb_buffer_size: 1 << 20,
        aggregators_per_node: 1,
        nonblocking: true,
        align_domains_to: Some(workload.stripe_size),
        ..Hints::default()
    };
    (workload, model, hints)
}

/// Fig. 9: speedup of collective computing over traditional MPI across
/// computation:I/O ratios 10:1 .. 1:10 (paper: avg 1.57x, peak 2.44x at
/// 1:1, I/O-heavy side better than compute-heavy side).
pub fn fig09(scale: Scale) -> Table {
    let (workload, base, hints) = fig09_workload(scale);
    let ratios: &[(f64, &str)] = &[
        (10.0, "10:1"),
        (5.0, "5:1"),
        (2.0, "2:1"),
        (1.0, "1:1"),
        (0.5, "1:2"),
        (0.2, "1:5"),
        (0.1, "1:10"),
    ];
    let mut t = Table::new(
        "Fig. 9: speedup vs computation:I/O ratio (CC over traditional MPI)",
        &["ratio", "t_mpi_s", "t_cc_s", "speedup"],
    );
    let mut speedups = Vec::new();
    for &(ratio, label) in ratios {
        let model = calibrate_ratio(&workload, &base, 156, &hints, ratio);
        let c = run_comparison_trials(&workload, &model, 156, &SumKernel, &hints, 3);
        speedups.push((ratio, c.speedup()));
        t.row(&[
            label.to_string(),
            fmt_t(c.t_mpi),
            fmt_t(c.t_cc),
            fmt(c.speedup()),
        ]);
    }
    let avg =
        speedups.iter().map(|s| s.1).sum::<f64>() / speedups.len() as f64;
    let avg_compute_heavy = speedups
        .iter()
        .filter(|s| s.0 > 1.0)
        .map(|s| s.1)
        .sum::<f64>()
        / speedups.iter().filter(|s| s.0 > 1.0).count() as f64;
    let avg_io_heavy = speedups
        .iter()
        .filter(|s| s.0 < 1.0)
        .map(|s| s.1)
        .sum::<f64>()
        / speedups.iter().filter(|s| s.0 < 1.0).count() as f64;
    t.row(&["AVG".into(), String::new(), String::new(), fmt(avg)]);
    t.row(&[
        "AVG comp>I/O".into(),
        String::new(),
        String::new(),
        fmt(avg_compute_heavy),
    ]);
    t.row(&[
        "AVG I/O>comp".into(),
        String::new(),
        String::new(),
        fmt(avg_io_heavy),
    ]);
    t
}

// ---------------------------------------------------------------- Fig. 10

/// Fig. 10: weak scaling at ratio 1:5 — fixed per-rank request, process
/// counts 24..1024 (paper: speedup grows 1.42x -> 1.7x with scale).
pub fn fig10(scale: Scale) -> Table {
    let procs: &[usize] = match scale {
        Scale::Quick => &[8, 16, 32],
        Scale::Full => &[24, 48, 120, 240, 480, 1024],
    };
    let cores = match scale {
        Scale::Quick => 8,
        Scale::Full => 24,
    };
    let mk_workload = |p: usize| {
        // Per rank: 32 x 2 x 256 f64 = 128 KB, constant (weak scaling);
        // interleaved so shuffle width grows with the process count.
        ClimateWorkload::interleaved_3d(p, 32, 2, 256, 256 << 10, 156)
    };
    let hints = Hints {
        cb_buffer_size: 1 << 20,
        aggregators_per_node: 1,
        nonblocking: true,
        align_domains_to: Some(256 << 10),
        ..Hints::default()
    };
    let mut t = Table::new(
        "Fig. 10: scalability of collective computing (ratio 1:5, weak scaling)",
        &["nprocs", "t_mpi_s", "t_cc_s", "speedup"],
    );
    for &p in procs {
        let workload = mk_workload(p);
        let base = ClusterModel::hopper_like(p.div_ceil(cores), cores);
        // The paper fixes computation:I/O at 1:5 at every scale, so the
        // ratio is re-calibrated per process count (I/O time grows with
        // the aggregate workload under weak scaling).
        let model = calibrate_ratio(&workload, &base, 156, &hints, 0.2);
        let c = run_comparison_trials(&workload, &model, 156, &SumKernel, &hints, 2);
        t.row(&[
            p.to_string(),
            fmt_t(c.t_mpi),
            fmt_t(c.t_cc),
            fmt(c.speedup()),
        ]);
    }
    t
}

// ---------------------------------------------------------------- Fig. 11

/// Fig. 11: "local reduction" overhead of CC vs the traditional reduction,
/// for 128/256/512 processes at 40 GB and 80 GB (virtual) total I/O.
pub fn fig11(scale: Scale) -> Table {
    let (procs, cores): (&[usize], usize) = match scale {
        Scale::Quick => (&[8, 16, 32], 8),
        Scale::Full => (&[128, 256, 512], 24),
    };
    // 40 "GB" virtual = 40 MB real at scale 1000. Interleaved layout:
    // the number of logical runs per rank scales with its data share, so
    // the construction overhead shrinks as ranks are added (fixed total).
    let mk_workload = |p: usize, total_mb: u64| {
        let per_rank_elems = total_mb * (1 << 20) / 8 / p as u64;
        let rows = (per_rank_elems / (2 * 512)).max(1);
        ClimateWorkload::interleaved_3d(p, rows, 2, 512, 1 << 20, 40)
    };
    let mut t = Table::new(
        "Fig. 11: local-reduction overhead (milliseconds, virtual 40/80 GB)",
        &["nprocs", "mpi_40g_ms", "cc_40g_ms", "cc_80g_ms"],
    );
    for &p in procs {
        let model = scaled_model(&ClusterModel::hopper_like(p.div_ceil(cores), cores), 1000.0);
        let hints = Hints {
            cb_buffer_size: 4 << 20,
            aggregators_per_node: 1,
            nonblocking: true,
            align_domains_to: None,
            ..Hints::default()
        };
        let c40 = run_comparison(&mk_workload(p, 40), &model, 156, &SumKernel, &hints);
        let c80 = run_comparison(&mk_workload(p, 80), &model, 156, &SumKernel, &hints);
        t.row(&[
            p.to_string(),
            fmt(c40.mpi_local_reduction.secs() * 1e3),
            fmt(c40.cc_local_reduction.secs() * 1e3),
            fmt(c80.cc_local_reduction.secs() * 1e3),
        ]);
    }
    t
}

// ---------------------------------------------------------------- Fig. 12

/// Fig. 12: metadata storage overhead vs MPI collective buffer size
/// (paper: decreasing, with the knee around 8-12 MB).
pub fn fig12(scale: Scale) -> Table {
    let nprocs = match scale {
        Scale::Quick => 8,
        Scale::Full => 64,
    };
    // Per-rank selection is one contiguous ~3 MB run, so 1 MB buffers
    // split every subset while >= 4 MB buffers keep most runs whole.
    let lon = 6144u64;
    let workload = ClimateWorkload::synthetic_3d(nprocs, 1, 64, lon, 64, lon, 1 << 20, 40);
    let model = ClusterModel::hopper_like(nprocs.div_ceil(24).max(1), 24);
    let mut t = Table::new(
        "Fig. 12: metadata overhead vs MPI collective buffer size",
        &["cb_mb", "metadata_entries", "metadata_kb"],
    );
    for cb_mb in [1u64, 4, 8, 12, 24] {
        let hints = Hints {
            cb_buffer_size: cb_mb << 20,
            aggregators_per_node: 1,
            nonblocking: true,
            align_domains_to: None,
            ..Hints::default()
        };
        let fs = workload.build_fs(156, model.disk.clone());
        let world = World::new(workload.nprocs(), model.clone());
        let fs = &fs;
        let workload_ref = &workload;
        let hints_ref = &hints;
        let stats = world.run(move |comm| {
            let file = fs.open(ClimateWorkload::FILE).expect("created");
            let slab = workload_ref.slab(comm.rank());
            let io = ObjectIo::new(slab.start().to_vec(), slab.count().to_vec())
                .hints(hints_ref.clone());
            let out = object_get_vara(comm, fs, &file, workload_ref.var(), &io, &SumKernel);
            (out.report.metadata_entries, out.report.metadata_bytes)
        });
        let entries: u64 = stats.iter().map(|s| s.0).sum();
        let bytes: u64 = stats.iter().map(|s| s.1).sum();
        t.row(&[
            cb_mb.to_string(),
            entries.to_string(),
            fmt(bytes as f64 / 1024.0),
        ]);
    }
    t
}

// ---------------------------------------------------------------- Fig. 13

/// Fig. 13: the WRF "Min Sea-Level Pressure" task, CC vs traditional MPI,
/// over workload sizes 100-400 (virtual) GB (paper: ~1.45x speedup).
pub fn fig13(scale: Scale) -> Table {
    let (nprocs, sn, cores) = match scale {
        Scale::Quick => (8, 64, 8),
        Scale::Full => (64, 256, 24),
    };
    let sizes_gb = [100u64, 200, 300, 400];
    let mut t = Table::new(
        "Fig. 13: WRF min sea-level pressure task (virtual GB; scaled real 1/1000)",
        &["workload_gb", "t_mpi_s", "t_cc_s", "speedup", "min_slp_hpa", "oracle_ok"],
    );
    for &gb in &sizes_gb {
        // Virtual GB -> real MB (scale 1000). The per-step grid is fixed
        // and the workload grows along the time axis (more simulation
        // output), so per-chunk structure is identical across sizes.
        let real_bytes = gb << 20;
        let we = sn * 2;
        let times = real_bytes / 8 / sn / we;
        let grid = WrfGrid { times, sn, we };
        let wrf = WrfWorkload::new(grid, nprocs, 1 << 20, 40);
        let mut base = ClusterModel::hopper_like(nprocs.div_ceil(cores), cores);
        // A branchy min+location kernel sustains a few hundred MB/s per
        // MagnyCours core, well below a pure streaming sum.
        base.cpu.map_cost_per_byte = 2.2e-9;
        let model = scaled_model(&base, 1000.0);
        let hints = Hints {
            cb_buffer_size: 4 << 20,
            aggregators_per_node: 1,
            nonblocking: true,
            align_domains_to: None,
            ..Hints::default()
        };
        let run = |blocking: bool| {
            let fs = wrf.build_fs(156, model.disk.clone());
            let world = World::new(nprocs, model.clone());
            let fs = &fs;
            let wrf_ref = &wrf;
            let hints_ref = &hints;
            let results = world.run(move |comm| {
                let file = fs.open(WrfWorkload::FILE).expect("created");
                // Spatial-band decomposition: non-contiguous, finely
                // interleaved requests (the paper's access pattern).
                let slab = wrf_ref.band_slab(comm.rank());
                let io = ObjectIo::new(slab.start().to_vec(), slab.count().to_vec())
                    .blocking(blocking)
                    .hints(hints_ref.clone())
                    .reduce(ReduceMode::AllToOne { root: 0 });
                let out =
                    object_get_vara(comm, fs, &file, wrf_ref.slp_var(), &io, &MinLocKernel);
                (out.report.end, out.global)
            });
            let end = results.iter().map(|r| r.0).max().expect("nonempty");
            let global = results.into_iter().find_map(|r| r.1).expect("root result");
            (end, global)
        };
        let (t_cc, g_cc) = run(false);
        let (t_mpi, g_mpi) = run(true);
        assert_eq!(g_cc, g_mpi, "CC and baseline disagree on the minimum");
        let (expect_v, expect_i) = grid.slp_min();
        let ok = (g_cc[0] - expect_v).abs() < 1e-9 && g_cc[1] == expect_i as f64;
        t.row(&[
            gb.to_string(),
            fmt_t(t_mpi),
            fmt_t(t_cc),
            fmt(t_mpi.secs() / t_cc.secs()),
            fmt(g_cc[0]),
            ok.to_string(),
        ]);
    }
    t
}
