//! The generate→decode→map hot-path pipeline, in its pre- and
//! post-optimization forms, shared by the Criterion microbench
//! (`benches/micro.rs`) and the `bench_hotpath` binary that records the
//! before/after throughput in `BENCH_hotpath.json`.
//!
//! "Before" is a faithful copy of the seed implementation: per-element
//! synthetic generation (one index division, one modulo, and one 8-byte
//! temporary per element), a freshly allocated chunk buffer per
//! iteration, and a freshly allocated `Vec<f64>` from `DType::decode` per
//! logical run. "After" is the current stack: [`SyntheticBackend::fill_range`]
//! bulk generation into a reused staging buffer and
//! [`DType::decode_into`] into a reused scratch vector. Both variants
//! produce bit-identical partials, which callers should assert.

use cc_array::DType;
use cc_core::{MapKernel, Partial};
use cc_model::Topology;
use cc_mpiio::{Extent, Hints, OffsetList};
use cc_pfs::backend::{default_climate_value, ElemKind};
use cc_pfs::{SyntheticBackend, ValueFn};

/// The fragmented access pattern the pipeline walks: `runs` logical runs
/// of `run_elems` elements, each separated by a gap of `gap_elems`
/// elements — the fine-grained interleaving that collective I/O (and the
/// paper's Fig. 1 workload) exists for.
#[derive(Debug, Clone, Copy)]
pub struct HotPathConfig {
    /// Logical runs per pipeline pass.
    pub runs: usize,
    /// Elements per run.
    pub run_elems: usize,
    /// Elements skipped between runs.
    pub gap_elems: usize,
}

impl HotPathConfig {
    /// Total elements mapped in one pass.
    pub fn total_elems(&self) -> usize {
        self.runs * self.run_elems
    }

    /// Total elements the file must hold (runs plus gaps).
    pub fn file_elems(&self) -> u64 {
        (self.runs * (self.run_elems + self.gap_elems)) as u64
    }

    /// The job-wide request set whose planning cost an end-to-end pass
    /// pays: every rank of an `nprocs`-rank job runs this config's
    /// run/gap pattern, rank-interleaved (rank `r` owns the `r`-th run
    /// slot of each round). Each process plans the *global* schedule
    /// before touching its own data, so the planner's share of a pass is
    /// measured against requests of all ranks, not just one.
    pub fn planning_requests(&self, nprocs: usize) -> Vec<OffsetList> {
        let esize = ElemKind::F64.size();
        let run_bytes = self.run_elems as u64 * esize;
        let slot_bytes = (self.run_elems + self.gap_elems) as u64 * esize;
        (0..nprocs as u64)
            .map(|r| {
                OffsetList::new(
                    (0..self.runs as u64)
                        .map(|k| Extent {
                            offset: (k * nprocs as u64 + r) * slot_bytes,
                            len: run_bytes,
                        })
                        .collect(),
                )
            })
            .collect()
    }

    /// Topology and hints the planning stage uses: one aggregator per
    /// node, collective buffers sized so each aggregator iterates a few
    /// times over its domain.
    pub fn planning_topology(&self, nprocs: usize, nodes: usize) -> (Topology, Hints) {
        let topo = Topology::new(nodes, nprocs.div_ceil(nodes));
        let hints = Hints {
            cb_buffer_size: 64 << 10,
            aggregators_per_node: 1,
            nonblocking: true,
            align_domains_to: None,
            ..Hints::default()
        };
        (topo, hints)
    }
}

/// The synthetic f64 climate file the pipeline reads. Generic over the
/// generator exactly like the production workloads, which pass the value
/// function as a zero-sized fn item — so it inlines into the fill loops
/// here just as it does in the real stack.
pub fn make_backend(cfg: &HotPathConfig) -> SyntheticBackend<impl ValueFn> {
    SyntheticBackend::new(cfg.file_elems(), ElemKind::F64, default_climate_value)
}

/// The seed's per-element generation loop, kept verbatim as the "before"
/// knob: one `index` division, one `within` modulo, and one covering
/// 8-byte temporary per generated element. In the seed, `esize` came from
/// the backend's runtime `ElemKind` field, so the divisions could not be
/// strength-reduced to shifts; `black_box` preserves that property here.
pub fn fill_range_old<V: ValueFn>(backend: &SyntheticBackend<V>, offset: u64, buf: &mut [u8]) {
    let esize = std::hint::black_box(ElemKind::F64.size());
    let mut pos = offset;
    let mut filled = 0usize;
    while filled < buf.len() {
        let index = pos / esize;
        let within = (pos % esize) as usize;
        let bytes = backend.value(index).to_le_bytes();
        let take = ((esize as usize) - within).min(buf.len() - filled);
        buf[filled..filled + take].copy_from_slice(&bytes[within..within + take]);
        filled += take;
        pos += take as u64;
    }
}

/// One pass of the seed pipeline: allocate a chunk, generate it per
/// element, then per run `DType::decode` (fresh `Vec<f64>` each) and map.
pub fn run_before<V: ValueFn>(
    cfg: &HotPathConfig,
    backend: &SyntheticBackend<V>,
    kernel: &dyn MapKernel,
) -> Partial {
    let esize = ElemKind::F64.size() as usize;
    let stride = cfg.run_elems + cfg.gap_elems;
    let mut acc = kernel.identity();
    let mut chunk = vec![0u8; (cfg.file_elems() as usize) * esize];
    fill_range_old(backend, 0, &mut chunk);
    for r in 0..cfg.runs {
        let start_elem = (r * stride) as u64;
        let off = start_elem as usize * esize;
        let len = cfg.run_elems * esize;
        let values = DType::F64.decode(&chunk[off..off + len]);
        kernel.map(&mut acc, start_elem, &values);
    }
    acc
}

/// Reusable buffers for the optimized pipeline — the per-rank `Scratch`
/// arena pattern of `cc-core::engine`.
#[derive(Debug, Default)]
pub struct HotPathScratch {
    /// Staging buffer the bulk generation lands in.
    pub bytes: Vec<u8>,
    /// Decoded values, reused across runs.
    pub values: Vec<f64>,
}

/// One pass of the optimized pipeline: bulk `fill_range` into a reused
/// staging buffer, then per run `decode_into` a reused scratch vector and
/// map. Allocation-free once `scratch` has reached its high-water mark.
pub fn run_after<V: ValueFn>(
    cfg: &HotPathConfig,
    backend: &SyntheticBackend<V>,
    kernel: &dyn MapKernel,
    scratch: &mut HotPathScratch,
) -> Partial {
    let esize = ElemKind::F64.size() as usize;
    let stride = cfg.run_elems + cfg.gap_elems;
    let mut acc = kernel.identity();
    scratch.bytes.clear();
    scratch.bytes.resize((cfg.file_elems() as usize) * esize, 0);
    backend.fill_range(0, &mut scratch.bytes);
    for r in 0..cfg.runs {
        let start_elem = (r * stride) as u64;
        let off = start_elem as usize * esize;
        let len = cfg.run_elems * esize;
        DType::F64.decode_into(&scratch.bytes[off..off + len], &mut scratch.values);
        kernel.map(&mut acc, start_elem, &scratch.values);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_core::{MinLocKernel, SumKernel};

    #[test]
    fn before_and_after_are_bit_exact() {
        let cfg = HotPathConfig {
            runs: 37,
            run_elems: 61,
            gap_elems: 13,
        };
        let backend = make_backend(&cfg);
        let mut scratch = HotPathScratch::default();
        for kernel in [&SumKernel as &dyn MapKernel, &MinLocKernel] {
            let before = run_before(&cfg, &backend, kernel);
            let after = run_after(&cfg, &backend, kernel, &mut scratch);
            assert_eq!(before, after, "{} diverged", kernel.name());
        }
    }

    #[test]
    fn planning_requests_walks_agree() {
        use crate::plan::{walk_compiled, walk_query};
        use cc_mpiio::{CollectivePlan, PlanSchedule};
        use std::sync::Arc;

        let cfg = HotPathConfig {
            runs: 24,
            run_elems: 8,
            gap_elems: 8,
        };
        let nprocs = 6;
        let (topo, hints) = cfg.planning_topology(nprocs, 2);
        let reqs = Arc::new(cfg.planning_requests(nprocs));
        let plan = CollectivePlan::build(Arc::clone(&reqs), &topo, nprocs, &hints);
        let sched = PlanSchedule::compile(plan.clone());
        assert_eq!(walk_query(&plan), walk_compiled(&sched));
    }

    #[test]
    fn old_generation_matches_fill_range() {
        let cfg = HotPathConfig {
            runs: 5,
            run_elems: 11,
            gap_elems: 3,
        };
        let backend = make_backend(&cfg);
        let n = cfg.file_elems() as usize * 8;
        let mut old = vec![0u8; n];
        let mut new = vec![0u8; n];
        fill_range_old(&backend, 0, &mut old);
        backend.fill_range(0, &mut new);
        assert_eq!(old, new);
    }
}
