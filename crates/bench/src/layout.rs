//! File-domain layout benchmark: Even vs StripeAligned vs GroupCyclic.
//!
//! The scenario is the Lustre convoy effect group-cyclic partitioning
//! exists to kill. The file round-robins over many OSTs; every rank reads
//! a dense contiguous slab, so the covered range is the whole file and
//! even partitioning hands every aggregator a domain that starts at the
//! *same stripe phase* (domains are whole multiples of the striping
//! period). Consequence: at collective-buffer iteration `i`, **all**
//! aggregators read stripes of the *same* few OSTs — a convoy that
//! serializes on one OST subset per wavefront while the rest of the
//! array idles. Group-cyclic domains give each aggregator whole
//! stripe-sets from a private OST subset, so every iteration keeps all
//! OSTs streaming.
//!
//! The harness replays exactly what the read phase of the two-phase
//! engines does with a compiled [`PlanSchedule`] — per aggregator, chain
//! `Pfs::read_multi` over the active iterations' covering ranges in
//! shared virtual time — without the shuffle or MPI machinery, so the
//! measured quantity is the read-phase makespan alone. Every strategy
//! scatters the chunk pieces back into per-rank buffers and the binary
//! asserts the per-rank checksums are bit-identical across strategies:
//! the layout redistributes *who reads what*, never *what is read*.

use std::sync::Arc;

use cc_model::{DiskModel, SimTime, Topology};
use cc_mpiio::{CollectivePlan, DomainPartition, Hints, OffsetList, PlanSchedule, Striping};
use cc_pfs::{MemBackend, Pfs, StripeLayout};

use crate::Scale;

/// Shape of one layout-benchmark scenario.
#[derive(Debug, Clone, Copy)]
pub struct LayoutBenchConfig {
    /// Ranks in the job.
    pub nprocs: usize,
    /// Nodes (one aggregator per node).
    pub nodes: usize,
    /// OSTs in the file system; the file stripes over all of them.
    pub osts: usize,
    /// Stripe size in bytes.
    pub stripe_unit: u64,
    /// Per-rank contiguous slab, in stripes.
    pub slab_stripes: u64,
    /// Collective buffer size, in stripes.
    pub cb_stripes: u64,
}

impl LayoutBenchConfig {
    /// `Full` is the acceptance configuration (≥256 ranks, ≥64 OSTs);
    /// `Quick` shrinks it for CI smoke runs while keeping the convoy
    /// geometry (domains a whole multiple of the striping period).
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Full => Self {
                nprocs: 256,
                nodes: 32,
                osts: 64,
                stripe_unit: 64 << 10,
                slab_stripes: 16,
                cb_stripes: 8,
            },
            Scale::Quick => Self {
                nprocs: 32,
                nodes: 8,
                osts: 16,
                stripe_unit: 8 << 10,
                slab_stripes: 8,
                cb_stripes: 4,
            },
        }
    }

    /// Bytes of one rank's slab.
    pub fn slab(&self) -> u64 {
        self.slab_stripes * self.stripe_unit
    }

    /// Total file size: every rank's slab, no holes.
    pub fn file_size(&self) -> u64 {
        self.nprocs as u64 * self.slab()
    }

    /// Aggregator count (one per node).
    pub fn aggregators(&self) -> usize {
        self.nodes
    }

    /// The planner hints for `partition`, with the striping injected the
    /// same way the engines do it.
    pub fn hints(&self, partition: DomainPartition) -> Hints {
        Hints {
            cb_buffer_size: self.cb_stripes * self.stripe_unit,
            aggregators_per_node: 1,
            align_domains_to: None,
            domain_partition: partition,
            striping: Some(Striping {
                unit: self.stripe_unit,
                factor: self.osts,
            }),
            ..Hints::default()
        }
    }

    /// Every rank's request: rank `r` reads its dense slab.
    pub fn requests(&self) -> Arc<Vec<OffsetList>> {
        Arc::new(
            (0..self.nprocs as u64)
                .map(|r| OffsetList::contiguous(r * self.slab(), self.slab()))
                .collect(),
        )
    }
}

/// The deterministic byte at file offset `o`.
pub fn value_at(o: u64) -> u8 {
    (o.wrapping_mul(131) ^ (o >> 7)) as u8
}

/// What one strategy's replay produced.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// The strategy replayed.
    pub partition: DomainPartition,
    /// Read-phase makespan in virtual seconds (max over aggregators of
    /// the completion of their chained covering reads).
    pub read_secs: f64,
    /// OST load imbalance after the replay (busiest / mean busy-seconds).
    pub imbalance: f64,
    /// Seek-charged service runs the OSTs performed.
    pub extents_served: u64,
    /// Most OSTs any single aggregator's domain touched.
    pub max_osts_per_aggregator: usize,
    /// FNV-1a checksum over every rank's reassembled request bytes, in
    /// rank order — must be bit-identical across strategies.
    pub checksum: u64,
}

/// Replays the read phase of one collective under `partition` and scatters
/// the pieces into per-rank buffers.
pub fn run_strategy(cfg: &LayoutBenchConfig, partition: DomainPartition) -> StrategyOutcome {
    let size = cfg.file_size();
    let fs = Pfs::new(cfg.osts, DiskModel::lustre_like());
    let file = fs.create(
        "layout",
        StripeLayout::round_robin(cfg.stripe_unit, cfg.osts, 0, cfg.osts),
        Box::new(MemBackend::from_bytes((0..size).map(value_at).collect())),
    );

    let hints = cfg.hints(partition);
    let topo = Topology::new(cfg.nodes, cfg.nprocs.div_ceil(cfg.nodes));
    let schedule = PlanSchedule::compile(CollectivePlan::build(
        cfg.requests(),
        &topo,
        cfg.nprocs,
        &hints,
    ));

    let naggs = schedule.plan().aggregators.len();
    let slab = cfg.slab() as usize;
    let mut rank_bufs: Vec<Vec<u8>> = vec![vec![0u8; slab]; cfg.nprocs];
    let mut chunk = Vec::new();
    let mut makespan = SimTime::ZERO;
    let mut max_osts = 0usize;
    for a in 0..naggs {
        // Each aggregator issues its covering reads back-to-back from
        // t = 0, exactly like the engines' I/O lanes; contention plays
        // out inside the shared OST queues.
        let mut t = SimTime::ZERO;
        let mut touched = vec![false; cfg.osts];
        for &iter in schedule.active_iterations(a) {
            let ranges = schedule.read_ranges(a, iter);
            let Some(&(rlo, _)) = ranges.first() else {
                continue;
            };
            t = fs.read_multi(&file, rlo, ranges, t, &mut chunk);
            for &(lo, len) in ranges {
                for ext in file.layout().map_range(lo, len) {
                    touched[ext.ost] = true;
                }
            }
            for (dst, pieces) in schedule.dests_with_pieces(a, iter) {
                for p in pieces {
                    let src = (p.extent.offset - rlo) as usize;
                    let dst_off = p.buf_offset as usize;
                    rank_bufs[dst][dst_off..dst_off + p.extent.len as usize]
                        .copy_from_slice(&chunk[src..src + p.extent.len as usize]);
                }
            }
        }
        makespan = makespan.max(t);
        max_osts = max_osts.max(touched.iter().filter(|&&b| b).count());
    }

    // Planner-free oracle: every rank got exactly its slab's bytes.
    for (r, buf) in rank_bufs.iter().enumerate() {
        let base = r as u64 * cfg.slab();
        assert!(
            buf.iter()
                .enumerate()
                .all(|(i, &b)| b == value_at(base + i as u64)),
            "rank {r} bytes diverged from the backend under {partition:?}"
        );
    }
    let mut checksum = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for buf in &rank_bufs {
        for &b in buf {
            checksum ^= b as u64;
            checksum = checksum.wrapping_mul(0x1000_0000_01b3);
        }
    }

    StrategyOutcome {
        partition,
        read_secs: makespan.secs(),
        imbalance: fs.ost_imbalance(),
        extents_served: fs.stats().extents_served,
        max_osts_per_aggregator: max_osts,
        checksum,
    }
}

/// Runs all three strategies on the same scenario, in the order
/// `[Even, StripeAligned, GroupCyclic]`.
pub fn run_all(cfg: &LayoutBenchConfig) -> Vec<StrategyOutcome> {
    [
        DomainPartition::Even,
        DomainPartition::StripeAligned,
        DomainPartition::GroupCyclic,
    ]
    .into_iter()
    .map(|p| run_strategy(cfg, p))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_agree_and_group_cyclic_wins() {
        let cfg = LayoutBenchConfig {
            nprocs: 16,
            nodes: 4,
            osts: 8,
            stripe_unit: 4 << 10,
            slab_stripes: 4,
            // 2 stripes per group-cyclic block (8 OSTs / 4 aggregators), so
            // cb = 4 stripes merges two consecutive periods per iteration —
            // the stripe-set coalescing under test.
            cb_stripes: 4,
        };
        let out = run_all(&cfg);
        assert_eq!(out[0].checksum, out[1].checksum, "StripeAligned diverged");
        assert_eq!(out[0].checksum, out[2].checksum, "GroupCyclic diverged");
        // Domains are period-multiples here, so even partitioning convoys
        // on one OST subset per iteration; group-cyclic keeps private OSTs
        // and must be measurably faster.
        let speedup = out[0].read_secs / out[2].read_secs;
        assert!(speedup > 1.3, "group-cyclic speedup only {speedup:.2}x");
        // Each aggregator's group-cyclic domain stays on its OST slice.
        let cap = cfg.osts.div_ceil(cfg.aggregators()) + 1;
        assert!(
            out[2].max_osts_per_aggregator <= cap,
            "group-cyclic aggregator touched {} OSTs (cap {cap})",
            out[2].max_osts_per_aggregator
        );
        // And it balances the array at least as well as the convoy.
        assert!(out[2].imbalance <= out[0].imbalance + 1e-9);
    }
}
