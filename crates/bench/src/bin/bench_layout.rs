//! Measures the virtual read-phase makespan of the three file-domain
//! partition strategies — Even, StripeAligned, GroupCyclic — on the Lustre
//! convoy scenario and writes `BENCH_layout.json`.
//!
//! Every strategy replays the identical collective (same ranks, same
//! requests, same striped file) through the compiled schedule and the
//! vectorized OST booking path; the binary asserts the per-rank
//! reassembled checksums are bit-identical before reporting anything, so
//! the speedup comes from *where* the reads land, never from reading less.
//! `--quick` shrinks the scenario for CI smoke runs.

use cc_bench::layout::{run_all, LayoutBenchConfig};
use cc_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let cfg = LayoutBenchConfig::for_scale(scale);
    let out = run_all(&cfg);
    let (even, aligned, cyclic) = (&out[0], &out[1], &out[2]);

    // Correctness gate: the layout redistributes who reads what, never
    // what is read.
    assert_eq!(
        even.checksum, aligned.checksum,
        "StripeAligned bytes diverged from Even"
    );
    assert_eq!(
        even.checksum, cyclic.checksum,
        "GroupCyclic bytes diverged from Even"
    );
    let cap = cfg.osts.div_ceil(cfg.aggregators()) + 1;
    assert!(
        cyclic.max_osts_per_aggregator <= cap,
        "group-cyclic aggregator touched {} OSTs (cap {cap})",
        cyclic.max_osts_per_aggregator
    );

    let speedup_cyclic = even.read_secs / cyclic.read_secs;
    let speedup_aligned = even.read_secs / aligned.read_secs;
    let strat = |o: &cc_bench::layout::StrategyOutcome, speedup: f64| {
        format!(
            "{{ \"read_secs\": {:.6e}, \"speedup_vs_even\": {:.2}, \"ost_imbalance\": {:.3}, \"extents_served\": {}, \"max_osts_per_aggregator\": {} }}",
            o.read_secs, speedup, o.imbalance, o.extents_served, o.max_osts_per_aggregator
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"layout_domains\",\n  \"scale\": \"{}\",\n  \"speedup\": {:.2},\n  \"nprocs\": {},\n  \"aggregators\": {},\n  \"osts\": {},\n  \"stripe_unit\": {},\n  \"slab_stripes\": {},\n  \"cb_stripes\": {},\n  \"checksum\": \"{:016x}\",\n  \"even\": {},\n  \"stripe_aligned\": {},\n  \"group_cyclic\": {}\n}}\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
        speedup_cyclic,
        cfg.nprocs,
        cfg.aggregators(),
        cfg.osts,
        cfg.stripe_unit,
        cfg.slab_stripes,
        cfg.cb_stripes,
        even.checksum,
        strat(even, 1.0),
        strat(aligned, speedup_aligned),
        strat(cyclic, speedup_cyclic),
    );
    print!("{json}");
    std::fs::write("BENCH_layout.json", &json).expect("write BENCH_layout.json");
    eprintln!(
        "group-cyclic read phase {speedup_cyclic:.2}x vs even (imbalance {:.2} -> {:.2}) \
         ({} ranks, {} aggregators, {} OSTs)",
        even.imbalance,
        cyclic.imbalance,
        cfg.nprocs,
        cfg.aggregators(),
        cfg.osts
    );
}
