//! Ablation study: write strategy. Pass --quick for a smaller run.
fn main() {
    let scale = cc_bench::Scale::from_args();
    cc_bench::emit(&cc_bench::ablation_write(scale), "ablation_write");
}
