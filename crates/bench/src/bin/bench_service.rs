//! Multi-job collective service benchmark: runs mixed populations of
//! N in {2, 4, 8, 16} batch sweeps + interactive ROI queries through the
//! shared-cluster scheduler and compares against chaining the same jobs
//! serially; writes `BENCH_service.json`.
//!
//! Every population runs three ways over identically-built file systems —
//! concurrent under QoS-WFQ, serial, and each job solo — and the harness
//! asserts per-job FNV checksums are bit-identical across all three
//! before reporting: the scheduler reorders *when* demand lands on shared
//! OSTs and backbone links, never what any job computes. `--quick`
//! shrinks the workload for CI smoke runs.

use cc_bench::service::{ms, run_sweep, secs_per_job, row_json, ServiceBenchConfig};
use cc_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let cfg = ServiceBenchConfig::for_scale(scale);
    let rows = run_sweep(&cfg);

    // Acceptance: at 8 concurrent mixed jobs the service must deliver at
    // least 1.5x the aggregate throughput of serial chaining.
    let at8 = rows
        .iter()
        .find(|r| r.n_jobs == 8)
        .expect("sweep covers N=8");
    assert!(
        at8.speedup >= 1.5,
        "aggregate throughput at N=8 only {:.2}x over serial",
        at8.speedup
    );
    // Acceptance: the shape-repeating population must hit other jobs'
    // compiled plans (cross-job reuse is the point of the shared cache).
    for r in rows.iter().filter(|r| r.n_jobs >= 4) {
        assert!(
            r.cache.cross_job_hits + r.cache.cross_job_translations > 0,
            "no cross-job plan reuse at N={}",
            r.n_jobs
        );
    }

    let traffic = cfg.traffic(8);
    let json = format!(
        "{{\n  \"bench\": \"multi_job_service\",\n  \"scale\": \"{}\",\n  \"speedup_at_8_jobs\": {:.3},\n  \"nodes\": {},\n  \"cores_per_node\": {},\n  \"backbone_bytes_per_sec\": {:.3e},\n  \"osts\": {},\n  \"sweep_steps\": {},\n  \"rows_per_step\": {},\n  \"cols\": {},\n  \"policy\": \"qos_wfq\",\n  \"populations\": [\n    {},\n    {},\n    {},\n    {}\n  ]\n}}\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
        at8.speedup,
        cfg.nodes,
        cfg.cores,
        cfg.backbone_bytes_per_sec,
        traffic.total_osts,
        traffic.sweep_steps,
        traffic.rows_per_step,
        traffic.cols,
        row_json(&rows[0]),
        row_json(&rows[1]),
        row_json(&rows[2]),
        row_json(&rows[3]),
    );
    print!("{json}");
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    for r in &rows {
        eprintln!(
            "N={:2}: speedup {:.2}x ({:.1} -> {:.1} virtual ms/job), p99 interactive {:.2} ms \
             (serial {:.2} ms), cross-job reuse {:.0}% of {} lookups",
            r.n_jobs,
            r.speedup,
            ms(secs_per_job(r.serial_makespan_secs, r.n_jobs)),
            ms(secs_per_job(r.concurrent_makespan_secs, r.n_jobs)),
            ms(r.p99_interactive_secs),
            ms(r.p99_interactive_serial_secs),
            r.cross_job_rate * 100.0,
            r.cache.lookups(),
        );
    }
}
