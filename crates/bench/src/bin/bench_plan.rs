//! Measures planner cost — query-based vs compiled vs cached — on the
//! paper-like multi-step sweep and writes `BENCH_plan.json`.
//!
//! The three strategies (see `cc_bench::plan`) answer the identical set of
//! schedule questions the two-phase engines ask, and the binary asserts
//! their checksums match before timing anything: the speedup is from
//! answering the same questions faster, not from answering fewer. `--quick`
//! shrinks the scenario for CI smoke runs; the default is the full
//! hundreds-of-ranks / thousands-of-extents configuration.

use std::sync::Arc;
use std::time::Instant;

use cc_bench::plan::{sweep_cached, sweep_compiled, sweep_query, PlanBenchConfig};
use cc_bench::Scale;
use cc_mpiio::OffsetList;

fn main() {
    let scale = Scale::from_args();
    let cfg = PlanBenchConfig::for_scale(scale);
    let requests: Vec<Arc<Vec<OffsetList>>> = (0..cfg.steps)
        .map(|s| Arc::new(cfg.requests(s)))
        .collect();

    // Correctness gate (doubles as warm-up): all strategies must answer
    // the engine's schedule questions identically, and the cache must
    // resolve the sweep as one compile plus translations.
    let query_sum = sweep_query(&cfg, &requests);
    let compiled_sum = sweep_compiled(&cfg, &requests);
    let (cached_sum, stats) = sweep_cached(&cfg, &requests);
    assert_eq!(query_sum, compiled_sum, "compiled walk diverged from query");
    assert_eq!(query_sum, cached_sum, "cached walk diverged from query");
    assert_eq!(stats.misses, 1, "sweep should compile exactly once");
    assert_eq!(
        stats.hits + stats.translations,
        cfg.steps as u64 - 1,
        "every later step should reuse the compiled schedule"
    );

    let passes: u32 = match scale {
        Scale::Quick => 5,
        Scale::Full => 3,
    };
    let time = |f: &dyn Fn() -> u64| {
        let t = Instant::now();
        for _ in 0..passes {
            std::hint::black_box(f());
        }
        t.elapsed().as_secs_f64() / (passes as usize * cfg.steps) as f64
    };
    let query_secs = time(&|| sweep_query(&cfg, &requests));
    let compiled_secs = time(&|| sweep_compiled(&cfg, &requests));
    let cached_secs = time(&|| sweep_cached(&cfg, &requests).0);

    let speedup_compiled = query_secs / compiled_secs;
    let speedup_cached = query_secs / cached_secs;
    let total_extents = cfg.nprocs * cfg.extents_per_rank;

    // Headline: the compiled planner as the engines run it on a multi-step
    // sweep — compile once, reuse via the plan cache for every later step.
    // `compiled.speedup_vs_query` isolates the cold per-step cost of
    // compile + flat-table answers with no reuse at all.
    let json = format!(
        "{{\n  \"bench\": \"plan_compile_cache\",\n  \"scale\": \"{}\",\n  \"speedup\": {:.2},\n  \"nprocs\": {},\n  \"nodes\": {},\n  \"extents_per_rank\": {},\n  \"total_extents\": {},\n  \"extent_len\": {},\n  \"cb_buffer_size\": {},\n  \"steps\": {},\n  \"query\": {{ \"secs_per_step\": {:.6e} }},\n  \"compiled\": {{ \"secs_per_step\": {:.6e}, \"speedup_vs_query\": {:.2} }},\n  \"cached\": {{ \"secs_per_step\": {:.6e}, \"speedup_vs_query\": {:.2}, \"misses\": {}, \"translations\": {}, \"hits\": {} }}\n}}\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
        speedup_cached,
        cfg.nprocs,
        cfg.nodes,
        cfg.extents_per_rank,
        total_extents,
        cfg.extent_len,
        cfg.cb,
        cfg.steps,
        query_secs,
        compiled_secs,
        speedup_compiled,
        cached_secs,
        speedup_cached,
        stats.misses,
        stats.translations,
        stats.hits,
    );
    print!("{json}");
    std::fs::write("BENCH_plan.json", &json).expect("write BENCH_plan.json");
    eprintln!(
        "planner sweep speedup {speedup_cached:.2}x vs query (cold compile {speedup_compiled:.2}x) \
         ({} ranks x {} extents, {} steps)",
        cfg.nprocs, cfg.extents_per_rank, cfg.steps
    );
}
