//! Regenerates the paper's Fig. 9. Pass --quick for a smaller run.
fn main() {
    let scale = cc_bench::Scale::from_args();
    cc_bench::emit(&cc_bench::fig09(scale), "fig09");
}
