//! Many-task request-fusion benchmark: runs ≥10k tiny analysis tasks
//! (1024 under `--quick`) through the batch runner three ways — fused
//! collective sweeps, independent per-task I/O, and solo ground truth —
//! over identically-built file systems, and writes `BENCH_manytask.json`.
//!
//! Per-task FNV checksums must be bit-identical across all three modes
//! and match brute-force oracles before anything is reported: fusion
//! changes how bytes reach tasks, never what any task computes. The
//! acceptance gate is a ≥10x reduction in OST extents served and in
//! total OST busy-time, fused vs independent.

use cc_bench::manytask::{manytask_row_json, run_comparison_manytask, ManyTaskBenchConfig};
use cc_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let cfg = ManyTaskBenchConfig::for_scale(scale);
    let row = run_comparison_manytask(&cfg);

    // Acceptance: fusing the population must cut both the positioning
    // operations and the total OST busy-time by an order of magnitude.
    assert!(
        row.extent_reduction >= 10.0,
        "extent reduction only {:.1}x ({} independent -> {} fused)",
        row.extent_reduction,
        row.extents_independent,
        row.extents_fused
    );
    assert!(
        row.busy_reduction >= 10.0,
        "OST busy-time reduction only {:.1}x ({:.3}s independent -> {:.3}s fused)",
        row.busy_reduction,
        row.busy_independent_secs,
        row.busy_fused_secs
    );
    // Acceptance: every task rode a fused sweep, and compiled schedules
    // amortize over many tasks.
    assert_eq!(row.cache.fused_tasks as usize, row.tasks);
    assert!(
        row.tasks_per_schedule >= row.tasks as f64 / (2.0 * row.bins as f64),
        "only {:.1} tasks per compiled schedule over {} bins",
        row.tasks_per_schedule,
        row.bins
    );

    let t = cfg.workload();
    let json = format!(
        "{{\n  \"bench\": \"manytask_fusion\",\n  \"scale\": \"{}\",\n  \
         \"extent_reduction\": {:.1},\n  \"busy_reduction\": {:.1},\n  \
         \"nodes\": {},\n  \"cores_per_node\": {},\n  \"ranks\": {},\n  \
         \"osts\": {},\n  \"rows\": {},\n  \"cols\": {},\n  \
         \"task_rows\": {},\n  \"task_cols\": {},\n  \"waves\": {},\n  \
         \"comparison\": {}\n}}\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
        row.extent_reduction,
        row.busy_reduction,
        cfg.nodes,
        cfg.cores,
        t.nprocs,
        t.total_osts,
        t.rows,
        t.cols,
        t.task_rows,
        t.task_cols,
        t.waves,
        manytask_row_json(&row),
    );
    print!("{json}");
    std::fs::write("BENCH_manytask.json", &json).expect("write BENCH_manytask.json");
    eprintln!(
        "{} tasks in {} bins: extents {} -> {} ({:.0}x), OST busy {:.3}s -> {:.3}s ({:.0}x), \
         bytes {} -> {} (dedup {:.2}x), p50 {:.1} ms -> {:.1} ms, p99 {:.1} ms -> {:.1} ms, \
         {:.0} tasks/schedule",
        row.tasks,
        row.bins,
        row.extents_independent,
        row.extents_fused,
        row.extent_reduction,
        row.busy_independent_secs,
        row.busy_fused_secs,
        row.busy_reduction,
        row.bytes_independent,
        row.bytes_fused,
        row.dedup_factor,
        row.p50_independent_secs * 1e3,
        row.p50_fused_secs * 1e3,
        row.p99_independent_secs * 1e3,
        row.p99_fused_secs * 1e3,
        row.tasks_per_schedule,
    );
}
