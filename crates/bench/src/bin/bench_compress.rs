//! Sweeps the error-bounded frame codec over `bandwidth x bound` cells of
//! the smooth-field collective read and write, asserts the correctness
//! and wire-reduction acceptance gates, and writes `BENCH_compress.json`.
//!
//! Gates, in the order they are checked:
//!
//! 1. `Compression::Off` leaves the engines bit-identical to the
//!    pre-codec stack: at full scale, the PR 6 pipeline workload's FNV
//!    checksum must still be `bf23e472a9022325`.
//! 2. Lossless frames move identical bytes (read checksums and written
//!    files match the raw run exactly, in every bandwidth cell).
//! 3. Error-bounded frames honor the bound end to end: read errors stay
//!    within one codec hop, written files within the two compounding
//!    hops (shuffle + write-back).
//! 4. The default bound cuts inter-node wire bytes >= 3x on the smooth
//!    field (per-lane `CommStats` logical vs wire counters).
//! 5. On the slowed interconnect, where wire time dominates, the default
//!    bound turns those bytes into virtual-time speedup for both the
//!    read shuffle and the write-back.

use cc_bench::compress::{read_case, write_case, CompressBenchConfig, CompressOutcome};
use cc_bench::pipeline::{run_depth, PipelineBenchConfig};
use cc_bench::Scale;
use cc_mpiio::{Compression, ErrorBound, PipelineDepth};

/// The PR 6 full-scale pipeline checksum `Compression::Off` must preserve.
const PIPELINE_OFF_CHECKSUM: u64 = 0xbf23_e472_a902_2325;

fn main() {
    let scale = Scale::from_args();
    let cfg = CompressBenchConfig::for_scale(scale);
    // The field spans [260, 340]; per-payload bounds resolve to at most
    // the global-range bound, so it caps every cell's observed error.
    let default_bound = ErrorBound::default();
    let loose_bound = ErrorBound::relative(1e-2);
    let bound_of = |b: &ErrorBound| b.resolve(260.0, 340.0);

    // Gate 1: Off is bit-identical to the pre-codec engines. The full
    // pipeline workload (256 ranks, PR 6 acceptance config) runs with
    // default hints — compression off — and must reproduce its checksum.
    let pipeline_checksum = (scale == Scale::Full).then(|| {
        let pipe = PipelineBenchConfig::for_scale(Scale::Full);
        let out = run_depth(&pipe, "off-gate", true, PipelineDepth::double());
        assert_eq!(
            out.checksum, PIPELINE_OFF_CHECKSUM,
            "Compression::Off no longer reproduces the PR 6 pipeline bytes"
        );
        out.checksum
    });

    let modes: [(&str, Compression); 4] = [
        ("off", Compression::Off),
        ("lossless", Compression::Lossless),
        ("eb_default", Compression::ErrorBounded(default_bound)),
        ("eb_loose", Compression::ErrorBounded(loose_bound)),
    ];
    // The calibrated Gemini-like interconnect leaves this workload
    // disk-bound; the congested point slows it 32x so wire bytes carry
    // real clock weight and the codec's reduction must show as speedup.
    let bandwidths: [(&str, f64); 2] = [("calibrated", 1.0), ("congested", 32.0)];

    let mut rows = Vec::new();
    for (bw_label, slowdown) in bandwidths {
        let mut read_off_elapsed = 0.0;
        let mut write_off_elapsed = 0.0;
        let mut read_off_checksum = 0u64;
        let mut write_off_checksum = 0u64;
        for (mode_label, mode) in modes {
            let read = read_case(&cfg, mode, slowdown);
            let write = write_case(&cfg, mode, slowdown);
            match mode {
                Compression::Off => {
                    // Gate baselines; raw frames must not shrink anywhere.
                    assert_eq!(read.logical_inter, read.wire_inter);
                    assert_eq!(write.logical_inter, write.wire_inter);
                    assert_eq!(read.max_err, 0.0);
                    assert_eq!(write.max_err, 0.0);
                    read_off_elapsed = read.elapsed_secs;
                    write_off_elapsed = write.elapsed_secs;
                    read_off_checksum = read.checksum;
                    write_off_checksum = write.checksum;
                }
                Compression::Lossless => {
                    // Gate 2: identical bytes through compressed frames.
                    assert_eq!(
                        read.checksum, read_off_checksum,
                        "lossless read diverged ({bw_label})"
                    );
                    assert_eq!(
                        write.checksum, write_off_checksum,
                        "lossless write diverged ({bw_label})"
                    );
                    assert_eq!(read.max_err, 0.0);
                    assert_eq!(write.max_err, 0.0);
                }
                Compression::ErrorBounded(eb) => {
                    // Gate 3: bounds hold — one hop reading, two writing.
                    // The second hop quantizes *reconstructed* values,
                    // whose range the first hop widened by up to a bound
                    // on each side, so its resolved bound inflates too.
                    let bound = bound_of(&eb);
                    let two_hop = bound + eb.resolve(260.0 - bound, 340.0 + bound);
                    assert!(
                        read.max_err <= bound + 1e-12,
                        "{mode_label}/{bw_label} read err {:e} > bound {bound:e}",
                        read.max_err
                    );
                    assert!(
                        write.max_err <= two_hop + 1e-12,
                        "{mode_label}/{bw_label} write err {:e} > two-hop bound {two_hop:e}",
                        write.max_err
                    );
                    // Gate 4: the wire actually shrank.
                    assert!(
                        read.wire_ratio() >= 3.0,
                        "{mode_label}/{bw_label} read wire ratio only {:.2}x",
                        read.wire_ratio()
                    );
                    assert!(
                        write.wire_ratio() >= 3.0,
                        "{mode_label}/{bw_label} write wire ratio only {:.2}x",
                        write.wire_ratio()
                    );
                    // Gate 5: fewer wire bytes become virtual-time speedup
                    // once the interconnect is the bottleneck.
                    if slowdown > 1.0 {
                        assert!(
                            read.elapsed_secs < read_off_elapsed,
                            "{mode_label}/{bw_label} read {:.4e}s not faster than raw {:.4e}s",
                            read.elapsed_secs,
                            read_off_elapsed
                        );
                        assert!(
                            write.elapsed_secs < write_off_elapsed,
                            "{mode_label}/{bw_label} write {:.4e}s not faster than raw {:.4e}s",
                            write.elapsed_secs,
                            write_off_elapsed
                        );
                    }
                }
            }
            let row = |op: &str, o: &CompressOutcome, off_elapsed: f64| {
                format!(
                    "    {{ \"bandwidth\": \"{bw_label}\", \"mode\": \"{mode_label}\", \"op\": \"{op}\", \"elapsed_secs\": {:.6e}, \"speedup_vs_off\": {:.3}, \"logical_inter\": {}, \"wire_inter\": {}, \"wire_ratio\": {:.2}, \"max_err\": {:.3e}, \"checksum\": \"{:016x}\" }}",
                    o.elapsed_secs,
                    if off_elapsed > 0.0 { off_elapsed / o.elapsed_secs } else { 1.0 },
                    o.logical_inter,
                    o.wire_inter,
                    o.wire_ratio(),
                    o.max_err,
                    o.checksum,
                )
            };
            eprintln!(
                "{bw_label:>10} {mode_label:<10} read {:.3}x wire, {:.2}x time; write {:.3}x wire, {:.2}x time",
                read.wire_ratio(),
                if read_off_elapsed > 0.0 { read_off_elapsed / read.elapsed_secs } else { 1.0 },
                write.wire_ratio(),
                if write_off_elapsed > 0.0 { write_off_elapsed / write.elapsed_secs } else { 1.0 },
            );
            rows.push(row("read", &read, read_off_elapsed));
            rows.push(row("write", &write, write_off_elapsed));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"compress_frames\",\n  \"scale\": \"{}\",\n  \"nprocs\": {},\n  \"aggregators\": {},\n  \"osts\": {},\n  \"piece_bytes\": {},\n  \"pieces_per_rank\": {},\n  \"iterations_per_aggregator\": {},\n  \"field_elems\": {},\n  \"bound_default\": {:.3e},\n  \"bound_loose\": {:.3e},\n  \"pipeline_off_checksum\": {},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
        cfg.nprocs,
        cfg.nodes,
        cfg.osts,
        cfg.piece_bytes,
        cfg.pieces_per_rank,
        cfg.iterations_per_aggregator(),
        cfg.file_size() / 8,
        bound_of(&default_bound),
        bound_of(&loose_bound),
        pipeline_checksum
            .map(|c| format!("\"{c:016x}\""))
            .unwrap_or_else(|| "null".to_string()),
        rows.join(",\n"),
    );
    print!("{json}");
    std::fs::write("BENCH_compress.json", &json).expect("write BENCH_compress.json");
}
