//! Measures the virtual collective makespan of the two-phase read engine
//! at every staging-ring depth — sequential (1 buffer), double buffer,
//! depth 3, unbounded — on a read-dominated interleaved workload and
//! writes `BENCH_pipeline.json`.
//!
//! Every depth runs the identical collective (same ranks, same requests,
//! same striped file) through the real engine inside a full `World`; the
//! binary asserts the per-rank FNV checksums are bit-identical before
//! reporting anything, so the speedup comes from *overlapping* the read
//! and shuffle legs, never from moving different bytes. `--quick` shrinks
//! the scenario for CI smoke runs.

use cc_bench::pipeline::{run_all, DepthOutcome, PipelineBenchConfig};
use cc_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let cfg = PipelineBenchConfig::for_scale(scale);
    let out = run_all(&cfg);
    let sequential = &out[0];

    // Correctness gate: pipelining reorders when staging buffers fill,
    // never what they carry.
    for o in &out[1..] {
        assert_eq!(
            sequential.checksum, o.checksum,
            "{} bytes diverged from sequential",
            o.label
        );
    }

    let speedup = |o: &DepthOutcome| sequential.elapsed_secs / o.elapsed_secs;
    // Acceptance: double buffering must overlap enough of the shuffle leg
    // to beat one-buffer staging by >= 1.5x on this read-dominated sweep.
    assert!(
        speedup(&out[1]) >= 1.5,
        "depth-2 speedup only {:.2}x over sequential",
        speedup(&out[1])
    );

    let leg_ratio = sequential.shuffle_secs / sequential.read_secs;
    let row = |o: &DepthOutcome| {
        format!(
            "{{ \"elapsed_secs\": {:.6e}, \"speedup_vs_sequential\": {:.2}, \"read_secs\": {:.6e}, \"shuffle_secs\": {:.6e} }}",
            o.elapsed_secs,
            speedup(o),
            o.read_secs,
            o.shuffle_secs
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"pipeline_depths\",\n  \"scale\": \"{}\",\n  \"speedup\": {:.2},\n  \"nprocs\": {},\n  \"aggregators\": {},\n  \"osts\": {},\n  \"stripe_unit\": {},\n  \"piece_bytes\": {},\n  \"pieces_per_rank\": {},\n  \"cb_stripes\": {},\n  \"iterations_per_aggregator\": {},\n  \"shuffle_to_read_ratio\": {:.3},\n  \"checksum\": \"{:016x}\",\n  \"sequential\": {},\n  \"depth_2\": {},\n  \"depth_3\": {},\n  \"unbounded\": {}\n}}\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
        speedup(&out[1]),
        cfg.nprocs,
        cfg.nodes,
        cfg.osts,
        cfg.stripe_unit,
        cfg.piece_bytes,
        cfg.pieces_per_rank,
        cfg.cb_stripes,
        cfg.iterations_per_aggregator(),
        leg_ratio,
        sequential.checksum,
        row(sequential),
        row(&out[1]),
        row(&out[2]),
        row(&out[3]),
    );
    print!("{json}");
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    eprintln!(
        "double buffering {:.2}x vs sequential staging (shuffle:read leg ratio {:.2}) \
         ({} ranks, {} aggregators, {} iterations/aggregator)",
        speedup(&out[1]),
        leg_ratio,
        cfg.nprocs,
        cfg.nodes,
        cfg.iterations_per_aggregator()
    );
}
