//! Regenerates the paper's Fig. 2. Pass --quick for a smaller run.
fn main() {
    let scale = cc_bench::Scale::from_args();
    cc_bench::emit(&cc_bench::fig02(scale), "fig02");
}
