//! Ablation study: aggregators. Pass --quick for a smaller run.
fn main() {
    let scale = cc_bench::Scale::from_args();
    cc_bench::emit(&cc_bench::ablation_aggregators(scale), "ablation_aggregators");
}
