//! Measures flat vs topology-aware hierarchical communication on the
//! two-phase shuffle and writes `BENCH_comm.json`.
//!
//! The full configuration is the EXPERIMENTS.md 512-rank cluster (32
//! nodes x 16 cores) with a rank-interleaved request pattern; `--quick`
//! shrinks to 32 ranks for CI smoke runs. Both modes must return
//! bit-identical shuffle bytes and a bit-identical noncommutative
//! allreduce result (the rank-order gate); the hierarchical mode must cut
//! inter-node message counts by at least 4x and finish the shuffle at an
//! earlier virtual time. The speedup is from paying the inter-node
//! per-message overhead once per node pair instead of once per rank pair
//! — not from moving fewer bytes or answering a smaller request set.

use cc_bench::comm::{run_comm, CommBenchConfig};
use cc_bench::Scale;
use cc_model::CollectiveMode;

fn main() {
    let scale = Scale::from_args();
    let cfg = CommBenchConfig::for_scale(scale);

    let flat = run_comm(&cfg, CollectiveMode::Flat);
    let hier = run_comm(&cfg, CollectiveMode::Hierarchical);

    // Correctness gates: identical bytes, identical reduce order.
    assert_eq!(
        flat.checksum, hier.checksum,
        "hierarchical shuffle bytes diverged from flat"
    );
    assert_eq!(
        flat.reduce_bits, hier.reduce_bits,
        "hierarchical reduce folded ranks in a different order"
    );

    // Performance gates: the tentpole claims.
    let inter_cut = flat.stats.msgs_inter as f64 / hier.stats.msgs_inter.max(1) as f64;
    let speedup = flat.virt_end.secs() / hier.virt_end.secs();
    assert!(
        inter_cut >= 4.0,
        "inter-node message cut {inter_cut:.2}x below the 4x floor \
         (flat {} hier {})",
        flat.stats.msgs_inter,
        hier.stats.msgs_inter
    );
    assert!(
        speedup > 1.0,
        "hierarchical shuffle lost virtual wall-clock: flat {} hier {}",
        flat.virt_end,
        hier.virt_end
    );

    let json = format!(
        "{{\n  \"bench\": \"comm_flat_vs_hier\",\n  \"scale\": \"{}\",\n  \"nprocs\": {},\n  \"nodes\": {},\n  \"cores_per_node\": {},\n  \"extents_per_rank\": {},\n  \"extent_len\": {},\n  \"cb_buffer_size\": {},\n  \"checksum_match\": true,\n  \"reduce_rank_order_match\": true,\n  \"inter_msg_reduction\": {:.2},\n  \"shuffle_speedup\": {:.3},\n  \"flat\": {{ \"virt_secs\": {:.6}, \"msgs_inter\": {}, \"msgs_intra\": {}, \"bytes_inter\": {}, \"bytes_intra\": {}, \"host_secs\": {:.3} }},\n  \"hier\": {{ \"virt_secs\": {:.6}, \"msgs_inter\": {}, \"msgs_intra\": {}, \"bytes_inter\": {}, \"bytes_intra\": {}, \"host_secs\": {:.3} }}\n}}\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        },
        cfg.nprocs(),
        cfg.nodes,
        cfg.cores,
        cfg.extents_per_rank,
        cfg.extent_len,
        cfg.cb,
        inter_cut,
        speedup,
        flat.virt_end.secs(),
        flat.stats.msgs_inter,
        flat.stats.msgs_intra,
        flat.stats.bytes_inter,
        flat.stats.bytes_intra,
        flat.host_secs,
        hier.virt_end.secs(),
        hier.stats.msgs_inter,
        hier.stats.msgs_intra,
        hier.stats.bytes_inter,
        hier.stats.bytes_intra,
        hier.host_secs,
    );
    print!("{json}");
    std::fs::write("BENCH_comm.json", &json).expect("write BENCH_comm.json");
    eprintln!(
        "hierarchical collectives: {inter_cut:.1}x fewer inter-node messages, \
         {speedup:.2}x shuffle wall-clock speedup ({} ranks = {} nodes x {} cores)",
        cfg.nprocs(),
        cfg.nodes,
        cfg.cores
    );
}
