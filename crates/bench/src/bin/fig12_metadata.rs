//! Regenerates the paper's Fig. 12. Pass --quick for a smaller run.
fn main() {
    let scale = cc_bench::Scale::from_args();
    cc_bench::emit(&cc_bench::fig12(scale), "fig12");
}
