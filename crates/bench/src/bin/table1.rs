//! Regenerates the paper's Table I.
fn main() {
    cc_bench::emit(&cc_bench::table1(), "table1");
}
