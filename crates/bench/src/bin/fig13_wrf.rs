//! Regenerates the paper's Fig. 13. Pass --quick for a smaller run.
fn main() {
    let scale = cc_bench::Scale::from_args();
    cc_bench::emit(&cc_bench::fig13(scale), "fig13");
}
