//! Measures the generate→decode→map hot path before and after the
//! zero-copy optimizations and writes `BENCH_hotpath.json` so the perf
//! trajectory is tracked from PR 1 on.
//!
//! "Before" is the seed pipeline kept verbatim in `cc_bench::hotpath`
//! (per-element generation, fresh chunk and per-run decode allocations);
//! "after" is the current stack (bulk `fill_range`, scratch-buffer
//! `decode_into`). A counting global allocator verifies the after-path's
//! steady state performs no per-pass heap allocation.
//!
//! Planning time is attributed separately from the data stages: the
//! "before" planner rebuilds the collective plan each pass and answers the
//! engines' schedule questions through the query API (the seed's behavior
//! at every timestep); the "after" planner resolves each pass through a
//! [`cc_mpiio::PlanCache`], so steady-state passes reuse the compiled
//! schedule outright. The JSON reports each planner's per-pass cost and
//! its share of the end-to-end pass.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cc_bench::hotpath::{make_backend, run_after, run_before, HotPathConfig, HotPathScratch};
use cc_bench::plan::{walk_compiled, walk_query};
use cc_core::{MapKernel, SumKernel};
use cc_mpiio::{CollectivePlan, PlanCache};

/// `System`, with every allocation counted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let start = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - start
}

fn main() {
    // The paper's fine-grained interleaved pattern: many small runs.
    let cfg = HotPathConfig {
        runs: 4096,
        run_elems: 64,
        gap_elems: 192,
    };
    let backend = make_backend(&cfg);
    let kernel: &dyn MapKernel = &SumKernel;
    let passes = 40u32;

    // Correctness gate: both variants must agree bit-for-bit.
    let mut scratch = HotPathScratch::default();
    let before_acc = run_before(&cfg, &backend, kernel);
    let after_acc = run_after(&cfg, &backend, kernel, &mut scratch);
    assert_eq!(before_acc, after_acc, "pipelines diverged");

    // Warm up, then count steady-state allocations of one pass each.
    let before_allocs = allocs_during(|| {
        std::hint::black_box(run_before(&cfg, &backend, kernel));
    });
    let after_allocs = allocs_during(|| {
        std::hint::black_box(run_after(&cfg, &backend, kernel, &mut scratch));
    });

    let time = |f: &mut dyn FnMut()| {
        let t = Instant::now();
        for _ in 0..passes {
            f();
        }
        t.elapsed().as_secs_f64() / passes as f64
    };
    let before_secs = time(&mut || {
        std::hint::black_box(run_before(&cfg, &backend, kernel));
    });
    let after_secs = time(&mut || {
        std::hint::black_box(run_after(&cfg, &backend, kernel, &mut scratch));
    });

    // Planning stage, attributed separately: every pass plans the same
    // access pattern across a 32-rank job before touching its own data.
    // "Before" rebuilds the plan and answers through the query API each
    // pass (the seed's per-timestep behavior); "after" resolves it through
    // the plan cache, reusing the compiled schedule after the first pass.
    let nprocs = 32;
    let (topo, hints) = cfg.planning_topology(nprocs, 8);
    let requests = Arc::new(cfg.planning_requests(nprocs));
    let plan_once = CollectivePlan::build(Arc::clone(&requests), &topo, nprocs, &hints);
    let mut cache = PlanCache::new();
    let compiled_once = cache.get_or_compile(Arc::clone(&requests), &topo, nprocs, &hints);
    assert_eq!(
        walk_query(&plan_once),
        walk_compiled(&compiled_once),
        "planners diverged"
    );
    let plan_before_secs = time(&mut || {
        let plan = CollectivePlan::build(Arc::clone(&requests), &topo, nprocs, &hints);
        std::hint::black_box(walk_query(&plan));
    });
    let plan_after_secs = time(&mut || {
        let sched = cache.get_or_compile(Arc::clone(&requests), &topo, nprocs, &hints);
        std::hint::black_box(walk_compiled(&sched));
    });

    // Codec steady state: error-bounded encode + decode of one slot's
    // worth of f64 field bytes through pooled scratch arenas (the same
    // per-slot discipline `cc_core::Scratch::codec_slots` gives the
    // engines) must perform zero heap allocations once warmed.
    let mut codec_scratch = cc_core::Scratch::new();
    codec_scratch.ensure_slots(2);
    let field: Vec<u8> = (0..cfg.runs * cfg.run_elems)
        .flat_map(|i| (300.0 + 40.0 * (i as f64 * 1e-3).sin()).to_le_bytes())
        .collect();
    let mode = cc_mpiio::Compression::ErrorBounded(cc_mpiio::ErrorBound::absolute(1e-6));
    let codec_pass = |s: &mut cc_core::Scratch| {
        let (wire, rest) = s.codec_slots.split_at_mut(1);
        cc_compress::encode_into(&mode, &field, &mut wire[0]);
        let n = cc_compress::decode_into(&wire[0], &mut rest[0]);
        assert_eq!(n, field.len(), "codec roundtrip length");
    };
    codec_pass(&mut codec_scratch); // warm the arenas to high water
    let codec_allocs = allocs_during(|| codec_pass(&mut codec_scratch));
    let codec_secs = time(&mut || codec_pass(&mut codec_scratch));
    assert_eq!(
        codec_allocs, 0,
        "warmed codec pass must not touch the allocator"
    );

    let elems = cfg.total_elems() as f64;
    let before_eps = elems / before_secs;
    let after_eps = elems / after_secs;
    let speedup = after_eps / before_eps;
    let plan_share_before = plan_before_secs / (plan_before_secs + before_secs);
    let plan_share_after = plan_after_secs / (plan_after_secs + after_secs);

    let json = format!(
        "{{\n  \"bench\": \"generate_decode_map\",\n  \"runs\": {},\n  \"run_elems\": {},\n  \"elements_per_pass\": {},\n  \"before\": {{ \"secs_per_pass\": {:.6e}, \"elements_per_sec\": {:.4e}, \"allocs_per_pass\": {} }},\n  \"after\": {{ \"secs_per_pass\": {:.6e}, \"elements_per_sec\": {:.4e}, \"allocs_per_pass\": {} }},\n  \"speedup\": {:.2},\n  \"planner\": {{\n    \"nprocs\": {},\n    \"before\": {{ \"secs_per_pass\": {:.6e}, \"share_of_pass\": {:.4} }},\n    \"after\": {{ \"secs_per_pass\": {:.6e}, \"share_of_pass\": {:.4} }},\n    \"speedup\": {:.2}\n  }},\n  \"codec\": {{ \"bytes_per_pass\": {}, \"secs_per_pass\": {:.6e}, \"allocs_per_pass\": {} }}\n}}\n",
        cfg.runs,
        cfg.run_elems,
        cfg.total_elems(),
        before_secs,
        before_eps,
        before_allocs,
        after_secs,
        after_eps,
        after_allocs,
        speedup,
        nprocs,
        plan_before_secs,
        plan_share_before,
        plan_after_secs,
        plan_share_after,
        plan_before_secs / plan_after_secs,
        field.len(),
        codec_secs,
        codec_allocs,
    );
    print!("{json}");
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    eprintln!(
        "speedup {speedup:.2}x, steady-state allocs/pass: before {before_allocs}, after {after_allocs}, codec {codec_allocs}"
    );
    eprintln!(
        "planner share of pass: before {:.1}%, after {:.1}% ({:.2}x planner speedup)",
        plan_share_before * 100.0,
        plan_share_after * 100.0,
        plan_before_secs / plan_after_secs,
    );
}
