//! Ablation study: kernel fusion. Pass --quick for a smaller run.
fn main() {
    let scale = cc_bench::Scale::from_args();
    cc_bench::emit(&cc_bench::ablation_fused(scale), "ablation_fused");
}
