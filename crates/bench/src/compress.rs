//! Compression benchmark: error-bounded lossy frames vs raw movement.
//!
//! The scenario is the interleaved collective the two-phase engines run
//! everywhere else in this harness, but over a *smooth f64 science field*
//! — the payload class the codec exists for. Every rank reads (or writes)
//! a finely interleaved set of pieces, so the shuffle genuinely crosses
//! the interconnect, and the same job runs once per `(bandwidth, codec
//! mode)` cell: raw, lossless, and error-bounded frames at tight and
//! loose bounds, on the calibrated interconnect and on a slowed one where
//! wire bytes dominate.
//!
//! Three properties are under test, and the binary asserts all of them
//! before reporting: lossless frames move *identical* bytes (FNV checksums
//! match the raw run), error-bounded frames respect the bound end to end
//! (one hop for the read shuffle, two compounding hops for write-back),
//! and the per-lane `CommStats` logical-vs-wire gap shows the advertised
//! inter-node byte reduction actually happened on the wire.

use std::sync::Arc;

use cc_model::{ClusterModel, SimTime};
use cc_mpi::{CommStats, World};
use cc_mpiio::{
    collective_read, collective_write, Compression, Extent, Hints, OffsetList, Striping,
};
use cc_pfs::{MemBackend, Pfs, StripeLayout};

use crate::Scale;

/// Shape of one compression-benchmark scenario.
#[derive(Debug, Clone, Copy)]
pub struct CompressBenchConfig {
    /// Ranks in the job.
    pub nprocs: usize,
    /// Nodes (one aggregator per node).
    pub nodes: usize,
    /// OSTs in the file system; the file stripes over all of them.
    pub osts: usize,
    /// Stripe size in bytes.
    pub stripe_unit: u64,
    /// Size of one interleaved piece (a multiple of 8: whole f64s).
    pub piece_bytes: u64,
    /// Pieces each rank touches, interleaved round-robin across ranks.
    pub pieces_per_rank: u64,
    /// Collective buffer size, in stripes.
    pub cb_stripes: u64,
}

impl CompressBenchConfig {
    /// `Full` is the acceptance configuration; `Quick` shrinks it for CI
    /// smoke runs while keeping several collective-buffer iterations per
    /// aggregator and real inter-node traffic.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Full => Self {
                nprocs: 64,
                nodes: 8,
                osts: 16,
                stripe_unit: 64 << 10,
                piece_bytes: 2048,
                pieces_per_rank: 256,
                cb_stripes: 4,
            },
            Scale::Quick => Self {
                nprocs: 16,
                nodes: 4,
                osts: 8,
                stripe_unit: 8 << 10,
                piece_bytes: 512,
                pieces_per_rank: 64,
                cb_stripes: 4,
            },
        }
    }

    /// Total file size: every rank's pieces, no holes.
    pub fn file_size(&self) -> u64 {
        self.nprocs as u64 * self.pieces_per_rank * self.piece_bytes
    }

    /// Collective-buffer iterations each aggregator works through.
    pub fn iterations_per_aggregator(&self) -> u64 {
        self.file_size() / self.nodes as u64 / (self.cb_stripes * self.stripe_unit)
    }

    /// The planner hints carrying `compression`.
    pub fn hints(&self, compression: Compression) -> Hints {
        Hints {
            cb_buffer_size: self.cb_stripes * self.stripe_unit,
            aggregators_per_node: 1,
            nonblocking: true,
            compression,
            striping: Some(Striping {
                unit: self.stripe_unit,
                factor: self.osts,
            }),
            ..Hints::default()
        }
    }

    /// Rank `r`'s pieces at positions `r, r + nprocs, r + 2*nprocs, ...`.
    pub fn request(&self, r: usize) -> OffsetList {
        OffsetList::new(
            (0..self.pieces_per_rank)
                .map(|k| Extent {
                    offset: (k * self.nprocs as u64 + r as u64) * self.piece_bytes,
                    len: self.piece_bytes,
                })
                .collect(),
        )
    }

    /// The cluster model, with the interconnect slowed by `slowdown`
    /// (1.0 = the calibrated Gemini-like network).
    fn model(&self, slowdown: f64) -> ClusterModel {
        let cores = self.nprocs.div_ceil(self.nodes);
        let mut model = ClusterModel::hopper_like(self.nodes, cores);
        model.net.bw_inter /= slowdown;
        model
    }
}

/// The smooth f64 field at element `i`: a slowly varying sinusoid around
/// 300 with range 80 — the temperature-like payload SZ-class codecs
/// compress by an order of magnitude at tight bounds.
pub fn field_value(i: u64) -> f64 {
    300.0 + 40.0 * (i as f64 * 1e-3).sin()
}

/// The whole field as little-endian bytes.
pub fn field_bytes(size: u64) -> Vec<u8> {
    (0..size / 8).flat_map(|i| field_value(i).to_le_bytes()).collect()
}

/// What one `(bandwidth, mode)` cell of the sweep measured.
#[derive(Debug, Clone)]
pub struct CompressOutcome {
    /// Collective makespan in virtual seconds (max over ranks).
    pub elapsed_secs: f64,
    /// Pre-compression inter-node bytes, summed over ranks.
    pub logical_inter: usize,
    /// Post-compression inter-node wire bytes, summed over ranks.
    pub wire_inter: usize,
    /// Largest `|got - field|` over every element this run touched
    /// (returned request bytes for reads, file contents for writes).
    pub max_err: f64,
    /// FNV-1a over the run's data bytes, in rank / file order.
    pub checksum: u64,
}

impl CompressOutcome {
    /// Logical-to-wire byte ratio on the inter-node lane.
    pub fn wire_ratio(&self) -> f64 {
        self.logical_inter as f64 / self.wire_inter.max(1) as f64
    }
}

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv(checksum: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *checksum ^= b as u64;
        *checksum = checksum.wrapping_mul(FNV_PRIME);
    }
}

fn sum_inter(stats: &[CommStats]) -> (usize, usize) {
    (
        stats.iter().map(|s| s.logical_inter).sum(),
        stats.iter().map(|s| s.bytes_inter).sum(),
    )
}

/// Runs the collective read of the smooth field once under `compression`.
pub fn read_case(
    cfg: &CompressBenchConfig,
    compression: Compression,
    slowdown: f64,
) -> CompressOutcome {
    let size = cfg.file_size();
    let fs = Pfs::new(cfg.osts, cc_model::DiskModel::lustre_like());
    fs.create(
        "field",
        StripeLayout::round_robin(cfg.stripe_unit, cfg.osts, 0, cfg.osts),
        Box::new(MemBackend::from_bytes(field_bytes(size))),
    );
    let fs = Arc::new(fs);
    let world = World::new(cfg.nprocs, cfg.model(slowdown));
    let hints = cfg.hints(compression);
    let per_rank = {
        let fs = &fs;
        let hints = &hints;
        let cfg = *cfg;
        world.run(move |comm| {
            let file = fs.open("field").expect("exists");
            let req = cfg.request(comm.rank());
            let (bytes, report) = collective_read(comm, fs, &file, &req, hints);
            (bytes, report.end, comm.stats())
        })
    };
    let mut checksum = FNV_SEED;
    let mut end = SimTime::ZERO;
    let mut max_err = 0.0f64;
    let mut stats = Vec::with_capacity(per_rank.len());
    for (r, (bytes, e, s)) in per_rank.iter().enumerate() {
        fnv(&mut checksum, bytes);
        end = end.max(*e);
        stats.push(*s);
        // Request-buffer order follows the extent list, so element indices
        // recover from the offsets.
        let mut cursor = 0usize;
        for e in cfg.request(r).extents() {
            for i in (e.offset / 8)..(e.end() / 8) {
                let got = f64::from_le_bytes(bytes[cursor..cursor + 8].try_into().unwrap());
                max_err = max_err.max((got - field_value(i)).abs());
                cursor += 8;
            }
        }
    }
    let (logical_inter, wire_inter) = sum_inter(&stats);
    CompressOutcome {
        elapsed_secs: end.secs(),
        logical_inter,
        wire_inter,
        max_err,
        checksum,
    }
}

/// Runs the collective write of the smooth field once under `compression`
/// and inspects what actually landed on disk.
pub fn write_case(
    cfg: &CompressBenchConfig,
    compression: Compression,
    slowdown: f64,
) -> CompressOutcome {
    let size = cfg.file_size();
    let fs = Pfs::new(cfg.osts, cc_model::DiskModel::lustre_like());
    fs.create(
        "out",
        StripeLayout::round_robin(cfg.stripe_unit, cfg.osts, 0, cfg.osts),
        Box::new(MemBackend::from_bytes(vec![0u8; size as usize])),
    );
    let fs = Arc::new(fs);
    let world = World::new(cfg.nprocs, cfg.model(slowdown));
    let hints = cfg.hints(compression);
    let per_rank = {
        let fs = &fs;
        let hints = &hints;
        let cfg = *cfg;
        world.run(move |comm| {
            let file = fs.open("out").expect("exists");
            let req = cfg.request(comm.rank());
            let mut data = Vec::with_capacity((cfg.pieces_per_rank * cfg.piece_bytes) as usize);
            for e in req.extents() {
                for i in (e.offset / 8)..(e.end() / 8) {
                    data.extend_from_slice(&field_value(i).to_le_bytes());
                }
            }
            let report = collective_write(comm, fs, &file, &req, &data, hints);
            (report.end, comm.stats())
        })
    };
    let mut end = SimTime::ZERO;
    let mut stats = Vec::with_capacity(per_rank.len());
    for (e, s) in &per_rank {
        end = end.max(*e);
        stats.push(*s);
    }
    let file = fs.open("out").expect("exists");
    let (bytes, _) = fs.read_at(&file, 0, size, SimTime::ZERO);
    let mut checksum = FNV_SEED;
    fnv(&mut checksum, &bytes);
    let mut max_err = 0.0f64;
    for (i, w) in bytes.chunks_exact(8).enumerate() {
        let got = f64::from_le_bytes(w.try_into().unwrap());
        max_err = max_err.max((got - field_value(i as u64)).abs());
    }
    let (logical_inter, wire_inter) = sum_inter(&stats);
    CompressOutcome {
        elapsed_secs: end.secs(),
        logical_inter,
        wire_inter,
        max_err,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_mpiio::ErrorBound;

    fn tiny() -> CompressBenchConfig {
        CompressBenchConfig {
            nprocs: 8,
            nodes: 2,
            osts: 4,
            stripe_unit: 4 << 10,
            piece_bytes: 512,
            pieces_per_rank: 32,
            cb_stripes: 2,
        }
    }

    #[test]
    fn lossless_cells_move_identical_bytes() {
        let cfg = tiny();
        let off = read_case(&cfg, Compression::Off, 1.0);
        let lossless = read_case(&cfg, Compression::Lossless, 1.0);
        assert_eq!(off.checksum, lossless.checksum, "lossless read diverged");
        assert_eq!(off.max_err, 0.0);
        assert_eq!(lossless.max_err, 0.0);
        assert_eq!(off.logical_inter, off.wire_inter, "raw frames must not shrink");
    }

    #[test]
    fn error_bounded_cells_respect_bounds_and_cut_wire_bytes() {
        let cfg = tiny();
        // The field spans [260, 340]: the default relative bound resolves
        // to at most 1e-4 * 80 per payload.
        let bound = ErrorBound::default().resolve(260.0, 340.0);
        let mode = Compression::ErrorBounded(ErrorBound::default());
        let read = read_case(&cfg, mode, 1.0);
        assert!(read.max_err <= bound + 1e-12, "read err {:e}", read.max_err);
        assert!(read.wire_ratio() >= 3.0, "read ratio {:.2}", read.wire_ratio());
        let write = write_case(&cfg, mode, 1.0);
        // The write-back hop quantizes reconstructed values whose range
        // the shuffle hop widened by up to a bound on each side.
        let two_hop = bound + ErrorBound::default().resolve(260.0 - bound, 340.0 + bound);
        assert!(
            write.max_err <= two_hop + 1e-12,
            "write err {:e} exceeds the two-hop bound",
            write.max_err
        );
        assert!(write.wire_ratio() >= 3.0, "write ratio {:.2}", write.wire_ratio());
    }
}
