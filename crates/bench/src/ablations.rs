//! Ablation studies for the design choices DESIGN.md §4 calls out.

use cc_core::{
    object_get_vara, FusedKernel, MapKernel, MaxKernel, MeanKernel, ObjectIo, ReduceMode,
    SumKernel, SumSqKernel,
};
use cc_model::{ClusterModel, SimTime};
use cc_mpi::World;
use cc_mpiio::{
    collective_read, collective_write, independent_read, independent_write, sieving_read,
    sieving_write, Hints,
};
use cc_profile::Table;
use cc_workloads::ClimateWorkload;

use crate::Scale;

fn fmt_t(t: SimTime) -> String {
    format!("{:.4}", t.secs())
}

fn bench_workload(scale: Scale) -> (ClimateWorkload, ClusterModel) {
    let nprocs = match scale {
        Scale::Quick => 8,
        Scale::Full => 48,
    };
    let cores = match scale {
        Scale::Quick => 4,
        Scale::Full => 12,
    };
    // Interleaved, non-contiguous, several chunks per aggregator.
    let workload = ClimateWorkload::interleaved_3d(nprocs, 64, 2, 256, 256 << 10, 40);
    let model = ClusterModel::hopper_like(nprocs.div_ceil(cores), cores);
    (workload, model)
}

/// Hints sized so every aggregator pipeline has many iterations.
fn bench_hints() -> Hints {
    Hints {
        cb_buffer_size: 256 << 10,
        ..Hints::default()
    }
}

/// Runs the CC engine once and returns `(t_end_max, words_shuffled_total)`.
fn run_cc_once(
    workload: &ClimateWorkload,
    model: &ClusterModel,
    hints: &Hints,
    reduce: ReduceMode,
) -> (SimTime, u64) {
    let fs = workload.build_fs(156, model.disk.clone());
    let world = World::new(workload.nprocs(), model.clone());
    let fs = &fs;
    let results = world.run(move |comm| {
        let file = fs.open(ClimateWorkload::FILE).expect("created");
        let slab = workload.slab(comm.rank());
        let io = ObjectIo::new(slab.start().to_vec(), slab.count().to_vec())
            .hints(hints.clone())
            .reduce(reduce);
        let out = object_get_vara(comm, fs, &file, workload.var(), &io, &SumKernel);
        (out.report.end, out.report.result_words_shuffled)
    });
    (
        results.iter().map(|r| r.0).max().expect("nonempty"),
        results.iter().map(|r| r.1).sum(),
    )
}

/// All-to-one vs all-to-all reduce: completion time and result traffic.
pub fn ablation_reduce_mode(scale: Scale) -> Table {
    let (workload, mut model) = bench_workload(scale);
    // Give the map a visible cost so the reduce phase matters.
    model.cpu.map_cost_per_byte = 0.5 / model.disk.ost_bandwidth;
    let hints = bench_hints();
    let mut t = Table::new(
        "Ablation: reduce topology (paper SIII-C)",
        &["mode", "t_cc_s", "result_words"],
    );
    let (t1, w1) = run_cc_once(&workload, &model, &hints, ReduceMode::AllToOne { root: 0 });
    let (t2, w2) = run_cc_once(&workload, &model, &hints, ReduceMode::AllToAll { root: 0 });
    t.row(&["all-to-one".into(), fmt_t(t1), w1.to_string()]);
    t.row(&["all-to-all".into(), fmt_t(t2), w2.to_string()]);
    t
}

/// Non-blocking (pipelined) vs blocking CC vs the traditional baseline.
pub fn ablation_blocking(scale: Scale) -> Table {
    let (workload, mut model) = bench_workload(scale);
    model.cpu.map_cost_per_byte = 1.0 / model.disk.ost_bandwidth;
    let mut t = Table::new(
        "Ablation: pipeline overlap (non-blocking vs blocking CC vs traditional)",
        &["variant", "t_s"],
    );
    for (label, nonblocking) in [("cc-nonblocking", true), ("cc-blocking", false)] {
        let hints = Hints {
            nonblocking,
            ..bench_hints()
        };
        let (end, _) = run_cc_once(&workload, &model, &hints, ReduceMode::AllToOne { root: 0 });
        t.row(&[label.into(), fmt_t(end)]);
    }
    let c = crate::run_comparison(&workload, &model, 156, &SumKernel, &bench_hints());
    t.row(&["traditional-mpi".into(), fmt_t(c.t_mpi)]);
    t
}

/// Aggregators-per-node sweep.
pub fn ablation_aggregators(scale: Scale) -> Table {
    let (workload, model) = bench_workload(scale);
    let cores = model.topology.cores_per_node;
    let mut t = Table::new(
        "Ablation: aggregators per node",
        &["aggs_per_node", "t_cc_s"],
    );
    let mut per_node = 1;
    while per_node <= cores {
        let hints = Hints {
            aggregators_per_node: per_node,
            ..bench_hints()
        };
        let (end, _) = run_cc_once(&workload, &model, &hints, ReduceMode::AllToOne { root: 0 });
        t.row(&[per_node.to_string(), fmt_t(end)]);
        per_node *= 2;
    }
    t
}

/// Independent vs data-sieving vs collective reads of the same requests.
pub fn ablation_sieving(scale: Scale) -> Table {
    let (workload, model) = bench_workload(scale);
    let mut t = Table::new(
        "Ablation: read strategy (independent vs sieving vs two-phase collective)",
        &["strategy", "t_s", "fs_requests"],
    );
    for strategy in ["independent", "sieving", "collective"] {
        let fs = workload.build_fs(156, model.disk.clone());
        let world = World::new(workload.nprocs(), model.clone());
        let fs = &fs;
        let workload_ref = &workload;
        let results = world.run(move |comm| {
            let file = fs.open(ClimateWorkload::FILE).expect("created");
            let request = workload_ref
                .var()
                .byte_extents(workload_ref.slab(comm.rank()));
            match strategy {
                "independent" => independent_read(comm, fs, &file, &request).1.end,
                "sieving" => sieving_read(comm, fs, &file, &request, 4 << 20).1.end,
                _ => collective_read(comm, fs, &file, &request, &bench_hints()).1.end,
            }
        });
        let end = results.into_iter().max().expect("nonempty");
        t.row(&[
            strategy.into(),
            fmt_t(end),
            fs.stats().reads.to_string(),
        ]);
    }
    t
}

/// Kernel fusion: four statistics in one collective pass vs four passes.
pub fn ablation_fused(scale: Scale) -> Table {
    let (workload, mut model) = bench_workload(scale);
    model.cpu.map_cost_per_byte = 0.5 / model.disk.ost_bandwidth;
    let hints = bench_hints();
    let run = |kernels: &[&dyn MapKernel]| -> SimTime {
        let fs = workload.build_fs(156, model.disk.clone());
        let world = World::new(workload.nprocs(), model.clone());
        let fs = &fs;
        let workload_ref = &workload;
        let hints_ref = &hints;
        let ends = world.run(move |comm| {
            let file = fs.open(ClimateWorkload::FILE).expect("created");
            let slab = workload_ref.slab(comm.rank());
            let io = ObjectIo::new(slab.start().to_vec(), slab.count().to_vec())
                .hints(hints_ref.clone());
            let mut end = cc_model::SimTime::ZERO;
            if kernels.len() == 1 {
                end = object_get_vara(comm, fs, &file, workload_ref.var(), &io, kernels[0])
                    .report
                    .end;
            } else {
                for k in kernels {
                    end = object_get_vara(comm, fs, &file, workload_ref.var(), &io, *k)
                        .report
                        .end;
                }
            }
            end
        });
        ends.into_iter().max().expect("nonempty")
    };
    let mut t = Table::new(
        "Ablation: kernel fusion (sum+max+mean+moments in one pass vs four)",
        &["variant", "t_s"],
    );
    let fused = FusedKernel::new(vec![&SumKernel, &MaxKernel, &MeanKernel, &SumSqKernel]);
    t.row(&["fused-one-pass".into(), fmt_t(run(&[&fused]))]);
    t.row(&[
        "four-passes".into(),
        fmt_t(run(&[&SumKernel, &MaxKernel, &MeanKernel, &SumSqKernel])),
    ]);
    t
}

/// Write strategy: independent vs sieving (read-modify-write) vs two-phase
/// collective writes of the same interleaved requests.
pub fn ablation_write(scale: Scale) -> Table {
    let (workload, model) = bench_workload(scale);
    let mut t = Table::new(
        "Ablation: write strategy (independent vs sieving RMW vs two-phase collective)",
        &["strategy", "t_s", "fs_requests"],
    );
    for strategy in ["independent", "sieving", "collective"] {
        // Writable overlay over the synthetic climate file.
        let fs = cc_pfs::Pfs::new(156, model.disk.clone());
        let base = cc_pfs::SyntheticBackend::new(
            workload.var().shape().num_elements(),
            cc_pfs::backend::ElemKind::F64,
            cc_pfs::backend::default_climate_value,
        );
        fs.create(
            ClimateWorkload::FILE,
            cc_pfs::StripeLayout::round_robin(workload.stripe_size, workload.stripe_count, 0, 156),
            Box::new(cc_pfs::OverlayBackend::new(base)),
        );
        let fs = std::sync::Arc::new(fs);
        let world = World::new(workload.nprocs(), model.clone());
        let fs_ref = &fs;
        let workload_ref = &workload;
        let results = world.run(move |comm| {
            let file = fs_ref.open(ClimateWorkload::FILE).expect("created");
            let request = workload_ref
                .var()
                .byte_extents(workload_ref.slab(comm.rank()));
            let data = vec![7u8; request.total_bytes() as usize];
            match strategy {
                "independent" => independent_write(comm, fs_ref, &file, &request, &data).end,
                "sieving" => {
                    sieving_write(comm, fs_ref, &file, &request, &data, 4 << 20).end
                }
                _ => collective_write(comm, fs_ref, &file, &request, &data, &bench_hints()).end,
            }
        });
        let end = results.into_iter().max().expect("nonempty");
        let stats = fs.stats();
        t.row(&[
            strategy.into(),
            fmt_t(end),
            (stats.reads + stats.writes).to_string(),
        ]);
    }
    t
}

/// Stripe-size sweep for the collective read.
pub fn ablation_striping(scale: Scale) -> Table {
    let nprocs: usize = match scale {
        Scale::Quick => 8,
        Scale::Full => 48,
    };
    let model = ClusterModel::hopper_like(nprocs.div_ceil(12).max(1), 12);
    let mut t = Table::new(
        "Ablation: stripe size vs collective read time",
        &["stripe_kb", "t_s"],
    );
    for stripe_kb in [64u64, 256, 1024, 4096] {
        let workload =
            ClimateWorkload::interleaved_3d(nprocs, 64, 2, 256, stripe_kb << 10, 40);
        let fs = workload.build_fs(156, model.disk.clone());
        let world = World::new(nprocs, model.clone());
        let fs = &fs;
        let workload_ref = &workload;
        let results = world.run(move |comm| {
            let file = fs.open(ClimateWorkload::FILE).expect("created");
            let request = workload_ref
                .var()
                .byte_extents(workload_ref.slab(comm.rank()));
            collective_read(comm, fs, &file, &request, &bench_hints()).1.end
        });
        t.row(&[
            stripe_kb.to_string(),
            fmt_t(results.into_iter().max().expect("nonempty")),
        ]);
    }
    t
}
