//! Planner benchmark scenarios: query-based vs compiled vs cached plans.
//!
//! The workload mirrors the paper's fine-grained interleaved access at
//! scale — hundreds of ranks each requesting thousands of small extents,
//! swept over multiple timesteps whose selections shift by a constant
//! offset (the canonical iterative pattern `cc-core::iterative` runs).
//! Three planner strategies are measured over the same steps:
//!
//! * **query** — build a [`CollectivePlan`] per step and answer every
//!   schedule question the engines ask through the query API (re-scanning
//!   offset lists per call, allocating `Vec`s per answer);
//! * **compiled** — build the plan, compile a [`PlanSchedule`] once, and
//!   answer the same questions from the flat tables;
//! * **cached** — resolve each step through a [`PlanCache`], so step 0
//!   compiles and every later step reuses the schedule via the
//!   offset-translation fast path.
//!
//! Every strategy computes the same checksum over its answers, which the
//! binary asserts — the speedup must not come from answering less.

use std::sync::Arc;

use cc_model::Topology;
use cc_mpiio::{CollectivePlan, Extent, Hints, OffsetList, PlanCache, PlanSchedule};

use crate::Scale;

/// Shape of one planner-benchmark scenario.
#[derive(Debug, Clone, Copy)]
pub struct PlanBenchConfig {
    /// Ranks in the job.
    pub nprocs: usize,
    /// Nodes the ranks are spread over (one aggregator per node).
    pub nodes: usize,
    /// Extents each rank requests per step.
    pub extents_per_rank: usize,
    /// Bytes per extent.
    pub extent_len: u64,
    /// Timesteps in the sweep.
    pub steps: usize,
    /// Collective buffer size.
    pub cb: u64,
}

impl PlanBenchConfig {
    /// The scenario for a [`Scale`]: `Full` is the paper-like
    /// hundreds-of-ranks / thousands-of-extents sweep, `Quick` shrinks it
    /// for CI smoke runs.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Full => Self {
                nprocs: 512,
                nodes: 64,
                extents_per_rank: 2048,
                extent_len: 64,
                steps: 12,
                cb: 32 << 10,
            },
            Scale::Quick => Self {
                nprocs: 48,
                nodes: 12,
                extents_per_rank: 512,
                extent_len: 64,
                steps: 6,
                cb: 16 << 10,
            },
        }
    }

    /// The topology of the scenario (one aggregator per node).
    pub fn topology(&self) -> Topology {
        Topology::new(self.nodes, self.nprocs.div_ceil(self.nodes))
    }

    /// The planner hints of the scenario.
    pub fn hints(&self) -> Hints {
        Hints {
            cb_buffer_size: self.cb,
            aggregators_per_node: 1,
            nonblocking: true,
            align_domains_to: None,
            ..Hints::default()
        }
    }

    /// Bytes one step spans (all ranks interleaved, no holes between
    /// rounds).
    pub fn step_span(&self) -> u64 {
        self.nprocs as u64 * self.extents_per_rank as u64 * self.extent_len
    }

    /// Every rank's request for timestep `step`: rank `r` takes extent
    /// `k * nprocs + r` of an interleaved round-robin tiling — the classic
    /// fine-grained pattern two-phase I/O exists for — shifted by one full
    /// step span per step (so each later step is a constant-offset
    /// translation of step 0).
    pub fn requests(&self, step: usize) -> Vec<OffsetList> {
        let base = step as u64 * self.step_span();
        (0..self.nprocs as u64)
            .map(|r| {
                OffsetList::new(
                    (0..self.extents_per_rank as u64)
                        .map(|k| Extent {
                            offset: base + (k * self.nprocs as u64 + r) * self.extent_len,
                            len: self.extent_len,
                        })
                        .collect(),
                )
            })
            .collect()
    }
}

/// Walks every schedule question the two-phase engines ask of a plan —
/// active iterations, read ranges, destinations, each destination's
/// pieces, and each rank's sources — through the **query API**, folding
/// the answers into a checksum.
pub fn walk_query(plan: &CollectivePlan) -> u64 {
    let mut sum = 0u64;
    for a in 0..plan.aggregators.len() {
        for it in plan.active_iterations(a) {
            if let Some((lo, hi)) = plan.read_range(a, it) {
                sum = sum.wrapping_add(lo ^ hi.rotate_left(17));
            }
            for dst in plan.destinations(a, it) {
                for p in plan.pieces_for(a, it, dst) {
                    sum = sum
                        .wrapping_add(p.extent.offset)
                        .wrapping_add(p.extent.len.rotate_left(7))
                        .wrapping_add(p.buf_offset.rotate_left(31));
                }
            }
        }
    }
    for r in 0..plan.requests.len() {
        // Receivers re-derive each source chunk's pieces to place incoming
        // bytes, exactly like the query-based engines did.
        for (a, it) in plan.sources_for(r) {
            sum = sum.wrapping_add((a as u64) << 20).wrapping_add(it as u64);
            for p in plan.pieces_for(a, it, r) {
                sum = sum.wrapping_add(p.buf_offset ^ p.extent.len);
            }
        }
    }
    sum
}

/// The same walk through a compiled [`PlanSchedule`] — must produce the
/// identical checksum.
pub fn walk_compiled(schedule: &PlanSchedule) -> u64 {
    let plan = schedule.plan();
    let mut sum = 0u64;
    for a in 0..plan.aggregators.len() {
        for &it in schedule.active_iterations(a) {
            if let Some((lo, hi)) = schedule.read_range(a, it) {
                sum = sum.wrapping_add(lo ^ hi.rotate_left(17));
            }
            for (_, pieces) in schedule.dests_with_pieces(a, it) {
                for p in pieces {
                    sum = sum
                        .wrapping_add(p.extent.offset)
                        .wrapping_add(p.extent.len.rotate_left(7))
                        .wrapping_add(p.buf_offset.rotate_left(31));
                }
            }
        }
    }
    for r in 0..plan.requests.len() {
        for (a, it, pieces) in schedule.sources_with_pieces(r) {
            sum = sum.wrapping_add((a as u64) << 20).wrapping_add(it as u64);
            for p in pieces {
                sum = sum.wrapping_add(p.buf_offset ^ p.extent.len);
            }
        }
    }
    sum
}

/// One sweep with the query-based planner: per step, build the plan and
/// answer everything through the query API. Returns the checksum over all
/// steps.
pub fn sweep_query(cfg: &PlanBenchConfig, requests: &[Arc<Vec<OffsetList>>]) -> u64 {
    let topo = cfg.topology();
    let hints = cfg.hints();
    let mut sum = 0u64;
    for step in requests {
        let plan = CollectivePlan::build(Arc::clone(step), &topo, cfg.nprocs, &hints);
        sum = sum.wrapping_add(walk_query(&plan));
    }
    sum
}

/// One sweep with cold compiled schedules: per step, build + compile, then
/// answer from the tables.
pub fn sweep_compiled(cfg: &PlanBenchConfig, requests: &[Arc<Vec<OffsetList>>]) -> u64 {
    let topo = cfg.topology();
    let hints = cfg.hints();
    let mut sum = 0u64;
    for step in requests {
        let plan = CollectivePlan::build(Arc::clone(step), &topo, cfg.nprocs, &hints);
        let schedule = PlanSchedule::compile(plan);
        sum = sum.wrapping_add(walk_compiled(&schedule));
    }
    sum
}

/// One sweep through a [`PlanCache`]: step 0 compiles, later steps
/// translate. Returns the checksum and the cache counters.
pub fn sweep_cached(
    cfg: &PlanBenchConfig,
    requests: &[Arc<Vec<OffsetList>>],
) -> (u64, cc_mpiio::PlanCacheStats) {
    let topo = cfg.topology();
    let hints = cfg.hints();
    let mut cache = PlanCache::new();
    let mut sum = 0u64;
    for step in requests {
        let schedule = cache.get_or_compile(Arc::clone(step), &topo, cfg.nprocs, &hints);
        sum = sum.wrapping_add(walk_compiled(&schedule));
    }
    (sum, cache.stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_agree() {
        let cfg = PlanBenchConfig {
            nprocs: 6,
            nodes: 3,
            extents_per_rank: 40,
            extent_len: 16,
            steps: 4,
            cb: 512,
        };
        let requests: Vec<Arc<Vec<OffsetList>>> = (0..cfg.steps)
            .map(|s| Arc::new(cfg.requests(s)))
            .collect();
        let q = sweep_query(&cfg, &requests);
        let c = sweep_compiled(&cfg, &requests);
        let (k, stats) = sweep_cached(&cfg, &requests);
        assert_eq!(q, c, "compiled walk diverged from query walk");
        assert_eq!(q, k, "cached walk diverged from query walk");
        assert_eq!(stats.misses, 1, "only step 0 should compile");
        assert_eq!(stats.translations as usize, cfg.steps - 1);
    }
}
