//! Multi-job service benchmark: concurrent scheduling vs serial chaining.
//!
//! The scenario is a shared analysis cluster running a mixed population
//! ([`MixedTraffic`]): background batch sweeps that all issue the same
//! hyperslab shapes (the cross-job plan-reuse opportunity) and small
//! interactive ROI queries arriving on top. For each population size N
//! the harness runs the jobs three ways over identically-built file
//! systems:
//!
//! 1. **Concurrent** — through [`Service::run`] under the QoS-WFQ policy,
//!    sharing the OSTs, a backbone lane, and one plan cache;
//! 2. **Serial** — [`Service::run_serial`], jobs chained end to end with
//!    private plan caches (the no-service baseline);
//! 3. **Solo** — each job alone on a fresh file system.
//!
//! Per-job checksums must be bit-identical across all three: the
//! scheduler moves *when* demand lands on shared resources, never what
//! any job computes. The speedup is concurrent vs serial makespan, i.e.
//! aggregate job throughput at equal work.

use cc_model::{ClusterModel, DiskModel};
use cc_mpiio::PlanCacheStats;
use cc_service::{QosClass, Service, ServicePolicy};
use cc_workloads::MixedTraffic;

use crate::Scale;

/// Cluster shape for the service bench.
#[derive(Debug, Clone, Copy)]
pub struct ServiceBenchConfig {
    /// Nodes in the shared cluster.
    pub nodes: usize,
    /// Cores per node.
    pub cores: usize,
    /// Aggregate backbone-lane capacity shared by all jobs (bytes/s).
    pub backbone_bytes_per_sec: f64,
    /// Workload scale.
    pub scale: Scale,
}

impl ServiceBenchConfig {
    /// `Quick` is the CI smoke configuration; `Full` the documented one.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Full => Self {
                nodes: 16,
                cores: 4,
                backbone_bytes_per_sec: 2e10,
                scale,
            },
            Scale::Quick => Self {
                nodes: 8,
                cores: 2,
                backbone_bytes_per_sec: 1e10,
                scale,
            },
        }
    }

    /// The mixed population at `n_jobs` total: half batch sweeps (rounded
    /// up), half interactive ROI queries.
    pub fn traffic(&self, n_jobs: usize) -> MixedTraffic {
        let batch = n_jobs.div_ceil(2);
        let interactive = n_jobs - batch;
        let mut t = match self.scale {
            Scale::Quick => MixedTraffic::quick(batch, interactive),
            Scale::Full => MixedTraffic::full(batch, interactive),
        };
        // Jobs must fit the cluster whole; clamp rank counts to one and
        // two nodes respectively so every N in the sweep admits.
        t.batch_nprocs = 2 * self.cores;
        t.interactive_nprocs = self.cores;
        t
    }

    fn model(&self) -> ClusterModel {
        ClusterModel::hopper_like(self.nodes, self.cores)
    }
}

/// What one population size measured.
#[derive(Debug, Clone)]
pub struct ServiceOutcomeRow {
    /// Total jobs in the population.
    pub n_jobs: usize,
    /// Interactive jobs among them.
    pub interactive_jobs: usize,
    /// Makespan of the serial chaining, virtual seconds.
    pub serial_makespan_secs: f64,
    /// Makespan of the concurrent service run, virtual seconds.
    pub concurrent_makespan_secs: f64,
    /// Aggregate-throughput speedup: serial / concurrent makespan.
    pub speedup: f64,
    /// p99 latency over interactive jobs in the concurrent run (virtual
    /// seconds; arrival to completion, queueing included).
    pub p99_interactive_secs: f64,
    /// Mean interactive latency in the concurrent run.
    pub mean_interactive_secs: f64,
    /// p99 interactive latency under serial chaining, for contrast.
    pub p99_interactive_serial_secs: f64,
    /// Shared plan-cache counters of the concurrent run.
    pub cache: PlanCacheStats,
    /// Fraction of lookups served from another job's compiled plans.
    pub cross_job_rate: f64,
    /// Bytes pushed through the shared backbone lane.
    pub lane_bytes: u64,
}

/// p-th percentile (0..=100) of an unsorted latency sample, in seconds.
pub fn percentile(mut secs: Vec<f64>, p: f64) -> f64 {
    if secs.is_empty() {
        return 0.0;
    }
    secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((secs.len() as f64 * p / 100.0).ceil() as usize).clamp(1, secs.len());
    secs[idx - 1]
}

/// Runs one population size through concurrent, serial, and solo
/// execution, asserting per-job bit-identity across all three.
pub fn run_n(cfg: &ServiceBenchConfig, n_jobs: usize) -> ServiceOutcomeRow {
    let traffic = cfg.traffic(n_jobs);
    let disk = DiskModel::lustre_like();
    let submit_all = |svc: &mut Service| {
        for spec in traffic.jobs() {
            svc.submit(spec).expect("bench specs admit cleanly");
        }
    };

    let mut concurrent = Service::new(cfg.model(), traffic.build_fs(disk.clone()))
        .with_policy(ServicePolicy::QosWfq)
        .with_backbone(cfg.backbone_bytes_per_sec);
    submit_all(&mut concurrent);
    let conc = concurrent.run();

    let mut serial = Service::new(cfg.model(), traffic.build_fs(disk.clone()))
        .with_backbone(cfg.backbone_bytes_per_sec);
    submit_all(&mut serial);
    let ser = serial.run_serial();

    // Solo reference: each job alone on a fresh, identically-built file
    // system. Its checksum is the job's ground truth.
    for (i, spec) in traffic.jobs().into_iter().enumerate() {
        let mut solo = Service::new(cfg.model(), traffic.build_fs(disk.clone()))
            .with_backbone(cfg.backbone_bytes_per_sec);
        let name = spec.name.clone();
        solo.submit(spec).expect("solo spec admits");
        let solo_out = solo.run();
        assert_eq!(
            solo_out.jobs[0].checksum(),
            conc.jobs[i].checksum(),
            "job {name}: concurrent result diverged from solo run"
        );
        assert_eq!(
            solo_out.jobs[0].checksum(),
            ser.jobs[i].checksum(),
            "job {name}: serial result diverged from solo run"
        );
    }

    let lat = |out: &cc_service::ServiceOutcome| -> Vec<f64> {
        out.jobs
            .iter()
            .filter(|j| j.class == QosClass::Interactive)
            .map(|j| j.latency().secs())
            .collect()
    };
    let conc_lat = lat(&conc);
    let ser_lat = lat(&ser);
    let mean = if conc_lat.is_empty() {
        0.0
    } else {
        conc_lat.iter().sum::<f64>() / conc_lat.len() as f64
    };
    ServiceOutcomeRow {
        n_jobs,
        interactive_jobs: conc_lat.len(),
        serial_makespan_secs: ser.makespan.secs(),
        concurrent_makespan_secs: conc.makespan.secs(),
        speedup: ser.makespan.secs() / conc.makespan.secs().max(f64::MIN_POSITIVE),
        p99_interactive_secs: percentile(conc_lat.clone(), 99.0),
        mean_interactive_secs: mean,
        p99_interactive_serial_secs: percentile(ser_lat, 99.0),
        cache: conc.cache,
        cross_job_rate: conc.cache.cross_job_rate(),
        lane_bytes: conc.lane.map_or(0, |l| l.bytes),
    }
}

/// The population sweep the headline bench reports: N in {2, 4, 8, 16}.
pub fn run_sweep(cfg: &ServiceBenchConfig) -> Vec<ServiceOutcomeRow> {
    [2usize, 4, 8, 16].iter().map(|&n| run_n(cfg, n)).collect()
}

/// Virtual seconds of makespan per job — the aggregate-throughput figure
/// inverted for readability in reports.
pub fn secs_per_job(makespan_secs: f64, n_jobs: usize) -> f64 {
    makespan_secs / n_jobs as f64
}

/// One row's share of the sweep as a JSON object (hand-built, no serde in
/// the workspace).
pub fn row_json(r: &ServiceOutcomeRow) -> String {
    format!(
        "{{ \"n_jobs\": {}, \"interactive_jobs\": {}, \"serial_makespan_secs\": {:.6e}, \
         \"concurrent_makespan_secs\": {:.6e}, \"speedup\": {:.3}, \
         \"p99_interactive_secs\": {:.6e}, \"mean_interactive_secs\": {:.6e}, \
         \"p99_interactive_serial_secs\": {:.6e}, \"cache_lookups\": {}, \
         \"cache_hits\": {}, \"cache_translations\": {}, \"cache_misses\": {}, \
         \"cross_job_hits\": {}, \"cross_job_translations\": {}, \
         \"cross_job_rate\": {:.3}, \"lane_bytes\": {} }}",
        r.n_jobs,
        r.interactive_jobs,
        r.serial_makespan_secs,
        r.concurrent_makespan_secs,
        r.speedup,
        r.p99_interactive_secs,
        r.mean_interactive_secs,
        r.p99_interactive_serial_secs,
        r.cache.lookups(),
        r.cache.hits,
        r.cache.translations,
        r.cache.misses,
        r.cache.cross_job_hits,
        r.cache.cross_job_translations,
        r.cross_job_rate,
        r.lane_bytes,
    )
}

/// Converts a latency in virtual seconds to a human-scaled milliseconds
/// figure for logs.
pub fn ms(secs: f64) -> f64 {
    secs * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_tail() {
        let lat = vec![0.5, 0.1, 0.9, 0.3];
        assert_eq!(percentile(lat.clone(), 99.0), 0.9);
        assert_eq!(percentile(lat.clone(), 50.0), 0.3);
        assert_eq!(percentile(vec![], 99.0), 0.0);
    }

    #[test]
    fn quick_sweep_point_speeds_up_and_shares_plans() {
        let cfg = ServiceBenchConfig::for_scale(Scale::Quick);
        let row = run_n(&cfg, 4);
        assert_eq!(row.n_jobs, 4);
        assert!(row.interactive_jobs >= 1);
        // Two batch sweeps with identical shapes must share plans.
        assert!(
            row.cache.cross_job_hits + row.cache.cross_job_translations > 0,
            "no cross-job reuse at N=4: {:?}",
            row.cache
        );
        // Overlapping independent jobs must beat chaining them.
        assert!(row.speedup > 1.0, "speedup {:.2}", row.speedup);
        // QoS-WFQ keeps the interactive tail under the serial chain's.
        assert!(row.p99_interactive_secs <= row.p99_interactive_serial_secs);
    }
}
