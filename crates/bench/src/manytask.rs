//! Many-task request-fusion benchmark: fused collective sweeps vs
//! independent per-task I/O at ≥10k tiny tasks.
//!
//! The scenario is the paper's loosely-coupled worst case: thousands of
//! small analysis tasks ([`ManyTask`]) each reading a few kilobytes of a
//! shared striped file. The harness runs the same population three ways,
//! each over a freshly built file system (OST booking state persists
//! inside a [`cc_pfs::Pfs`], so comparative runs must not share one):
//!
//! 1. **Fused** — [`TaskBatch::run_fused`]: tasks binned by (file,
//!    kernel class) per arrival wave, each bin's extents union-merged and
//!    served by one shared collective sweep, results scattered per task;
//! 2. **Independent** — [`TaskBatch::run_independent`]: every task issues
//!    its own reads, one positioning operation per extent;
//! 3. **Solo** — [`TaskBatch::run_solo`]: each task alone in a fresh
//!    single-rank world — the ground truth.
//!
//! Per-task FNV checksums must be bit-identical across all three before
//! anything is reported: fusion moves *how* bytes reach tasks, never what
//! any task computes. The headline is the reduction in OST extents served
//! and OST busy-time, fused vs independent.

use cc_model::{ClusterModel, DiskModel};
use cc_mpiio::PlanCacheStats;
use cc_service::{BatchOutcome, TaskBatch};
use cc_workloads::ManyTask;

use crate::Scale;

/// Cluster shape and population size for the many-task bench.
#[derive(Debug, Clone, Copy)]
pub struct ManyTaskBenchConfig {
    /// Nodes in the cluster.
    pub nodes: usize,
    /// Cores per node (ranks = nodes x cores).
    pub cores: usize,
    /// Tasks in the population.
    pub tasks: usize,
    /// Workload scale.
    pub scale: Scale,
}

impl ManyTaskBenchConfig {
    /// `Full` is the headline configuration (256 ranks, 64 OSTs, 10240
    /// tasks); `Quick` the CI smoke shape (16 ranks, 8 OSTs, 1024 tasks).
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Full => Self {
                nodes: 64,
                cores: 4,
                tasks: 10240,
                scale,
            },
            Scale::Quick => Self {
                nodes: 8,
                cores: 2,
                tasks: 1024,
                scale,
            },
        }
    }

    /// The task population at this scale.
    pub fn workload(&self) -> ManyTask {
        let mut t = match self.scale {
            Scale::Quick => ManyTask::quick(self.tasks),
            Scale::Full => ManyTask::full(self.tasks),
        };
        t.nprocs = self.nodes * self.cores;
        t
    }

    fn model(&self) -> ClusterModel {
        ClusterModel::hopper_like(self.nodes, self.cores)
    }
}

/// What the three-way comparison measured.
#[derive(Debug, Clone)]
pub struct ManyTaskRow {
    /// Tasks in the population.
    pub tasks: usize,
    /// Bins the fused run dispatched.
    pub bins: usize,
    /// OST extents served by the independent baseline.
    pub extents_independent: u64,
    /// OST extents served by the fused run.
    pub extents_fused: u64,
    /// Extents served, independent / fused — the headline.
    pub extent_reduction: f64,
    /// Total OST busy-seconds booked by the independent baseline.
    pub busy_independent_secs: f64,
    /// Total OST busy-seconds booked by the fused run.
    pub busy_fused_secs: f64,
    /// OST busy-time, independent / fused.
    pub busy_reduction: f64,
    /// Bytes the file system moved for the independent baseline
    /// (duplicates re-read per task).
    pub bytes_independent: u64,
    /// Bytes the file system moved for the fused run (duplicates once).
    pub bytes_fused: u64,
    /// Bytes the tasks requested (duplicates counted per task) / bytes
    /// the fused run actually read — the dedup win, within-rank fusion
    /// and cross-rank aggregator coverage combined.
    pub dedup_factor: f64,
    /// Median per-task latency of the fused run, virtual seconds.
    pub p50_fused_secs: f64,
    /// p99 per-task latency of the fused run.
    pub p99_fused_secs: f64,
    /// Median per-task latency of the independent baseline.
    pub p50_independent_secs: f64,
    /// p99 per-task latency of the independent baseline.
    pub p99_independent_secs: f64,
    /// Makespan of the fused run, virtual seconds.
    pub makespan_fused_secs: f64,
    /// Makespan of the independent baseline, virtual seconds.
    pub makespan_independent_secs: f64,
    /// Tasks served per compiled collective schedule.
    pub tasks_per_schedule: f64,
    /// Shared plan-cache counters of the fused run.
    pub cache: PlanCacheStats,
}

fn run_mode(
    cfg: &ManyTaskBenchConfig,
    t: &ManyTask,
    run: impl FnOnce(TaskBatch) -> BatchOutcome,
) -> BatchOutcome {
    let mut batch =
        TaskBatch::new(cfg.model(), t.build_fs(DiskModel::lustre_like())).with_policy(t.policy());
    for spec in t.specs() {
        batch.submit(spec).expect("bench specs admit cleanly");
    }
    run(batch)
}

/// Runs the population fused, independent, and solo, asserting per-task
/// bit-identity across all three and against the brute-force oracles.
pub fn run_comparison_manytask(cfg: &ManyTaskBenchConfig) -> ManyTaskRow {
    let t = cfg.workload();
    let fused = run_mode(cfg, &t, TaskBatch::run_fused);
    let indep = run_mode(cfg, &t, TaskBatch::run_independent);
    let solo = run_mode(cfg, &t, TaskBatch::run_solo);

    assert_eq!(fused.tasks.len(), cfg.tasks);
    for ((f, i), s) in fused.tasks.iter().zip(&indep.tasks).zip(&solo.tasks) {
        assert_eq!(
            f.checksum(),
            s.checksum(),
            "task {}: fused result diverged from solo run",
            f.name
        );
        assert_eq!(
            i.checksum(),
            s.checksum(),
            "task {}: independent result diverged from solo run",
            i.name
        );
    }
    for (i, task) in fused.tasks.iter().enumerate() {
        let want = t.oracle_task(i);
        assert_eq!(task.value.len(), want.len(), "task {i} arity");
        for (got, want) in task.value.iter().zip(&want) {
            assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "task {i}: got {got}, oracle {want}"
            );
        }
    }

    let task_bytes: u64 = fused.bins.iter().map(|b| b.task_bytes).sum();
    ManyTaskRow {
        tasks: cfg.tasks,
        bins: fused.bins.len(),
        extents_independent: indep.extents_served,
        extents_fused: fused.extents_served,
        extent_reduction: indep.extents_served as f64 / fused.extents_served.max(1) as f64,
        busy_independent_secs: indep.ost_busy_secs,
        busy_fused_secs: fused.ost_busy_secs,
        busy_reduction: indep.ost_busy_secs / fused.ost_busy_secs.max(f64::MIN_POSITIVE),
        bytes_independent: indep.bytes_read,
        bytes_fused: fused.bytes_read,
        dedup_factor: task_bytes as f64 / fused.bytes_read.max(1) as f64,
        p50_fused_secs: fused.latency_p50.secs(),
        p99_fused_secs: fused.latency_p99.secs(),
        p50_independent_secs: indep.latency_p50.secs(),
        p99_independent_secs: indep.latency_p99.secs(),
        makespan_fused_secs: fused.makespan.secs(),
        makespan_independent_secs: indep.makespan.secs(),
        tasks_per_schedule: fused.tasks_per_schedule(),
        cache: fused.plan_cache,
    }
}

/// The row as a JSON object (hand-built, no serde in the workspace).
pub fn manytask_row_json(r: &ManyTaskRow) -> String {
    format!(
        "{{ \"tasks\": {}, \"bins\": {}, \"extents_independent\": {}, \
         \"extents_fused\": {}, \"extent_reduction\": {:.1}, \
         \"busy_independent_secs\": {:.6e}, \"busy_fused_secs\": {:.6e}, \
         \"busy_reduction\": {:.1}, \"bytes_independent\": {}, \
         \"bytes_fused\": {}, \"dedup_factor\": {:.2}, \
         \"p50_fused_secs\": {:.6e}, \"p99_fused_secs\": {:.6e}, \
         \"p50_independent_secs\": {:.6e}, \"p99_independent_secs\": {:.6e}, \
         \"makespan_fused_secs\": {:.6e}, \"makespan_independent_secs\": {:.6e}, \
         \"tasks_per_schedule\": {:.1}, \"plan_compiles\": {}, \
         \"plan_hits\": {}, \"plan_translations\": {}, \
         \"cross_bin_hits\": {}, \"cross_bin_translations\": {}, \
         \"fused_tasks\": {} }}",
        r.tasks,
        r.bins,
        r.extents_independent,
        r.extents_fused,
        r.extent_reduction,
        r.busy_independent_secs,
        r.busy_fused_secs,
        r.busy_reduction,
        r.bytes_independent,
        r.bytes_fused,
        r.dedup_factor,
        r.p50_fused_secs,
        r.p99_fused_secs,
        r.p50_independent_secs,
        r.p99_independent_secs,
        r.makespan_fused_secs,
        r.makespan_independent_secs,
        r.tasks_per_schedule,
        r.cache.misses,
        r.cache.hits,
        r.cache.translations,
        r.cache.cross_job_hits,
        r.cache.cross_job_translations,
        r.cache.fused_tasks,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_comparison_fuses_and_stays_bit_identical() {
        let cfg = ManyTaskBenchConfig {
            tasks: 256,
            ..ManyTaskBenchConfig::for_scale(Scale::Quick)
        };
        let row = run_comparison_manytask(&cfg);
        assert_eq!(row.tasks, 256);
        // 4 waves x 2 kernel classes.
        assert_eq!(row.bins, 8);
        assert!(
            row.extent_reduction >= 10.0,
            "extent reduction only {:.1}x ({} -> {})",
            row.extent_reduction,
            row.extents_independent,
            row.extents_fused
        );
        assert!(row.busy_reduction > 1.0, "busy reduction {:.2}", row.busy_reduction);
        assert!(row.dedup_factor > 1.5, "dedup factor {:.2}", row.dedup_factor);
        assert_eq!(row.cache.fused_tasks, 256);
        assert!(row.tasks_per_schedule >= 256.0 / 8.0);
    }
}
