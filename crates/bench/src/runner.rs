//! Shared experiment machinery: CC-vs-traditional comparison runs, the
//! computation:I/O ratio calibration, and virtual-scale models.

use cc_core::{object_get_vara, MapKernel, ObjectIo, ReduceMode};
use cc_model::{ClusterModel, SimTime};
use cc_mpi::World;
use cc_workloads::ClimateWorkload;

/// One CC-vs-traditional measurement.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Completion time (max over ranks) of collective computing.
    pub t_cc: SimTime,
    /// Completion time (max over ranks) of the traditional baseline.
    pub t_mpi: SimTime,
    /// CC "local reduction" overhead (max over ranks) — Fig. 11's metric.
    pub cc_local_reduction: SimTime,
    /// Traditional reduction overhead (max over ranks).
    pub mpi_local_reduction: SimTime,
    /// Total metadata entries CC created.
    pub metadata_entries: u64,
    /// Total metadata bytes CC created.
    pub metadata_bytes: u64,
}

impl Comparison {
    /// `t_mpi / t_cc`.
    pub fn speedup(&self) -> f64 {
        self.t_mpi.secs() / self.t_cc.secs().max(f64::MIN_POSITIVE)
    }
}

/// Runs the workload once under collective computing and once under the
/// traditional baseline (fresh file system each, identical model), with
/// the given kernel; checks that the two global results agree.
pub fn run_comparison(
    workload: &ClimateWorkload,
    model: &ClusterModel,
    total_osts: usize,
    kernel: &dyn MapKernel,
    hints: &cc_mpiio::Hints,
) -> Comparison {
    run_comparison_trials(workload, model, total_osts, kernel, hints, 1)
}

/// Like [`run_comparison`] but averages completion times over `trials`
/// repetitions (the paper averages three runs per configuration — OST
/// queueing makes single runs jittery, exactly like a real file system).
pub fn run_comparison_trials(
    workload: &ClimateWorkload,
    model: &ClusterModel,
    total_osts: usize,
    kernel: &dyn MapKernel,
    hints: &cc_mpiio::Hints,
    trials: usize,
) -> Comparison {
    assert!(trials >= 1, "need at least one trial");
    let run = |blocking: bool| -> (SimTime, SimTime, u64, u64, Option<Vec<f64>>) {
        let fs = workload.build_fs(total_osts, model.disk.clone());
        let world = World::new(workload.nprocs(), model.clone());
        let fs = &fs;
        let results = world.run(move |comm| {
            let file = fs.open(ClimateWorkload::FILE).expect("created");
            let slab = workload.slab(comm.rank());
            let io = ObjectIo::new(slab.start().to_vec(), slab.count().to_vec())
                .blocking(blocking)
                .hints(hints.clone())
                .reduce(ReduceMode::AllToOne { root: 0 });
            let out = object_get_vara(comm, fs, &file, workload.var(), &io, kernel);
            (
                out.report.end,
                out.report.local_reduction,
                out.report.metadata_entries,
                out.report.metadata_bytes,
                out.global,
            )
        });
        let end = results.iter().map(|r| r.0).max().expect("nonempty");
        // CC accumulates pure op cost per rank (max = busiest rank). For
        // the baseline we report the roots observed MPI_Reduce duration
        // (rank 0), the way the paper would have timed it; early ranks
        // wait for stragglers and would report skew, not cost.
        let local = if blocking {
            results[0].1
        } else {
            results.iter().map(|r| r.1).max().expect("nonempty")
        };
        let entries: u64 = results.iter().map(|r| r.2).sum();
        let bytes: u64 = results.iter().map(|r| r.3).sum();
        let global = results.into_iter().find_map(|r| r.4);
        (end, local, entries, bytes, global)
    };
    let mut acc: Option<Comparison> = None;
    for _ in 0..trials {
        let (t_cc, cc_local, entries, meta_bytes, g_cc) = run(false);
        let (t_mpi, mpi_local, _, _, g_mpi) = run(true);
        // The whole point of the reproduction: same answer, different time.
        let (g_cc, g_mpi) = (g_cc.expect("root result"), g_mpi.expect("root result"));
        for (a, b) in g_cc.iter().zip(&g_mpi) {
            assert!(
                (a - b).abs() <= 1e-6 * a.abs().max(1.0),
                "CC result {a} diverged from baseline {b}"
            );
        }
        let c = Comparison {
            t_cc,
            t_mpi,
            cc_local_reduction: cc_local,
            mpi_local_reduction: mpi_local,
            metadata_entries: entries,
            metadata_bytes: meta_bytes,
        };
        acc = Some(match acc {
            None => c,
            Some(p) => Comparison {
                t_cc: p.t_cc + c.t_cc,
                t_mpi: p.t_mpi + c.t_mpi,
                cc_local_reduction: p.cc_local_reduction + c.cc_local_reduction,
                mpi_local_reduction: p.mpi_local_reduction + c.mpi_local_reduction,
                metadata_entries: c.metadata_entries,
                metadata_bytes: c.metadata_bytes,
            },
        });
    }
    let total = acc.expect("at least one trial");
    let inv = 1.0 / trials as f64;
    Comparison {
        t_cc: total.t_cc.scale(inv),
        t_mpi: total.t_mpi.scale(inv),
        cc_local_reduction: total.cc_local_reduction.scale(inv),
        mpi_local_reduction: total.mpi_local_reduction.scale(inv),
        ..total
    }
}

/// Calibrates `map_cost_per_byte` so that the traditional baseline's
/// compute phase costs `ratio` times its I/O phase — the paper's
/// "computation vs I/O" knob of Fig. 9. Returns the calibrated model.
pub fn calibrate_ratio(
    workload: &ClimateWorkload,
    base: &ClusterModel,
    total_osts: usize,
    hints: &cc_mpiio::Hints,
    ratio: f64,
) -> ClusterModel {
    // Measure the pure I/O time with zero-cost compute.
    let mut probe = base.clone();
    probe.cpu.map_cost_per_byte = 0.0;
    let fs = workload.build_fs(total_osts, probe.disk.clone());
    let world = World::new(workload.nprocs(), probe.clone());
    let fs = &fs;
    let hints_ref = hints;
    let io_times = world.run(move |comm| {
        let file = fs.open(ClimateWorkload::FILE).expect("created");
        let slab = workload.slab(comm.rank());
        let request = workload.var().byte_extents(slab);
        let (_, rep) = cc_mpiio::collective_read(comm, fs, &file, &request, hints_ref);
        rep.end
    });
    let t_io = io_times.into_iter().max().expect("nonempty");
    let per_rank_bytes = workload.requested_bytes() as f64 / workload.nprocs() as f64;
    let mut model = base.clone();
    model.cpu.map_cost_per_byte = ratio * t_io.secs() / per_rank_bytes;
    model
}

/// Scales a model for a virtually larger workload: running `1/scale` of
/// the paper's bytes against bandwidths divided by `scale` yields the
/// paper's time magnitudes while moving only a manageable amount of real
/// data. Latency-like costs (seeks, per-message latency) are left alone —
/// they are per-operation, and operation counts shrink with the data.
pub fn scaled_model(base: &ClusterModel, scale: f64) -> ClusterModel {
    assert!(scale >= 1.0, "scale must be >= 1");
    let mut m = base.clone();
    m.disk.ost_bandwidth /= scale;
    m.net.bw_intra /= scale;
    m.net.bw_inter /= scale;
    // Piece and message counts shrink with the data, so the per-piece
    // scatter cost and per-message posting costs grow to keep the
    // shuffle:read ratio at paper scale.
    m.net.scatter_overhead *= scale;
    m.net.msg_overhead_intra *= scale;
    m.net.msg_overhead_inter *= scale;
    m.cpu.map_cost_per_byte *= scale;
    m.cpu.memcpy_cost_per_byte *= scale;
    // Entry/element counts shrink with the data, so per-entry costs grow
    // to keep overhead magnitudes at paper scale.
    m.cpu.metadata_cost_per_entry *= scale;
    m.cpu.reduce_cost_per_element *= scale;
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_core::SumKernel;
    use cc_mpiio::Hints;

    fn tiny_workload() -> ClimateWorkload {
        ClimateWorkload::synthetic_3d(4, 1, 16, 64, 8, 64, 4096, 4)
    }

    #[test]
    fn comparison_checks_result_equality_and_reports_times() {
        let w = tiny_workload();
        let model = ClusterModel::hopper_like(2, 2);
        let c = run_comparison(&w, &model, 8, &SumKernel, &Hints::default());
        assert!(c.t_cc > SimTime::ZERO);
        assert!(c.t_mpi > SimTime::ZERO);
        assert!(c.speedup() > 0.0);
        assert!(c.metadata_entries > 0);
    }

    #[test]
    fn calibration_hits_requested_ratio() {
        let w = tiny_workload();
        let base = ClusterModel::hopper_like(2, 2);
        let hints = Hints::default();
        let model = calibrate_ratio(&w, &base, 8, &hints, 2.0);
        // Compute time per rank should now be ~2x the measured io time;
        // verify indirectly: doubling the ratio doubles the map cost.
        let model4 = calibrate_ratio(&w, &base, 8, &hints, 4.0);
        let r = model4.cpu.map_cost_per_byte / model.cpu.map_cost_per_byte;
        assert!((r - 2.0).abs() < 0.2, "ratio scaling off: {r}");
    }

    #[test]
    fn scaled_model_divides_bandwidths() {
        let base = ClusterModel::hopper_like(1, 2);
        let m = scaled_model(&base, 100.0);
        assert!((base.disk.ost_bandwidth / m.disk.ost_bandwidth - 100.0).abs() < 1e-9);
        assert_eq!(m.net.latency_inter, base.net.latency_inter);
    }
}
