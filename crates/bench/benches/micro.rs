//! Microbenchmarks of the hot paths: datatype flattening, offset-list
//! intersection, logical-map construction, kernels, and the wire codec.
//! These measure *host* wall time (the simulator's own cost), not virtual
//! time.

use cc_array::{construct_runs, DType, Hyperslab, Shape, Variable};
use cc_bench::hotpath::{make_backend, run_after, run_before, HotPathConfig, HotPathScratch};
use cc_core::{MapKernel, MinLocKernel, SumKernel};
use cc_mpi::elem::{decode_vec, encode_slice};
use cc_mpiio::{Extent, OffsetList};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_flatten(c: &mut Criterion) {
    let shape = Shape::new(vec![64, 32, 64, 128]);
    let var = Variable::new("v", shape, DType::F32, 0);
    let slab = Hyperslab::new(vec![4, 2, 8, 16], vec![32, 16, 32, 64]);
    c.bench_function("flatten_4d_hyperslab_16k_runs", |b| {
        b.iter(|| black_box(var.byte_extents(black_box(&slab))))
    });
}

fn bench_locate(c: &mut Criterion) {
    // 10k extents of 64 bytes with 64-byte gaps.
    let list = OffsetList::new(
        (0..10_000u64)
            .map(|i| Extent {
                offset: i * 128,
                len: 64,
            })
            .collect(),
    );
    c.bench_function("offset_list_locate_10k_extents", |b| {
        b.iter(|| black_box(list.locate(black_box(400_000), black_box(600_000))))
    });
    c.bench_function("offset_list_build_10k_extents", |b| {
        b.iter(|| {
            let raw: Vec<Extent> = (0..10_000u64)
                .map(|i| Extent {
                    offset: i * 128,
                    len: 64,
                })
                .collect();
            black_box(OffsetList::new(raw))
        })
    });
}

fn bench_construct_runs(c: &mut Criterion) {
    let shape = Shape::new(vec![128, 64, 64]);
    let var = Variable::new("v", shape, DType::F64, 0);
    let slab = Hyperslab::new(vec![0, 8, 0], vec![128, 32, 64]);
    let request = var.byte_extents(&slab);
    c.bench_function("construct_runs_4k_chunk", |b| {
        b.iter(|| {
            black_box(construct_runs(
                black_box(&var),
                black_box(&request),
                1 << 18,
                1 << 20,
            ))
        })
    });
}

fn bench_kernels(c: &mut Criterion) {
    let values: Vec<f64> = (0..1_000_000).map(|i| (i % 997) as f64).collect();
    let mut group = c.benchmark_group("kernel_map_1m_values");
    for kernel in [&SumKernel as &dyn MapKernel, &MinLocKernel] {
        group.bench_function(kernel.name(), |b| {
            b.iter(|| {
                let mut acc = kernel.identity();
                kernel.map(&mut acc, 0, black_box(&values));
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let values: Vec<f64> = (0..262_144).map(|i| i as f64).collect();
    c.bench_function("elem_encode_2mb_f64", |b| {
        b.iter(|| black_box(encode_slice(black_box(&values))))
    });
    let bytes = encode_slice(&values);
    c.bench_function("elem_decode_2mb_f64", |b| {
        b.iter(|| black_box(decode_vec::<f64>(black_box(&bytes))))
    });
}

fn bench_hotpath(c: &mut Criterion) {
    // The fragmented generate→decode→map pipeline, before (seed: per-
    // element generation, per-run decode allocation) and after (bulk
    // fill_range, scratch-buffer decode_into) the zero-copy work.
    let cfg = HotPathConfig {
        runs: 1024,
        run_elems: 64,
        gap_elems: 192,
    };
    let backend = make_backend(&cfg);
    let mut group = c.benchmark_group("generate_decode_map_64k_elems");
    group.bench_function("before_per_element", |b| {
        b.iter(|| black_box(run_before(black_box(&cfg), &backend, &SumKernel)))
    });
    let mut scratch = HotPathScratch::default();
    group.bench_function("after_zero_copy", |b| {
        b.iter(|| black_box(run_after(black_box(&cfg), &backend, &SumKernel, &mut scratch)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_flatten,
    bench_locate,
    bench_construct_runs,
    bench_kernels,
    bench_codec,
    bench_hotpath
);
criterion_main!(benches);
