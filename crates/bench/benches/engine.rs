//! End-to-end simulator throughput: how fast the host machine runs one
//! whole collective-computing operation (16 ranks, ~2 MB), for the three
//! execution paths. Useful for catching host-side performance regressions
//! in the engines themselves.

use cc_core::{object_get_vara, IoMode, ObjectIo, SumKernel};
use cc_model::ClusterModel;
use cc_mpi::World;
use cc_mpiio::Hints;
use cc_workloads::ClimateWorkload;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn run_once(workload: &ClimateWorkload, mode: IoMode, blocking: bool) -> f64 {
    let model = ClusterModel::test_tiny(16);
    let fs = workload.build_fs(8, model.disk.clone());
    let world = World::new(workload.nprocs(), model);
    let fs = &fs;
    let ends = world.run(move |comm| {
        let file = fs.open(ClimateWorkload::FILE).expect("created");
        let slab = workload.slab(comm.rank());
        let io = ObjectIo::new(slab.start().to_vec(), slab.count().to_vec())
            .mode(mode)
            .blocking(blocking)
            .hints(Hints {
                cb_buffer_size: 128 << 10,
                ..Hints::default()
            });
        object_get_vara(comm, fs, &file, workload.var(), &io, &SumKernel)
            .report
            .end
            .secs()
    });
    ends.into_iter().fold(0.0, f64::max)
}

fn bench_engines(c: &mut Criterion) {
    let workload = ClimateWorkload::interleaved_3d(16, 16, 2, 256, 32 << 10, 8);
    let mut group = c.benchmark_group("simulate_16rank_2mb");
    group.sample_size(20);
    group.bench_function("collective_computing", |b| {
        b.iter(|| black_box(run_once(&workload, IoMode::Collective, false)))
    });
    group.bench_function("traditional_baseline", |b| {
        b.iter(|| black_box(run_once(&workload, IoMode::Collective, true)))
    });
    group.bench_function("independent", |b| {
        b.iter(|| black_box(run_once(&workload, IoMode::Independent, false)))
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
