//! Element types of variables.

/// Element type of a variable (the subset of netCDF types the paper's
/// workloads use).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// 32-bit IEEE 754 float.
    F32,
    /// 64-bit IEEE 754 float.
    F64,
}

impl DType {
    /// Bytes per element.
    pub fn size(self) -> u64 {
        match self {
            DType::F32 => 4,
            DType::F64 => 8,
        }
    }

    /// Decodes a little-endian byte buffer of this type into `f64` values.
    ///
    /// # Panics
    /// Panics if `bytes.len()` is not a multiple of the element size.
    pub fn decode(self, bytes: &[u8]) -> Vec<f64> {
        let mut out = Vec::new();
        self.decode_into(bytes, &mut out);
        out
    }

    /// Decodes into a caller-owned scratch buffer, clearing it first. Hot
    /// paths reuse one buffer across calls so steady-state decoding does
    /// no allocation once the buffer has reached its high-water mark.
    ///
    /// # Panics
    /// Panics if `bytes.len()` is not a multiple of the element size.
    pub fn decode_into(self, bytes: &[u8], out: &mut Vec<f64>) {
        let esize = self.size() as usize;
        assert!(
            bytes.len().is_multiple_of(esize),
            "{} bytes is not a whole number of {esize}-byte elements",
            bytes.len()
        );
        out.clear();
        out.reserve(bytes.len() / esize);
        match self {
            DType::F32 => out.extend(
                bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")) as f64),
            ),
            DType::F64 => out.extend(
                bytes
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"))),
            ),
        }
    }

    /// Encodes `f64` values into this type's little-endian bytes.
    pub fn encode(self, values: &[f64]) -> Vec<u8> {
        match self {
            DType::F32 => values
                .iter()
                .flat_map(|&v| (v as f32).to_le_bytes())
                .collect(),
            DType::F64 => values.iter().flat_map(|&v| v.to_le_bytes()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip_exact() {
        let vals = [1.5, -2.25, 1e300];
        assert_eq!(DType::F64.decode(&DType::F64.encode(&vals)), vals);
    }

    #[test]
    fn f32_roundtrip_narrows() {
        let vals = [1.5f64, 0.1];
        let got = DType::F32.decode(&DType::F32.encode(&vals));
        assert_eq!(got[0], 1.5);
        assert_eq!(got[1], 0.1f32 as f64);
    }

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size(), 4);
        assert_eq!(DType::F64.size(), 8);
    }

    #[test]
    #[should_panic]
    fn ragged_decode_panics() {
        let _ = DType::F64.decode(&[0u8; 7]);
    }

    #[test]
    fn decode_into_reuses_capacity() {
        let bytes = DType::F64.encode(&[1.0, 2.0, 3.0, 4.0]);
        let mut scratch = Vec::new();
        DType::F64.decode_into(&bytes, &mut scratch);
        assert_eq!(scratch, [1.0, 2.0, 3.0, 4.0]);
        let cap = scratch.capacity();
        DType::F64.decode_into(&bytes[..16], &mut scratch);
        assert_eq!(scratch, [1.0, 2.0]);
        assert_eq!(scratch.capacity(), cap, "shorter decode must not shrink");
    }

    proptest::proptest! {
        #[test]
        fn prop_decode_into_matches_decode(
            words in proptest::collection::vec(proptest::prelude::any::<u64>(), 0..64),
            wide in proptest::prelude::any::<bool>(),
            stale in 0usize..32,
        ) {
            // decode_into must be bit-identical to decode regardless of
            // what the scratch buffer held before the call.
            let dtype = if wide { DType::F64 } else { DType::F32 };
            let mut bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            bytes.truncate(bytes.len() / dtype.size() as usize * dtype.size() as usize);
            let mut scratch = vec![f64::NAN; stale];
            dtype.decode_into(&bytes, &mut scratch);
            let fresh = dtype.decode(&bytes);
            proptest::prop_assert_eq!(
                scratch.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
