//! A PnetCDF-like array layer: named N-dimensional variables, hyperslab
//! access, and the logical↔byte mappings the paper's "logical map" needs.
//!
//! The high-level I/O request (`ncmpi_get_vara_*` in the paper's Fig. 5)
//! defines logical access coordinates; this crate flattens a hyperslab into
//! the byte offset list the MPI-IO layer consumes, and — the inverse the
//! paper calls *construction* (Fig. 8) — maps an arbitrary byte range of an
//! aggregated chunk back to logical subsets of a requester's hyperslab, so
//! that a map kernel can run on raw bytes mid-collective.

#![warn(missing_docs)]

pub mod dataset;
pub mod dtype;
pub mod hyperslab;
pub mod logical;
pub mod shape;
pub mod variable;

pub use dataset::{get_vara_all, put_vara_all, Dataset};
pub use dtype::DType;
pub use hyperslab::{Hyperslab, StridedSlab};
pub use logical::{construct_runs, LogicalRun};
pub use shape::Shape;
pub use variable::Variable;
