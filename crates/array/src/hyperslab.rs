//! Hyperslab (start/count) selections.
//!
//! A hyperslab is the `start[]`/`count[]` pair of `ncmpi_get_vara`: an
//! axis-aligned box of an N-dimensional variable. Its elements, visited in
//! row-major order, decompose into contiguous *runs* along the fastest
//! dimension — the unit both the flattening (logical → bytes) and the
//! construction (bytes → logical) directions work in.

use crate::shape::Shape;

/// An axis-aligned box selection: `start[d] .. start[d] + count[d]` in each
/// dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hyperslab {
    start: Vec<u64>,
    count: Vec<u64>,
}

impl Hyperslab {
    /// Creates a hyperslab.
    ///
    /// # Panics
    /// Panics if ranks differ or any count is zero.
    pub fn new(start: Vec<u64>, count: Vec<u64>) -> Self {
        assert_eq!(start.len(), count.len(), "start/count rank mismatch");
        assert!(!start.is_empty(), "hyperslab needs at least one dimension");
        assert!(
            count.iter().all(|&c| c > 0),
            "all counts must be positive: {count:?}"
        );
        Self { start, count }
    }

    /// The whole of `shape`.
    pub fn whole(shape: &Shape) -> Self {
        Self::new(vec![0; shape.rank()], shape.dims().to_vec())
    }

    /// Per-dimension starts.
    pub fn start(&self) -> &[u64] {
        &self.start
    }

    /// Per-dimension counts.
    pub fn count(&self) -> &[u64] {
        &self.count
    }

    /// Rank of the selection.
    pub fn rank(&self) -> usize {
        self.start.len()
    }

    /// Number of selected elements.
    pub fn num_elements(&self) -> u64 {
        self.count.iter().product()
    }

    /// Validates the selection against `shape`.
    ///
    /// # Panics
    /// Panics if the box exceeds the shape in any dimension.
    pub fn validate(&self, shape: &Shape) {
        assert_eq!(self.rank(), shape.rank(), "selection rank mismatch");
        for (d, ((&s, &c), &n)) in self
            .start
            .iter()
            .zip(&self.count)
            .zip(shape.dims())
            .enumerate()
        {
            assert!(
                s + c <= n,
                "selection [{s}, {}) exceeds dim {d} extent {n}",
                s + c
            );
        }
    }

    /// Whether `coords` lies inside the selection.
    pub fn contains(&self, coords: &[u64]) -> bool {
        coords.len() == self.rank()
            && coords
                .iter()
                .zip(self.start.iter().zip(&self.count))
                .all(|(&c, (&s, &n))| c >= s && c < s + n)
    }

    /// Iterates the selection's contiguous runs in row-major order: each
    /// item is `(linear_start, len)` in *element* indices of `shape`.
    /// When the selection covers whole trailing dimensions the runs fuse,
    /// so a full-array selection yields a single run.
    pub fn runs<'a>(&'a self, shape: &'a Shape) -> RunIter<'a> {
        self.validate(shape);
        // The run spans the longest suffix of dimensions that the selection
        // covers completely (plus the next dimension partially).
        let rank = self.rank();
        let mut fused = rank - 1; // runs vary along dims `fused..rank`
        while fused > 0
            && self.start[fused] == 0
            && self.count[fused] == shape.dims()[fused]
        {
            fused -= 1;
        }
        let run_len: u64 = (fused..rank)
            .map(|d| self.count[d])
            .product();
        RunIter {
            slab: self,
            shape,
            fused,
            run_len,
            outer: Some(self.start[..fused].to_vec()),
        }
    }
}

/// A strided selection: `count[d]` points along dimension `d`, starting at
/// `start[d]`, every `stride[d]`-th index — the `ncmpi_get_vars` access
/// shape (subsampling every k-th grid point, every n-th time step).
///
/// A stride of 1 in every dimension is exactly a [`Hyperslab`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StridedSlab {
    start: Vec<u64>,
    count: Vec<u64>,
    stride: Vec<u64>,
}

impl StridedSlab {
    /// Creates a strided selection.
    ///
    /// # Panics
    /// Panics if ranks differ, any count is zero, or any stride is zero.
    pub fn new(start: Vec<u64>, count: Vec<u64>, stride: Vec<u64>) -> Self {
        assert_eq!(start.len(), count.len(), "start/count rank mismatch");
        assert_eq!(start.len(), stride.len(), "start/stride rank mismatch");
        assert!(!start.is_empty(), "selection needs at least one dimension");
        assert!(count.iter().all(|&c| c > 0), "all counts must be positive");
        assert!(
            stride.iter().all(|&s| s > 0),
            "all strides must be positive"
        );
        Self {
            start,
            count,
            stride,
        }
    }

    /// Per-dimension starts.
    pub fn start(&self) -> &[u64] {
        &self.start
    }

    /// Per-dimension counts.
    pub fn count(&self) -> &[u64] {
        &self.count
    }

    /// Per-dimension strides.
    pub fn stride(&self) -> &[u64] {
        &self.stride
    }

    /// Number of selected elements.
    pub fn num_elements(&self) -> u64 {
        self.count.iter().product()
    }

    /// The index selected along dimension `d` at position `i`.
    fn index(&self, d: usize, i: u64) -> u64 {
        self.start[d] + i * self.stride[d]
    }

    /// Validates the selection against `shape`.
    ///
    /// # Panics
    /// Panics if the last selected index exceeds the shape in any dimension.
    pub fn validate(&self, shape: &Shape) {
        assert_eq!(self.start.len(), shape.rank(), "selection rank mismatch");
        for (d, &n) in shape.dims().iter().enumerate() {
            let last = self.index(d, self.count[d] - 1);
            assert!(
                last < n,
                "strided selection reaches index {last} in dim {d} of extent {n}"
            );
        }
    }

    /// Whether `coords` lies on the strided lattice.
    pub fn contains(&self, coords: &[u64]) -> bool {
        coords.len() == self.start.len()
            && coords.iter().enumerate().all(|(d, &c)| {
                c >= self.start[d]
                    && (c - self.start[d]).is_multiple_of(self.stride[d])
                    && (c - self.start[d]) / self.stride[d] < self.count[d]
            })
    }

    /// The contiguous element runs of the selection in row-major order.
    /// With a unit stride in the fastest dimension, runs span
    /// `count[last]` elements; otherwise every selected element is its own
    /// run (the worst-case non-contiguous pattern).
    pub fn runs(&self, shape: &Shape) -> Vec<(u64, u64)> {
        self.validate(shape);
        let rank = self.start.len();
        let fast_contig = self.stride[rank - 1] == 1;
        let run_len = if fast_contig { self.count[rank - 1] } else { 1 };
        // Iterate the outer lattice (all dims except the fastest when it
        // is contiguous; all dims otherwise) odometer style.
        let outer_rank = if fast_contig { rank - 1 } else { rank };
        let mut odo = vec![0u64; outer_rank];
        let mut out = Vec::new();
        loop {
            if fast_contig {
                let mut coords: Vec<u64> = (0..outer_rank)
                    .map(|d| self.index(d, odo[d]))
                    .collect();
                coords.push(self.start[rank - 1]);
                out.push((shape.linear_index(&coords), run_len));
            } else {
                let coords: Vec<u64> = (0..rank).map(|d| self.index(d, odo[d])).collect();
                out.push((shape.linear_index(&coords), 1));
            }
            // Advance the odometer.
            let mut d = outer_rank;
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                odo[d] += 1;
                if odo[d] < self.count[d] {
                    break;
                }
                odo[d] = 0;
            }
        }
    }
}

impl From<Hyperslab> for StridedSlab {
    fn from(slab: Hyperslab) -> Self {
        let rank = slab.rank();
        StridedSlab::new(
            slab.start().to_vec(),
            slab.count().to_vec(),
            vec![1; rank],
        )
    }
}

/// Iterator over the contiguous element runs of a hyperslab.
pub struct RunIter<'a> {
    slab: &'a Hyperslab,
    shape: &'a Shape,
    /// Dimensions `fused..rank` are contiguous within one run.
    fused: usize,
    run_len: u64,
    /// Coordinates of the next run in dims `0..fused`; `None` when done.
    outer: Option<Vec<u64>>,
}

impl Iterator for RunIter<'_> {
    /// `(linear element index of run start, run length in elements)`.
    type Item = (u64, u64);

    fn next(&mut self) -> Option<Self::Item> {
        let outer = self.outer.as_mut()?;
        let mut coords = outer.clone();
        coords.extend_from_slice(&self.slab.start[self.fused..]);
        let start = self.shape.linear_index(&coords);
        // Advance `outer` odometer-style within the selection box.
        let mut d = self.fused;
        loop {
            if d == 0 {
                self.outer = None;
                break;
            }
            d -= 1;
            outer[d] += 1;
            if outer[d] < self.slab.start[d] + self.slab.count[d] {
                break;
            }
            outer[d] = self.slab.start[d];
        }
        Some((start, self.run_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn full_selection_is_one_run() {
        let shape = Shape::new(vec![4, 3, 5]);
        let slab = Hyperslab::whole(&shape);
        let runs: Vec<_> = slab.runs(&shape).collect();
        assert_eq!(runs, vec![(0, 60)]);
    }

    #[test]
    fn partial_fastest_dim_gives_row_runs() {
        let shape = Shape::new(vec![3, 4]);
        let slab = Hyperslab::new(vec![1, 1], vec![2, 2]);
        let runs: Vec<_> = slab.runs(&shape).collect();
        // Rows (1,1..3) and (2,1..3): starts 5 and 9, length 2.
        assert_eq!(runs, vec![(5, 2), (9, 2)]);
    }

    #[test]
    fn trailing_full_dims_fuse() {
        let shape = Shape::new(vec![4, 3, 5]);
        // Full coverage of the last two dims: outer rows are adjacent, so
        // the whole selection is one contiguous run.
        let slab = Hyperslab::new(vec![1, 0, 0], vec![2, 3, 5]);
        let runs: Vec<_> = slab.runs(&shape).collect();
        assert_eq!(runs, vec![(15, 30)]);

        // Partially covered middle dim: one run per outer coordinate.
        let slab = Hyperslab::new(vec![1, 0, 0], vec![2, 2, 5]);
        let runs: Vec<_> = slab.runs(&shape).collect();
        assert_eq!(runs, vec![(15, 10), (30, 10)]);
    }

    #[test]
    fn four_dimensional_selection() {
        // A miniature of the paper's Fig. 1 pattern: 4-D subset access.
        let shape = Shape::new(vec![6, 5, 4, 8]);
        let slab = Hyperslab::new(vec![1, 2, 0, 2], vec![2, 2, 3, 4]);
        let runs: Vec<_> = slab.runs(&shape).collect();
        assert_eq!(runs.len(), (2 * 2 * 3) as usize);
        assert_eq!(slab.num_elements(), 48);
        let total: u64 = runs.iter().map(|r| r.1).sum();
        assert_eq!(total, 48);
        // First run starts at coords [1,2,0,2].
        assert_eq!(runs[0].0, shape.linear_index(&[1, 2, 0, 2]));
        assert_eq!(runs[0].1, 4);
    }

    #[test]
    fn contains_checks_box() {
        let slab = Hyperslab::new(vec![2, 3], vec![2, 2]);
        assert!(slab.contains(&[2, 3]));
        assert!(slab.contains(&[3, 4]));
        assert!(!slab.contains(&[4, 3]));
        assert!(!slab.contains(&[2, 5]));
        assert!(!slab.contains(&[2]));
    }

    #[test]
    #[should_panic]
    fn oversized_selection_panics() {
        let shape = Shape::new(vec![4, 4]);
        Hyperslab::new(vec![2, 0], vec![3, 4]).validate(&shape);
    }

    #[test]
    fn strided_unit_stride_equals_hyperslab() {
        let shape = Shape::new(vec![4, 6]);
        let slab = Hyperslab::new(vec![1, 2], vec![2, 3]);
        let strided: StridedSlab = slab.clone().into();
        let a: Vec<_> = slab.runs(&shape).collect();
        let b = strided.runs(&shape);
        assert_eq!(a, b);
    }

    #[test]
    fn strided_fast_dim_fragments_into_single_elements() {
        let shape = Shape::new(vec![2, 10]);
        // Every other column of row 0: elements 0, 2, 4, 6.
        let s = StridedSlab::new(vec![0, 0], vec![1, 4], vec![1, 2]);
        assert_eq!(s.runs(&shape), vec![(0, 1), (2, 1), (4, 1), (6, 1)]);
        assert_eq!(s.num_elements(), 4);
    }

    #[test]
    fn strided_outer_dims_keep_fast_runs() {
        let shape = Shape::new(vec![6, 8]);
        // Rows 1, 3, 5; columns 2..6 contiguous.
        let s = StridedSlab::new(vec![1, 2], vec![3, 4], vec![2, 1]);
        assert_eq!(s.runs(&shape), vec![(10, 4), (26, 4), (42, 4)]);
    }

    #[test]
    fn strided_contains_checks_lattice() {
        let s = StridedSlab::new(vec![1, 0], vec![2, 3], vec![2, 4]);
        assert!(s.contains(&[1, 0]));
        assert!(s.contains(&[3, 8]));
        assert!(!s.contains(&[2, 0])); // off the row lattice
        assert!(!s.contains(&[1, 2])); // off the column lattice
        assert!(!s.contains(&[5, 0])); // beyond the count
    }

    #[test]
    #[should_panic]
    fn strided_overreach_panics() {
        let shape = Shape::new(vec![4, 4]);
        StridedSlab::new(vec![0, 0], vec![3, 1], vec![2, 1]).validate(&shape);
    }

    #[test]
    fn strided_runs_match_brute_force() {
        let shape = Shape::new(vec![5, 4, 6]);
        let s = StridedSlab::new(vec![0, 1, 1], vec![3, 2, 2], vec![2, 2, 3]);
        let mut from_runs = Vec::new();
        for (st, len) in s.runs(&shape) {
            from_runs.extend(st..st + len);
        }
        let brute: Vec<u64> = (0..shape.num_elements())
            .filter(|&i| s.contains(&shape.coords_of(i)))
            .collect();
        assert_eq!(from_runs, brute);
    }

    proptest! {
        #[test]
        fn prop_strided_runs_match_brute_force(
            dims in proptest::collection::vec(2u64..7, 1..4),
            seed in any::<u64>(),
        ) {
            let shape = Shape::new(dims.clone());
            let mut x = seed;
            let mut next = |m: u64| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) % m
            };
            let mut start = Vec::new();
            let mut count = Vec::new();
            let mut stride = Vec::new();
            for &d in &dims {
                let st = next(d);
                let sr = 1 + next(3);
                let max_count = 1 + (d - 1 - st) / sr;
                start.push(st);
                stride.push(sr);
                count.push(1 + next(max_count));
            }
            let s = StridedSlab::new(start, count, stride);
            let mut from_runs = Vec::new();
            for (st, len) in s.runs(&shape) {
                from_runs.extend(st..st + len);
            }
            let brute: Vec<u64> = (0..shape.num_elements())
                .filter(|&i| s.contains(&shape.coords_of(i)))
                .collect();
            prop_assert_eq!(from_runs, brute);
        }

        #[test]
        fn prop_runs_enumerate_exactly_the_box(
            dims in proptest::collection::vec(1u64..6, 1..4),
            seed in any::<u64>(),
        ) {
            let shape = Shape::new(dims.clone());
            // Derive a valid in-bounds selection from the seed.
            let mut s = seed;
            let mut start = Vec::new();
            let mut count = Vec::new();
            for &d in &dims {
                let st = s % d;
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let c = 1 + s % (d - st);
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                start.push(st);
                count.push(c);
            }
            let slab = Hyperslab::new(start, count);
            // Collect all element indices from runs.
            let mut from_runs = Vec::new();
            for (st, len) in slab.runs(&shape) {
                from_runs.extend(st..st + len);
            }
            // Compare against brute force membership.
            let brute: Vec<u64> = (0..shape.num_elements())
                .filter(|&i| slab.contains(&shape.coords_of(i)))
                .collect();
            prop_assert_eq!(from_runs, brute);
        }
    }
}
