//! N-dimensional array shapes (row-major / C order).
//!
//! Dimensions are stored slowest-varying first, fastest-varying last, like
//! netCDF. The paper describes its 4-D climate dataset "from fast dimension
//! to slowest dimension" as 1024 x 1024 x 100 x 1024; in this crate's
//! convention that is `Shape::new(vec![1024, 100, 1024, 1024])`.

/// The extents of an N-dimensional array, slowest dimension first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shape {
    dims: Vec<u64>,
}

impl Shape {
    /// Creates a shape.
    ///
    /// # Panics
    /// Panics on zero rank or any zero dimension.
    pub fn new(dims: Vec<u64>) -> Self {
        assert!(!dims.is_empty(), "shape needs at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "all dimensions must be positive: {dims:?}"
        );
        Self { dims }
    }

    /// The dimension extents, slowest first.
    pub fn dims(&self) -> &[u64] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Row-major strides in elements: `strides[d]` is the element distance
    /// between consecutive indices along dimension `d`.
    pub fn strides(&self) -> Vec<u64> {
        let mut strides = vec![1u64; self.dims.len()];
        for d in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * self.dims[d + 1];
        }
        strides
    }

    /// The linear (flat, row-major) index of `coords`.
    ///
    /// # Panics
    /// Panics if `coords` has the wrong rank or is out of bounds.
    pub fn linear_index(&self, coords: &[u64]) -> u64 {
        assert_eq!(coords.len(), self.rank(), "coordinate rank mismatch");
        let mut idx = 0u64;
        for (d, (&c, &n)) in coords.iter().zip(&self.dims).enumerate() {
            assert!(c < n, "coordinate {c} out of bounds {n} in dim {d}");
            idx = idx * n + c;
        }
        idx
    }

    /// The coordinates of linear index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn coords_of(&self, idx: u64) -> Vec<u64> {
        assert!(
            idx < self.num_elements(),
            "linear index {idx} out of range {}",
            self.num_elements()
        );
        let mut coords = vec![0u64; self.rank()];
        let mut rem = idx;
        for d in (0..self.rank()).rev() {
            coords[d] = rem % self.dims[d];
            rem /= self.dims[d];
        }
        coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![4, 3, 5]);
        assert_eq!(s.strides(), vec![15, 5, 1]);
        assert_eq!(s.num_elements(), 60);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn linear_index_matches_strides() {
        let s = Shape::new(vec![4, 3, 5]);
        assert_eq!(s.linear_index(&[0, 0, 0]), 0);
        assert_eq!(s.linear_index(&[1, 0, 0]), 15);
        assert_eq!(s.linear_index(&[2, 1, 3]), 2 * 15 + 5 + 3);
    }

    #[test]
    fn coords_roundtrip_small() {
        let s = Shape::new(vec![3, 2, 4]);
        for idx in 0..s.num_elements() {
            assert_eq!(s.linear_index(&s.coords_of(idx)), idx);
        }
    }

    #[test]
    fn one_dimensional_shape() {
        let s = Shape::new(vec![10]);
        assert_eq!(s.strides(), vec![1]);
        assert_eq!(s.coords_of(7), vec![7]);
    }

    #[test]
    #[should_panic]
    fn zero_dim_panics() {
        let _ = Shape::new(vec![4, 0, 2]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_coord_panics() {
        let s = Shape::new(vec![2, 2]);
        let _ = s.linear_index(&[2, 0]);
    }

    proptest! {
        #[test]
        fn prop_linear_coords_roundtrip(
            dims in proptest::collection::vec(1u64..8, 1..5),
            seed in any::<u64>(),
        ) {
            let s = Shape::new(dims);
            let idx = seed % s.num_elements();
            prop_assert_eq!(s.linear_index(&s.coords_of(idx)), idx);
        }

        #[test]
        fn prop_lexicographic_order(
            dims in proptest::collection::vec(1u64..6, 1..4),
            a in any::<u64>(),
            b in any::<u64>(),
        ) {
            // Linear order equals lexicographic coordinate order.
            let s = Shape::new(dims);
            let (a, b) = (a % s.num_elements(), b % s.num_elements());
            let (ca, cb) = (s.coords_of(a), s.coords_of(b));
            prop_assert_eq!(a.cmp(&b), ca.cmp(&cb));
        }
    }
}
