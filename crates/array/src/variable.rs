//! Variables: typed N-dimensional arrays at a byte offset in a file.

use cc_mpiio::{Extent, OffsetList};

use crate::dtype::DType;
use crate::hyperslab::{Hyperslab, StridedSlab};
use crate::shape::Shape;

/// A named variable: shape, element type, and the byte offset of element 0
/// in its file (netCDF's `begin` attribute).
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    name: String,
    shape: Shape,
    dtype: DType,
    base_offset: u64,
}

impl Variable {
    /// Creates a variable rooted at `base_offset`.
    pub fn new(name: &str, shape: Shape, dtype: DType, base_offset: u64) -> Self {
        Self {
            name: name.to_string(),
            shape,
            dtype,
            base_offset,
        }
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The variable's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Byte offset of element 0 in the file.
    pub fn base_offset(&self) -> u64 {
        self.base_offset
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.shape.num_elements() * self.dtype.size()
    }

    /// One-past-the-end byte offset in the file.
    pub fn end_offset(&self) -> u64 {
        self.base_offset + self.size_bytes()
    }

    /// The byte offset of linear element `idx`.
    pub fn byte_of_elem(&self, idx: u64) -> u64 {
        self.base_offset + idx * self.dtype.size()
    }

    /// The linear element index containing byte `offset`.
    ///
    /// # Panics
    /// Panics if `offset` is outside the variable.
    pub fn elem_of_byte(&self, offset: u64) -> u64 {
        assert!(
            offset >= self.base_offset && offset < self.end_offset(),
            "byte {offset} outside variable '{}' [{}, {})",
            self.name,
            self.base_offset,
            self.end_offset()
        );
        (offset - self.base_offset) / self.dtype.size()
    }

    /// Flattens a hyperslab selection into the byte offset list the MPI-IO
    /// layer consumes — the logical→physical direction of the paper's
    /// Fig. 8. Runs that fuse across full trailing dimensions stay fused.
    pub fn byte_extents(&self, slab: &Hyperslab) -> OffsetList {
        slab.validate(&self.shape);
        let esize = self.dtype.size();
        OffsetList::new(
            slab.runs(&self.shape)
                .map(|(start, len)| Extent {
                    offset: self.base_offset + start * esize,
                    len: len * esize,
                })
                .collect(),
        )
    }

    /// Flattens a strided selection (the `ncmpi_get_vars` access shape)
    /// into a byte offset list.
    pub fn byte_extents_strided(&self, slab: &StridedSlab) -> OffsetList {
        let esize = self.dtype.size();
        OffsetList::new(
            slab.runs(&self.shape)
                .into_iter()
                .map(|(start, len)| Extent {
                    offset: self.base_offset + start * esize,
                    len: len * esize,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var() -> Variable {
        Variable::new("t", Shape::new(vec![3, 4]), DType::F64, 100)
    }

    #[test]
    fn sizes_and_offsets() {
        let v = var();
        assert_eq!(v.size_bytes(), 96);
        assert_eq!(v.end_offset(), 196);
        assert_eq!(v.byte_of_elem(5), 140);
        assert_eq!(v.elem_of_byte(140), 5);
        assert_eq!(v.elem_of_byte(147), 5);
    }

    #[test]
    #[should_panic]
    fn elem_of_byte_outside_panics() {
        let _ = var().elem_of_byte(99);
    }

    #[test]
    fn byte_extents_of_row_selection() {
        let v = var();
        // Rows (1, 1..3) and (2, 1..3): elements 5,6 and 9,10.
        let slab = Hyperslab::new(vec![1, 1], vec![2, 2]);
        let l = v.byte_extents(&slab);
        assert_eq!(l.extents().len(), 2);
        assert_eq!(l.extents()[0].offset, 100 + 5 * 8);
        assert_eq!(l.extents()[0].len, 16);
        assert_eq!(l.extents()[1].offset, 100 + 9 * 8);
        assert_eq!(l.total_bytes(), 32);
    }

    #[test]
    fn strided_byte_extents_subsample() {
        let v = var(); // 3 x 4 f64 at byte 100
        use crate::hyperslab::StridedSlab;
        // Every other column of every row: elems 0,2, 4,6, 8,10.
        let s = StridedSlab::new(vec![0, 0], vec![3, 2], vec![1, 2]);
        let l = v.byte_extents_strided(&s);
        assert_eq!(l.extents().len(), 6);
        assert_eq!(l.extents()[0].offset, 100);
        assert_eq!(l.extents()[1].offset, 100 + 16);
        assert_eq!(l.total_bytes(), 48);
    }

    #[test]
    fn full_selection_is_one_extent() {
        let v = var();
        let l = v.byte_extents(&Hyperslab::whole(v.shape()));
        assert_eq!(l.extents().len(), 1);
        assert_eq!(l.total_bytes(), 96);
    }
}
